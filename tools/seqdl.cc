// seqdl — command line front end for the Sequence Datalog library.
//
//   seqdl run <program.sdl> <instance.sdl> [--output=REL] [--naive]
//              [--no-index] [--stats] [--explain] [--legacy-planner]
//       Evaluate a program on an instance and print the derived facts
//       (all IDB relations, or just --output). The planner ranks access
//       paths by selectivity statistics measured over the instance;
//       --legacy-planner forces the first-ground-argument heuristic.
//       --explain prints the chosen plan (key column and scan order per
//       rule step); --stats reports the engine's extended counters
//       (per-stratum rounds, a per-index-family probe table, compile/run
//       wall times).
//
//   seqdl serve <instance.sdl> [--stats]
//       Load the instance into a Database once (EDB indexed a single
//       time), then answer queries from stdin until EOF, one per line:
//
//           run <program.sdl> [REL]    evaluate against the preloaded EDB,
//                                      print derived facts (or just REL)
//           stats                      print the database's measured
//                                      selectivity statistics (base EDB
//                                      plus everything runs derived)
//           quit                       exit
//
//       Programs are compiled once per path and cached, so repeating a
//       query pays neither compilation nor EDB indexing again — the
//       serving loop the Database/Session API exists for.
//
//   seqdl check <program.sdl>
//       Validate safety/stratification, report the features used and the
//       Figure 1 expressiveness class of the program's fragment.
//
//   seqdl transform <program.sdl> --eliminate=packing|equations|arity|all
//       Apply the paper's redundancy transformations and print the result.
//
//   seqdl normalform <program.sdl>
//       Print the Lemma 7.2 normal form (nonrecursive, equation-free
//       programs; equations are eliminated first if present).
//
//   seqdl algebra <program.sdl> <REL>
//       Print the Theorem 7.1 sequence relational algebra expression for
//       an IDB relation of a nonrecursive program.
//
//   seqdl hasse [--dot]
//       Print the Figure 1 Hasse diagram.
//
//   seqdl regex <pattern>
//       Compile a regular expression to a Sequence Datalog matcher and
//       print the program.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/analysis/features.h"
#include "src/analysis/safety.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/fragments/fragments.h"
#include "src/queries/regex.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/normal_form.h"
#include "src/transform/packing_elim.h"

namespace {

int Fail(const seqdl::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

seqdl::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return seqdl::Status::NotFound("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& prefix) {
  for (const std::string& a : args) {
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return "";
}

// The per-index-family scan counters as one aligned table.
void PrintScanTable(const seqdl::EvalStats& stats) {
  struct Row {
    const char* name;
    size_t count;
  };
  const Row rows[] = {
      {"whole-value probes", stats.index_probes},
      {"first-value probes", stats.prefix_probes},
      {"last-value probes", stats.suffix_probes},
      {"full scans", stats.full_scans},
      {"delta scans", stats.delta_scans},
      {"delta-indexed", stats.delta_index_probes},
  };
  std::fprintf(stderr, "-- %-20s %12s\n", "scan family", "count");
  for (const Row& row : rows) {
    std::fprintf(stderr, "-- %-20s %12zu\n", row.name, row.count);
  }
}

int CmdRun(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: seqdl run <program> <instance> "
                         "[--output=REL] [--naive] [--no-index] [--stats] "
                         "[--explain] [--legacy-planner]\n");
    return 2;
  }
  seqdl::Universe u;
  auto program_text = ReadFile(args[0]);
  if (!program_text.ok()) return Fail(program_text.status());
  auto instance_text = ReadFile(args[1]);
  if (!instance_text.ok()) return Fail(instance_text.status());
  auto program = seqdl::ParseProgram(u, *program_text);
  if (!program.ok()) return Fail(program.status());
  auto instance = seqdl::ParseInstance(u, *instance_text);
  if (!instance.ok()) return Fail(instance.status());

  // Measure the instance so the planner can rank access paths by
  // selectivity; --legacy-planner keeps the first-ground-argument
  // heuristic (results are identical either way — only cost changes).
  seqdl::CompileOptions copts;
  seqdl::StoreStats selectivity;
  if (!HasFlag(args, "--legacy-planner")) {
    selectivity = seqdl::ComputeInstanceStats(u, *instance);
    copts.stats = &selectivity;
  }
  auto prepared = seqdl::Engine::Compile(u, std::move(*program), copts);
  if (!prepared.ok()) return Fail(prepared.status());
  if (HasFlag(args, "--explain")) {
    std::fprintf(stderr, "%s", prepared->ExplainPlan().c_str());
  }

  seqdl::RunOptions opts;
  opts.seminaive = !HasFlag(args, "--naive");
  opts.use_index = !HasFlag(args, "--no-index");
  seqdl::EvalStats stats;
  auto out = prepared->Run(*instance, opts, &stats);
  if (!out.ok()) return Fail(out.status());

  std::string output_rel = FlagValue(args, "--output=");
  if (!output_rel.empty()) {
    auto rel = u.FindRel(output_rel);
    if (!rel.ok()) return Fail(rel.status());
    std::printf("%s", out->Project({*rel}).ToString(u).c_str());
  } else {
    std::set<seqdl::RelId> idb = seqdl::IdbRels(prepared->program());
    std::printf("%s",
                out->Project({idb.begin(), idb.end()}).ToString(u).c_str());
  }
  std::fprintf(stderr, "-- %zu facts derived in %zu rounds (%zu firings)\n",
               stats.derived_facts, stats.rounds, stats.rule_firings);
  if (HasFlag(args, "--stats")) {
    PrintScanTable(stats);
    std::fprintf(stderr, "-- compile %.3f ms, run %.3f ms\n",
                 stats.compile_seconds * 1e3, stats.run_seconds * 1e3);
    for (size_t i = 0; i < stats.per_stratum.size(); ++i) {
      const seqdl::StratumStats& s = stats.per_stratum[i];
      std::fprintf(stderr,
                   "-- stratum %zu: %zu rounds, %zu firings, %zu facts\n",
                   i, s.rounds, s.rule_firings, s.derived_facts);
    }
  }
  return 0;
}

// Repeated-query serving loop: one Database (EDB loaded and indexed once),
// one Universe, a cache of compiled programs, any number of session runs.
int CmdServe(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl serve <instance> [--stats]\n");
    return 2;
  }
  bool stats_on = HasFlag(args, "--stats");
  seqdl::Universe u;
  auto instance_text = ReadFile(args[0]);
  if (!instance_text.ok()) return Fail(instance_text.status());
  auto instance = seqdl::ParseInstance(u, *instance_text);
  if (!instance.ok()) return Fail(instance.status());
  size_t edb_facts = instance->NumFacts();
  auto db = seqdl::Database::Open(u, std::move(*instance));
  if (!db.ok()) return Fail(db.status());
  seqdl::Session session = db->OpenSession();
  std::fprintf(stderr, "-- serving %zu EDB facts from %s; "
                       "'run <program> [REL]', 'stats', or 'quit'\n",
               edb_facts, args[0].c_str());

  std::map<std::string, seqdl::PreparedProgram> programs;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string cmd;
    words >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "stats") {
      // The planner's view: base EDB measurements merged with the
      // derived-fact statistics reported back by earlier runs.
      std::printf("%s", db->Stats().ToString(u).c_str());
      std::fflush(stdout);
      continue;
    }
    if (cmd != "run") {
      std::fprintf(stderr, "error: unknown serve command '%s'\n", cmd.c_str());
      continue;
    }
    std::string path, output_rel;
    words >> path >> output_rel;
    if (path.empty()) {
      std::fprintf(stderr, "usage: run <program> [REL]\n");
      continue;
    }
    auto it = programs.find(path);
    if (it == programs.end()) {
      auto text = ReadFile(path);
      if (!text.ok()) {
        Fail(text.status());
        continue;
      }
      auto program = seqdl::ParseProgram(u, *text);
      if (!program.ok()) {
        Fail(program.status());
        continue;
      }
      // Database::Compile plans with the database's measured statistics
      // (base EDB plus whatever earlier runs derived and reported back).
      auto prepared = db->Compile(std::move(*program));
      if (!prepared.ok()) {
        Fail(prepared.status());
        continue;
      }
      it = programs.emplace(path, std::move(*prepared)).first;
    }
    seqdl::EvalStats stats;
    seqdl::RunOptions ropts;
    // Feed each run's derived-fact statistics back into Database::Stats()
    // so later-compiled programs plan from the observed workload.
    ropts.collect_derived_stats = true;
    auto derived = session.Run(it->second, ropts, &stats);
    if (!derived.ok()) {
      Fail(derived.status());
      continue;
    }
    if (!output_rel.empty()) {
      auto rel = u.FindRel(output_rel);
      if (!rel.ok()) {
        Fail(rel.status());
        continue;
      }
      std::printf("%s", derived->Project({*rel}).ToString(u).c_str());
    } else {
      std::printf("%s", derived->ToString(u).c_str());
    }
    std::fflush(stdout);
    std::fprintf(stderr, "-- %zu facts derived in %.3f ms\n",
                 stats.derived_facts, stats.run_seconds * 1e3);
    if (stats_on) {
      std::fprintf(stderr,
                   "-- scans: %zu index, %zu prefix, %zu suffix, %zu full, "
                   "%zu delta (%zu delta-indexed); %zu base columns indexed\n",
                   stats.index_probes, stats.prefix_probes,
                   stats.suffix_probes, stats.full_scans, stats.delta_scans,
                   stats.delta_index_probes, db->NumIndexedColumns());
    }
  }
  return 0;
}

int CmdCheck(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl check <program>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  seqdl::Status valid = seqdl::ValidateProgram(u, *program);
  std::printf("rules:      %zu in %zu strata\n", program->NumRules(),
              program->strata.size());
  std::printf("validation: %s\n", valid.ToString().c_str());
  seqdl::FeatureSet f = seqdl::DetectFeatures(*program);
  std::printf("features:   %s\n", f.ToString().c_str());
  for (const seqdl::FragmentClass& cls : seqdl::CoreEquivalenceClasses()) {
    if (seqdl::Equivalent(f, cls.Rep())) {
      std::printf("class:      %s (Figure 1)\n", cls.Label().c_str());
      break;
    }
  }
  return valid.ok() ? 0 : 1;
}

int CmdTransform(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl transform <program> "
                         "--eliminate=packing|equations|arity|all\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  std::string what = FlagValue(args, "--eliminate=");
  if (what.empty()) what = "all";

  seqdl::Program current = *program;
  auto apply = [&](const std::string& name) -> seqdl::Status {
    if (name == "packing") {
      auto q = seqdl::EliminatePackingNonrecursive(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "equations") {
      auto q = seqdl::EliminateEquations(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "arity") {
      auto q = seqdl::EliminateArity(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else {
      return seqdl::Status::InvalidArgument("unknown elimination " + name);
    }
    return seqdl::Status::OK();
  };

  if (what == "all") {
    seqdl::FeatureSet f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kPacking)) {
      seqdl::Status s = apply("packing");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kEquations)) {
      seqdl::Status s = apply("equations");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kArity)) {
      seqdl::Status s = apply("arity");
      if (!s.ok()) return Fail(s);
    }
  } else {
    seqdl::Status s = apply(what);
    if (!s.ok()) return Fail(s);
  }
  std::printf("%s", seqdl::FormatProgram(u, current).c_str());
  std::fprintf(stderr, "-- %zu rules, features %s\n", current.NumRules(),
               seqdl::DetectFeatures(current).ToString().c_str());
  return 0;
}

int CmdNormalForm(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl normalform <program>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  seqdl::Program staged = *program;
  bool has_equations = false;
  for (const seqdl::Rule* r : staged.AllRules()) {
    for (const seqdl::Literal& l : r->body) {
      has_equations |= l.is_equation();
    }
  }
  if (has_equations) {
    auto q = seqdl::EliminateEquations(u, staged);
    if (!q.ok()) return Fail(q.status());
    staged = std::move(*q);
  }
  auto normal = seqdl::ToNormalForm(u, staged);
  if (!normal.ok()) return Fail(normal.status());
  std::printf("%s", seqdl::FormatProgram(u, *normal).c_str());
  return 0;
}

int CmdAlgebra(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: seqdl algebra <program> <REL>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  auto rel = u.FindRel(args[1]);
  if (!rel.ok()) return Fail(rel.status());
  auto alg = seqdl::DatalogToAlgebra(u, *program, *rel);
  if (!alg.ok()) return Fail(alg.status());
  std::printf("%s\n", seqdl::FormatAlgebra(u, **alg).c_str());
  return 0;
}

int CmdHasse(const std::vector<std::string>& args) {
  seqdl::HasseDiagram d = seqdl::BuildHasseDiagram();
  if (HasFlag(args, "--dot")) {
    std::printf("%s", seqdl::HasseToDot(d).c_str());
  } else {
    std::printf("%s", seqdl::RenderHasse(d).c_str());
  }
  return 0;
}

int CmdRegex(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl regex <pattern>\n");
    return 2;
  }
  seqdl::Universe u;
  auto q = seqdl::RegexToDatalog(u, args[0]);
  if (!q.ok()) return Fail(q.status());
  std::printf("%% strings go into %s; matches appear in %s\n",
              u.RelName(q->input).c_str(), u.RelName(q->output).c_str());
  std::printf("%s", seqdl::FormatProgram(u, q->program).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: seqdl <run|serve|check|transform|normalform|algebra|"
                 "hasse|regex> ...\n");
    return 2;
  }
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "run") return CmdRun(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "check") return CmdCheck(args);
  if (cmd == "transform") return CmdTransform(args);
  if (cmd == "normalform") return CmdNormalForm(args);
  if (cmd == "algebra") return CmdAlgebra(args);
  if (cmd == "hasse") return CmdHasse(args);
  if (cmd == "regex") return CmdRegex(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
