// seqdl — command line front end for the Sequence Datalog library.
//
//   seqdl run <program.sdl> <instance.sdl> [--output=REL] [--naive]
//              [--no-index] [--stats] [--explain] [--legacy-planner]
//       Evaluate a program on an instance and print the derived facts
//       (all IDB relations, or just --output). The planner ranks access
//       paths by selectivity statistics measured over the instance;
//       --legacy-planner forces the first-ground-argument heuristic.
//       --explain prints the chosen plan (key column and scan order per
//       rule step); --stats reports the engine's extended counters
//       (per-stratum rounds, a per-index-family probe table, compile/run
//       wall times).
//
//   seqdl serve <instance.sdl> [--stats] [--threads=N]
//               [--recompile-drift=X] [--auto-compact=N]
//       Load the instance into a versioned Database once, then answer
//       commands from stdin until EOF, one per line:
//
//           run <program.sdl> [REL]    evaluate against the current-epoch
//                                      EDB, print derived facts (or REL)
//           append <instance.sdl>      ingest more facts: publishes a new
//                                      immutable segment and bumps the
//                                      epoch; in-flight runs keep their
//                                      pinned snapshot
//           epoch                      print epoch / segment / fact counts
//           compact                    fold all segments into one store
//           stats                      print the database's measured
//                                      selectivity statistics (live
//                                      segments plus everything runs
//                                      derived, epoch-aged)
//           quit                       exit
//
//       Programs are compiled once per path and cached; when a later
//       append moves the database's measured statistics past
//       --recompile-drift (default 0.25, relative tuple-count change),
//       the cached plan is recompiled against the fresh statistics.
//       --threads=N answers `run` commands on a worker pool of N threads
//       (snapshot runs are safe to race with each other and with
//       appends); --auto-compact=N folds the segment stack whenever it
//       grows past N segments (default 8, 0 = manual `compact` only).
//
//   seqdl check <program.sdl>
//       Validate safety/stratification, report the features used and the
//       Figure 1 expressiveness class of the program's fragment.
//
//   seqdl transform <program.sdl> --eliminate=packing|equations|arity|all
//       Apply the paper's redundancy transformations and print the result.
//
//   seqdl normalform <program.sdl>
//       Print the Lemma 7.2 normal form (nonrecursive, equation-free
//       programs; equations are eliminated first if present).
//
//   seqdl algebra <program.sdl> <REL>
//       Print the Theorem 7.1 sequence relational algebra expression for
//       an IDB relation of a nonrecursive program.
//
//   seqdl hasse [--dot]
//       Print the Figure 1 Hasse diagram.
//
//   seqdl regex <pattern>
//       Compile a regular expression to a Sequence Datalog matcher and
//       print the program.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/analysis/features.h"
#include "src/analysis/safety.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/fragments/fragments.h"
#include "src/queries/regex.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/normal_form.h"
#include "src/transform/packing_elim.h"

namespace {

int Fail(const seqdl::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

seqdl::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return seqdl::Status::NotFound("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& prefix) {
  for (const std::string& a : args) {
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return "";
}

// The per-index-family scan counters as one aligned table.
void PrintScanTable(const seqdl::EvalStats& stats) {
  struct Row {
    const char* name;
    size_t count;
  };
  const Row rows[] = {
      {"whole-value probes", stats.index_probes},
      {"first-value probes", stats.prefix_probes},
      {"last-value probes", stats.suffix_probes},
      {"full scans", stats.full_scans},
      {"delta scans", stats.delta_scans},
      {"delta-indexed", stats.delta_index_probes},
  };
  std::fprintf(stderr, "-- %-20s %12s\n", "scan family", "count");
  for (const Row& row : rows) {
    std::fprintf(stderr, "-- %-20s %12zu\n", row.name, row.count);
  }
}

int CmdRun(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: seqdl run <program> <instance> "
                         "[--output=REL] [--naive] [--no-index] [--stats] "
                         "[--explain] [--legacy-planner]\n");
    return 2;
  }
  seqdl::Universe u;
  auto program_text = ReadFile(args[0]);
  if (!program_text.ok()) return Fail(program_text.status());
  auto instance_text = ReadFile(args[1]);
  if (!instance_text.ok()) return Fail(instance_text.status());
  auto program = seqdl::ParseProgram(u, *program_text);
  if (!program.ok()) return Fail(program.status());
  auto instance = seqdl::ParseInstance(u, *instance_text);
  if (!instance.ok()) return Fail(instance.status());

  // Measure the instance so the planner can rank access paths by
  // selectivity; --legacy-planner keeps the first-ground-argument
  // heuristic (results are identical either way — only cost changes).
  seqdl::CompileOptions copts;
  seqdl::StoreStats selectivity;
  if (!HasFlag(args, "--legacy-planner")) {
    selectivity = seqdl::ComputeInstanceStats(u, *instance);
    copts.stats = &selectivity;
  }
  auto prepared = seqdl::Engine::Compile(u, std::move(*program), copts);
  if (!prepared.ok()) return Fail(prepared.status());
  if (HasFlag(args, "--explain")) {
    std::fprintf(stderr, "%s", prepared->ExplainPlan().c_str());
  }

  seqdl::RunOptions opts;
  opts.seminaive = !HasFlag(args, "--naive");
  opts.use_index = !HasFlag(args, "--no-index");
  seqdl::EvalStats stats;
  auto out = prepared->Run(*instance, opts, &stats);
  if (!out.ok()) return Fail(out.status());

  std::string output_rel = FlagValue(args, "--output=");
  if (!output_rel.empty()) {
    auto rel = u.FindRel(output_rel);
    if (!rel.ok()) return Fail(rel.status());
    std::printf("%s", out->Project({*rel}).ToString(u).c_str());
  } else {
    std::set<seqdl::RelId> idb = seqdl::IdbRels(prepared->program());
    std::printf("%s",
                out->Project({idb.begin(), idb.end()}).ToString(u).c_str());
  }
  std::fprintf(stderr, "-- %zu facts derived in %zu rounds (%zu firings)\n",
               stats.derived_facts, stats.rounds, stats.rule_firings);
  if (HasFlag(args, "--stats")) {
    PrintScanTable(stats);
    std::fprintf(stderr, "-- compile %.3f ms, run %.3f ms\n",
                 stats.compile_seconds * 1e3, stats.run_seconds * 1e3);
    for (size_t i = 0; i < stats.per_stratum.size(); ++i) {
      const seqdl::StratumStats& s = stats.per_stratum[i];
      std::fprintf(stderr,
                   "-- stratum %zu: %zu rounds, %zu firings, %zu facts\n",
                   i, s.rounds, s.rule_firings, s.derived_facts);
    }
  }
  return 0;
}

// Repeated-query serving loop over a versioned Database: the EDB is
// loaded once and then grows by `append` (epoch-bumping segment
// publishes); `run` commands execute against an epoch-pinned snapshot,
// on the calling thread or on a --threads=N worker pool. Compiled
// programs are cached per path and recompiled when the database's
// measured statistics drift past --recompile-drift since compile time.
class ServeLoop {
 public:
  ServeLoop(seqdl::Universe& u, seqdl::Database db, bool stats_on,
            double recompile_drift)
      : u_(u),
        db_(std::move(db)),
        stats_on_(stats_on),
        recompile_drift_(recompile_drift) {}

  ~ServeLoop() { StopWorkers(); }

  void StartWorkers(size_t threads) {
    for (size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      done_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  // `run <program> [REL]`: inline when there is no pool, else enqueued.
  void Run(std::string path, std::string output_rel) {
    if (workers_.empty()) {
      RunOne(path, output_rel);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_.emplace_back(std::move(path), std::move(output_rel));
    }
    queue_cv_.notify_one();
  }

  void Append(const std::string& path) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(text.status());
      return;
    }
    auto delta = seqdl::ParseInstance(u_, *text);
    if (!delta.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(delta.status());
      return;
    }
    size_t staged = delta->NumFacts();
    auto epoch = db_.Append(std::move(*delta));
    if (!epoch.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(epoch.status());
      return;
    }
    std::lock_guard<std::mutex> lock(io_mu_);
    std::fprintf(stderr,
                 "-- appended %s (%zu facts): epoch %llu, %zu segments, "
                 "%zu facts total\n",
                 path.c_str(), staged,
                 static_cast<unsigned long long>(*epoch), db_.NumSegments(),
                 db_.NumFacts());
  }

  void Epoch() {
    std::lock_guard<std::mutex> lock(io_mu_);
    std::printf("epoch %llu: %zu segments, %zu facts\n",
                static_cast<unsigned long long>(db_.epoch()),
                db_.NumSegments(), db_.NumFacts());
    std::fflush(stdout);
  }

  void Compact() {
    bool folded = db_.Compact();
    std::lock_guard<std::mutex> lock(io_mu_);
    std::fprintf(stderr, "-- %s: epoch %llu, %zu segments, %zu facts\n",
                 folded ? "compacted" : "nothing to compact",
                 static_cast<unsigned long long>(db_.epoch()),
                 db_.NumSegments(), db_.NumFacts());
  }

  void Stats() {
    // The planner's view: live-segment measurements merged with the
    // derived-fact statistics reported back by earlier runs.
    std::string rendered = db_.Stats().ToString(u_);
    std::lock_guard<std::mutex> lock(io_mu_);
    std::printf("%s", rendered.c_str());
    std::fflush(stdout);
  }

  // Waits until every queued `run` has finished (quit/EOF path).
  void Drain() {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

 private:
  struct CachedProgram {
    std::shared_ptr<seqdl::PreparedProgram> prog;
    uint64_t epoch;             // db_.epoch() at compile time
    seqdl::StoreStats stats;    // Stats() snapshot the plan was ranked by
  };

  void WorkerLoop() {
    while (true) {
      std::pair<std::string, std::string> job;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (done_) return;
          continue;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      RunOne(job.first, job.second);
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        --in_flight_;
      }
      drained_cv_.notify_all();
    }
  }

  // Returns the cached prepared program for `path`, compiling on first
  // use and recompiling when the measured statistics drifted past the
  // threshold since the cached plan was ranked. The cache lock covers
  // only lookups and inserts — IO, parsing, and compilation run outside
  // it, so one slow compile never stalls workers running cached plans.
  std::shared_ptr<seqdl::PreparedProgram> Prepare(const std::string& path) {
    std::shared_ptr<seqdl::PreparedProgram> cached;
    uint64_t stale_epoch = 0;
    double drift = 0.0;
    {
      std::lock_guard<std::mutex> lock(programs_mu_);
      auto it = programs_.find(path);
      if (it != programs_.end()) {
        cached = it->second.prog;
        if (db_.epoch() == it->second.epoch) return cached;
        drift = seqdl::StatsDrift(it->second.stats, db_.Stats());
        if (drift < recompile_drift_) return cached;
        stale_epoch = it->second.epoch;
      }
    }
    std::shared_ptr<seqdl::PreparedProgram> fresh = CompileFor(path);
    if (fresh == nullptr) return cached;  // keep the stale plan, if any
    if (cached != nullptr) {
      std::lock_guard<std::mutex> io(io_mu_);
      std::fprintf(stderr,
                   "-- recompiled %s (stats drift %.2f >= %.2f since epoch "
                   "%llu)\n",
                   path.c_str(), drift, recompile_drift_,
                   static_cast<unsigned long long>(stale_epoch));
    }
    return fresh;
  }

  // Parses + compiles `path` against a fresh statistics snapshot and
  // stores the cache entry. Runs without programs_mu_: two workers may
  // race to compile the same path — both plans are correct, the last
  // insert wins. nullptr on failure (already reported).
  std::shared_ptr<seqdl::PreparedProgram> CompileFor(const std::string& path) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::lock_guard<std::mutex> io(io_mu_);
      Fail(text.status());
      return nullptr;
    }
    auto program = seqdl::ParseProgram(u_, *text);
    if (!program.ok()) {
      std::lock_guard<std::mutex> io(io_mu_);
      Fail(program.status());
      return nullptr;
    }
    // Read the epoch before the stats snapshot: if an append lands
    // between the two reads, the entry is stamped older than its
    // statistics and the next Prepare re-runs the drift check (the safe
    // direction) instead of masking it behind a current-looking epoch.
    uint64_t epoch = db_.epoch();
    seqdl::StoreStats stats = db_.Stats();
    // Compile with the database's measured statistics (live segments
    // plus whatever earlier runs derived and reported back).
    seqdl::CompileOptions copts;
    copts.stats = &stats;
    auto prepared = seqdl::Engine::Compile(u_, std::move(*program), copts);
    if (!prepared.ok()) {
      std::lock_guard<std::mutex> io(io_mu_);
      Fail(prepared.status());
      return nullptr;
    }
    CachedProgram entry;
    entry.prog =
        std::make_shared<seqdl::PreparedProgram>(std::move(*prepared));
    entry.epoch = epoch;
    entry.stats = std::move(stats);
    auto prog = entry.prog;
    std::lock_guard<std::mutex> lock(programs_mu_);
    programs_[path] = std::move(entry);
    return prog;
  }

  void RunOne(const std::string& path, const std::string& output_rel) {
    std::shared_ptr<seqdl::PreparedProgram> prog = Prepare(path);
    if (prog == nullptr) return;
    // Pin the current epoch for exactly this run: appends committed
    // while the run executes do not affect it.
    seqdl::Session session = db_.Snapshot();
    seqdl::EvalStats stats;
    seqdl::RunOptions ropts;
    // Feed each run's derived-fact statistics back into Database::Stats()
    // so later-compiled programs plan from the observed workload.
    ropts.collect_derived_stats = true;
    auto derived = session.Run(*prog, ropts, &stats);
    std::lock_guard<std::mutex> lock(io_mu_);
    if (!derived.ok()) {
      Fail(derived.status());
      return;
    }
    if (!output_rel.empty()) {
      auto rel = u_.FindRel(output_rel);
      if (!rel.ok()) {
        Fail(rel.status());
        return;
      }
      std::printf("%s", derived->Project({*rel}).ToString(u_).c_str());
    } else {
      std::printf("%s", derived->ToString(u_).c_str());
    }
    std::fflush(stdout);
    std::fprintf(stderr, "-- %zu facts derived in %.3f ms (epoch %llu)\n",
                 stats.derived_facts, stats.run_seconds * 1e3,
                 static_cast<unsigned long long>(session.epoch()));
    if (stats_on_) {
      std::fprintf(stderr,
                   "-- scans: %zu index, %zu prefix, %zu suffix, %zu full, "
                   "%zu delta (%zu delta-indexed); %zu base columns indexed "
                   "over %zu segments\n",
                   stats.index_probes, stats.prefix_probes,
                   stats.suffix_probes, stats.full_scans, stats.delta_scans,
                   stats.delta_index_probes, db_.NumIndexedColumns(),
                   session.NumSegments());
    }
  }

  seqdl::Universe& u_;
  seqdl::Database db_;
  bool stats_on_;
  double recompile_drift_;

  std::mutex io_mu_;

  std::mutex programs_mu_;
  std::map<std::string, CachedProgram> programs_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_, drained_cv_;
  std::deque<std::pair<std::string, std::string>> queue_;
  size_t in_flight_ = 0;
  bool done_ = false;
  std::vector<std::thread> workers_;
};

int CmdServe(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: seqdl serve <instance> [--stats] [--threads=N] "
                 "[--recompile-drift=X] [--auto-compact=N]\n");
    return 2;
  }
  bool stats_on = HasFlag(args, "--stats");
  size_t threads = 1;
  if (std::string v = FlagValue(args, "--threads="); !v.empty()) {
    threads = std::strtoull(v.c_str(), nullptr, 10);
    if (threads == 0) threads = 1;
  }
  double recompile_drift = 0.25;
  if (std::string v = FlagValue(args, "--recompile-drift="); !v.empty()) {
    recompile_drift = std::strtod(v.c_str(), nullptr);
  }
  seqdl::Database::OpenOptions dbopts;
  dbopts.auto_compact_segments = 8;
  if (std::string v = FlagValue(args, "--auto-compact="); !v.empty()) {
    dbopts.auto_compact_segments = std::strtoull(v.c_str(), nullptr, 10);
  }

  seqdl::Universe u;
  auto instance_text = ReadFile(args[0]);
  if (!instance_text.ok()) return Fail(instance_text.status());
  auto instance = seqdl::ParseInstance(u, *instance_text);
  if (!instance.ok()) return Fail(instance.status());
  size_t edb_facts = instance->NumFacts();
  auto db = seqdl::Database::Open(u, std::move(*instance), dbopts);
  if (!db.ok()) return Fail(db.status());
  std::fprintf(stderr,
               "-- serving %zu EDB facts from %s (%zu worker thread%s); "
               "'run <program> [REL]', 'append <instance>', 'epoch', "
               "'compact', 'stats', or 'quit'\n",
               edb_facts, args[0].c_str(), threads, threads == 1 ? "" : "s");

  ServeLoop loop(u, std::move(*db), stats_on, recompile_drift);
  if (threads > 1) loop.StartWorkers(threads);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string cmd;
    words >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "stats") {
      loop.Stats();
      continue;
    }
    if (cmd == "epoch") {
      loop.Epoch();
      continue;
    }
    if (cmd == "compact") {
      loop.Compact();
      continue;
    }
    if (cmd == "append") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::fprintf(stderr, "usage: append <instance>\n");
        continue;
      }
      loop.Append(path);
      continue;
    }
    if (cmd != "run") {
      std::fprintf(stderr, "error: unknown serve command '%s'\n", cmd.c_str());
      continue;
    }
    std::string path, output_rel;
    words >> path >> output_rel;
    if (path.empty()) {
      std::fprintf(stderr, "usage: run <program> [REL]\n");
      continue;
    }
    loop.Run(std::move(path), std::move(output_rel));
  }
  loop.Drain();
  loop.StopWorkers();
  return 0;
}

int CmdCheck(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl check <program>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  seqdl::Status valid = seqdl::ValidateProgram(u, *program);
  std::printf("rules:      %zu in %zu strata\n", program->NumRules(),
              program->strata.size());
  std::printf("validation: %s\n", valid.ToString().c_str());
  seqdl::FeatureSet f = seqdl::DetectFeatures(*program);
  std::printf("features:   %s\n", f.ToString().c_str());
  for (const seqdl::FragmentClass& cls : seqdl::CoreEquivalenceClasses()) {
    if (seqdl::Equivalent(f, cls.Rep())) {
      std::printf("class:      %s (Figure 1)\n", cls.Label().c_str());
      break;
    }
  }
  return valid.ok() ? 0 : 1;
}

int CmdTransform(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl transform <program> "
                         "--eliminate=packing|equations|arity|all\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  std::string what = FlagValue(args, "--eliminate=");
  if (what.empty()) what = "all";

  seqdl::Program current = *program;
  auto apply = [&](const std::string& name) -> seqdl::Status {
    if (name == "packing") {
      auto q = seqdl::EliminatePackingNonrecursive(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "equations") {
      auto q = seqdl::EliminateEquations(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "arity") {
      auto q = seqdl::EliminateArity(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else {
      return seqdl::Status::InvalidArgument("unknown elimination " + name);
    }
    return seqdl::Status::OK();
  };

  if (what == "all") {
    seqdl::FeatureSet f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kPacking)) {
      seqdl::Status s = apply("packing");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kEquations)) {
      seqdl::Status s = apply("equations");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kArity)) {
      seqdl::Status s = apply("arity");
      if (!s.ok()) return Fail(s);
    }
  } else {
    seqdl::Status s = apply(what);
    if (!s.ok()) return Fail(s);
  }
  std::printf("%s", seqdl::FormatProgram(u, current).c_str());
  std::fprintf(stderr, "-- %zu rules, features %s\n", current.NumRules(),
               seqdl::DetectFeatures(current).ToString().c_str());
  return 0;
}

int CmdNormalForm(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl normalform <program>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  seqdl::Program staged = *program;
  bool has_equations = false;
  for (const seqdl::Rule* r : staged.AllRules()) {
    for (const seqdl::Literal& l : r->body) {
      has_equations |= l.is_equation();
    }
  }
  if (has_equations) {
    auto q = seqdl::EliminateEquations(u, staged);
    if (!q.ok()) return Fail(q.status());
    staged = std::move(*q);
  }
  auto normal = seqdl::ToNormalForm(u, staged);
  if (!normal.ok()) return Fail(normal.status());
  std::printf("%s", seqdl::FormatProgram(u, *normal).c_str());
  return 0;
}

int CmdAlgebra(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: seqdl algebra <program> <REL>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  auto rel = u.FindRel(args[1]);
  if (!rel.ok()) return Fail(rel.status());
  auto alg = seqdl::DatalogToAlgebra(u, *program, *rel);
  if (!alg.ok()) return Fail(alg.status());
  std::printf("%s\n", seqdl::FormatAlgebra(u, **alg).c_str());
  return 0;
}

int CmdHasse(const std::vector<std::string>& args) {
  seqdl::HasseDiagram d = seqdl::BuildHasseDiagram();
  if (HasFlag(args, "--dot")) {
    std::printf("%s", seqdl::HasseToDot(d).c_str());
  } else {
    std::printf("%s", seqdl::RenderHasse(d).c_str());
  }
  return 0;
}

int CmdRegex(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl regex <pattern>\n");
    return 2;
  }
  seqdl::Universe u;
  auto q = seqdl::RegexToDatalog(u, args[0]);
  if (!q.ok()) return Fail(q.status());
  std::printf("%% strings go into %s; matches appear in %s\n",
              u.RelName(q->input).c_str(), u.RelName(q->output).c_str());
  std::printf("%s", seqdl::FormatProgram(u, q->program).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: seqdl <run|serve|check|transform|normalform|algebra|"
                 "hasse|regex> ...\n");
    return 2;
  }
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "run") return CmdRun(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "check") return CmdCheck(args);
  if (cmd == "transform") return CmdTransform(args);
  if (cmd == "normalform") return CmdNormalForm(args);
  if (cmd == "algebra") return CmdAlgebra(args);
  if (cmd == "hasse") return CmdHasse(args);
  if (cmd == "regex") return CmdRegex(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
