// seqdl — command line front end for the Sequence Datalog library.
//
//   seqdl run <program.sdl> [<instance.sdl>] [--data-dir=DIR]
//              [--sync=always|interval|never] [--output=REL] [--naive]
//              [--no-index] [--stats] [--explain] [--legacy-planner]
//       Evaluate a program on an instance and print the derived facts
//       (all IDB relations, or just --output). The planner ranks access
//       paths by selectivity statistics measured over the instance;
//       --legacy-planner forces the first-ground-argument heuristic.
//       --explain prints the chosen plan (key column and scan order per
//       rule step); --stats reports the engine's extended counters
//       (per-stratum rounds, a per-index-family probe table, compile/run
//       wall times). With --data-dir the program runs against a durable
//       database (docs/storage.md): an initialized directory is
//       recovered without re-ingesting anything (the instance argument
//       becomes optional), a fresh one is seeded from the instance.
//
//   seqdl serve [<instance.sdl>] [--data-dir=DIR]
//               [--sync=always|interval|never] [--stats] [--threads=N]
//               [--recompile-drift=X] [--auto-compact=N] [--listen=PORT]
//               [--admission=off|budget|strict]
//       Load the instance into a versioned Database once, then serve it.
//       With --data-dir the database is durable: commits are logged to a
//       WAL before they publish (--sync picks the fsync policy), and a
//       restart pointed at the same directory recovers the exact
//       pre-restart EDB without re-ingesting any source file (the
//       instance argument is then optional and ignored if given).
//       With --listen=PORT the database is served over TCP (the framed
//       wire protocol of src/server/protocol.h; PORT 0 picks a free
//       ephemeral port): the server prints "listening on HOST:PORT" to
//       stdout and runs until a client sends `shutdown`. --threads=N
//       sizes the worker pool (one connection served per worker at a
//       time). Use `seqdl query --connect=HOST:PORT ...` or the C++
//       client (src/server/client.h) to talk to it; see docs/server.md.
//
//       Without --listen, answer commands from stdin until EOF, one per
//       line:
//
//           run <program.sdl> [REL]    evaluate against the current-epoch
//                                      EDB, print derived facts (or REL)
//           append <instance.sdl>      ingest more facts: publishes a new
//                                      immutable segment and bumps the
//                                      epoch; in-flight runs keep their
//                                      pinned snapshot
//           retract <instance.sdl>     retract facts: visible matches are
//                                      shadowed by a tombstone segment at
//                                      a new epoch; maintained views are
//                                      DRed-refreshed (delete/re-derive)
//           epoch                      print epoch / segment / fact counts
//           compact                    fold all segments into one store
//                                      (tombstones fold away entirely)
//           stats                      print the database's measured
//                                      selectivity statistics (live
//                                      segments plus everything runs
//                                      derived, epoch-aged)
//           quit                       exit
//
//       Programs are compiled once per source text and cached (shared
//       with TCP clients sending the same text); when a later append
//       moves the database's measured statistics past --recompile-drift
//       (default 0.25, relative tuple-count change), the cached plan is
//       recompiled against the fresh statistics. --threads=N answers
//       `run` commands on a worker pool of N threads (snapshot runs are
//       safe to race with each other and with appends); --auto-compact=N
//       folds the segment stack whenever it grows past N segments
//       (default 8, 0 = manual `compact` only). Malformed `append` files
//       are reported as structured "<file>:line:col: ..." errors.
//       --admission=off|budget|strict (default off) screens every
//       program through admission analysis before running it:
//       potentially non-terminating programs (SD301-SD303) are capped
//       (budget) or refused (strict) — see docs/analysis.md.
//
//   seqdl coordinate --shards=HOST:PORT[,HOST:PORT...] [--listen=PORT]
//               [--threads=N] [--broadcast=REL,...] [--pin=REL=SHARD,...]
//               [--connect-timeout-ms=N] [--io-timeout-ms=N]
//               [--cache-entries=N] [--no-forward-shutdown]
//       Serve a cluster of `seqdl serve --listen` shard servers behind
//       one endpoint speaking the same wire protocol (docs/cluster.md).
//       Appends/retractions are hash-partitioned across the shards by
//       each fact's first value; queries scatter to every shard in
//       parallel and the answers are merged (programs the shard-locality
//       analysis cannot prove distribution-transparent are finished on
//       the coordinator instead — slower, still exact). --broadcast
//       replicates small relations on every shard; --pin routes a
//       relation's facts to one shard. A client's `shutdown` drains the
//       shards too unless --no-forward-shutdown.
//
//   seqdl query --connect=HOST:PORT <command> [args]
//       Blocking client for a `seqdl serve --listen` server. Commands:
//           run <program.sdl> [REL]     ship the program text to the
//                                       server, print the derived facts
//           compile <program.sdl>       warm the server's program cache
//           append <instance.sdl>       ship facts; bumps the epoch
//           retract <instance.sdl>      retract facts; bumps the epoch
//           epoch | compact | stats     as in serve's stdin mode
//           shutdown                    drain and stop the server
//       [--stats] prints the run's engine counters to stderr.
//
//   seqdl check <program.sdl> [--json] [--output=REL]
//               [--admission=off|budget|strict] [--werror]
//       The full program analyzer: parse and validation errors (SD0xx),
//       the lint suite (SD1xx: duplicate rules/literals, singleton
//       variables, never-fires, cross-product joins; --output=REL adds
//       dead-rule and unused-relation analysis), and admission
//       classification (SD3xx: is the program potentially
//       non-terminating, and what happens to it under the given
//       policy). Reports the features used and the Figure 1
//       expressiveness class; --json emits one machine-readable
//       document; --werror upgrades warnings to errors. Exit code 0 =
//       clean, 1 = errors, 2 = usage/IO, 4 = warnings only. See
//       docs/analysis.md for the diagnostic catalog.
//
//   seqdl transform <program.sdl> --eliminate=packing|equations|arity|all
//       Apply the paper's redundancy transformations and print the result.
//
//   seqdl normalform <program.sdl>
//       Print the Lemma 7.2 normal form (nonrecursive, equation-free
//       programs; equations are eliminated first if present).
//
//   seqdl algebra <program.sdl> <REL>
//       Print the Theorem 7.1 sequence relational algebra expression for
//       an IDB relation of a nonrecursive program.
//
//   seqdl hasse [--dot]
//       Print the Figure 1 Hasse diagram.
//
//   seqdl regex <pattern>
//       Compile a regular expression to a Sequence Datalog matcher and
//       print the program.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/analysis/admission.h"
#include "src/analysis/diagnostics.h"
#include "src/analysis/features.h"
#include "src/analysis/lint.h"
#include "src/analysis/safety.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/frontend.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/fragments/fragments.h"
#include "src/queries/regex.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/normal_form.h"
#include "src/transform/packing_elim.h"

namespace {

int Fail(const seqdl::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Reports a failure through the structured diagnostics renderer when the
// status carries a source location ("parse error at L:C: ...", or a
// service error already annotated "<name>:L:C: ..."), so every front end
// prints the same "name:L:C: error: msg [SDxxx]" line as `seqdl check`.
// Falls back to the plain "error:" line for statuses without a location.
int FailDiag(const std::string& source_name, const seqdl::Status& status) {
  const std::string& msg = status.message();
  seqdl::SourceSpan span = seqdl::SpanFromStatusMessage(msg);
  if (status.code() != seqdl::StatusCode::kInvalidArgument || !span.valid()) {
    return Fail(status);
  }
  // Strip everything through the "L:C: " location to recover the bare
  // message the diagnostic re-renders with its own span prefix.
  std::string needle =
      std::to_string(span.line) + ":" + std::to_string(span.col) + ":";
  size_t pos = msg.find(needle);
  std::string bare =
      pos == std::string::npos ? msg : msg.substr(pos + needle.size());
  while (!bare.empty() && bare.front() == ' ') bare.erase(bare.begin());
  const char* code =
      msg.rfind("lex error at ", 0) == 0 ? "SD001" : "SD002";
  seqdl::Diagnostic d = seqdl::Diagnostic::Error(code, span, bare);
  std::fprintf(stderr, "%s\n", d.ToString(source_name).c_str());
  return 1;
}

seqdl::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return seqdl::Status::NotFound("cannot open " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

bool HasFlag(const std::vector<std::string>& args, const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) return true;
  }
  return false;
}

std::string FlagValue(const std::vector<std::string>& args,
                      const std::string& prefix) {
  for (const std::string& a : args) {
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  }
  return "";
}

/// The positional (non `--flag`) arguments, in order.
std::vector<std::string> PositionalArgs(const std::vector<std::string>& args) {
  std::vector<std::string> out;
  for (const std::string& a : args) {
    if (a.rfind("--", 0) != 0) out.push_back(a);
  }
  return out;
}

/// Parses --sync= values (always | interval | never).
seqdl::Result<seqdl::storage::SyncMode> ParseSyncMode(const std::string& v) {
  if (v == "always") return seqdl::storage::SyncMode::kAlways;
  if (v == "interval") return seqdl::storage::SyncMode::kInterval;
  if (v == "never") return seqdl::storage::SyncMode::kNever;
  return seqdl::Status::InvalidArgument(
      "--sync= must be always, interval or never (got '" + v + "')");
}

/// Fills OpenOptions durability fields from --data-dir= / --sync=.
/// Returns false (after printing the error) on a malformed flag.
bool ApplyStorageFlags(const std::vector<std::string>& args,
                       seqdl::Database::OpenOptions* dbopts) {
  dbopts->data_dir = FlagValue(args, "--data-dir=");
  if (std::string v = FlagValue(args, "--sync="); !v.empty()) {
    auto mode = ParseSyncMode(v);
    if (!mode.ok()) {
      Fail(mode.status());
      return false;
    }
    dbopts->sync_mode = *mode;
  }
  return true;
}

/// One extra status line when the database is durable (generation 0
/// means in-memory: print nothing, keeping legacy output stable).
void PrintStorageLine(FILE* f, const seqdl::protocol::DbInfo& info) {
  if (info.manifest_generation == 0) return;
  std::fprintf(f,
               "storage: generation %llu, %llu bytes on disk, "
               "%llu wal bytes\n",
               static_cast<unsigned long long>(info.manifest_generation),
               static_cast<unsigned long long>(info.on_disk_bytes),
               static_cast<unsigned long long>(info.wal_bytes));
}

/// Renders a storage-layer failure (kIoError with an SD4xx code) like
/// an analyzer finding; other statuses fall back to Fail().
int FailStorage(const seqdl::Status& status) {
  seqdl::Diagnostic d = seqdl::DiagnosticFromStatus(status);
  std::fprintf(stderr, "%s\n", d.ToString().c_str());
  return 1;
}

// The per-index-family scan counters as one aligned table.
void PrintScanTable(const seqdl::EvalStats& stats) {
  struct Row {
    const char* name;
    size_t count;
  };
  const Row rows[] = {
      {"whole-value probes", stats.index_probes},
      {"first-value probes", stats.prefix_probes},
      {"last-value probes", stats.suffix_probes},
      {"full scans", stats.full_scans},
      {"delta scans", stats.delta_scans},
      {"delta-indexed", stats.delta_index_probes},
  };
  std::fprintf(stderr, "-- %-20s %12s\n", "scan family", "count");
  for (const Row& row : rows) {
    std::fprintf(stderr, "-- %-20s %12zu\n", row.name, row.count);
  }
}

// `seqdl run --data-dir=DIR`: evaluate against a durable database —
// recovering an initialized directory (the second positional instance,
// if any, is ignored with a note), or seeding a fresh one from the
// instance file first.
int RunDurable(const std::vector<std::string>& args,
               const std::vector<std::string>& pos, seqdl::Universe& u,
               seqdl::Program program) {
  seqdl::Database::OpenOptions dbopts;
  if (!ApplyStorageFlags(args, &dbopts)) return 2;
  bool recovering = seqdl::Database::DataDirInitialized(dbopts.data_dir);
  seqdl::Instance seed;
  if (recovering) {
    if (pos.size() > 1) {
      std::fprintf(stderr,
                   "-- note: %s is already initialized; ignoring %s "
                   "(the recovered EDB is authoritative)\n",
                   dbopts.data_dir.c_str(), pos[1].c_str());
    }
  } else {
    if (pos.size() < 2) {
      std::fprintf(stderr,
                   "error: %s is not initialized; pass an instance file "
                   "to seed it\n",
                   dbopts.data_dir.c_str());
      return 2;
    }
    auto instance_text = ReadFile(pos[1]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    auto instance = seqdl::ParseInstance(u, *instance_text);
    if (!instance.ok()) return FailDiag(pos[1], instance.status());
    seed = std::move(*instance);
  }
  auto db = seqdl::Database::Open(u, std::move(seed), dbopts);
  if (!db.ok()) return FailStorage(db.status());

  // Database::Compile feeds the recovered stack's measured statistics
  // to the planner — the durable twin of ComputeInstanceStats below.
  auto prepared = db->Compile(std::move(program));
  if (!prepared.ok()) return Fail(prepared.status());
  if (HasFlag(args, "--explain")) {
    std::fprintf(stderr, "%s", prepared->ExplainPlan().c_str());
  }
  seqdl::RunOptions opts;
  opts.seminaive = !HasFlag(args, "--naive");
  opts.use_index = !HasFlag(args, "--no-index");
  seqdl::EvalStats stats;
  seqdl::Session session = db->Snapshot();
  auto out = session.Run(*prepared, opts, &stats);
  if (!out.ok()) return Fail(out.status());

  std::string output_rel = FlagValue(args, "--output=");
  if (!output_rel.empty()) {
    auto rel = u.FindRel(output_rel);
    if (!rel.ok()) return Fail(rel.status());
    std::printf("%s", out->Project({*rel}).ToString(u).c_str());
  } else {
    std::set<seqdl::RelId> idb = seqdl::IdbRels(prepared->program());
    std::printf("%s",
                out->Project({idb.begin(), idb.end()}).ToString(u).c_str());
  }
  seqdl::storage::StorageInfo sinfo = db->storage_info();
  std::fprintf(stderr,
               "-- %zu facts derived in %zu rounds (%zu firings) at epoch "
               "%llu; storage generation %llu, %llu bytes on disk\n",
               stats.derived_facts, stats.rounds, stats.rule_firings,
               static_cast<unsigned long long>(session.epoch()),
               static_cast<unsigned long long>(sinfo.manifest_generation),
               static_cast<unsigned long long>(sinfo.on_disk_bytes));
  if (HasFlag(args, "--stats")) {
    PrintScanTable(stats);
    std::fprintf(stderr, "-- compile %.3f ms, run %.3f ms\n",
                 stats.compile_seconds * 1e3, stats.run_seconds * 1e3);
  }
  return 0;
}

int CmdRun(const std::vector<std::string>& args) {
  std::vector<std::string> pos = PositionalArgs(args);
  std::string data_dir = FlagValue(args, "--data-dir=");
  if (pos.empty() || (pos.size() < 2 && data_dir.empty())) {
    std::fprintf(stderr,
                 "usage: seqdl run <program> [<instance>] [--data-dir=DIR] "
                 "[--sync=always|interval|never] [--output=REL] [--naive] "
                 "[--no-index] [--stats] [--explain] [--legacy-planner]\n"
                 "(the instance is required without --data-dir; with one, "
                 "it seeds a fresh data directory)\n");
    return 2;
  }
  seqdl::Universe u;
  auto program_text = ReadFile(pos[0]);
  if (!program_text.ok()) return Fail(program_text.status());
  seqdl::DiagnosticList parse_diags;
  auto program = seqdl::ParseProgram(u, *program_text, &parse_diags);
  if (!program.ok()) {
    // The same structured rendering as `seqdl check`: file:line:col,
    // severity, stable SD code.
    std::fprintf(stderr, "%s", parse_diags.RenderText(pos[0]).c_str());
    return 1;
  }

  if (!data_dir.empty()) return RunDurable(args, pos, u, std::move(*program));

  auto instance_text = ReadFile(pos[1]);
  if (!instance_text.ok()) return Fail(instance_text.status());
  auto instance = seqdl::ParseInstance(u, *instance_text);
  if (!instance.ok()) return FailDiag(pos[1], instance.status());

  // Measure the instance so the planner can rank access paths by
  // selectivity; --legacy-planner keeps the first-ground-argument
  // heuristic (results are identical either way — only cost changes).
  seqdl::CompileOptions copts;
  seqdl::StoreStats selectivity;
  if (!HasFlag(args, "--legacy-planner")) {
    selectivity = seqdl::ComputeInstanceStats(u, *instance);
    copts.stats = &selectivity;
  }
  auto prepared = seqdl::Engine::Compile(u, std::move(*program), copts);
  if (!prepared.ok()) return Fail(prepared.status());
  if (HasFlag(args, "--explain")) {
    std::fprintf(stderr, "%s", prepared->ExplainPlan().c_str());
  }

  seqdl::RunOptions opts;
  opts.seminaive = !HasFlag(args, "--naive");
  opts.use_index = !HasFlag(args, "--no-index");
  seqdl::EvalStats stats;
  auto out = prepared->Run(*instance, opts, &stats);
  if (!out.ok()) return Fail(out.status());

  std::string output_rel = FlagValue(args, "--output=");
  if (!output_rel.empty()) {
    auto rel = u.FindRel(output_rel);
    if (!rel.ok()) return Fail(rel.status());
    std::printf("%s", out->Project({*rel}).ToString(u).c_str());
  } else {
    std::set<seqdl::RelId> idb = seqdl::IdbRels(prepared->program());
    std::printf("%s",
                out->Project({idb.begin(), idb.end()}).ToString(u).c_str());
  }
  std::fprintf(stderr, "-- %zu facts derived in %zu rounds (%zu firings)\n",
               stats.derived_facts, stats.rounds, stats.rule_firings);
  if (HasFlag(args, "--stats")) {
    PrintScanTable(stats);
    std::fprintf(stderr, "-- compile %.3f ms, run %.3f ms\n",
                 stats.compile_seconds * 1e3, stats.run_seconds * 1e3);
    for (size_t i = 0; i < stats.per_stratum.size(); ++i) {
      const seqdl::StratumStats& s = stats.per_stratum[i];
      std::fprintf(stderr,
                   "-- stratum %zu: %zu rounds, %zu firings, %zu facts\n",
                   i, s.rounds, s.rule_firings, s.derived_facts);
    }
  }
  return 0;
}

// Repeated-query serving loop over a DatabaseService (the same request
// handlers the TCP server dispatches to — the stdin loop is just another
// front end): the EDB is loaded once and then grows by `append`
// (epoch-bumping segment publishes); `run` commands execute against an
// epoch-pinned snapshot, on the calling thread or on a --threads=N
// worker pool. Compiled programs are cached by source text in the
// service and recompiled when the database's measured statistics drift
// past --recompile-drift since compile time.
class ServeLoop {
 public:
  ServeLoop(seqdl::DatabaseService& service, bool stats_on)
      : service_(service), stats_on_(stats_on) {}

  ~ServeLoop() { StopWorkers(); }

  void StartWorkers(size_t threads) {
    for (size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkers() {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      done_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  // `run <program> [REL]`: inline when there is no pool, else enqueued.
  void Run(std::string path, std::string output_rel) {
    if (workers_.empty()) {
      RunOne(path, output_rel);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_.emplace_back(std::move(path), std::move(output_rel));
    }
    queue_cv_.notify_one();
  }

  void Append(const std::string& path) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(text.status());
      return;
    }
    seqdl::protocol::AppendRequest req;
    req.facts = std::move(*text);
    // Naming the source turns a malformed fact into a structured
    // "<path>:line:col: ..." error instead of a bare parse error.
    req.source_name = path;
    auto reply = service_.Append(req);
    if (!reply.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      FailDiag(path, reply.status());
      return;
    }
    std::lock_guard<std::mutex> lock(io_mu_);
    std::fprintf(stderr,
                 "-- appended %s (%llu new facts): epoch %llu, %llu "
                 "segments, %llu facts total\n",
                 path.c_str(),
                 static_cast<unsigned long long>(reply->appended),
                 static_cast<unsigned long long>(reply->db.epoch),
                 static_cast<unsigned long long>(reply->db.segments),
                 static_cast<unsigned long long>(reply->db.facts));
  }

  void Retract(const std::string& path) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(text.status());
      return;
    }
    seqdl::protocol::RetractRequest req;
    req.facts = std::move(*text);
    req.source_name = path;
    auto reply = service_.Retract(req);
    if (!reply.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      FailDiag(path, reply.status());
      return;
    }
    std::lock_guard<std::mutex> lock(io_mu_);
    std::fprintf(stderr,
                 "-- retracted %s (%llu facts): epoch %llu, %llu "
                 "segments, %llu facts total\n",
                 path.c_str(),
                 static_cast<unsigned long long>(reply->retracted),
                 static_cast<unsigned long long>(reply->db.epoch),
                 static_cast<unsigned long long>(reply->db.segments),
                 static_cast<unsigned long long>(reply->db.facts));
  }

  void Epoch() {
    seqdl::protocol::DbInfo info = service_.Info();
    std::lock_guard<std::mutex> lock(io_mu_);
    std::printf("epoch %llu: %llu segments, %llu facts\n",
                static_cast<unsigned long long>(info.epoch),
                static_cast<unsigned long long>(info.segments),
                static_cast<unsigned long long>(info.facts));
    PrintStorageLine(stdout, info);
    std::fflush(stdout);
  }

  void Compact() {
    seqdl::Result<seqdl::protocol::CompactReply> reply = service_.Compact();
    std::lock_guard<std::mutex> lock(io_mu_);
    if (!reply.ok()) {
      // Disk-full / permission failures during the seal render with
      // their SD4xx code, like analyzer findings.
      FailStorage(reply.status());
      return;
    }
    std::fprintf(stderr, "-- %s: epoch %llu, %llu segments, %llu facts\n",
                 reply->folded ? "compacted" : "nothing to compact",
                 static_cast<unsigned long long>(reply->db.epoch),
                 static_cast<unsigned long long>(reply->db.segments),
                 static_cast<unsigned long long>(reply->db.facts));
    PrintStorageLine(stderr, reply->db);
  }

  void Stats() {
    // The planner's view: live-segment measurements merged with the
    // derived-fact statistics reported back by earlier runs — plus the
    // maintained-view cache's traffic.
    seqdl::protocol::StatsReply reply = service_.Stats();
    std::lock_guard<std::mutex> lock(io_mu_);
    std::printf("%s", reply.rendered.c_str());
    std::printf("cache: %llu hits, %llu misses, %llu evictions; "
                "%llu entries, %llu bytes\n",
                static_cast<unsigned long long>(reply.cache_hits),
                static_cast<unsigned long long>(reply.cache_misses),
                static_cast<unsigned long long>(reply.cache_evictions),
                static_cast<unsigned long long>(reply.cache_entries),
                static_cast<unsigned long long>(reply.cache_bytes));
    std::printf("views: %llu hits, %llu cold runs, %llu delta refreshes "
                "(%llu DRed, %llu strata recomputed)\n",
                static_cast<unsigned long long>(reply.view_hits),
                static_cast<unsigned long long>(reply.view_cold_runs),
                static_cast<unsigned long long>(reply.view_delta_refreshes),
                static_cast<unsigned long long>(reply.view_dred_refreshes),
                static_cast<unsigned long long>(reply.view_strata_recomputed));
    std::fflush(stdout);
  }

  // Waits until every queued `run` has finished (quit/EOF path).
  void Drain() {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drained_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

 private:
  void WorkerLoop() {
    while (true) {
      std::pair<std::string, std::string> job;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return done_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (done_) return;
          continue;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      RunOne(job.first, job.second);
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        --in_flight_;
      }
      drained_cv_.notify_all();
    }
  }

  // Reads the program, ships it through the service (text-keyed program
  // cache, drift-aware recompilation, epoch-pinned snapshot run), and
  // prints the rendered derived facts.
  void RunOne(const std::string& path, const std::string& output_rel) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::lock_guard<std::mutex> lock(io_mu_);
      Fail(text.status());
      return;
    }
    seqdl::protocol::RunRequest req;
    req.program = std::move(*text);
    req.source_name = path;
    req.output_rel = output_rel;
    // Feed each run's derived-fact statistics back into Database::Stats()
    // so later-compiled programs plan from the observed workload.
    req.collect_derived_stats = true;
    auto reply = service_.Run(req);
    std::lock_guard<std::mutex> lock(io_mu_);
    if (!reply.ok()) {
      FailDiag(path, reply.status());
      return;
    }
    std::printf("%s", reply->rendered.c_str());
    std::fflush(stdout);
    const seqdl::protocol::WireEvalStats& stats = reply->stats;
    std::fprintf(stderr, "-- %llu facts derived in %.3f ms (epoch %llu)\n",
                 static_cast<unsigned long long>(stats.derived_facts),
                 stats.run_seconds * 1e3,
                 static_cast<unsigned long long>(reply->epoch));
    if (stats_on_) {
      std::fprintf(stderr,
                   "-- scans: %llu index, %llu prefix, %llu suffix, %llu "
                   "full, %llu delta (%llu delta-indexed); %zu base columns "
                   "indexed over %llu segments\n",
                   static_cast<unsigned long long>(stats.index_probes),
                   static_cast<unsigned long long>(stats.prefix_probes),
                   static_cast<unsigned long long>(stats.suffix_probes),
                   static_cast<unsigned long long>(stats.full_scans),
                   static_cast<unsigned long long>(stats.delta_scans),
                   static_cast<unsigned long long>(stats.delta_index_probes),
                   service_.db().NumIndexedColumns(),
                   static_cast<unsigned long long>(reply->segments));
    }
  }

  seqdl::DatabaseService& service_;
  bool stats_on_;

  std::mutex io_mu_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_, drained_cv_;
  std::deque<std::pair<std::string, std::string>> queue_;
  size_t in_flight_ = 0;
  bool done_ = false;
  std::vector<std::thread> workers_;
};

int CmdServe(const std::vector<std::string>& args) {
  const char* usage =
      "usage: seqdl serve [<instance>] [--data-dir=DIR] "
      "[--sync=always|interval|never] [--stats] [--threads=N] "
      "[--recompile-drift=X] [--auto-compact=N] [--cache-bytes=N] "
      "[--listen=PORT] [--admission=off|budget|strict]\n"
      "(the instance is required without --data-dir, and when "
      "initializing a fresh data directory it seeds the EDB)\n";
  std::vector<std::string> pos = PositionalArgs(args);
  std::string data_dir = FlagValue(args, "--data-dir=");
  if (pos.empty() && data_dir.empty()) {
    std::fprintf(stderr, "%s", usage);
    return 2;
  }
  bool stats_on = HasFlag(args, "--stats");
  bool listen_mode = false;
  uint16_t listen_port = 0;
  if (std::string v = FlagValue(args, "--listen="); !v.empty()) {
    listen_mode = true;
    listen_port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
  }
  size_t threads = listen_mode ? 4 : 1;
  if (std::string v = FlagValue(args, "--threads="); !v.empty()) {
    threads = std::strtoull(v.c_str(), nullptr, 10);
    if (threads == 0) threads = 1;
  }
  double recompile_drift = 0.25;
  if (std::string v = FlagValue(args, "--recompile-drift="); !v.empty()) {
    recompile_drift = std::strtod(v.c_str(), nullptr);
  }
  seqdl::Database::OpenOptions dbopts;
  dbopts.auto_compact_segments = 8;
  if (std::string v = FlagValue(args, "--auto-compact="); !v.empty()) {
    dbopts.auto_compact_segments = std::strtoull(v.c_str(), nullptr, 10);
  }
  if (!ApplyStorageFlags(args, &dbopts)) return 2;

  seqdl::Universe u;
  // With --data-dir on an initialized directory the recovered EDB is
  // authoritative: a restart serves the pre-restart facts without
  // re-ingesting any source file, and a supplied instance is ignored
  // (with a note) rather than merged.
  bool recovering =
      !data_dir.empty() && seqdl::Database::DataDirInitialized(data_dir);
  seqdl::Instance seed;
  if (recovering) {
    if (!pos.empty()) {
      std::fprintf(stderr,
                   "-- note: %s is already initialized; ignoring %s "
                   "(the recovered EDB is authoritative)\n",
                   data_dir.c_str(), pos[0].c_str());
    }
  } else if (!pos.empty()) {
    auto instance_text = ReadFile(pos[0]);
    if (!instance_text.ok()) return Fail(instance_text.status());
    auto instance = seqdl::ParseInstance(u, *instance_text);
    if (!instance.ok()) return Fail(instance.status());
    seed = std::move(*instance);
  }
  auto db = seqdl::Database::Open(u, std::move(seed), dbopts);
  if (!db.ok()) return FailStorage(db.status());
  size_t edb_facts = db->NumFacts();
  const std::string source_desc = recovering || pos.empty()
                                      ? data_dir
                                      : pos[0];

  static std::mutex log_mu;
  seqdl::ServiceOptions sopts;
  sopts.recompile_drift = recompile_drift;
  // Byte budget for the maintained-view/result cache (rendered output
  // plus materialized IDBs); LRU entries are evicted past it.
  if (std::string v = FlagValue(args, "--cache-bytes="); !v.empty()) {
    sopts.cache_bytes = std::strtoull(v.c_str(), nullptr, 10);
  }
  // Admission control for untrusted programs (docs/analysis.md): off
  // runs everything (trusted clients, the default), budget caps runs of
  // potentially non-terminating programs, strict refuses them.
  if (std::string v = FlagValue(args, "--admission="); !v.empty()) {
    auto policy = seqdl::ParseAdmissionPolicy(v);
    if (!policy.ok()) {
      Fail(policy.status());
      return 2;
    }
    sopts.admission = *policy;
  }
  sopts.log = [](const std::string& msg) {
    std::lock_guard<std::mutex> lock(log_mu);
    std::fprintf(stderr, "-- %s\n", msg.c_str());
  };
  seqdl::DatabaseService service(u, std::move(*db), sopts);

  if (listen_mode) {
    if (stats_on) {
      std::fprintf(stderr,
                   "-- note: --stats has no effect with --listen; per-run "
                   "counters travel in each reply (seqdl query ... run "
                   "--stats)\n");
    }
    seqdl::ServerOptions server_opts;
    server_opts.port = listen_port;
    server_opts.threads = threads;
    auto server = seqdl::Server::Start(service, server_opts);
    if (!server.ok()) return Fail(server.status());
    // The CI integration step and scripts parse this line; keep stdout.
    std::printf("listening on %s:%u\n", (*server)->host().c_str(),
                (*server)->port());
    std::fflush(stdout);
    std::fprintf(stderr,
                 "-- serving %zu EDB facts from %s over TCP "
                 "(%zu worker thread%s); stop with "
                 "'seqdl query --connect=%s:%u shutdown'\n",
                 edb_facts, source_desc.c_str(), threads,
                 threads == 1 ? "" : "s", (*server)->host().c_str(),
                 (*server)->port());
    (*server)->Wait();
    // The final epoch is now immutable: reject any append that lost the
    // race against shutdown.
    service.db().Close();
    std::fprintf(stderr,
                 "-- server drained: %llu connections, %llu requests\n",
                 static_cast<unsigned long long>(
                     (*server)->connections_accepted()),
                 static_cast<unsigned long long>(
                     (*server)->requests_served()));
    return 0;
  }

  std::fprintf(stderr,
               "-- serving %zu EDB facts from %s (%zu worker thread%s); "
               "'run <program> [REL]', 'append <instance>', "
               "'retract <instance>', 'epoch', 'compact', 'stats', or "
               "'quit'\n",
               edb_facts, source_desc.c_str(), threads, threads == 1 ? "" : "s");

  ServeLoop loop(service, stats_on);
  if (threads > 1) loop.StartWorkers(threads);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string cmd;
    words >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "stats") {
      loop.Stats();
      continue;
    }
    if (cmd == "epoch") {
      loop.Epoch();
      continue;
    }
    if (cmd == "compact") {
      loop.Compact();
      continue;
    }
    if (cmd == "append") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::fprintf(stderr, "usage: append <instance>\n");
        continue;
      }
      loop.Append(path);
      continue;
    }
    if (cmd == "retract") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::fprintf(stderr, "usage: retract <instance>\n");
        continue;
      }
      loop.Retract(path);
      continue;
    }
    if (cmd != "run") {
      std::fprintf(stderr, "error: unknown serve command '%s'\n", cmd.c_str());
      continue;
    }
    std::string path, output_rel;
    words >> path >> output_rel;
    if (path.empty()) {
      std::fprintf(stderr, "usage: run <program> [REL]\n");
      continue;
    }
    loop.Run(std::move(path), std::move(output_rel));
  }
  loop.Drain();
  loop.StopWorkers();
  return 0;
}

// Serves a shard cluster: lazily connects to the listed `seqdl serve
// --listen` shard servers and exposes the standard wire protocol, so
// `seqdl query --connect=` works against a cluster exactly as against a
// single server. See docs/cluster.md.
int CmdCoordinate(const std::vector<std::string>& args) {
  const char* usage =
      "usage: seqdl coordinate --shards=HOST:PORT[,HOST:PORT...] "
      "[--listen=PORT] [--threads=N] [--broadcast=REL[,REL...]] "
      "[--pin=REL=SHARD[,REL=SHARD...]] [--connect-timeout-ms=N] "
      "[--io-timeout-ms=N] [--cache-entries=N] [--no-forward-shutdown]\n";
  std::string shards_spec = FlagValue(args, "--shards=");
  if (shards_spec.empty()) {
    std::fprintf(stderr, "%s", usage);
    return 2;
  }
  auto shards = seqdl::ParseShardList(shards_spec);
  if (!shards.ok()) return Fail(shards.status());

  seqdl::CoordinatorOptions copts;
  if (std::string v = FlagValue(args, "--broadcast="); !v.empty()) {
    std::istringstream rels(v);
    std::string rel;
    while (std::getline(rels, rel, ',')) {
      if (!rel.empty()) copts.partition.broadcast.insert(rel);
    }
  }
  if (std::string v = FlagValue(args, "--pin="); !v.empty()) {
    std::istringstream pins(v);
    std::string pin;
    while (std::getline(pins, pin, ',')) {
      size_t eq = pin.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == pin.size()) {
        return Fail(seqdl::Status::InvalidArgument(
            "bad --pin entry '" + pin + "': expected REL=SHARD"));
      }
      copts.partition.pinned[pin.substr(0, eq)] = static_cast<uint32_t>(
          std::strtoul(pin.c_str() + eq + 1, nullptr, 10));
    }
  }
  if (std::string v = FlagValue(args, "--connect-timeout-ms="); !v.empty()) {
    copts.connect_timeout_ms =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  }
  if (std::string v = FlagValue(args, "--io-timeout-ms="); !v.empty()) {
    copts.io_timeout_ms =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  }
  if (std::string v = FlagValue(args, "--cache-entries="); !v.empty()) {
    copts.result_cache_entries = std::strtoull(v.c_str(), nullptr, 10);
  }
  uint16_t listen_port = 0;
  if (std::string v = FlagValue(args, "--listen="); !v.empty()) {
    listen_port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
  }
  size_t threads = 4;
  if (std::string v = FlagValue(args, "--threads="); !v.empty()) {
    threads = std::strtoull(v.c_str(), nullptr, 10);
    if (threads == 0) threads = 1;
  }

  seqdl::Universe u;
  size_t num_shards = shards->size();
  seqdl::Coordinator coordinator(u, std::move(*shards), copts);
  seqdl::CoordinatorHandler handler(
      coordinator, !HasFlag(args, "--no-forward-shutdown"));
  seqdl::ServerOptions server_opts;
  server_opts.port = listen_port;
  server_opts.threads = threads;
  auto server = seqdl::Server::Start(handler, server_opts);
  if (!server.ok()) return Fail(server.status());
  // Scripts parse this line, matching `seqdl serve --listen`'s contract.
  std::printf("listening on %s:%u\n", (*server)->host().c_str(),
              (*server)->port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "-- coordinating %zu shard%s (%s), %zu worker thread%s; "
               "stop with 'seqdl query --connect=%s:%u shutdown'\n",
               num_shards, num_shards == 1 ? "" : "s", shards_spec.c_str(),
               threads, threads == 1 ? "" : "s", (*server)->host().c_str(),
               (*server)->port());
  (*server)->Wait();
  std::fprintf(stderr,
               "-- server drained: %llu connections, %llu requests\n",
               static_cast<unsigned long long>(
                   (*server)->connections_accepted()),
               static_cast<unsigned long long>(
                   (*server)->requests_served()));
  return 0;
}

// Client for a `seqdl serve --listen` server: ships program/fact texts
// over the wire protocol and prints the replies.
int CmdQuery(const std::vector<std::string>& args) {
  const char* usage =
      "usage: seqdl query --connect=HOST:PORT "
      "<run <program> [REL] | compile <program> | append <instance> | "
      "retract <instance> | epoch | compact | stats | shutdown> "
      "[--stats]\n";
  std::string endpoint = FlagValue(args, "--connect=");
  size_t colon = endpoint.rfind(':');
  if (endpoint.empty() || colon == std::string::npos) {
    std::fprintf(stderr, "%s", usage);
    return 2;
  }
  std::string host = endpoint.substr(0, colon);
  uint16_t port = static_cast<uint16_t>(
      std::strtoul(endpoint.c_str() + colon + 1, nullptr, 10));

  // The first non-flag argument is the command; the rest are operands.
  std::vector<std::string> words;
  for (const std::string& a : args) {
    if (a.rfind("--", 0) != 0) words.push_back(a);
  }
  if (words.empty()) {
    std::fprintf(stderr, "%s", usage);
    return 2;
  }
  const std::string& cmd = words[0];

  auto client = seqdl::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  if (cmd == "run") {
    if (words.size() < 2) {
      std::fprintf(stderr, "usage: seqdl query --connect=... run "
                           "<program> [REL]\n");
      return 2;
    }
    auto text = ReadFile(words[1]);
    if (!text.ok()) return Fail(text.status());
    std::string output_rel = words.size() > 2 ? words[2] : "";
    auto reply = client->Run(*text, output_rel, words[1]);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s", reply->rendered.c_str());
    std::fflush(stdout);
    std::fprintf(stderr, "-- %llu facts derived in %.3f ms (epoch %llu)\n",
                 static_cast<unsigned long long>(
                     reply->stats.derived_facts),
                 reply->stats.run_seconds * 1e3,
                 static_cast<unsigned long long>(reply->epoch));
    if (HasFlag(args, "--stats")) {
      const seqdl::protocol::WireEvalStats& s = reply->stats;
      std::fprintf(stderr,
                   "-- scans: %llu index, %llu prefix, %llu suffix, "
                   "%llu full, %llu delta (%llu delta-indexed)\n",
                   static_cast<unsigned long long>(s.index_probes),
                   static_cast<unsigned long long>(s.prefix_probes),
                   static_cast<unsigned long long>(s.suffix_probes),
                   static_cast<unsigned long long>(s.full_scans),
                   static_cast<unsigned long long>(s.delta_scans),
                   static_cast<unsigned long long>(s.delta_index_probes));
    }
    return 0;
  }
  if (cmd == "compile") {
    if (words.size() < 2) {
      std::fprintf(stderr,
                   "usage: seqdl query --connect=... compile <program>\n");
      return 2;
    }
    auto text = ReadFile(words[1]);
    if (!text.ok()) return Fail(text.status());
    auto reply = client->Compile(*text, words[1]);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s: %llu rules in %llu strata (%s, compile %.3f ms)\n",
                words[1].c_str(),
                static_cast<unsigned long long>(reply->rules),
                static_cast<unsigned long long>(reply->strata),
                reply->cache_hit ? "cache hit" : "compiled",
                reply->compile_seconds * 1e3);
    if (!reply->features.empty()) {
      std::printf("features %s, class %s, admission: %s\n",
                  reply->features.c_str(), reply->fragment_class.c_str(),
                  seqdl::AdmissionVerdictToString(
                      static_cast<seqdl::AdmissionVerdict>(reply->admission)));
    }
    // The server's analyzer findings (lint SD1xx, admission SD3xx),
    // rendered like `seqdl check` renders its local ones.
    for (const seqdl::protocol::WireDiagnostic& w : reply->diagnostics) {
      seqdl::Diagnostic d;
      d.severity = static_cast<seqdl::Severity>(w.severity);
      d.code = w.code;
      d.span.line = static_cast<int>(w.line);
      d.span.col = static_cast<int>(w.col);
      d.span.end_line = static_cast<int>(w.end_line);
      d.span.end_col = static_cast<int>(w.end_col);
      d.message = w.message;
      d.notes = w.notes;
      std::fprintf(stderr, "%s\n", d.ToString(words[1]).c_str());
    }
    return 0;
  }
  if (cmd == "append") {
    if (words.size() < 2) {
      std::fprintf(stderr,
                   "usage: seqdl query --connect=... append <instance>\n");
      return 2;
    }
    auto text = ReadFile(words[1]);
    if (!text.ok()) return Fail(text.status());
    auto reply = client->Append(*text, words[1]);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("appended %llu facts: epoch %llu, %llu segments, "
                "%llu facts total\n",
                static_cast<unsigned long long>(reply->appended),
                static_cast<unsigned long long>(reply->db.epoch),
                static_cast<unsigned long long>(reply->db.segments),
                static_cast<unsigned long long>(reply->db.facts));
    return 0;
  }
  if (cmd == "retract") {
    if (words.size() < 2) {
      std::fprintf(stderr,
                   "usage: seqdl query --connect=... retract <instance>\n");
      return 2;
    }
    auto text = ReadFile(words[1]);
    if (!text.ok()) return Fail(text.status());
    auto reply = client->Retract(*text, words[1]);
    if (!reply.ok()) return Fail(reply.status());
    std::printf("retracted %llu facts: epoch %llu, %llu segments, "
                "%llu facts total\n",
                static_cast<unsigned long long>(reply->retracted),
                static_cast<unsigned long long>(reply->db.epoch),
                static_cast<unsigned long long>(reply->db.segments),
                static_cast<unsigned long long>(reply->db.facts));
    return 0;
  }
  if (cmd == "epoch") {
    auto reply = client->Epoch();
    if (!reply.ok()) return Fail(reply.status());
    std::printf("epoch %llu: %llu segments, %llu facts\n",
                static_cast<unsigned long long>(reply->epoch),
                static_cast<unsigned long long>(reply->segments),
                static_cast<unsigned long long>(reply->facts));
    PrintStorageLine(stdout, *reply);
    return 0;
  }
  if (cmd == "compact") {
    auto reply = client->Compact();
    if (!reply.ok()) return FailStorage(reply.status());
    std::printf("%s: epoch %llu, %llu segments, %llu facts\n",
                reply->folded ? "compacted" : "nothing to compact",
                static_cast<unsigned long long>(reply->db.epoch),
                static_cast<unsigned long long>(reply->db.segments),
                static_cast<unsigned long long>(reply->db.facts));
    PrintStorageLine(stdout, reply->db);
    return 0;
  }
  if (cmd == "stats") {
    auto reply = client->Stats();
    if (!reply.ok()) return Fail(reply.status());
    std::printf("%s", reply->rendered.c_str());
    std::printf("cache: %llu hits, %llu misses, %llu evictions; "
                "%llu entries, %llu bytes\n",
                static_cast<unsigned long long>(reply->cache_hits),
                static_cast<unsigned long long>(reply->cache_misses),
                static_cast<unsigned long long>(reply->cache_evictions),
                static_cast<unsigned long long>(reply->cache_entries),
                static_cast<unsigned long long>(reply->cache_bytes));
    std::printf("views: %llu hits, %llu cold runs, %llu delta refreshes "
                "(%llu DRed, %llu strata recomputed)\n",
                static_cast<unsigned long long>(reply->view_hits),
                static_cast<unsigned long long>(reply->view_cold_runs),
                static_cast<unsigned long long>(reply->view_delta_refreshes),
                static_cast<unsigned long long>(reply->view_dred_refreshes),
                static_cast<unsigned long long>(
                    reply->view_strata_recomputed));
    return 0;
  }
  if (cmd == "shutdown") {
    seqdl::Status st = client->Shutdown();
    if (!st.ok()) return Fail(st);
    std::printf("server shut down\n");
    return 0;
  }
  std::fprintf(stderr, "error: unknown query command '%s'\n%s", cmd.c_str(),
               usage);
  return 2;
}

// The full program analyzer: parse, validation (SD0xx), lints (SD1xx),
// and admission classification (SD3xx) in one pass, rendered as
// compiler-style diagnostics or one JSON document (--json). Exit codes:
// 0 clean, 1 errors (including strict-admission rejection), 2 usage/IO,
// 4 warnings only.
int CmdCheck(const std::vector<std::string>& args) {
  if (args.empty() || args[0].rfind("--", 0) == 0) {
    std::fprintf(stderr,
                 "usage: seqdl check <program> [--json] [--output=REL] "
                 "[--admission=off|budget|strict] [--werror]\n");
    return 2;
  }
  const std::string& source = args[0];
  bool json = HasFlag(args, "--json");
  seqdl::AdmissionPolicy policy = seqdl::AdmissionPolicy::kBudget;
  if (std::string v = FlagValue(args, "--admission="); !v.empty()) {
    auto parsed = seqdl::ParseAdmissionPolicy(v);
    if (!parsed.ok()) {
      Fail(parsed.status());
      return 2;
    }
    policy = *parsed;
  }

  seqdl::Universe u;
  auto text = ReadFile(source);
  if (!text.ok()) {
    Fail(text.status());
    return 2;
  }
  seqdl::DiagnosticList diags;
  auto program = seqdl::ParseProgram(u, *text, &diags);
  bool parsed = program.ok();

  seqdl::AdmissionReport report;
  if (parsed) {
    seqdl::ValidateProgram(u, *program, &diags);
    seqdl::LintOptions lopts;
    if (std::string v = FlagValue(args, "--output="); !v.empty()) {
      auto rel = u.FindRel(v);
      if (!rel.ok()) {
        Fail(seqdl::Status::NotFound("--output=" + v +
                                     ": relation not used by the program"));
        return 2;
      }
      lopts.output = *rel;
    }
    seqdl::LintProgram(u, *program, lopts, &diags);
    report = seqdl::AnalyzeAdmission(u, *program);
    seqdl::DiagnosticList admission =
        seqdl::PolicyDiagnostics(report, policy);
    for (const seqdl::Diagnostic& d : admission.all()) diags.Add(d);
  }

  if (HasFlag(args, "--werror")) {
    seqdl::DiagnosticList hard;
    for (const seqdl::Diagnostic& d : diags.all()) {
      seqdl::Diagnostic c = d;
      if (c.severity == seqdl::Severity::kWarning) {
        c.severity = seqdl::Severity::kError;
      }
      hard.Add(std::move(c));
    }
    diags = std::move(hard);
  }

  const char* verdict =
      seqdl::AdmissionVerdictToString(report.Verdict(policy));
  if (json) {
    std::string out = "{\n  \"source\": ";
    seqdl::AppendJsonString(&out, source);
    out += ",\n  \"valid\": ";
    out += diags.HasErrors() ? "false" : "true";
    if (parsed) {
      out += ",\n  \"rules\": " + std::to_string(program->NumRules());
      out += ",\n  \"strata\": " + std::to_string(program->strata.size());
      out += ",\n  \"features\": ";
      seqdl::AppendJsonString(&out, report.features.ToString());
      out += ",\n  \"class\": ";
      seqdl::AppendJsonString(&out, report.fragment_class);
      out += ",\n  \"admission\": ";
      seqdl::AppendJsonString(&out, verdict);
    }
    out += ",\n  \"errors\": " + std::to_string(diags.NumErrors());
    out += ",\n  \"warnings\": " + std::to_string(diags.NumWarnings());
    out += ",\n  \"diagnostics\": " + diags.RenderJson();
    out += "\n}\n";
    std::printf("%s", out.c_str());
  } else {
    std::fprintf(stderr, "%s", diags.RenderText(source).c_str());
    if (parsed) {
      std::printf("rules:      %zu in %zu strata\n", program->NumRules(),
                  program->strata.size());
      std::printf("features:   %s\n", report.features.ToString().c_str());
      std::printf("class:      %s (Figure 1)\n",
                  report.fragment_class.c_str());
      std::printf("admission:  %s (policy %s)\n", verdict,
                  seqdl::AdmissionPolicyToString(policy));
    }
    std::printf("diagnostics: %zu errors, %zu warnings\n",
                diags.NumErrors(), diags.NumWarnings());
  }
  if (diags.HasErrors()) return 1;
  if (diags.NumWarnings() > 0) return 4;
  return 0;
}

int CmdTransform(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl transform <program> "
                         "--eliminate=packing|equations|arity|all\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  std::string what = FlagValue(args, "--eliminate=");
  if (what.empty()) what = "all";

  seqdl::Program current = *program;
  auto apply = [&](const std::string& name) -> seqdl::Status {
    if (name == "packing") {
      auto q = seqdl::EliminatePackingNonrecursive(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "equations") {
      auto q = seqdl::EliminateEquations(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else if (name == "arity") {
      auto q = seqdl::EliminateArity(u, current);
      if (!q.ok()) return q.status();
      current = std::move(*q);
    } else {
      return seqdl::Status::InvalidArgument("unknown elimination " + name);
    }
    return seqdl::Status::OK();
  };

  if (what == "all") {
    seqdl::FeatureSet f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kPacking)) {
      seqdl::Status s = apply("packing");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kEquations)) {
      seqdl::Status s = apply("equations");
      if (!s.ok()) return Fail(s);
    }
    f = seqdl::DetectFeatures(current);
    if (f.Contains(seqdl::Feature::kArity)) {
      seqdl::Status s = apply("arity");
      if (!s.ok()) return Fail(s);
    }
  } else {
    seqdl::Status s = apply(what);
    if (!s.ok()) return Fail(s);
  }
  std::printf("%s", seqdl::FormatProgram(u, current).c_str());
  std::fprintf(stderr, "-- %zu rules, features %s\n", current.NumRules(),
               seqdl::DetectFeatures(current).ToString().c_str());
  return 0;
}

int CmdNormalForm(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl normalform <program>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  seqdl::Program staged = *program;
  bool has_equations = false;
  for (const seqdl::Rule* r : staged.AllRules()) {
    for (const seqdl::Literal& l : r->body) {
      has_equations |= l.is_equation();
    }
  }
  if (has_equations) {
    auto q = seqdl::EliminateEquations(u, staged);
    if (!q.ok()) return Fail(q.status());
    staged = std::move(*q);
  }
  auto normal = seqdl::ToNormalForm(u, staged);
  if (!normal.ok()) return Fail(normal.status());
  std::printf("%s", seqdl::FormatProgram(u, *normal).c_str());
  return 0;
}

int CmdAlgebra(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::fprintf(stderr, "usage: seqdl algebra <program> <REL>\n");
    return 2;
  }
  seqdl::Universe u;
  auto text = ReadFile(args[0]);
  if (!text.ok()) return Fail(text.status());
  auto program = seqdl::ParseProgram(u, *text);
  if (!program.ok()) return Fail(program.status());
  auto rel = u.FindRel(args[1]);
  if (!rel.ok()) return Fail(rel.status());
  auto alg = seqdl::DatalogToAlgebra(u, *program, *rel);
  if (!alg.ok()) return Fail(alg.status());
  std::printf("%s\n", seqdl::FormatAlgebra(u, **alg).c_str());
  return 0;
}

int CmdHasse(const std::vector<std::string>& args) {
  seqdl::HasseDiagram d = seqdl::BuildHasseDiagram();
  if (HasFlag(args, "--dot")) {
    std::printf("%s", seqdl::HasseToDot(d).c_str());
  } else {
    std::printf("%s", seqdl::RenderHasse(d).c_str());
  }
  return 0;
}

int CmdRegex(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "usage: seqdl regex <pattern>\n");
    return 2;
  }
  seqdl::Universe u;
  auto q = seqdl::RegexToDatalog(u, args[0]);
  if (!q.ok()) return Fail(q.status());
  std::printf("%% strings go into %s; matches appear in %s\n",
              u.RelName(q->input).c_str(), u.RelName(q->output).c_str());
  std::printf("%s", seqdl::FormatProgram(u, q->program).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: seqdl <run|serve|coordinate|query|check|transform|"
                 "normalform|algebra|hasse|regex> ...\n");
    return 2;
  }
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "run") return CmdRun(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "coordinate") return CmdCoordinate(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "check") return CmdCheck(args);
  if (cmd == "transform") return CmdTransform(args);
  if (cmd == "normalform") return CmdNormalForm(args);
  if (cmd == "algebra") return CmdAlgebra(args);
  if (cmd == "hasse") return CmdHasse(args);
  if (cmd == "regex") return CmdRegex(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
