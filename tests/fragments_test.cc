#include <gtest/gtest.h>

#include "src/fragments/fragments.h"

namespace seqdl {
namespace {

FeatureSet F(const std::string& letters) {
  Result<FeatureSet> f = FeatureSet::FromLetters(letters);
  EXPECT_TRUE(f.ok());
  return *f;
}

// --- Theorem 6.1 conditions, spot checks from the paper's results ------------

TEST(SubsumptionTest, ReflexiveAndEmptyBottom) {
  for (FeatureSet f : AllFragments()) {
    EXPECT_TRUE(Subsumes(f, f)) << f.ToString();
    EXPECT_TRUE(Subsumes(FeatureSet(), f)) << f.ToString();
  }
}

TEST(SubsumptionTest, Transitive) {
  std::vector<FeatureSet> all = AllFragments();
  for (FeatureSet a : all) {
    for (FeatureSet b : all) {
      if (!Subsumes(a, b)) continue;
      for (FeatureSet c : all) {
        if (Subsumes(b, c)) {
          EXPECT_TRUE(Subsumes(a, c))
              << a.ToString() << " <= " << b.ToString() << " <= "
              << c.ToString();
        }
      }
    }
  }
}

TEST(SubsumptionTest, ArityAndPackingAreRedundant) {
  // Theorems 4.2 and 4.15: adding or removing A and P never changes the
  // expressive power.
  for (FeatureSet f : AllFragments()) {
    EXPECT_TRUE(Equivalent(f, f.With(Feature::kArity)));
    EXPECT_TRUE(Equivalent(f, f.With(Feature::kPacking)));
    EXPECT_TRUE(Equivalent(f, f.Without(Feature::kArity)));
    EXPECT_TRUE(Equivalent(f, f.Without(Feature::kPacking)));
  }
}

TEST(SubsumptionTest, NegationIsPrimitive) {
  // Condition 1: {N} is not subsumed by the full negation-free fragment.
  EXPECT_FALSE(Subsumes(F("N"), F("AEIPR")));
  EXPECT_TRUE(Subsumes(F("N"), F("N")));
}

TEST(SubsumptionTest, RecursionIsPrimitive) {
  // Theorem 5.3.
  EXPECT_FALSE(Subsumes(F("R"), F("AEINP")));
}

TEST(SubsumptionTest, EquationsRedundantGivenIntermediate) {
  // Theorem 4.7: E <= {I}; more generally E can be replaced by I.
  EXPECT_TRUE(Subsumes(F("E"), F("I")));
  EXPECT_TRUE(Subsumes(F("EIN"), F("IN")));
  EXPECT_TRUE(Subsumes(F("EINR"), F("INR")));
}

TEST(SubsumptionTest, EquationsPrimitiveWithoutIntermediate) {
  // Theorem 5.7: E is primitive in the absence of I.
  EXPECT_FALSE(Subsumes(F("E"), F("ANPR")));
}

TEST(SubsumptionTest, IntermediateRedundantGivenEquationsNoNR) {
  // Theorem 4.16: I <= E in the absence of N and R.
  EXPECT_TRUE(Subsumes(F("I"), F("E")));
  EXPECT_TRUE(Equivalent(F("I"), F("E")));
  EXPECT_TRUE(Equivalent(F("EI"), F("E")));
}

TEST(SubsumptionTest, IntermediatePrimitiveWithNegation) {
  // Theorem 5.5: {I,N} is not subsumed by anything lacking I.
  EXPECT_FALSE(Subsumes(F("IN"), F("AENPR")));
}

TEST(SubsumptionTest, IntermediatePrimitiveWithRecursion) {
  // Theorem 5.6.
  EXPECT_FALSE(Subsumes(F("IR"), F("AENPR")));
}

TEST(SubsumptionTest, PaperEquivalences) {
  // The merged classes of Figure 1.
  EXPECT_TRUE(Equivalent(F("INR"), F("EINR")));
  EXPECT_TRUE(Equivalent(F("IN"), F("EIN")));
  EXPECT_TRUE(Equivalent(F("IR"), F("EIR")));
  EXPECT_TRUE(Equivalent(F("E"), F("I")));
  EXPECT_TRUE(Equivalent(F("E"), F("EI")));
}

TEST(SubsumptionTest, PaperNonSubsumptions) {
  // A sample of absent paths in Figure 1.
  EXPECT_FALSE(Subsumes(F("EN"), F("ENR").Without(Feature::kNegation)));
  EXPECT_FALSE(Subsumes(F("EN"), F("IR")));   // N not in {I,R}
  EXPECT_FALSE(Subsumes(F("NR"), F("EN")));   // R missing
  EXPECT_FALSE(Subsumes(F("ER"), F("NR")));   // E needs E or I
  EXPECT_FALSE(Subsumes(F("IN"), F("ENR")));  // condition 5
  EXPECT_FALSE(Subsumes(F("IR"), F("ENR")));  // condition 5
  EXPECT_FALSE(Subsumes(F("N"), F("ER")));
  EXPECT_FALSE(Subsumes(F("R"), F("EN")));
}

TEST(SubsumptionTest, ChainsOfFigure1) {
  // An ascending path in Figure 1 bottom-to-top.
  EXPECT_TRUE(Subsumes(F(""), F("E")));
  EXPECT_TRUE(Subsumes(F("E"), F("EN")));
  EXPECT_TRUE(Subsumes(F("EN"), F("IN")));
  EXPECT_TRUE(Subsumes(F("IN"), F("INR")));
  EXPECT_TRUE(Subsumes(F(""), F("R")));
  EXPECT_TRUE(Subsumes(F("R"), F("ER")));
  EXPECT_TRUE(Subsumes(F("ER"), F("IR")));
  EXPECT_TRUE(Subsumes(F("IR"), F("INR")));
  EXPECT_TRUE(Subsumes(F("N"), F("EN")));
  EXPECT_TRUE(Subsumes(F("NR"), F("ENR")));
  EXPECT_TRUE(Subsumes(F("ENR"), F("INR")));
}

// --- Figure 1: the equivalence classes and Hasse diagram ------------------------

TEST(Figure1Test, ElevenEquivalenceClasses) {
  std::vector<FragmentClass> classes = CoreEquivalenceClasses();
  EXPECT_EQ(classes.size(), 11u);
}

TEST(Figure1Test, ClassesMatchThePaper) {
  std::vector<FragmentClass> classes = CoreEquivalenceClasses();
  std::set<std::string> labels;
  for (const FragmentClass& c : classes) labels.insert(c.Label());
  // The four merged classes.
  EXPECT_TRUE(labels.count("{E} = {I} = {E,I}")) << [&] {
    std::string all;
    for (const std::string& l : labels) all += l + "\n";
    return all;
  }();
  EXPECT_TRUE(labels.count("{I,N} = {E,I,N}"));
  EXPECT_TRUE(labels.count("{I,R} = {E,I,R}"));
  EXPECT_TRUE(labels.count("{I,N,R} = {E,I,N,R}"));
  // The seven singleton classes.
  for (const char* single :
       {"{}", "{E,N}", "{N,R}", "{E,R}", "{N}", "{R}", "{E,N,R}"}) {
    EXPECT_TRUE(labels.count(single)) << single;
  }
}

TEST(Figure1Test, HasseDiagramStructure) {
  HasseDiagram d = BuildHasseDiagram();
  EXPECT_EQ(d.classes.size(), 11u);
  // Figure 1 has exactly these cover edges (lower < upper), as drawn:
  //   {} < {N}, {} < {E}={I}, {} < {R}
  //   {N} < {E,N}, {N} < {N,R}
  //   {E} < {E,N}, {E} < {E,R}, {E} < {I,R}(via?) ...
  // We verify the edge COUNT and a handful of specific covers.
  auto has_edge = [&](const std::string& lo, const std::string& hi) {
    for (const auto& [a, b] : d.edges) {
      if (d.classes[a].Label() == lo && d.classes[b].Label() == hi) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_edge("{}", "{N}"));
  EXPECT_TRUE(has_edge("{}", "{R}"));
  EXPECT_TRUE(has_edge("{}", "{E} = {I} = {E,I}"));
  EXPECT_TRUE(has_edge("{N}", "{E,N}"));
  EXPECT_TRUE(has_edge("{N}", "{N,R}"));
  EXPECT_TRUE(has_edge("{E} = {I} = {E,I}", "{E,N}"));
  EXPECT_TRUE(has_edge("{E} = {I} = {E,I}", "{E,R}"));
  EXPECT_TRUE(has_edge("{R}", "{E,R}"));
  EXPECT_TRUE(has_edge("{R}", "{N,R}"));
  EXPECT_TRUE(has_edge("{E,N}", "{I,N} = {E,I,N}"));
  EXPECT_TRUE(has_edge("{E,N}", "{E,N,R}"));
  EXPECT_TRUE(has_edge("{N,R}", "{E,N,R}"));
  EXPECT_TRUE(has_edge("{E,R}", "{E,N,R}"));
  EXPECT_TRUE(has_edge("{E,R}", "{I,R} = {E,I,R}"));
  EXPECT_TRUE(has_edge("{I,N} = {E,I,N}", "{I,N,R} = {E,I,N,R}"));
  EXPECT_TRUE(has_edge("{I,R} = {E,I,R}", "{I,N,R} = {E,I,N,R}"));
  EXPECT_TRUE(has_edge("{E,N,R}", "{I,N,R} = {E,I,N,R}"));
  // No edge that contradicts the figure.
  EXPECT_FALSE(has_edge("{N}", "{E,R}"));
  EXPECT_FALSE(has_edge("{E,N}", "{I,R} = {E,I,R}"));
}

TEST(Figure1Test, TopAndBottomAreUnique) {
  HasseDiagram d = BuildHasseDiagram();
  size_t sources = 0, sinks = 0;
  for (size_t i = 0; i < d.classes.size(); ++i) {
    bool has_lower = false, has_upper = false;
    for (const auto& [lo, hi] : d.edges) {
      has_lower |= hi == i;
      has_upper |= lo == i;
    }
    if (!has_lower) ++sources;
    if (!has_upper) ++sinks;
  }
  EXPECT_EQ(sources, 1u);  // {}
  EXPECT_EQ(sinks, 1u);    // {I,N,R} = {E,I,N,R}
}

TEST(Figure1Test, RenderingsMentionAllClasses) {
  HasseDiagram d = BuildHasseDiagram();
  std::string text = RenderHasse(d);
  std::string dot = HasseToDot(d);
  for (const FragmentClass& c : d.classes) {
    EXPECT_NE(text.find(c.Label()), std::string::npos) << c.Label();
    EXPECT_NE(dot.find(c.Label()), std::string::npos) << c.Label();
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Figure1Test, SixtyFourFragmentsCollapseToEleven) {
  // Including A and P, all 64 fragments still fall into the same 11
  // classes.
  std::vector<FragmentClass> core = CoreEquivalenceClasses();
  size_t matched = 0;
  for (FeatureSet f : AllFragments()) {
    for (const FragmentClass& c : core) {
      if (Equivalent(f, c.Rep())) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, 64u);
}

}  // namespace
}  // namespace seqdl
