#include <gtest/gtest.h>

#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/engine/match.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/workload/baselines.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString() << "\n" << text;
  return std::move(i).value();
}

PathExpr MustExpr(Universe& u, const std::string& text) {
  Result<PathExpr> e = ParsePathExpr(u, text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(e).value();
}

// --- Instance ---------------------------------------------------------------

TEST(InstanceTest, AddAndContains) {
  Universe u;
  Instance i;
  RelId r = *u.InternRel("R", 1);
  EXPECT_TRUE(i.Add(r, {u.PathOfChars("ab")}));
  EXPECT_FALSE(i.Add(r, {u.PathOfChars("ab")}));  // duplicate
  EXPECT_TRUE(i.Contains(r, {u.PathOfChars("ab")}));
  EXPECT_FALSE(i.Contains(r, {u.PathOfChars("ba")}));
  EXPECT_EQ(i.NumFacts(), 1u);
}

TEST(InstanceTest, ParseAndToString) {
  Universe u;
  Instance i = MustInstance(u, "R(a ++ b). R(eps). S(<a> ++ c). A.");
  EXPECT_EQ(i.NumFacts(), 4u);
  EXPECT_EQ(i.ToString(u), "A.\nR(()).\nR(a·b).\nS(<a>·c).\n");
}

TEST(InstanceTest, ParseRejectsRules) {
  Universe u;
  EXPECT_FALSE(ParseInstance(u, "S($x) <- R($x).").ok());
  EXPECT_FALSE(ParseInstance(u, "S($x).").ok());
}

TEST(InstanceTest, FlatCheck) {
  Universe u;
  EXPECT_TRUE(MustInstance(u, "R(a ++ b).").IsFlat(u));
  EXPECT_FALSE(MustInstance(u, "Q(<a> ++ b).").IsFlat(u));
}

TEST(InstanceTest, EqualityAndUnion) {
  Universe u;
  Instance a = MustInstance(u, "R(a). R(b).");
  Instance b = MustInstance(u, "R(b). R(a).");
  EXPECT_EQ(a, b);
  Instance c = MustInstance(u, "R(a). R(c).");
  EXPECT_NE(a, c);
  EXPECT_EQ(a.UnionWith(c), 1u);  // only R(c) is new
  EXPECT_EQ(a.NumFacts(), 3u);
}

TEST(InstanceTest, Project) {
  Universe u;
  Instance i = MustInstance(u, "R(a). S(b).");
  Instance p = i.Project({*u.FindRel("S")});
  EXPECT_EQ(p.NumFacts(), 1u);
  EXPECT_TRUE(p.Contains(*u.FindRel("S"), {u.PathOfChars("b")}));
}

// --- Matching ----------------------------------------------------------------

size_t CountMatches(Universe& u, const std::string& expr,
                    const std::string& path_expr) {
  PathExpr e = MustExpr(u, expr);
  Result<PathId> p = EvalGroundExpr(u, MustExpr(u, path_expr));
  EXPECT_TRUE(p.ok());
  size_t count = 0;
  Valuation v;
  MatchExpr(u, e, *p, v, [&count](Valuation&) {
    ++count;
    return true;
  });
  return count;
}

TEST(MatchTest, GroundMatch) {
  Universe u;
  EXPECT_EQ(CountMatches(u, "a ++ b", "a ++ b"), 1u);
  EXPECT_EQ(CountMatches(u, "a ++ b", "a ++ c"), 0u);
  EXPECT_EQ(CountMatches(u, "eps", "eps"), 1u);
  EXPECT_EQ(CountMatches(u, "eps", "a"), 0u);
}

TEST(MatchTest, PathVariableSplits) {
  Universe u;
  // $x ++ $y over a·b: 3 splits.
  EXPECT_EQ(CountMatches(u, "$x ++ $y", "a ++ b"), 3u);
  // $x ++ $x over a·a: only ($x = a).
  EXPECT_EQ(CountMatches(u, "$x ++ $x", "a ++ a"), 1u);
  EXPECT_EQ(CountMatches(u, "$x ++ $x", "a ++ b"), 0u);
}

TEST(MatchTest, AtomVariableRequiresAtom) {
  Universe u;
  EXPECT_EQ(CountMatches(u, "@x", "a"), 1u);
  EXPECT_EQ(CountMatches(u, "@x", "<a>"), 0u);
  EXPECT_EQ(CountMatches(u, "@x", "a ++ b"), 0u);
  EXPECT_EQ(CountMatches(u, "@x ++ @x", "a ++ a"), 1u);
  EXPECT_EQ(CountMatches(u, "@x ++ @x", "a ++ b"), 0u);
}

TEST(MatchTest, PackMatchesRecursively) {
  Universe u;
  EXPECT_EQ(CountMatches(u, "<$x>", "<a ++ b>"), 1u);
  EXPECT_EQ(CountMatches(u, "<$x ++ $y>", "<a ++ b>"), 3u);
  EXPECT_EQ(CountMatches(u, "<a>", "a"), 0u);
  EXPECT_EQ(CountMatches(u, "$u ++ <$s> ++ $v", "c ++ <a ++ b> ++ d"), 1u);
}

TEST(MatchTest, SharedVariableAcrossPackBoundary) {
  Universe u;
  EXPECT_EQ(CountMatches(u, "$x ++ <$x>", "a ++ b ++ <a ++ b>"), 1u);
  EXPECT_EQ(CountMatches(u, "$x ++ <$x>", "a ++ <b>"), 0u);
}

TEST(MatchTest, PreboundVariableConstrains) {
  Universe u;
  PathExpr e = MustExpr(u, "$x ++ $y");
  PathId p = u.PathOfChars("ab");
  Valuation v;
  v.Bind(u.InternVar(VarKind::kPath, "x"), u.PathOfChars("a"));
  size_t count = 0;
  MatchExpr(u, e, p, v, [&count](Valuation&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST(MatchTest, EarlyStopViaCallback) {
  Universe u;
  PathExpr e = MustExpr(u, "$x ++ $y");
  PathId p = u.PathOfChars("abcd");
  Valuation v;
  size_t count = 0;
  bool completed = MatchExpr(u, e, p, v, [&count](Valuation&) {
    ++count;
    return count < 2;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 2u);
}

TEST(MatchTest, EvalExprBuildsPacks) {
  Universe u;
  Valuation v;
  v.Bind(u.InternVar(VarKind::kPath, "x"), u.PathOfChars("ab"));
  Result<PathId> p = EvalExpr(u, MustExpr(u, "c ++ <$x>"), v);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(u.FormatPath(*p), "c·<a·b>");
}

// --- Evaluation of the paper's examples ---------------------------------------

TEST(EvalTest, FactsOnly) {
  Universe u;
  Program p = MustParse(u, "S(a ++ b). S(c).");
  Result<Instance> out = Eval(u, p, Instance{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFacts(), 2u);
}

TEST(EvalTest, OnlyAsWithEquation) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  Instance in = MustInstance(u, "R(a ++ a ++ a). R(a ++ b). R(eps). R(a).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 3u);  // aaa, eps, a
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("aaa")}));
  EXPECT_TRUE(out->Contains(s, {kEmptyPath}));
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("a")}));
}

TEST(EvalTest, OnlyAsWithRecursionAgrees) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, $x) <- R($x).\n"
                        "T($x, $y) <- T($x, $y ++ a).\n"
                        "S($x) <- T($x, eps).\n");
  Instance in = MustInstance(u, "R(a ++ a ++ a). R(a ++ b). R(eps). R(a).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok());
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 3u);
}

TEST(EvalTest, ReversalExample43) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, eps) <- R($x).\n"
                        "T($x, $y ++ @u) <- T($x ++ @u, $y).\n"
                        "S($x) <- T(eps, $x).\n");
  Instance in = MustInstance(u, "R(a ++ b ++ c). R(eps).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 2u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("cba")}));
  EXPECT_TRUE(out->Contains(s, {kEmptyPath}));
}

TEST(EvalTest, Example22PackingAndNonequalities) {
  Universe u;
  Program p = MustParse(u,
                        "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                        "A <- T($x), T($y), T($z), $x != $y, $x != $z, "
                        "$y != $z.\n");
  // "abab" contains "ab" twice and "ba" once: 3 distinct marked strings.
  Instance in3 = MustInstance(u, "R(a ++ b ++ a ++ b). S(a ++ b). S(b ++ a).");
  Result<Instance> out3 = Eval(u, p, in3);
  ASSERT_TRUE(out3.ok()) << out3.status().ToString();
  EXPECT_TRUE(out3->Contains(*u.FindRel("A"), {}));

  Universe u2;
  Program p2 = MustParse(u2,
                         "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                         "A <- T($x), T($y), T($z), $x != $y, $x != $z, "
                         "$y != $z.\n");
  // Only two occurrences of "ab" in "abab" - not enough.
  Instance in2 = MustInstance(u2, "R(a ++ b ++ a ++ b). S(a ++ b).");
  Result<Instance> out2 = Eval(u2, p2, in2);
  ASSERT_TRUE(out2.ok());
  EXPECT_FALSE(out2->Contains(*u2.FindRel("A"), {}));
}

TEST(EvalTest, Example23DoesNotTerminate) {
  Universe u;
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  EvalOptions opts;
  opts.max_facts = 1000;
  Result<Instance> out = Eval(u, p, Instance{}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, NonterminationCaughtByIterationBudget) {
  Universe u;
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  EvalOptions opts;
  opts.max_iterations = 50;
  Result<Instance> out = Eval(u, p, Instance{}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(EvalTest, SquaringQuery) {
  Universe u;
  Program p = MustParse(u,
                        "T(eps, $x, $x) <- R($x).\n"
                        "T($y ++ $x, $x, $z) <- T($y, $x, a ++ $z).\n"
                        "S($y) <- T($y, $x, eps).\n");
  Instance in = MustInstance(u, "R(a ++ a ++ a).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok());
  RelId s = *u.FindRel("S");
  ASSERT_EQ(out->Tuples(s).size(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars(std::string(9, 'a'))}));
}

TEST(EvalTest, StratifiedNegationBlackNodes) {
  Universe u;
  Program p = MustParse(u,
                        "W(@x) <- R(@x ++ @y), !B(@y).\n"
                        "---\n"
                        "S(@x) <- R(@x ++ @y), !W(@x).\n");
  // Edges: a->b, a->c, d->b. Black: {b}. W = nodes with an edge to a
  // non-black node = {a}. S = nodes with only-black successors = {d}.
  Instance in = MustInstance(u, "R(a ++ b). R(a ++ c). R(d ++ b). B(b).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("d")}));
}

TEST(EvalTest, UnstratifiedProgramRejected) {
  Universe u;
  Program p = MustParse(u, "P0($x) <- R($x), !Q0($x). Q0($x) <- P0($x).");
  Result<Instance> out = Eval(u, p, MustInstance(u, "R(a)."));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, NaiveAndSeminaiveAgree) {
  Universe u;
  Program p = MustParse(u,
                        "T(@x ++ @y) <- R(@x ++ @y).\n"
                        "T(@x ++ @z) <- T(@x ++ @y), R(@y ++ @z).\n"
                        "S <- T(a ++ b).\n");
  Instance in = MustInstance(u, "R(a ++ c). R(c ++ d). R(d ++ b). R(b ++ a).");
  EvalOptions naive;
  naive.seminaive = false;
  Result<Instance> o1 = Eval(u, p, in);
  Result<Instance> o2 = Eval(u, p, in, naive);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  EXPECT_TRUE(o1->Contains(*u.FindRel("S"), {}));
}

TEST(EvalTest, EmptyBodyArityZeroRule) {
  Universe u;
  Program p = MustParse(u, "A <- .");
  Result<Instance> out = Eval(u, p, Instance{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(*u.FindRel("A"), {}));
}

TEST(EvalTest, EquationBindingBothDirections) {
  Universe u;
  // The equation binds $y from the ground lhs; head uses $y.
  Program p = MustParse(u, "S($y) <- R($x), $x = b ++ $y.");
  Instance in = MustInstance(u, "R(b ++ c ++ d). R(a ++ c).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("cd")}));
}

TEST(EvalTest, NegatedGroundEquationFilters) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), $x != a ++ b.");
  Instance in = MustInstance(u, "R(a ++ b). R(a ++ c).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok());
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("ac")}));
}

TEST(EvalTest, EvalQueryProjects) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x). S($x) <- T($x).");
  Instance in = MustInstance(u, "R(a).");
  Result<Instance> out = EvalQuery(u, p, in, *u.FindRel("S"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFacts(), 1u);
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {u.PathOfChars("a")}));
}

TEST(EvalTest, MaxPathLengthGuard) {
  Universe u;
  Program p = MustParse(u, "T(a). T($x ++ $x) <- T($x).");
  EvalOptions opts;
  opts.max_path_length = 64;
  Result<Instance> out = Eval(u, p, Instance{}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// --- Differential tests against the direct baselines --------------------------

TEST(EvalDifferentialTest, NfaAcceptanceMatchesSimulator) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Universe u;
    Program p = MustParse(
        u,
        "S(@q ++ $x, eps) <- R($x), N(@q).\n"
        "S(@q2 ++ $y, $z ++ @a) <- S(@q1 ++ @a ++ $y, $z), D(@q1, @a, @q2).\n"
        "A($x) <- S(@q, $x), F(@q).\n");
    NfaWorkload nw;
    nw.num_states = 4;
    nw.alphabet = 2;
    nw.seed = seed;
    Nfa nfa = RandomNfa(nw);
    Result<Instance> in = NfaToInstance(u, nfa);
    ASSERT_TRUE(in.ok());
    StringWorkload sw;
    sw.count = 12;
    sw.max_len = 6;
    sw.seed = seed + 100;
    Result<Instance> strings = RandomStrings(u, sw);
    ASSERT_TRUE(strings.ok());
    in->UnionWith(*strings);

    Result<Instance> out = Eval(u, p, *in);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    RelId a_rel = *u.FindRel("A");
    RelId r_rel = *u.FindRel("R");
    for (const Tuple& t : out->Tuples(r_rel)) {
      std::vector<uint32_t> word;
      bool skip = false;
      for (Value v : u.GetPath(t[0])) {
        const std::string& name = u.AtomName(v.atom());
        uint32_t letter = static_cast<uint32_t>(name[0] - 'a');
        if (letter >= nfa.alphabet) skip = true;
        word.push_back(letter);
      }
      if (skip) continue;
      EXPECT_EQ(out->Contains(a_rel, t), nfa.Accepts(word))
          << "string " << u.FormatPath(t[0]) << " seed " << seed;
    }
  }
}

TEST(EvalDifferentialTest, ReachabilityMatchesBfs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Universe u;
    Program p = MustParse(u,
                          "T(@x ++ @y) <- R(@x ++ @y).\n"
                          "T(@x ++ @z) <- T(@x ++ @y), R(@y ++ @z).\n"
                          "S <- T(a ++ b).\n");
    GraphWorkload gw;
    gw.nodes = 7;
    gw.edges = 10;
    gw.seed = seed;
    Graph g = RandomGraph(gw);
    Result<Instance> in = GraphToInstance(u, g, "R");
    ASSERT_TRUE(in.ok());
    Result<Instance> out = Eval(u, p, *in);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->Contains(*u.FindRel("S"), {}), Reachable(g, 0, 1))
        << "seed " << seed;
  }
}

TEST(EvalDifferentialTest, MarkedPairsMatchBaseline) {
  Universe u;
  Program p = MustParse(u,
                        "U($x, $x) <- R($x).\n"
                        "U($x, $y) <- U($x, @a ++ $y ++ @b), @a != @b.\n"
                        "S($x) <- U($x, eps).\n");
  StringWorkload sw;
  sw.count = 30;
  sw.max_len = 6;
  sw.alphabet = 3;
  sw.seed = 7;
  Result<Instance> in = RandomStrings(u, sw);
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, p, *in);
  ASSERT_TRUE(out.ok());
  RelId s = *u.FindRel("S");
  RelId r = *u.FindRel("R");
  for (const Tuple& t : out->Tuples(r)) {
    std::string str;
    for (Value v : u.GetPath(t[0])) str += u.AtomName(v.atom());
    EXPECT_EQ(out->Contains(s, t), IsMarkedPair(str)) << str;
  }
}

TEST(EvalDifferentialTest, ProcessMiningMatchesBaseline) {
  Universe u;
  Program p = MustParse(
      u,
      "HasRp($v) <- R($u ++ co ++ $v), $v = $s ++ rp ++ $t.\n"
      "---\n"
      "Bad($x) <- R($x), $x = $u ++ co ++ $v, !HasRp($v).\n"
      "---\n"
      "Good($x) <- R($x), !Bad($x).\n");
  EventLogWorkload ew;
  ew.count = 25;
  ew.len = 8;
  ew.seed = 3;
  Result<Instance> in = RandomEventLogs(u, ew);
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, p, *in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId good = *u.FindRel("Good");
  RelId r = *u.FindRel("R");
  for (const Tuple& t : out->Tuples(r)) {
    std::vector<std::string> events;
    for (Value v : u.GetPath(t[0])) events.push_back(u.AtomName(v.atom()));
    EXPECT_EQ(out->Contains(good, t), EveryCoFollowedByRp(events))
        << u.FormatPath(t[0]);
  }
}

// --- Doubling / undoubling round-trip (Theorem 4.15 rules) --------------------

TEST(EvalTest, DoubleThenUndoubleIsIdentity) {
  Universe u2;
  Program both = MustParse(u2,
                           "T(eps, $x) <- R($x).\n"
                           "T($x ++ @y ++ @y, $z) <- T($x, @y ++ $z).\n"
                           "Rd($x) <- T($x, eps).\n"
                           "---\n"
                           "V($x, eps) <- Rd($x).\n"
                           "V($x, @y ++ $z) <- V($x ++ @y ++ @y, $z).\n"
                           "Back($x) <- V(eps, $x).\n");
  Instance in = MustInstance(u2, "R(a ++ b ++ c). R(eps). R(a).");
  Result<Instance> out = Eval(u2, both, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  RelId back = *u2.FindRel("Back");
  RelId r = *u2.FindRel("R");
  EXPECT_EQ(out->Tuples(back).size(), out->Tuples(r).size());
  for (const Tuple& t : out->Tuples(r)) {
    EXPECT_TRUE(out->Contains(back, t)) << u2.FormatPath(t[0]);
  }
  // And the doubled relation contains the doubled paths.
  RelId rd = *u2.FindRel("Rd");
  EXPECT_TRUE(out->Contains(rd, {u2.PathOfChars("aabbcc")}));
}

}  // namespace
}  // namespace seqdl
