// Cross-cutting randomized property tests: completeness of associative
// unification against brute-force ground enumeration, equivalence of
// transformation pipelines, naive/semi-naive agreement, and the Lemma 5.1
// linear output bound for nonrecursive programs.
#include <gtest/gtest.h>

#include <random>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/analysis/features.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/packing_elim.h"
#include "src/unify/unify.h"
#include "src/workload/baselines.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

// --- Unification completeness against ground enumeration -----------------------

// Generates a random one-sided nonlinear equation over atoms {a, b}, path
// variables and atomic variables.
struct RandomEquation {
  PathExpr lhs, rhs;
};

RandomEquation MakeRandomEquation(Universe& u, std::mt19937_64& rng) {
  std::uniform_int_distribution<int> len(1, 3);
  std::uniform_int_distribution<int> kind(0, 3);
  int var_counter = 0;
  auto make_side = [&](const char* prefix, bool allow_repeat) {
    PathExpr side;
    int n = len(rng);
    for (int i = 0; i < n; ++i) {
      switch (kind(rng)) {
        case 0:
          side.items.push_back(
              ExprItem::Const(Value::Atom(u.InternAtom("a"))));
          break;
        case 1:
          side.items.push_back(
              ExprItem::Const(Value::Atom(u.InternAtom("b"))));
          break;
        case 2: {
          std::string name =
              std::string(prefix) + std::to_string(var_counter++);
          side.items.push_back(
              ExprItem::PathVar(u.InternVar(VarKind::kPath, name)));
          // Optionally repeat the variable (nonlinearity, same side only).
          if (allow_repeat && kind(rng) == 0) {
            side.items.push_back(
                ExprItem::PathVar(u.InternVar(VarKind::kPath, name)));
          }
          break;
        }
        default: {
          std::string name =
              std::string(prefix) + "v" + std::to_string(var_counter++);
          side.items.push_back(
              ExprItem::AtomVar(u.InternVar(VarKind::kAtomic, name)));
          break;
        }
      }
    }
    return side;
  };
  // Left side linear, right side may repeat its own variables: the result
  // is one-sided nonlinear by construction (disjoint variable names).
  return RandomEquation{make_side("l", false), make_side("r", true)};
}

// Enumerates all ground valuations over {a, b} with path lengths <= 2.
void ForEachGroundValuation(Universe& u, const std::vector<VarId>& vars,
                            const std::function<void(const ExprSubst&)>& cb) {
  std::vector<PathExpr> path_choices;
  for (const char* s : {"", "a", "b", "aa", "ab", "ba", "bb"}) {
    path_choices.push_back(ExprOfPath(u, u.PathOfChars(s)));
  }
  std::vector<PathExpr> atom_choices = {
      ConstExpr(Value::Atom(u.InternAtom("a"))),
      ConstExpr(Value::Atom(u.InternAtom("b")))};
  ExprSubst current;
  std::function<void(size_t)> rec = [&](size_t i) {
    if (i == vars.size()) {
      cb(current);
      return;
    }
    const std::vector<PathExpr>& choices =
        u.VarKindOf(vars[i]) == VarKind::kPath ? path_choices : atom_choices;
    for (const PathExpr& c : choices) {
      current[vars[i]] = c;
      rec(i + 1);
    }
    current.erase(vars[i]);
  };
  rec(0);
}

TEST(UnifyPropertyTest, SolutionsAreSoundAndComplete) {
  Universe u;
  std::mt19937_64 rng(42);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomEquation eq = MakeRandomEquation(u, rng);
    if (!IsOneSidedNonlinear(eq.lhs, eq.rhs)) continue;
    UnifyOptions opts;
    opts.max_nodes = 200000;
    Result<UnifyResult> res = UnifyExprs(u, eq.lhs, eq.rhs, opts);
    ASSERT_TRUE(res.ok()) << FormatExpr(u, eq.lhs) << " = "
                          << FormatExpr(u, eq.rhs) << ": "
                          << res.status().ToString();
    // Soundness: every symbolic solution literally unifies the sides.
    for (const ExprSubst& rho : res->solutions) {
      EXPECT_EQ(SubstituteExpr(eq.lhs, rho), SubstituteExpr(eq.rhs, rho))
          << FormatSubst(u, rho);
    }
    // Completeness: every ground solution is an instance of some symbolic
    // solution.
    std::vector<VarId> vars;
    CollectVars(eq.lhs, &vars);
    CollectVars(eq.rhs, &vars);
    if (vars.size() > 4) continue;  // keep the enumeration cheap
    ++checked;
    ForEachGroundValuation(u, vars, [&](const ExprSubst& nu) {
      Result<PathId> l = EvalGroundExpr(u, SubstituteExpr(eq.lhs, nu));
      Result<PathId> r = EvalGroundExpr(u, SubstituteExpr(eq.rhs, nu));
      ASSERT_TRUE(l.ok());
      ASSERT_TRUE(r.ok());
      if (*l != *r) return;
      bool covered = false;
      for (const ExprSubst& rho : res->solutions) {
        covered |= IsSymbolicInstance(u, vars, rho, nu, /*allow_empty=*/true);
      }
      EXPECT_TRUE(covered) << "ground solution " << FormatSubst(u, nu)
                           << " of " << FormatExpr(u, eq.lhs) << " = "
                           << FormatExpr(u, eq.rhs)
                           << " not covered by any symbolic solution";
    });
  }
  EXPECT_GT(checked, 10);
}

// --- Transformation pipeline equivalence -----------------------------------------

class PipelineSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST(PipelineTest, FullDesugaringOfExample22IsFeatureFree) {
  // packing elimination -> equation elimination -> arity elimination on the
  // three-occurrence query: the result uses only {I, N}. (Evaluating the
  // fully desugared program is prohibitively expensive — the Lemma 4.1
  // pairing encoding duplicates the innermost component 2^(arity-1) times,
  // and the auxiliary relations here reach arity 9; the evaluation
  // equivalence is checked on the two-occurrence variant below.)
  Universe u;
  Program p = MustParse(u,
                        "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                        "A <- T($x), T($y), T($z), $x != $y, $x != $z, "
                        "$y != $z.\n");
  Result<Program> q1 = EliminatePackingNonrecursive(u, p);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  Result<Program> q2 = EliminateEquations(u, *q1);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  Result<Program> q3 = EliminateArity(u, *q2);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  FeatureSet f = DetectFeatures(*q3);
  EXPECT_FALSE(f.Contains(Feature::kPacking));
  EXPECT_FALSE(f.Contains(Feature::kEquations));
  EXPECT_FALSE(f.Contains(Feature::kArity));
}

TEST_P(PipelineSeedTest, FullDesugaringOfTwoOccurrences) {
  // The same full pipeline on the two-occurrence variant, where the
  // auxiliary arities stay small enough to evaluate, checked end to end
  // against the original program on random flat data.
  uint64_t seed = GetParam();
  Universe u;
  Program p = MustParse(u,
                        "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                        "A <- T($x), T($y), $x != $y.\n");
  Result<Program> q1 = EliminatePackingNonrecursive(u, p);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  Result<Program> q2 = EliminateEquations(u, *q1);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  Result<Program> q3 = EliminateArity(u, *q2);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  FeatureSet f = DetectFeatures(*q3);
  EXPECT_FALSE(f.Contains(Feature::kPacking));
  EXPECT_FALSE(f.Contains(Feature::kEquations));
  EXPECT_FALSE(f.Contains(Feature::kArity));

  StringWorkload rw;
  rw.count = 2;
  rw.max_len = 3;
  rw.seed = seed;
  rw.rel = "R";
  StringWorkload sw;
  sw.count = 1;
  sw.min_len = 1;
  sw.max_len = 1;
  sw.seed = seed + 1000;
  sw.rel = "S";
  Result<Instance> in = RandomStrings(u, rw);
  ASSERT_TRUE(in.ok());
  Result<Instance> needles = RandomStrings(u, sw);
  ASSERT_TRUE(needles.ok());
  in->UnionWith(*needles);

  RelId a_rel = *u.FindRel("A");
  EvalOptions opts;
  opts.max_facts = 2'000'000;
  Result<Instance> o1 = EvalQuery(u, p, *in, a_rel, opts);
  Result<Instance> o2 = EvalQuery(u, *q3, *in, a_rel, opts);
  ASSERT_TRUE(o1.ok()) << o1.status().ToString();
  ASSERT_TRUE(o2.ok()) << o2.status().ToString();
  EXPECT_EQ(o1->Contains(a_rel, {}), o2->Contains(a_rel, {}));
}

TEST_P(PipelineSeedTest, MarkedPairsEquationEliminationAgrees) {
  uint64_t seed = GetParam();
  Universe u;
  Program p = MustParse(u,
                        "U($x, $x) <- R($x).\n"
                        "U($x, $y) <- U($x, @a ++ $y ++ @b), @a != @b.\n"
                        "S($x) <- U($x, eps).\n");
  Result<Program> q = EliminateEquations(u, p);
  ASSERT_TRUE(q.ok());
  StringWorkload w;
  w.count = 12;
  w.max_len = 6;
  w.alphabet = 2;
  w.seed = seed;
  Result<Instance> in = RandomStrings(u, w);
  ASSERT_TRUE(in.ok());
  RelId s = *u.FindRel("S");
  Result<Instance> o1 = EvalQuery(u, p, *in, s);
  Result<Instance> o2 = EvalQuery(u, *q, *in, s);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
}

TEST_P(PipelineSeedTest, NaiveSeminaiveAgreeOnReachability) {
  uint64_t seed = GetParam();
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 9;
  gw.edges = 14;
  gw.seed = seed;
  Graph g = RandomGraph(gw);
  Result<Instance> in = GraphToInstance(u, g, "R");
  ASSERT_TRUE(in.ok());
  EvalOptions naive;
  naive.seminaive = false;
  Result<Instance> o1 = Eval(u, q->program, *in);
  Result<Instance> o2 = Eval(u, q->program, *in, naive);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  EXPECT_EQ(o1->Contains(q->output, {}), Reachable(g, 0, 1));
}

TEST_P(PipelineSeedTest, AlgebraAgreesOnRandomData) {
  uint64_t seed = GetParam();
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x ++ @y ++ $x), !Q(@y).");
  RelId s = *u.FindRel("S");
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, p, s);
  ASSERT_TRUE(alg.ok()) << alg.status().ToString();
  StringWorkload rw;
  rw.count = 6;
  rw.max_len = 5;
  rw.seed = seed;
  rw.rel = "R";
  StringWorkload qw;
  qw.count = 1;
  qw.min_len = 1;
  qw.max_len = 1;
  qw.seed = seed + 7;
  qw.rel = "Q";
  Result<Instance> in = RandomStrings(u, rw);
  ASSERT_TRUE(in.ok());
  Result<Instance> qs = RandomStrings(u, qw);
  ASSERT_TRUE(qs.ok());
  in->UnionWith(*qs);
  Result<Instance> engine = EvalQuery(u, p, *in, s);
  Result<EvaluatedRel> algebra = EvalAlgebra(u, **alg, *in);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(algebra.ok()) << algebra.status().ToString();
  EXPECT_EQ(engine->Tuples(s), algebra->tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Lemma 5.1: linear output bound for nonrecursive programs --------------------

size_t MaxPathLength(const Universe& u, const Instance& i) {
  size_t n = 0;
  for (RelId rel : i.Relations()) {
    for (const Tuple& t : i.Tuples(rel)) {
      for (PathId p : t) n = std::max(n, u.PathLength(p));
    }
  }
  return n;
}

TEST(Lemma51Test, NonrecursiveOutputsAreLinearlyBounded) {
  // For nonrecursive corpus programs, output length stays within a fixed
  // linear function of input length across a growing family of instances.
  for (const char* id : {"json_sales", "process_mining", "deep_equal",
                         "gcore_common_nodes", "ex44_only_as_noeq"}) {
    for (size_t n : {2u, 4u, 8u, 16u, 32u}) {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, id);
      ASSERT_TRUE(q.ok()) << id;
      Instance in;
      for (RelId rel : EdbRels(q->program)) {
        uint32_t arity = u.RelArity(rel);
        Tuple t;
        for (uint32_t i = 0; i < arity; ++i) {
          t.push_back(u.PathOfChars(std::string(n, 'a')));
        }
        in.Add(rel, t);
      }
      Result<Instance> out = Eval(u, q->program, in);
      ASSERT_TRUE(out.ok()) << id << ": " << out.status().ToString();
      // Lemma 5.1: |output paths| <= a·n + b. These programs all satisfy
      // a <= 2, b <= 4.
      EXPECT_LE(MaxPathLength(u, *out), 2 * n + 4) << id << " n=" << n;
    }
  }
}

TEST(Lemma51Test, SquaringExceedsEveryLinearBoundEventually) {
  // The recursive squaring query (Theorem 5.3) produces outputs of length
  // n^2: for the bound 2n + 4 used above, n = 4 already exceeds it.
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "squaring");
  ASSERT_TRUE(q.ok());
  Instance in;
  in.Add(*u.FindRel("R"), {u.PathOfChars(std::string(4, 'a'))});
  Result<Instance> out = EvalQuery(u, q->program, in, q->output);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(MaxPathLength(u, *out), 2 * 4 + 4);
  EXPECT_EQ(MaxPathLength(u, *out), 16u);
}

// --- Generated-program differential sweep ----------------------------------------
//
// Enumerates a family of small nonrecursive programs (body pattern shapes
// x optional negation x head expression shapes) and checks that the
// engine, the algebra translation (Theorem 7.1), and equation elimination
// (Theorem 4.7) all agree on random flat instances.

std::vector<std::string> GeneratedPrograms() {
  std::vector<std::string> body_patterns = {
      "R($x)",
      "R($x ++ a)",
      "R(a ++ $x)",
      "R($x ++ $x)",
      "R($x ++ @y)",
      "R(@y ++ $x ++ @y)",
  };
  std::vector<std::string> extras = {
      "",
      ", Q($x)",
      ", !Q($x)",
      ", $x != a",
      ", $x = b ++ $z",
  };
  std::vector<std::string> heads = {
      "S($x)",
      "S($x ++ $x)",
      "S(c ++ $x)",
  };
  std::vector<std::string> out;
  for (const std::string& body : body_patterns) {
    for (const std::string& extra : extras) {
      for (const std::string& head : heads) {
        // The $z-binding extra only composes with the plain head.
        if (extra.find("$z") != std::string::npos && head != "S($x)") {
          continue;
        }
        out.push_back(head + " <- " + body + extra + ".");
      }
    }
  }
  return out;
}

TEST(GeneratedProgramTest, EngineAlgebraAndEquationEliminationAgree) {
  size_t checked = 0;
  for (const std::string& text : GeneratedPrograms()) {
    Universe u;
    Result<Program> p = ParseProgram(u, text);
    ASSERT_TRUE(p.ok()) << text;
    RelId s = *u.FindRel("S");

    StringWorkload rw;
    rw.count = 5;
    rw.max_len = 4;
    rw.alphabet = 3;
    rw.seed = 99;
    rw.rel = "R";
    Result<Instance> in = RandomStrings(u, rw);
    ASSERT_TRUE(in.ok());
    if (text.find("Q(") != std::string::npos) {
      StringWorkload qw = rw;
      qw.count = 2;
      qw.seed = 100;
      qw.rel = "Q";
      Result<Instance> qs = RandomStrings(u, qw);
      ASSERT_TRUE(qs.ok());
      in->UnionWith(*qs);
    }

    Result<Instance> engine = EvalQuery(u, *p, *in, s);
    ASSERT_TRUE(engine.ok()) << text << ": " << engine.status().ToString();

    // Theorem 7.1: algebra translation agrees.
    Result<AlgebraPtr> alg = DatalogToAlgebra(u, *p, s);
    ASSERT_TRUE(alg.ok()) << text << ": " << alg.status().ToString();
    Result<EvaluatedRel> algebra = EvalAlgebra(u, **alg, *in);
    ASSERT_TRUE(algebra.ok()) << text;
    EXPECT_EQ(engine->Tuples(s), algebra->tuples) << text;

    // Theorem 4.7: equation elimination agrees (when equations occur).
    if (text.find('=') != std::string::npos) {
      Result<Program> noeq = EliminateEquations(u, *p);
      ASSERT_TRUE(noeq.ok()) << text;
      Result<Instance> out2 = EvalQuery(u, *noeq, *in, s);
      ASSERT_TRUE(out2.ok()) << text;
      EXPECT_EQ(engine->Tuples(s), out2->Tuples(s)) << text;
    }
    ++checked;
  }
  EXPECT_GE(checked, 70u);
}

// --- Hash-consing invariants under heavy churn -----------------------------------

TEST(TermPropertyTest, InterningIsStableUnderRandomOps) {
  Universe u;
  std::mt19937_64 rng(7);
  std::vector<PathId> pool = {kEmptyPath};
  std::uniform_int_distribution<int> op(0, 3);
  for (int i = 0; i < 2000; ++i) {
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    PathId a = pool[pick(rng)];
    PathId b = pool[pick(rng)];
    switch (op(rng)) {
      case 0:
        pool.push_back(u.Concat(a, b));
        break;
      case 1:
        pool.push_back(u.Append(a, Value::Packed(b)));
        break;
      case 2: {
        std::span<const Value> v = u.GetPath(a);
        if (!v.empty()) {
          std::uniform_int_distribution<size_t> cut(0, v.size() - 1);
          size_t start = cut(rng);
          pool.push_back(u.SubPath(a, start, v.size() - start));
        }
        break;
      }
      default:
        pool.push_back(
            u.Append(a, Value::Atom(u.InternAtom(std::to_string(i % 5)))));
        break;
    }
    // Invariant: re-interning any pooled path's contents returns its id.
    PathId p = pool.back();
    EXPECT_EQ(u.InternPath(u.GetPath(p)), p);
    if (pool.size() > 64) pool.erase(pool.begin());
  }
}

}  // namespace
}  // namespace seqdl
