#include <gtest/gtest.h>

#include "src/engine/eval.h"
#include "src/queries/regex.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

std::vector<uint32_t> Word(const std::string& s) {
  std::vector<uint32_t> out;
  for (char c : s) out.push_back(static_cast<uint32_t>(c - 'a'));
  return out;
}

// --- CompileRegex: NFA semantics ------------------------------------------------

struct RegexCase {
  const char* pattern;
  const char* accepted;  // space-separated words; "-" for the empty word
  const char* rejected;
};

class RegexCompileTest : public ::testing::TestWithParam<RegexCase> {};

std::vector<std::string> Split(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ' ') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (std::string& s : out) {
    if (s == "-") s.clear();  // the empty word
  }
  return out;
}

TEST_P(RegexCompileTest, AcceptsAndRejects) {
  const RegexCase& c = GetParam();
  Result<Nfa> nfa = CompileRegex(c.pattern);
  ASSERT_TRUE(nfa.ok()) << c.pattern << ": " << nfa.status().ToString();
  for (const std::string& w : Split(c.accepted)) {
    EXPECT_TRUE(nfa->Accepts(Word(w)))
        << c.pattern << " should accept '" << w << "'";
  }
  for (const std::string& w : Split(c.rejected)) {
    EXPECT_FALSE(nfa->Accepts(Word(w)))
        << c.pattern << " should reject '" << w << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexCompileTest,
    ::testing::Values(
        RegexCase{"a", "a", "- b aa"},
        RegexCase{"ab", "ab", "- a b ba abc"},
        RegexCase{"a|b", "a b", "- ab ba"},
        RegexCase{"a*", "- a aa aaa", "b ab"},
        RegexCase{"a+", "a aa", "- b"},
        RegexCase{"a?", "- a", "aa b"},
        RegexCase{"(ab)*", "- ab abab", "a b aba"},
        RegexCase{"(a|b)*ab", "ab aab bab abab", "- a b ba aba"},
        RegexCase{"a(b|c)d", "abd acd", "ad abcd abbd aabd"},
        RegexCase{"(a|b)(a|b)", "aa ab ba bb", "- a b aaa"},
        RegexCase{"a*b*", "- a b ab aabb", "ba aba"},
        RegexCase{"(a*)*", "- a aa", "b"}));

TEST(RegexCompileTest, SyntaxErrors) {
  EXPECT_FALSE(CompileRegex("(ab").ok());
  EXPECT_FALSE(CompileRegex("a)").ok());
  EXPECT_FALSE(CompileRegex("*a").ok());
  EXPECT_FALSE(CompileRegex("a||b").ok());
  EXPECT_FALSE(CompileRegex("A").ok());
}

// --- RegexToDatalog: the compiled program agrees with the NFA -------------------

TEST(RegexToDatalogTest, MatcherAgreesWithNfaOnRandomStrings) {
  for (const char* pattern : {"(a|b)*ab", "a*b*", "(ab)*", "a(b|c)*"}) {
    Universe u;
    Result<RegexQuery> q = RegexToDatalog(u, pattern);
    ASSERT_TRUE(q.ok()) << pattern;
    Result<Nfa> nfa = CompileRegex(pattern);
    ASSERT_TRUE(nfa.ok());

    Instance in;
    StringWorkload w;
    w.count = 15;
    w.max_len = 5;
    w.alphabet = 3;
    w.seed = 77;
    w.rel = u.RelName(q->input);
    Result<Instance> strings = RandomStrings(u, w);
    ASSERT_TRUE(strings.ok());
    in.UnionWith(*strings);
    // Also include the empty string.
    in.Add(q->input, {kEmptyPath});

    Result<Instance> out = Eval(u, q->program, in);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    for (const Tuple& t : in.Tuples(q->input)) {
      std::vector<uint32_t> word;
      bool in_alphabet = true;
      for (Value v : u.GetPath(t[0])) {
        uint32_t letter = static_cast<uint32_t>(u.AtomName(v.atom())[0] - 'a');
        in_alphabet &= letter < nfa->alphabet;
        word.push_back(letter);
      }
      bool expected = in_alphabet && nfa->Accepts(word);
      EXPECT_EQ(out->Contains(q->output, t), expected)
          << pattern << " on " << u.FormatPath(t[0]);
    }
  }
}

TEST(RegexToDatalogTest, TwoMatchersCoexist) {
  Universe u;
  Result<RegexQuery> q1 = RegexToDatalog(u, "a*");
  Result<RegexQuery> q2 = RegexToDatalog(u, "b*");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_NE(q1->input, q2->input);

  Instance in;
  in.Add(q1->input, {u.PathOfChars("aa")});
  in.Add(q2->input, {u.PathOfChars("aa")});
  Program combined = q1->program;
  for (const Stratum& s : q2->program.strata) combined.strata.push_back(s);
  Result<Instance> out = Eval(u, combined, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Contains(q1->output, {u.PathOfChars("aa")}));
  EXPECT_FALSE(out->Contains(q2->output, {u.PathOfChars("aa")}));
}

}  // namespace
}  // namespace seqdl
