#include <gtest/gtest.h>

#include "src/analysis/features.h"
#include "src/analysis/safety.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

TEST(CorpusTest, AllEntriesParseAndValidate) {
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id << ": " << parsed.status().ToString();
    EXPECT_TRUE(ValidateProgram(u, parsed->program).ok()) << q.id;
  }
}

TEST(CorpusTest, LookupByIdWorks) {
  EXPECT_TRUE(FindPaperQuery("ex21_nfa").ok());
  EXPECT_TRUE(FindPaperQuery("squaring").ok());
  EXPECT_EQ(FindPaperQuery("does_not_exist").status().code(),
            StatusCode::kNotFound);
}

TEST(CorpusTest, DeclaredFeaturesMatchFragmentClaims) {
  struct Expected {
    const char* id;
    const char* features;
  };
  // Feature sets claimed by the paper for its examples.
  std::vector<Expected> cases = {
      {"ex31_only_as_e", "E"},
      {"ex31_only_as_air", "AIR"},
      {"ex44_only_as_noeq", "AI"},
      {"ex46_marked", "AEINR"},
      {"reach_ab", "IR"},
      {"squaring", "AIR"},
      {"ex23_nonterminating", "R"},
      {"doubling", "AIR"},
      {"undoubling", "AIR"},
  };
  for (const Expected& c : cases) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, c.id);
    ASSERT_TRUE(parsed.ok()) << c.id;
    Result<FeatureSet> want = FeatureSet::FromLetters(c.features);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(DetectFeatures(parsed->program), *want)
        << c.id << " got " << DetectFeatures(parsed->program).ToString();
  }
}

TEST(CorpusTest, TerminatingEntriesTerminateOnSamples) {
  // Every corpus query marked terminating must evaluate within budget on a
  // small generic instance mentioning its EDB relations.
  for (const PaperQuery& q : PaperCorpus()) {
    if (!q.terminating) continue;
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    Instance in;
    for (RelId rel : EdbRels(parsed->program)) {
      uint32_t arity = u.RelArity(rel);
      Tuple t;
      for (uint32_t i = 0; i < arity; ++i) t.push_back(u.PathOfChars("ab"));
      in.Add(rel, t);
    }
    EvalOptions opts;
    opts.max_facts = 100000;
    opts.max_iterations = 10000;
    Result<Instance> out = Eval(u, parsed->program, in, opts);
    EXPECT_TRUE(out.ok()) << q.id << ": " << out.status().ToString();
  }
}

TEST(CorpusTest, NonterminatingEntryExhaustsBudget) {
  Universe u;
  Result<ParsedQuery> parsed = ParsePaperQuery(u, "ex23_nonterminating");
  ASSERT_TRUE(parsed.ok());
  EvalOptions opts;
  opts.max_facts = 500;
  Result<Instance> out = Eval(u, parsed->program, Instance{}, opts);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(CorpusTest, OnlyAsVariantsAgree) {
  Universe u1, u2;
  Result<ParsedQuery> q1 = ParsePaperQuery(u1, "ex31_only_as_e");
  Result<ParsedQuery> q2 = ParsePaperQuery(u2, "ex31_only_as_air");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  const char* data = "R(a ++ a). R(a ++ b). R(b). R(eps). R(a ++ a ++ a).";
  Instance in1 = MustInstance(u1, data);
  Instance in2 = MustInstance(u2, data);
  Result<Instance> o1 = EvalQuery(u1, q1->program, in1, q1->output);
  Result<Instance> o2 = EvalQuery(u2, q2->program, in2, q2->output);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->ToString(u1), o2->ToString(u2));
}

TEST(CorpusTest, OnlyAsNoeqVariantAgrees) {
  Universe u1, u2;
  Result<ParsedQuery> q1 = ParsePaperQuery(u1, "ex31_only_as_e");
  Result<ParsedQuery> q2 = ParsePaperQuery(u2, "ex44_only_as_noeq");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  const char* data = "R(a ++ a). R(a ++ b). R(eps). R(a).";
  Instance in1 = MustInstance(u1, data);
  Instance in2 = MustInstance(u2, data);
  Result<Instance> o1 = EvalQuery(u1, q1->program, in1, q1->output);
  Result<Instance> o2 = EvalQuery(u2, q2->program, in2, q2->output);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(o1->ToString(u1), o2->ToString(u2));
}

TEST(CorpusTest, ReverseVariantsAgree) {
  Universe u1, u2;
  Result<ParsedQuery> q1 = ParsePaperQuery(u1, "ex43_reverse");
  Result<ParsedQuery> q2 = ParsePaperQuery(u2, "ex43_reverse_noarity");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // The hand-encoded variant only lacks arity; it must agree on data that
  // includes the encoding atoms a and b themselves.
  const char* data = "R(c ++ d). R(a ++ b ++ c). R(eps). R(a).";
  Instance in1 = MustInstance(u1, data);
  Instance in2 = MustInstance(u2, data);
  Result<Instance> o1 = EvalQuery(u1, q1->program, in1, q1->output);
  Result<Instance> o2 = EvalQuery(u2, q2->program, in2, q2->output);
  ASSERT_TRUE(o1.ok()) << o1.status().ToString();
  ASSERT_TRUE(o2.ok()) << o2.status().ToString();
  EXPECT_EQ(o1->ToString(u1), o2->ToString(u2));
}

TEST(CorpusTest, JsonSalesSwapsItemAndYear) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "json_sales");
  ASSERT_TRUE(q.ok());
  Instance in = MustInstance(
      u, "Sales(widget ++ y2020 ++ n100). Sales(widget ++ y2021 ++ n120). "
         "Sales(gadget ++ y2020 ++ n7).");
  Result<Instance> out = EvalQuery(u, q->program, in, q->output);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFacts(), 3u);
  EXPECT_TRUE(
      out->Contains(q->output, {u.PathOfWords("y2020 widget n100")}));
  EXPECT_TRUE(out->Contains(q->output, {u.PathOfWords("y2020 gadget n7")}));
}

TEST(CorpusTest, DeepEqualDetectsEqualSets) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "deep_equal");
  ASSERT_TRUE(q.ok());
  Instance eq = MustInstance(u, "A0(a ++ b). A0(c). B0(c). B0(a ++ b).");
  Result<Instance> out = EvalQuery(u, q->program, eq, q->output);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(q->output, {}));

  Universe u2;
  Result<ParsedQuery> q2 = ParsePaperQuery(u2, "deep_equal");
  ASSERT_TRUE(q2.ok());
  Instance neq = MustInstance(u2, "A0(a ++ b). B0(a).");
  Result<Instance> out2 = EvalQuery(u2, q2->program, neq, q2->output);
  ASSERT_TRUE(out2.ok());
  EXPECT_FALSE(out2->Contains(q2->output, {}));
}

TEST(CorpusTest, GcoreCommonNodes) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "gcore_common_nodes");
  ASSERT_TRUE(q.ok());
  Instance in = MustInstance(
      u, "P(n1 ++ n2 ++ n3). P(n2 ++ n3 ++ n4). P(n3 ++ n2).");
  Result<Instance> out = EvalQuery(u, q->program, in, q->output);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Nodes on all three paths: n2 and n3.
  EXPECT_EQ(out->NumFacts(), 2u);
  EXPECT_TRUE(out->Contains(q->output, {u.PathOfWords("n2")}));
  EXPECT_TRUE(out->Contains(q->output, {u.PathOfWords("n3")}));
}

TEST(CorpusTest, ProcessMiningFiltersViolatingLogs) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  ASSERT_TRUE(q.ok());
  Instance in = MustInstance(
      u,
      "R(start ++ co ++ pack ++ rp ++ end).\n"   // good
      "R(start ++ co ++ pack ++ end).\n"          // bad: co without rp
      "R(start ++ rp ++ end).\n"                  // good: no co at all
      "R(co ++ rp ++ co ++ rp).\n"                // good
      "R(co ++ rp ++ co).\n");                    // bad: second co
  Result<Instance> out = EvalQuery(u, q->program, in, q->output);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->NumFacts(), 3u);
  EXPECT_TRUE(out->Contains(q->output,
                            {u.PathOfWords("start co pack rp end")}));
  EXPECT_TRUE(out->Contains(q->output, {u.PathOfWords("start rp end")}));
  EXPECT_TRUE(out->Contains(q->output, {u.PathOfWords("co rp co rp")}));
}

TEST(CorpusTest, SquaringProducesQuadraticOutput) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "squaring");
  ASSERT_TRUE(q.ok());
  for (size_t n : {0u, 1u, 2u, 4u, 6u}) {
    Universe un;
    Result<ParsedQuery> qn = ParsePaperQuery(un, "squaring");
    ASSERT_TRUE(qn.ok());
    Instance in;
    in.Add(*un.FindRel("R"), {un.PathOfChars(std::string(n, 'a'))});
    Result<Instance> out = EvalQuery(un, qn->program, in, qn->output);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->NumFacts(), 1u);
    EXPECT_TRUE(out->Contains(qn->output,
                              {un.PathOfChars(std::string(n * n, 'a'))}));
  }
}

}  // namespace
}  // namespace seqdl
