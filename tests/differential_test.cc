// Randomized differential harness: the safety net for planner changes.
//
// Generates small random Sequence Datalog programs and EDB instances from
// a seeded RNG (no wall-clock anywhere — every run of a given seed sees
// the same case), evaluates each through every execution path the engine
// has, and asserts the rendered outputs are byte-identical:
//
//   * legacy one-shot Eval (compile + run per call);
//   * PreparedProgram::Run (compile-once, throwaway indexed base);
//   * forced full scans (RunOptions::use_index = false) — no index family
//     is ever probed;
//   * naive iteration (seminaive = false) and unordered scans
//     (reorder_scans = false);
//   * Session::Run over a Database (shared pre-indexed base, derived
//     overlay only);
//   * Database::Compile — the selectivity-aware planner fed by measured
//     Database::Stats().
//
// The paper's expressiveness results assume evaluation is invariant under
// how a rule body is matched; this harness is what lets the planner be
// refactored aggressively (selectivity ranking, scan reordering, new
// index families) without semantic drift.
//
// Iteration count defaults to 200 seeds; the SEQDL_DIFFTEST_ITERS
// environment variable scales it (the CI SEQDL_DIFFTEST job runs 10x).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/syntax/ast.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/view/view.h"

namespace seqdl {
namespace {

// Budgets shared by every mode. Generated programs terminate by
// construction (head arguments are single variables, so derived paths are
// subpaths of input paths — a finite set), but the budgets bound runaway
// joins; a seed whose evaluation exceeds them is skipped, since budget
// cutoffs depend on enumeration order.
constexpr size_t kMaxFacts = 20'000;
constexpr size_t kMaxIterations = 2'000;

struct RandomCase {
  Program program;
  Instance input;
};

// Generates one random case. All randomness flows from the seeded mt19937;
// `% n` keeps the draw sequence identical across standard libraries.
// Roughly half the cases draw from the paper's packing fragment: EDB
// paths may hold packed values `<...>` and body arguments may pack
// subexpressions, so the harness also pins the engine's nested-value
// matching across every execution mode. Independently, roughly half the
// cases add a second stratum whose rules may *negate IDB relations
// defined in the first* — multi-stratum negation, the part of stratified
// semantics a single stratum can never exercise (negation there is
// restricted to EDB relations).
class CaseGenerator {
 public:
  CaseGenerator(Universe& u, uint64_t seed) : u_(u), rng_(seed) {}

  bool packing() const { return packing_; }
  bool multi_stratum() const { return multi_stratum_; }
  /// Some rule negates a stratum-1 IDB relation (subset of
  /// multi_stratum() cases).
  bool negates_idb() const { return negates_idb_; }

  RandomCase Generate() {
    packing_ = Pick(2) == 0;
    multi_stratum_ = Pick(2) == 0;
    negates_idb_ = false;
    // Symbol pools.
    std::vector<AtomId> atoms;
    for (char c : {'a', 'b', 'c', 'd'}) {
      atoms.push_back(u_.InternAtom(std::string(1, c)));
    }
    std::vector<RelId> edb, idb;
    size_t num_edb = 2 + Pick(2);  // 2-3
    for (size_t i = 0; i < num_edb; ++i) {
      edb.push_back(*u_.InternRel("E" + std::to_string(i),
                                  static_cast<uint32_t>(1 + Pick(2))));
    }
    size_t num_idb = 1 + Pick(2);  // 1-2
    for (size_t i = 0; i < num_idb; ++i) {
      idb.push_back(*u_.InternRel("I" + std::to_string(i),
                                  static_cast<uint32_t>(1 + Pick(2))));
    }
    edb_rels_ = edb;

    RandomCase c;
    // EDB facts: 3-8 tuples per relation, paths of 0-3 random atoms. Skew
    // roughly half the relations by repeating one "hot" atom, so the
    // selectivity-aware planner actually sees uneven buckets.
    for (RelId rel : edb) {
      size_t tuples = 3 + Pick(6);
      bool skewed = Pick(2) == 0;
      for (size_t t = 0; t < tuples; ++t) {
        Tuple tuple;
        for (uint32_t col = 0; col < u_.RelArity(rel); ++col) {
          std::vector<Value> path;
          size_t len = Pick(4);
          for (size_t i = 0; i < len; ++i) {
            size_t a = skewed && Pick(2) == 0 ? 0 : Pick(atoms.size());
            Value v = Value::Atom(atoms[a]);
            // Packing-fragment cases nest some values one level deep:
            // <eps>, <b>, or <b·c> instead of a bare atom.
            if (packing_ && Pick(5) == 0) {
              std::vector<Value> inner;
              size_t inner_len = Pick(3);
              for (size_t k = 0; k < inner_len; ++k) {
                inner.push_back(Value::Atom(atoms[Pick(atoms.size())]));
              }
              v = Value::Packed(u_.InternPath(inner));
            }
            path.push_back(v);
          }
          tuple.push_back(u_.InternPath(path));
        }
        c.input.Add(rel, std::move(tuple));
      }
    }

    // Stratum 1: 2-4 rules (recursion through IDB body literals
    // exercises the semi-naive delta path; negation here is restricted
    // to EDB relations, so the stratum is trivially stratified).
    Stratum stratum;
    size_t num_rules = 2 + Pick(3);
    for (size_t i = 0; i < num_rules; ++i) {
      stratum.rules.push_back(GenerateRule(atoms, edb, idb, idb, edb));
    }
    c.program.strata.push_back(std::move(stratum));

    // Stratum 2 (about half the cases): heads draw from fresh relations
    // (a relation defined in stratum 1 must not gain rules later), the
    // positive body may join EDB, stratum-1 IDB, and stratum-2 IDB, and
    // the negated literal may target stratum-1 IDB relations — the
    // stratified-negation shape proper.
    if (multi_stratum_) {
      std::vector<RelId> idb2;
      size_t num_idb2 = 1 + Pick(2);  // 1-2
      for (size_t i = 0; i < num_idb2; ++i) {
        idb2.push_back(*u_.InternRel("J" + std::to_string(i),
                                     static_cast<uint32_t>(1 + Pick(2))));
      }
      std::vector<RelId> positive = edb;
      positive.insert(positive.end(), idb.begin(), idb.end());
      std::vector<RelId> negatable = edb;
      negatable.insert(negatable.end(), idb.begin(), idb.end());
      Stratum second;
      size_t num_rules2 = 1 + Pick(2);  // 1-2
      for (size_t i = 0; i < num_rules2; ++i) {
        second.rules.push_back(
            GenerateRule(atoms, positive, idb2, idb2, negatable));
      }
      c.program.strata.push_back(std::move(second));
    }
    return c;
  }

 private:
  size_t Pick(size_t n) { return rng_() % n; }

  bool IsEdb(RelId rel) const {
    for (RelId e : edb_rels_) {
      if (e == rel) return true;
    }
    return false;
  }

  VarId PathVar(size_t i) {
    return u_.InternVar(VarKind::kPath, "p" + std::to_string(i));
  }
  VarId AtomVar(size_t i) {
    return u_.InternVar(VarKind::kAtomic, "a" + std::to_string(i));
  }

  ExprItem RandomItem(const std::vector<AtomId>& atoms) {
    // Packing-fragment cases spend one slot in six on a packed
    // subexpression `<...>`; its inner items may introduce fresh
    // variables, bound by matching against the packed value's contents.
    if (packing_ && Pick(6) == 0) {
      std::vector<ExprItem> inner;
      size_t n = 1 + Pick(2);
      for (size_t i = 0; i < n; ++i) inner.push_back(FlatItem(atoms));
      return ExprItem::Pack(PathExpr(std::move(inner)));
    }
    return FlatItem(atoms);
  }

  ExprItem FlatItem(const std::vector<AtomId>& atoms) {
    switch (Pick(5)) {
      case 0:
      case 1:
        return ExprItem::Const(Value::Atom(atoms[Pick(atoms.size())]));
      case 2:
      case 3:
        return ExprItem::PathVar(PathVar(Pick(4)));
      default:
        return ExprItem::AtomVar(AtomVar(Pick(3)));
    }
  }

  PathExpr RandomExpr(const std::vector<AtomId>& atoms, size_t max_items) {
    std::vector<ExprItem> items;
    size_t n = 1 + Pick(max_items);
    for (size_t i = 0; i < n; ++i) items.push_back(RandomItem(atoms));
    return PathExpr(std::move(items));
  }

  /// One safe rule: positive body literals draw from `base_pool` (70%)
  /// or `rec_pool` (30%, same-stratum recursion), the head from
  /// `head_pool`, the optional negated literal from `neg_pool`. The
  /// single-stratum caller passes (edb, idb, idb, edb); the stratum-2
  /// caller widens base and negation pools to include stratum-1 IDB.
  Rule GenerateRule(const std::vector<AtomId>& atoms,
                    const std::vector<RelId>& base_pool,
                    const std::vector<RelId>& rec_pool,
                    const std::vector<RelId>& head_pool,
                    const std::vector<RelId>& neg_pool) {
    Rule r;
    // Positive body: 1-3 predicate literals, mostly from the base pool
    // (recursion-pool literals make the rule recursive).
    size_t body_preds = 1 + Pick(3);
    for (size_t i = 0; i < body_preds; ++i) {
      bool use_rec = !rec_pool.empty() && Pick(10) < 3;
      RelId rel = use_rec ? rec_pool[Pick(rec_pool.size())]
                          : base_pool[Pick(base_pool.size())];
      Predicate pred;
      pred.rel = rel;
      for (uint32_t col = 0; col < u_.RelArity(rel); ++col) {
        pred.args.push_back(RandomExpr(atoms, 3));
      }
      r.body.push_back(Literal::Pred(std::move(pred)));
    }

    // Variables bound by the positive predicates; everything below only
    // uses these, which keeps every generated rule safe.
    std::vector<VarId> bound;
    for (const Literal& l : r.body) CollectVars(l, &bound);

    // Optional equation whose left side is a single bound variable (so
    // equation scheduling always succeeds); the right side may introduce
    // fresh variables, bound by matching.
    if (!bound.empty() && Pick(4) == 0) {
      VarId lhs = bound[Pick(bound.size())];
      r.body.push_back(
          Literal::Eq(VarExpr(u_, lhs), RandomExpr(atoms, 2)));
      CollectVars(r.body.back(), &bound);
    }

    // Optional negated literal (over bound variables / constants only)
    // from the stratification-safe pool: EDB in stratum 1, EDB plus
    // stratum-1 IDB in stratum 2.
    if (!bound.empty() && Pick(4) == 0) {
      RelId rel = neg_pool[Pick(neg_pool.size())];
      if (!IsEdb(rel)) negates_idb_ = true;
      Predicate pred;
      pred.rel = rel;
      for (uint32_t col = 0; col < u_.RelArity(rel); ++col) {
        if (Pick(2) == 0) {
          pred.args.push_back(VarExpr(u_, bound[Pick(bound.size())]));
        } else {
          pred.args.push_back(
              ConstExpr(Value::Atom(atoms[Pick(atoms.size())])));
        }
      }
      r.body.push_back(Literal::Pred(std::move(pred), /*negated=*/true));
    }

    // Head: a random relation from the head pool; every argument is a
    // single bound variable (or a constant), which both guarantees
    // safety and bounds derived paths to subpaths of the input — the
    // termination argument.
    RelId head_rel = head_pool[Pick(head_pool.size())];
    r.head.rel = head_rel;
    for (uint32_t col = 0; col < u_.RelArity(head_rel); ++col) {
      if (!bound.empty() && Pick(4) != 0) {
        r.head.args.push_back(VarExpr(u_, bound[Pick(bound.size())]));
      } else {
        r.head.args.push_back(
            ConstExpr(Value::Atom(atoms[Pick(atoms.size())])));
      }
    }
    return r;
  }

  Universe& u_;
  std::mt19937 rng_;
  /// This case draws from the packing fragment (set per Generate()).
  bool packing_ = false;
  /// This case has a second stratum (set per Generate()).
  bool multi_stratum_ = false;
  /// Some stratum-2 rule negates a stratum-1 IDB relation.
  bool negates_idb_ = false;
  std::vector<RelId> edb_rels_;
};

size_t Iterations() {
  if (const char* env = std::getenv("SEQDL_DIFFTEST_ITERS")) {
    size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return n;
  }
  return 200;
}

TEST(DifferentialTest, AllExecutionModesAgreeOnRandomPrograms) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0, packed_cases = 0;
  size_t multi_stratum_cases = 0, idb_negation_cases = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    CaseGenerator gen(u, seed);
    RandomCase c = gen.Generate();
    if (gen.packing()) ++packed_cases;
    if (gen.multi_stratum()) ++multi_stratum_cases;
    if (gen.negates_idb()) ++idb_negation_cases;
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 FormatProgram(u, c.program) + c.input.ToString(u));

    // Reference: legacy one-shot Eval with default options.
    EvalOptions base;
    base.max_facts = kMaxFacts;
    base.max_iterations = kMaxIterations;
    Result<Instance> ref = Eval(u, c.program, c.input, base);
    if (!ref.ok()) {
      // Budget exhaustion is order-dependent, so the seed cannot be
      // compared across modes; generated rules are safe by construction,
      // anything else is a real failure.
      ASSERT_EQ(ref.status().code(), StatusCode::kResourceExhausted)
          << ref.status().ToString();
      ++skipped;
      continue;
    }
    std::string expected = ref->ToString(u);

    auto check = [&](const char* mode, const Result<Instance>& got) {
      ASSERT_TRUE(got.ok()) << mode << ": " << got.status().ToString();
      EXPECT_EQ(expected, got->ToString(u)) << mode;
    };

    // One-shot Eval variants: naive iteration, body-order scans.
    EvalOptions naive = base;
    naive.seminaive = false;
    check("naive", Eval(u, c.program, c.input, naive));
    EvalOptions unordered = base;
    unordered.reorder_scans = false;
    check("no-reorder", Eval(u, c.program, c.input, unordered));

    // Prepared program, with indexes and with forced full scans.
    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;
    check("prepared", prog->Run(c.input, ropts));
    RunOptions no_index = ropts;
    no_index.use_index = false;
    check("full-scan", prog->Run(c.input, no_index));

    // Database/Session: shared pre-indexed base; Run returns the derived
    // overlay only, so union the EDB back for comparison.
    Result<Database> db = Database::Open(u, c.input);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Session session = db->OpenSession();
    auto check_derived = [&](const char* mode, Result<Instance> derived) {
      ASSERT_TRUE(derived.ok()) << mode << ": "
                                << derived.status().ToString();
      Instance full = db->edb();
      full.UnionWith(std::move(*derived));
      EXPECT_EQ(expected, full.ToString(u)) << mode;
    };
    check_derived("session", session.Run(*prog, ropts));

    // The selectivity-aware planner, fed by measured statistics.
    Result<PreparedProgram> planned = db->Compile(c.program);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    check_derived("selectivity-plan", session.Run(*planned, ropts));

    ++compared;
  }
  // Guard against generator drift making the harness vacuous.
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
  // And against the packing fragment silently dropping out of coverage.
  EXPECT_GE(packed_cases * 4, iterations)
      << packed_cases << " of " << iterations << " seeds drew packed values";
  // Multi-stratum negation must stay covered too: about half the seeds
  // carry a second stratum, and a meaningful fraction of those actually
  // negate a stratum-1 IDB relation.
  EXPECT_GE(multi_stratum_cases * 4, iterations)
      << multi_stratum_cases << " of " << iterations
      << " seeds drew a second stratum";
  EXPECT_GE(idb_negation_cases * 40, iterations)
      << idb_negation_cases << " of " << iterations
      << " seeds negated a stratum-1 IDB relation";
}

// The ingest differential: facts arriving through Append must be
// indistinguishable from facts present at Open. For every random case the
// EDB is split into three batches ingested at epochs 0/1/2; at each epoch
// a pinned snapshot's results (and its materialized EDB) must be
// byte-identical to a fresh Database::Open on exactly that epoch's facts
// — and the pinned snapshots must keep producing those bytes after later
// appends and after Compact() rewrites the segment stack underneath them.
TEST(DifferentialTest, IncrementalIngestMatchesColdOpenPerEpoch) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    RandomCase c = CaseGenerator(u, seed).Generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 FormatProgram(u, c.program) + c.input.ToString(u));

    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;

    // Split the EDB round-robin into three ingest batches.
    std::vector<Instance> batches(3);
    {
      size_t i = 0;
      for (RelId rel : c.input.Relations()) {
        for (const Tuple& t : c.input.Tuples(rel)) {
          batches[i++ % batches.size()].Add(rel, t);
        }
      }
    }

    Result<Database> db = Database::Open(u, batches[0]);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Append(batches[1]).ok());
    ASSERT_TRUE(db->Append(batches[2]).ok());
    ASSERT_EQ(db->epoch(), 2u);

    // Per epoch: the cold-open expectation on that epoch's facts, and
    // the matching pinned snapshot (reopened per epoch via a throwaway
    // prefix database so the snapshot predates the later appends).
    Instance accumulated;
    std::vector<std::string> expected_derived, expected_edb;
    bool budget_hit = false;
    for (size_t e = 0; e < batches.size(); ++e) {
      accumulated.UnionWith(batches[e]);
      Result<Database> cold = Database::Open(u, accumulated);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      Result<Instance> derived = cold->Snapshot().Run(*prog, ropts);
      if (!derived.ok()) {
        ASSERT_EQ(derived.status().code(), StatusCode::kResourceExhausted)
            << derived.status().ToString();
        budget_hit = true;
        break;
      }
      expected_derived.push_back(derived->ToString(u));
      expected_edb.push_back(cold->edb().ToString(u));
    }
    if (budget_hit) {
      ++skipped;
      continue;
    }

    // Replay the ingest with live pinned snapshots this time.
    Result<Database> live = Database::Open(u, batches[0]);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    std::vector<Session> pinned;
    pinned.push_back(live->Snapshot());
    ASSERT_TRUE(live->Append(batches[1]).ok());
    pinned.push_back(live->Snapshot());
    ASSERT_TRUE(live->Append(batches[2]).ok());
    pinned.push_back(live->Snapshot());

    auto check_all = [&](const char* phase) {
      for (size_t e = 0; e < pinned.size(); ++e) {
        EXPECT_EQ(pinned[e].epoch(), e) << phase;
        Result<Instance> got = pinned[e].Run(*prog, ropts);
        ASSERT_TRUE(got.ok())
            << phase << " epoch " << e << ": " << got.status().ToString();
        EXPECT_EQ(expected_derived[e], got->ToString(u))
            << phase << " epoch " << e;
        EXPECT_EQ(expected_edb[e], pinned[e].edb().ToString(u))
            << phase << " epoch " << e;
      }
    };
    check_all("pre-compaction");
    // Compaction rewrites the live stack to one segment; every pinned
    // snapshot must be unaffected, bit for bit.
    live->Compact();
    EXPECT_EQ(live->NumSegments(), 1u);
    EXPECT_EQ(live->epoch(), 2u);
    check_all("post-compaction");
    ++compared;
  }
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
}

// The incremental-maintenance differential: a materialized view kept
// current across a random append schedule by semi-naive delta evaluation
// (ViewManager::Refresh → PreparedProgram::RunDelta) must be
// byte-identical to a cold fixpoint over exactly the same facts at every
// epoch. The schedule stresses the hard cases on purpose: appends landing
// in relations some rule negates (forcing stratum recomputation and
// retraction cascades), appends that promote previously *derived* facts
// to EDB (the view must drop them, like a cold run does), and a
// mid-sequence Compact() that folds the segment stack underneath the
// stored snapshot's publish stamps.
TEST(DifferentialTest, MaintainedViewMatchesColdFixpointPerEpoch) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0;
  uint64_t delta_refreshes = 0, strata_recomputed = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    RandomCase c = CaseGenerator(u, seed).Generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 FormatProgram(u, c.program) + c.input.ToString(u));

    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;

    // Split the EDB round-robin into three ingest batches.
    std::vector<Instance> batches(3);
    {
      size_t i = 0;
      for (RelId rel : c.input.Relations()) {
        for (const Tuple& t : c.input.Tuples(rel)) {
          batches[i++ % batches.size()].Add(rel, t);
        }
      }
    }

    Result<Database> live = Database::Open(u, batches[0]);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    Instance accumulated = batches[0];
    bool budget_hit = false;

    // One epoch's comparison: the maintained view against a cold fixpoint
    // on the accumulated facts. Budget exhaustion on either side skips
    // the seed (cutoffs are enumeration-order-dependent, and the delta
    // path enumerates in a different order than the cold one).
    auto check = [&](const char* phase) {
      Result<Database> cold = Database::Open(u, accumulated);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      Result<Instance> want = cold->Snapshot().Run(*prog, ropts);
      if (!want.ok()) {
        ASSERT_EQ(want.status().code(), StatusCode::kResourceExhausted)
            << want.status().ToString();
        budget_hit = true;
        return;
      }
      auto view = live->views().Refresh("view", *prog, ropts);
      if (!view.ok()) {
        ASSERT_EQ(view.status().code(), StatusCode::kResourceExhausted)
            << phase << ": " << view.status().ToString();
        budget_hit = true;
        return;
      }
      EXPECT_EQ((*view)->epoch(), live->epoch()) << phase;
      EXPECT_EQ(want->ToString(u), (*view)->idb().ToString(u)) << phase;
    };

    check("epoch 0 (cold)");
    if (budget_hit) {
      ++skipped;
      continue;
    }

    // Promotion batch: a couple of facts the view just *derived*, to be
    // appended as EDB later — the refreshed view must stop reporting
    // them as derived, exactly like a cold run at that epoch.
    Instance promote;
    {
      std::shared_ptr<const ViewSnapshot> v = live->views().Lookup("view");
      ASSERT_NE(v, nullptr);
      size_t taken = 0;
      for (RelId rel : v->idb().Relations()) {
        for (const Tuple& t : v->idb().Tuples(rel)) {
          if (taken < 2) {
            promote.Add(rel, t);
            ++taken;
          }
        }
      }
    }

    auto append_and_check = [&](const Instance& batch, const char* phase) {
      ASSERT_TRUE(live->Append(batch).ok()) << phase;
      accumulated.UnionWith(batch);
      check(phase);
    };
    append_and_check(batches[1], "epoch 1 (delta)");
    if (!budget_hit) append_and_check(promote, "epoch 2 (IDB promotion)");
    if (!budget_hit) {
      // Folding the stack keeps epoch and facts; the refreshed view must
      // not move (and a fresh refresh right after is a pure hit).
      live->Compact();
      check("post-compaction");
    }
    if (!budget_hit) append_and_check(batches[2], "epoch 3 (post-compact delta)");
    if (budget_hit) {
      ++skipped;
      continue;
    }

    ViewManager::Counters counters = live->views().counters();
    delta_refreshes += counters.delta_refreshes;
    strata_recomputed += counters.strata_recomputed;
    ++compared;
  }
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
  // The suite must actually exercise both maintenance paths: incremental
  // delta refreshes, and wholesale stratum recomputation (negation over
  // changed inputs / shrunk positive inputs).
  EXPECT_GT(delta_refreshes, 0u);
  EXPECT_GT(strata_recomputed, 0u);
}

/// Draws a random ~third of `from`'s facts with a schedule RNG that is
/// deliberately separate from the case generator's — victim choice must
/// not perturb which program/EDB a seed denotes.
Instance SelectVictims(std::mt19937& sched, const Instance& from) {
  Instance victims;
  for (RelId rel : from.Relations()) {
    for (const Tuple& t : from.Tuples(rel)) {
      if (sched() % 3 == 0) victims.Add(rel, t);
    }
  }
  return victims;
}

// The retraction differential: a materialized view maintained across a
// random schedule of retractions interleaved with appends — tombstone
// epochs driving counting DRed (delete/re-derive) or wholesale stratum
// recomputation — must stay byte-identical to a cold fixpoint over
// exactly the visible facts at every epoch. The schedule also re-appends
// some retracted facts (the visibility flip in both directions) and
// compacts mid-sequence, after which the stack must hold no tombstones
// at all.
TEST(DifferentialTest, RetractionMaintainedViewMatchesColdFixpointPerEpoch) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0;
  uint64_t dred_refreshes = 0, strata_recomputed = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    RandomCase c = CaseGenerator(u, seed).Generate();
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" +
                 FormatProgram(u, c.program) + c.input.ToString(u));
    std::mt19937 sched(seed * 7919 + 13);

    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;

    Result<Database> live = Database::Open(u, c.input);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
    bool budget_hit = false;

    // One epoch's comparison: the maintained view against a cold fixpoint
    // on the currently *visible* facts (live->edb() materializes the
    // stack with tombstone shadowing applied).
    auto check = [&](const char* phase) {
      Result<Database> cold = Database::Open(u, live->edb());
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      Result<Instance> want = cold->Snapshot().Run(*prog, ropts);
      if (!want.ok()) {
        ASSERT_EQ(want.status().code(), StatusCode::kResourceExhausted)
            << want.status().ToString();
        budget_hit = true;
        return;
      }
      auto view = live->views().Refresh("view", *prog, ropts);
      if (!view.ok()) {
        ASSERT_EQ(view.status().code(), StatusCode::kResourceExhausted)
            << phase << ": " << view.status().ToString();
        budget_hit = true;
        return;
      }
      EXPECT_EQ((*view)->epoch(), live->epoch()) << phase;
      EXPECT_EQ(want->ToString(u), (*view)->idb().ToString(u)) << phase;
    };

    check("epoch 0 (cold)");
    if (budget_hit) {
      ++skipped;
      continue;
    }

    // Retract a random third of the visible EDB, re-append a random
    // third of the victims (flip back), retract again, compact (folding
    // every tombstone away), then retract once more on the folded stack.
    Instance victims = SelectVictims(sched, live->edb());
    size_t retracted = 0;
    ASSERT_TRUE(live->Retract(victims, &retracted).ok());
    EXPECT_EQ(retracted, victims.NumFacts());
    check("shrink epoch (DRed)");
    if (!budget_hit) {
      ASSERT_TRUE(live->Append(SelectVictims(sched, victims)).ok());
      check("re-append epoch (flip back)");
    }
    if (!budget_hit) {
      ASSERT_TRUE(live->Retract(SelectVictims(sched, live->edb())).ok());
      check("second shrink epoch");
    }
    if (!budget_hit) {
      live->Compact();
      EXPECT_EQ(live->NumTombstones(), 0u) << "tombstones survived Compact";
      check("post-compaction");
    }
    if (!budget_hit) {
      ASSERT_TRUE(live->Retract(SelectVictims(sched, live->edb())).ok());
      check("shrink epoch on folded stack");
    }
    if (budget_hit) {
      ++skipped;
      continue;
    }

    ViewManager::Counters counters = live->views().counters();
    dred_refreshes += counters.dred_refreshes;
    strata_recomputed += counters.strata_recomputed;
    ++compared;
  }
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
  // The suite must actually exercise both shrink paths: DRed
  // delete/re-derive on maintained strata, and wholesale recomputation
  // of strata reading a changed negated input.
  EXPECT_GT(dred_refreshes, 0u);
  EXPECT_GT(strata_recomputed, 0u);
}

// The server differential: running a random program through a loopback
// TCP server (text in, rendered text out — a *separate Universe*, so
// every symbol is re-interned from the shipped source) must produce
// byte-identical output to in-process Session::Run on the generating
// Universe. Exercised across an append epoch (the server ingests batch 2
// over the wire) and across a compaction, per the epoch/MVCC contract.
TEST(DifferentialTest, LoopbackServerMatchesInProcess) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    RandomCase c = CaseGenerator(u, seed).Generate();
    std::string program_text = FormatProgram(u, c.program);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + program_text +
                 c.input.ToString(u));

    // Split the EDB into the open batch and one appended batch.
    std::vector<Instance> batches(2);
    {
      size_t i = 0;
      for (RelId rel : c.input.Relations()) {
        for (const Tuple& t : c.input.Tuples(rel)) {
          batches[i++ % batches.size()].Add(rel, t);
        }
      }
    }

    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;

    // In-process expectations: derived-overlay renderings per epoch.
    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    Result<Database> db = Database::Open(u, batches[0]);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Result<Instance> derived0 = db->Snapshot().Run(*prog, ropts);
    ASSERT_TRUE(db->Append(batches[1]).ok());
    Result<Instance> derived1 = db->Snapshot().Run(*prog, ropts);
    if (!derived0.ok() || !derived1.ok()) {
      const Status& st =
          derived0.ok() ? derived1.status() : derived0.status();
      ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
      ++skipped;
      continue;
    }
    std::string expected0 = derived0->ToString(u);
    std::string expected1 = derived1->ToString(u);

    // Server side: a fresh Universe fed only by wire text.
    Universe server_u;
    Result<Instance> server_edb =
        ParseInstance(server_u, batches[0].ToString(u));
    ASSERT_TRUE(server_edb.ok()) << server_edb.status().ToString();
    Result<Database> server_db =
        Database::Open(server_u, std::move(*server_edb));
    ASSERT_TRUE(server_db.ok()) << server_db.status().ToString();
    ServiceOptions sopts;
    sopts.run_options = ropts;
    // Cache off: every wire run must re-evaluate, so the post-compaction
    // request exercises the merged single-segment stack instead of a
    // (trivially correct) cache hit.
    sopts.result_cache_entries = 0;
    DatabaseService service(server_u, std::move(*server_db), sopts);
    ServerOptions server_opts;
    server_opts.threads = 2;
    Result<std::unique_ptr<Server>> server =
        Server::Start(service, server_opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Result<Client> client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    Result<protocol::RunReply> at0 = client->Run(program_text);
    ASSERT_TRUE(at0.ok()) << at0.status().ToString();
    EXPECT_EQ(at0->epoch, 0u);
    EXPECT_EQ(expected0, at0->rendered) << "server @ epoch 0";

    Result<protocol::AppendReply> appended =
        client->Append(batches[1].ToString(u));
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    Result<protocol::RunReply> at1 = client->Run(program_text);
    ASSERT_TRUE(at1.ok()) << at1.status().ToString();
    EXPECT_EQ(at1->epoch, appended->db.epoch);
    EXPECT_EQ(expected1, at1->rendered) << "server @ epoch 1";

    // Compaction folds the server's stack; results must not move.
    Result<protocol::CompactReply> compacted = client->Compact();
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    Result<protocol::RunReply> after = client->Run(program_text);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(expected1, after->rendered) << "server post-compaction";

    client->Close();
    (*server)->Shutdown();
    ++compared;
  }
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
}

// The retraction loopback differential: the `retract` wire verb must be
// indistinguishable from Database::Retract in process. Victims are drawn
// on the generating Universe and shipped as instance text (the server
// re-interns every symbol); renders are compared at the shrink epoch and
// again after a server-side Compact folds the tombstones away.
TEST(DifferentialTest, RetractionLoopbackServerMatchesInProcess) {
  size_t iterations = Iterations();
  size_t compared = 0, skipped = 0;
  uint64_t total_retracted = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    Universe u;
    RandomCase c = CaseGenerator(u, seed).Generate();
    std::string program_text = FormatProgram(u, c.program);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + program_text +
                 c.input.ToString(u));
    std::mt19937 sched(seed * 7919 + 13);
    Instance victims = SelectVictims(sched, c.input);

    RunOptions ropts;
    ropts.max_facts = kMaxFacts;
    ropts.max_iterations = kMaxIterations;

    // In-process expectations: derived-overlay renderings before and
    // after the retraction.
    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, c.program);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    Result<Database> db = Database::Open(u, c.input);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Result<Instance> derived0 = db->Snapshot().Run(*prog, ropts);
    size_t retracted = 0;
    ASSERT_TRUE(db->Retract(victims, &retracted).ok());
    EXPECT_EQ(retracted, victims.NumFacts());
    Result<Instance> derived1 = db->Snapshot().Run(*prog, ropts);
    if (!derived0.ok() || !derived1.ok()) {
      const Status& st =
          derived0.ok() ? derived1.status() : derived0.status();
      ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
      ++skipped;
      continue;
    }
    std::string expected0 = derived0->ToString(u);
    std::string expected1 = derived1->ToString(u);

    // Server side: a fresh Universe fed only by wire text. Cache off so
    // the post-retraction and post-compaction runs re-evaluate against
    // the tombstoned / folded stack instead of hitting a cached render.
    Universe server_u;
    Result<Instance> server_edb = ParseInstance(server_u, c.input.ToString(u));
    ASSERT_TRUE(server_edb.ok()) << server_edb.status().ToString();
    Result<Database> server_db =
        Database::Open(server_u, std::move(*server_edb));
    ASSERT_TRUE(server_db.ok()) << server_db.status().ToString();
    ServiceOptions sopts;
    sopts.run_options = ropts;
    sopts.result_cache_entries = 0;
    DatabaseService service(server_u, std::move(*server_db), sopts);
    ServerOptions server_opts;
    server_opts.threads = 2;
    Result<std::unique_ptr<Server>> server =
        Server::Start(service, server_opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Result<Client> client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    Result<protocol::RunReply> at0 = client->Run(program_text);
    ASSERT_TRUE(at0.ok()) << at0.status().ToString();
    EXPECT_EQ(expected0, at0->rendered) << "server @ epoch 0";

    Result<protocol::RetractReply> rr = client->Retract(victims.ToString(u));
    ASSERT_TRUE(rr.ok()) << rr.status().ToString();
    EXPECT_EQ(rr->retracted, retracted) << "wire retraction count";
    total_retracted += rr->retracted;
    Result<protocol::RunReply> at1 = client->Run(program_text);
    ASSERT_TRUE(at1.ok()) << at1.status().ToString();
    EXPECT_EQ(at1->epoch, rr->db.epoch);
    EXPECT_EQ(expected1, at1->rendered) << "server @ shrink epoch";

    // Compaction folds the tombstones out of the server's stack; results
    // must not move.
    Result<protocol::CompactReply> compacted = client->Compact();
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    Result<protocol::RunReply> after = client->Run(program_text);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(expected1, after->rendered) << "server post-compaction";

    client->Close();
    (*server)->Shutdown();
    ++compared;
  }
  EXPECT_GE(compared * 5, iterations * 4)
      << compared << " of " << iterations << " seeds compared (" << skipped
      << " skipped)";
  EXPECT_GT(total_retracted, 0u);
}

}  // namespace
}  // namespace seqdl
