#include <gtest/gtest.h>

#include "src/analysis/features.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/two_bounded.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

TEST(TwoBoundedTest, CheckAcceptsAndRejects) {
  Universe u;
  EXPECT_TRUE(CheckTwoBounded(u, MustInstance(u, "R(a). R(a ++ b).")).ok());
  EXPECT_FALSE(
      CheckTwoBounded(u, MustInstance(u, "Q(a ++ b ++ c).")).ok());
  EXPECT_FALSE(CheckTwoBounded(u, MustInstance(u, "P(eps).")).ok());
  EXPECT_FALSE(CheckTwoBounded(u, MustInstance(u, "W(<a>).")).ok());
}

TEST(TwoBoundedTest, EncodingSplitsByLength) {
  Universe u;
  Instance i = MustInstance(u, "R(a). R(b ++ c). R(d).");
  ClassicalEncoding enc;
  Result<Instance> ic = EncodeTwoBounded(u, i, &enc);
  ASSERT_TRUE(ic.ok()) << ic.status().ToString();
  auto [r1, r2] = enc.rels.at(*u.FindRel("R"));
  EXPECT_EQ(ic->Tuples(r1).size(), 2u);  // a, d
  EXPECT_EQ(ic->Tuples(r2).size(), 1u);  // (b, c)
  EXPECT_TRUE(
      ic->Contains(r2, {u.PathOfChars("b"), u.PathOfChars("c")}));
}

// Runs both the original program and its classical simulation on a
// two-bounded instance and compares the encoded outputs for relation `S`.
void ExpectSimulationAgrees(const std::string& program_text,
                            const std::string& instance_text) {
  Universe u;
  Program p = MustParse(u, program_text);
  ClassicalEncoding enc;
  Result<Program> pc = SimulateTwoBounded(u, p, &enc);
  ASSERT_TRUE(pc.ok()) << pc.status().ToString();

  Instance i = MustInstance(u, instance_text);
  Result<Instance> ic = EncodeTwoBounded(u, i, &enc);
  ASSERT_TRUE(ic.ok()) << ic.status().ToString();

  Result<Instance> direct = Eval(u, p, i);
  Result<Instance> classical = Eval(u, *pc, *ic);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(classical.ok()) << classical.status().ToString();

  // Encode the direct output of S and compare against the classical S1/S2.
  RelId s = *u.FindRel("S");
  auto it = enc.rels.find(s);
  ASSERT_NE(it, enc.rels.end());
  auto [s1, s2] = it->second;
  Instance direct_s = direct->Project({s});
  ClassicalEncoding out_enc = enc;
  Result<Instance> direct_encoded = EncodeTwoBounded(u, direct_s, &out_enc);
  ASSERT_TRUE(direct_encoded.ok())
      << "output is not two-bounded: " << direct_encoded.status().ToString();
  EXPECT_EQ(direct_encoded->Tuples(s1), classical->Tuples(s1))
      << "S1 mismatch\ndirect:\n"
      << direct_encoded->ToString(u) << "classical:\n"
      << classical->Project({s1, s2}).ToString(u);
  EXPECT_EQ(direct_encoded->Tuples(s2), classical->Tuples(s2))
      << "S2 mismatch";
}

TEST(TwoBoundedTest, SemipositiveWithNegation) {
  // Edges with only-black targets, in a single-IDB form.
  ExpectSimulationAgrees(
      "S(@x) <- R(@x ++ @y), !B(@y).\n",
      "R(a ++ b). R(c ++ d). R(d ++ d). B(b). B(d).");
}

TEST(TwoBoundedTest, RecursiveTransitiveClosure) {
  ExpectSimulationAgrees(
      "S(@x ++ @y) <- R(@x ++ @y).\n"
      "S(@x ++ @z) <- S(@x ++ @y), R(@y ++ @z).\n",
      "R(a ++ b). R(b ++ c). R(c ++ a). R(d ++ d).");
}

TEST(TwoBoundedTest, PathVariablesAreEliminated) {
  // $x in a predicate becomes ϵ / one / two atomic variables.
  ExpectSimulationAgrees("S($x) <- R($x).\n",
                         "R(a). R(b ++ c).");
}

TEST(TwoBoundedTest, EquationsAreResiduated) {
  // $x is bound through an equation against a path-variable-free side.
  ExpectSimulationAgrees(
      "S(@a ++ $y) <- R($x), $x = @a ++ $y, Q(@a).\n",
      "R(a ++ b). R(c ++ d). R(b). Q(a). Q(b).");
}

TEST(TwoBoundedTest, NegatedEquationsSplit) {
  ExpectSimulationAgrees(
      "S(@x ++ @y) <- R(@x ++ @y), @x != @y.\n",
      "R(a ++ b). R(c ++ c). R(d ++ e).");
}

TEST(TwoBoundedTest, GroundEquationConstants) {
  ExpectSimulationAgrees(
      "S(@x) <- R(@x ++ @y), @y = b.\n",
      "R(a ++ b). R(c ++ d).");
}

TEST(TwoBoundedTest, RandomizedGraphDifferential) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Universe u;
    Program p = MustParse(u,
                          "S(@x ++ @y) <- R(@x ++ @y).\n"
                          "S(@x ++ @z) <- S(@x ++ @y), R(@y ++ @z).\n");
    ClassicalEncoding enc;
    Result<Program> pc = SimulateTwoBounded(u, p, &enc);
    ASSERT_TRUE(pc.ok());
    GraphWorkload gw;
    gw.nodes = 6;
    gw.edges = 8;
    gw.seed = seed;
    Result<Instance> i = GraphToInstance(u, RandomGraph(gw), "R");
    ASSERT_TRUE(i.ok());
    Result<Instance> ic = EncodeTwoBounded(u, *i, &enc);
    ASSERT_TRUE(ic.ok());
    Result<Instance> direct = Eval(u, p, *i);
    Result<Instance> classical = Eval(u, *pc, *ic);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(classical.ok());
    RelId s = *u.FindRel("S");
    auto [s1, s2] = enc.rels.at(s);
    (void)s1;
    EXPECT_EQ(direct->Tuples(s).size(), classical->Tuples(s2).size())
        << "seed " << seed;
  }
}

TEST(TwoBoundedTest, OutputIsClassical) {
  Universe u;
  Program p = MustParse(u,
                        "S(@x) <- R(@x ++ @y), !B(@y), @x != @y.\n"
                        "S(@x ++ @y) <- R(@x ++ @y), R(@y ++ @x).\n");
  ClassicalEncoding enc;
  Result<Program> pc = SimulateTwoBounded(u, p, &enc);
  ASSERT_TRUE(pc.ok()) << pc.status().ToString();
  // No path variables, no packing, no predicates over the original
  // relations, and no multi-item equations.
  for (const Rule* r : pc->AllRules()) {
    std::vector<VarId> vars;
    CollectVars(*r, &vars);
    for (VarId v : vars) {
      EXPECT_EQ(u.VarKindOf(v), VarKind::kAtomic) << FormatRule(u, *r);
    }
    EXPECT_FALSE(RuleHasPacking(*r));
    for (const Literal& l : r->body) {
      if (l.is_equation()) {
        EXPECT_LE(l.lhs.items.size(), 1u) << FormatRule(u, *r);
        EXPECT_LE(l.rhs.items.size(), 1u) << FormatRule(u, *r);
      }
    }
  }
}

TEST(TwoBoundedTest, RejectsArityAndPacking) {
  Universe u;
  Program arity = MustParse(u, "S($x) <- R($x, $y).");
  ClassicalEncoding enc;
  EXPECT_EQ(SimulateTwoBounded(u, arity, &enc).status().code(),
            StatusCode::kFailedPrecondition);
  Universe u2;
  Program packing = MustParse(u2, "S(<$x>) <- R($x).");
  ClassicalEncoding enc2;
  EXPECT_EQ(SimulateTwoBounded(u2, packing, &enc2).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace seqdl
