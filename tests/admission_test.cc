// Admission control (src/analysis/admission.h) and its enforcement in
// DatabaseService: classification of tame vs generative programs per the
// paper's fragment lattice, verdicts under each policy, and the budget /
// strict behavior of the serving layer (kResourceExhausted at the caps,
// kFailedPrecondition under strict).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/admission.h"
#include "src/analysis/diagnostics.h"
#include "src/engine/database.h"
#include "src/server/service.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

AdmissionReport Analyze(Universe& u, const std::string& text) {
  Program p = MustParse(u, text);
  return AnalyzeAdmission(u, p);
}

// --- Policy parsing / rendering ----------------------------------------------

TEST(AdmissionPolicyTest, ParseRoundTrip) {
  for (AdmissionPolicy p : {AdmissionPolicy::kOff, AdmissionPolicy::kBudget,
                            AdmissionPolicy::kStrict}) {
    Result<AdmissionPolicy> back = ParseAdmissionPolicy(AdmissionPolicyToString(p));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, p);
  }
  Result<AdmissionPolicy> bad = ParseAdmissionPolicy("lenient");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown admission policy"),
            std::string::npos);
}

TEST(AdmissionPolicyTest, VerdictStrings) {
  EXPECT_STREQ(AdmissionVerdictToString(AdmissionVerdict::kTame), "tame");
  EXPECT_STREQ(AdmissionVerdictToString(AdmissionVerdict::kGenerativeBudgeted),
               "generative-budgeted");
  EXPECT_STREQ(AdmissionVerdictToString(AdmissionVerdict::kRejected),
               "rejected");
}

// --- Classification -----------------------------------------------------------

TEST(AdmissionTest, TransitiveClosureIsTame) {
  Universe u;
  AdmissionReport r = Analyze(
      u, "R($x, $y) <- E($x, $y).\nR($x, $z) <- R($x, $y), E($y, $z).\n");
  EXPECT_FALSE(r.generative);
  EXPECT_TRUE(r.diagnostics.empty()) << r.diagnostics.RenderText();
  // Tame programs are tame under every policy.
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kOff), AdmissionVerdict::kTame);
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kBudget), AdmissionVerdict::kTame);
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kStrict), AdmissionVerdict::kTame);
}

TEST(AdmissionTest, SplittingRecursionIsTame) {
  Universe u;
  // The equation only decomposes a path already bound by the recursive
  // predicate — every derived path is a subpath of the input.
  AdmissionReport r = Analyze(
      u, "sub($z) <- W($z).\nsub($a) <- sub($z), $a ++ @b = $z.\n");
  EXPECT_FALSE(r.generative) << r.diagnostics.RenderText();
}

TEST(AdmissionTest, NonrecursivePackingIsTame) {
  Universe u;
  // Packing outside any SCC runs once per input fact; no growth loop.
  AdmissionReport r = Analyze(u, "S(<$x>) <- R($x).\n");
  EXPECT_FALSE(r.generative) << r.diagnostics.RenderText();
}

TEST(AdmissionTest, HeadGrowthIsGenerativeSD301) {
  Universe u;
  AdmissionReport r = Analyze(
      u, "double($x) <- seed($x).\ndouble($x ++ $x) <- double($x).\n");
  EXPECT_TRUE(r.generative);
  EXPECT_TRUE(r.diagnostics.HasCode("SD301")) << r.diagnostics.RenderText();
  EXPECT_EQ(r.diagnostics[0].span.line, 2u);
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kOff), AdmissionVerdict::kTame);
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kBudget),
            AdmissionVerdict::kGenerativeBudgeted);
  EXPECT_EQ(r.Verdict(AdmissionPolicy::kStrict), AdmissionVerdict::kRejected);
}

TEST(AdmissionTest, HeadPackingIsGenerativeSD302) {
  Universe u;
  AdmissionReport r =
      Analyze(u, "nest($x) <- seed($x).\nnest(<$x>) <- nest($x).\n");
  EXPECT_TRUE(r.generative);
  EXPECT_TRUE(r.diagnostics.HasCode("SD302")) << r.diagnostics.RenderText();
}

TEST(AdmissionTest, ExpandingEquationIsGenerativeSD303) {
  Universe u;
  AdmissionReport r = Analyze(
      u, "grow($x) <- seed($x).\ngrow($y) <- grow($x), $x ++ a = $y.\n");
  EXPECT_TRUE(r.generative);
  EXPECT_TRUE(r.diagnostics.HasCode("SD303")) << r.diagnostics.RenderText();
  EXPECT_FALSE(r.diagnostics.HasCode("SD301"));
}

TEST(AdmissionTest, MutualRecursionGrowthIsCaught) {
  Universe u;
  // The growing rule's head relation differs from its body relation, but
  // both live in one SCC — still a recursive step.
  AdmissionReport r = Analyze(u,
                              "P0($x) <- R($x).\n"
                              "Q0(a ++ $x) <- P0($x).\n"
                              "P0($x) <- Q0($x).\n");
  EXPECT_TRUE(r.generative);
  EXPECT_TRUE(r.diagnostics.HasCode("SD301")) << r.diagnostics.RenderText();
}

TEST(AdmissionTest, BaseCaseRulesDoNotTriggerFindings) {
  Universe u;
  // The base case of a recursive relation concatenates in its head, but
  // reads nothing from its own SCC: it fires once per R fact and cannot
  // drive unbounded growth.
  AdmissionReport r = Analyze(
      u, "T(a ++ $x) <- R($x).\nT($x) <- T(a ++ $x).\n");
  EXPECT_FALSE(r.generative) << r.diagnostics.RenderText();
}

// --- PolicyDiagnostics --------------------------------------------------------

TEST(AdmissionTest, PolicyDiagnosticsStrictUpgradesToErrors) {
  Universe u;
  AdmissionReport r = Analyze(
      u, "double($x) <- seed($x).\ndouble($x ++ $x) <- double($x).\n");
  DiagnosticList strict = PolicyDiagnostics(r, AdmissionPolicy::kStrict);
  ASSERT_FALSE(strict.empty());
  EXPECT_TRUE(strict.HasErrors());
  EXPECT_FALSE(strict.HasCode("SD300"));
  // The report itself keeps warnings (compile never fails on admission).
  EXPECT_FALSE(r.diagnostics.HasErrors());
}

TEST(AdmissionTest, PolicyDiagnosticsBudgetAddsSD300Note) {
  Universe u;
  AdmissionReport r = Analyze(
      u, "double($x) <- seed($x).\ndouble($x ++ $x) <- double($x).\n");
  DiagnosticList budget = PolicyDiagnostics(r, AdmissionPolicy::kBudget);
  EXPECT_FALSE(budget.HasErrors());
  EXPECT_TRUE(budget.HasCode("SD300"));
  DiagnosticList off = PolicyDiagnostics(r, AdmissionPolicy::kOff);
  EXPECT_FALSE(off.HasCode("SD300"));

  AdmissionReport tame = Analyze(u, "S($x) <- R($x).\n");
  EXPECT_TRUE(
      PolicyDiagnostics(tame, AdmissionPolicy::kBudget).empty());
}

// --- Service enforcement ------------------------------------------------------

constexpr const char* kDoubling =
    "double($x) <- seed($x).\ndouble($x ++ $x) <- double($x).\n";
constexpr const char* kReach =
    "R($x, $y) <- E($x, $y).\nR($x, $z) <- R($x, $y), E($y, $z).\n";

std::unique_ptr<DatabaseService> MakeService(Universe& u,
                                             const std::string& edb_text,
                                             ServiceOptions sopts) {
  Result<Instance> edb = ParseInstance(u, edb_text);
  EXPECT_TRUE(edb.ok()) << edb.status().ToString();
  Result<Database> db = Database::Open(u, std::move(*edb));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::make_unique<DatabaseService>(u, std::move(*db),
                                           std::move(sopts));
}

protocol::RunRequest MakeRun(const std::string& program) {
  protocol::RunRequest req;
  req.program = program;
  req.source_name = "test.sdl";
  return req;
}

TEST(AdmissionServiceTest, CompileReportsVerdictAndDiagnostics) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kBudget;
  std::unique_ptr<DatabaseService> service = MakeService(u, "seed(a).", sopts);
  Result<protocol::CompileReply> reply = service->Compile(kDoubling, "d.sdl");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->admission,
            static_cast<uint8_t>(AdmissionVerdict::kGenerativeBudgeted));
  EXPECT_FALSE(reply->features.empty());
  EXPECT_FALSE(reply->fragment_class.empty());
  bool has_sd301 = false, has_sd300 = false;
  for (const protocol::WireDiagnostic& d : reply->diagnostics) {
    if (d.code == "SD301") has_sd301 = true;
    if (d.code == "SD300") has_sd300 = true;
  }
  EXPECT_TRUE(has_sd301);
  EXPECT_TRUE(has_sd300);
}

TEST(AdmissionServiceTest, CompileOfTameProgramIsClean) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kStrict;
  std::unique_ptr<DatabaseService> service = MakeService(u, "E(a, b). E(b, c).", sopts);
  Result<protocol::CompileReply> reply = service->Compile(kReach, "r.sdl");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->admission, static_cast<uint8_t>(AdmissionVerdict::kTame));
  EXPECT_TRUE(reply->diagnostics.empty());
}

TEST(AdmissionServiceTest, BudgetCapsGenerativeRun) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kBudget;
  sopts.generative_budget.max_facts = 64;
  sopts.generative_budget.max_iterations = 100;
  sopts.generative_budget.max_path_length = 64;
  std::unique_ptr<DatabaseService> service = MakeService(u, "seed(a).", sopts);
  // The doubling fixpoint would run forever; the budget stops it fast.
  Result<protocol::RunReply> run = service->Run(MakeRun(kDoubling));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

TEST(AdmissionServiceTest, StrictRefusesGenerativeRunButCompiles) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kStrict;
  std::unique_ptr<DatabaseService> service = MakeService(u, "seed(a).", sopts);
  // Compile succeeds and carries the full explanation...
  Result<protocol::CompileReply> reply = service->Compile(kDoubling, "d.sdl");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->admission,
            static_cast<uint8_t>(AdmissionVerdict::kRejected));
  // ...but Run refuses before any evaluation happens.
  Result<protocol::RunReply> run = service->Run(MakeRun(kDoubling));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition)
      << run.status().ToString();
  EXPECT_NE(run.status().message().find("admission denied"),
            std::string::npos);
  EXPECT_NE(run.status().message().find("SD301"), std::string::npos);
}

TEST(AdmissionServiceTest, StrictRunsTameProgramsUntouched) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kStrict;
  std::unique_ptr<DatabaseService> service = MakeService(u, "E(a, b). E(b, c).", sopts);
  Result<protocol::RunReply> run = service->Run(MakeRun(kReach));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rendered, "R(a, b).\nR(a, c).\nR(b, c).\n");
}

TEST(AdmissionServiceTest, BudgetDoesNotClampTamePrograms) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kBudget;
  // A cap this small would fail any real run — it must not apply to a
  // tame program.
  sopts.generative_budget.max_facts = 1;
  std::unique_ptr<DatabaseService> service = MakeService(u, "E(a, b). E(b, c). E(c, d).",
                                        sopts);
  Result<protocol::RunReply> run = service->Run(MakeRun(kReach));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->stats.derived_facts, 1u);
}

TEST(AdmissionServiceTest, OffRunsEverythingUnderPlainOptions) {
  Universe u;
  ServiceOptions sopts;
  sopts.admission = AdmissionPolicy::kOff;
  // Under kOff the generative budget is ignored; only run_options caps
  // apply — set them small so the doubling program still halts.
  sopts.run_options.max_facts = 32;
  sopts.run_options.max_path_length = 64;
  sopts.generative_budget.max_facts = 1'000'000;
  std::unique_ptr<DatabaseService> service = MakeService(u, "seed(a).", sopts);
  Result<protocol::RunReply> run = service->Run(MakeRun(kDoubling));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

}  // namespace
}  // namespace seqdl
