// Tests for the boolean-query observation of §5.1.1, for the engine's
// scan-reordering planner, and golden tests pinning the selectivity-aware
// planner's access-path and ordering choices (see plan.h / stats.h).
#include <gtest/gtest.h>

#include <string>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/engine/plan.h"
#include "src/engine/stats.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/boolean_queries.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// --- §5.1.1: recursion is redundant for boolean queries without I -------------

TEST(BooleanQueryTest, RecursiveRulesAreDroppable) {
  Universe u;
  // A boolean query with a (useless, but legal) recursive rule: A fires
  // iff R contains a path with two equal adjacent atoms.
  Program p = MustParse(u,
                        "A <- R($u ++ @x ++ @x ++ $v).\n"
                        "A <- A, R($x).\n");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumRules(), 1u);
  for (const char* data :
       {"R(a ++ a).", "R(a ++ b).", "R(a ++ b ++ b ++ c). R(d).",
        "R(eps)."}) {
    Universe u2;
    Program p2 = MustParse(u2,
                           "A <- R($u ++ @x ++ @x ++ $v).\n"
                           "A <- A, R($x).\n");
    Result<Program> q2 = StripRecursionFromBooleanQuery(u2, p2);
    ASSERT_TRUE(q2.ok());
    Instance in = MustInstance(u2, data);
    RelId a = *u2.FindRel("A");
    Result<Instance> o1 = EvalQuery(u2, p2, in, a);
    Result<Instance> o2 = EvalQuery(u2, *q2, in, a);
    ASSERT_TRUE(o1.ok());
    ASSERT_TRUE(o2.ok());
    EXPECT_EQ(o1->Contains(a, {}), o2->Contains(a, {})) << data;
  }
}

TEST(BooleanQueryTest, RejectsIntermediatePredicates) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x).\nA <- T($x).");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BooleanQueryTest, RejectsNonBooleanOutput) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

// --- Scan reordering ------------------------------------------------------------

TEST(PlannerTest, ReorderingPreservesSemantics) {
  // A body written in a deliberately bad order: the selective Q predicate
  // comes last.
  Universe u;
  Program p = MustParse(
      u, "S(@x) <- R(@a ++ @b), T(@b ++ @x), Q(@x).\n");
  Instance in = MustInstance(
      u,
      "R(a ++ b). R(c ++ d). R(e ++ f).\n"
      "T(b ++ g). T(d ++ h). T(f ++ g).\n"
      "Q(g).");
  RelId s = *u.FindRel("S");
  EvalOptions ordered, unordered;
  unordered.reorder_scans = false;
  Result<Instance> o1 = EvalQuery(u, p, in, s, ordered);
  Result<Instance> o2 = EvalQuery(u, p, in, s, unordered);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  EXPECT_TRUE(o1->Contains(s, {u.PathOfChars("g")}));
}

TEST(PlannerTest, ReorderingAgreesOnCorpus) {
  for (const PaperQuery& q : PaperCorpus()) {
    if (!q.terminating) continue;
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    Instance in;
    for (RelId rel : EdbRels(parsed->program)) {
      uint32_t arity = u.RelArity(rel);
      Tuple t;
      for (uint32_t i = 0; i < arity; ++i) t.push_back(u.PathOfChars("ab"));
      in.Add(rel, t);
    }
    EvalOptions ordered, unordered;
    unordered.reorder_scans = false;
    Result<Instance> o1 = Eval(u, parsed->program, in, ordered);
    Result<Instance> o2 = Eval(u, parsed->program, in, unordered);
    ASSERT_TRUE(o1.ok()) << q.id;
    ASSERT_TRUE(o2.ok()) << q.id;
    EXPECT_EQ(*o1, *o2) << q.id;
  }
}

TEST(PlannerTest, ReorderingReducesFirings) {
  // Join of three relations where body order is worst-case: R x Q is a
  // cartesian product unless the planner moves T between them.
  Universe u;
  Program p = MustParse(u, "S(@x) <- R(@a ++ @b), Q(@x ++ @c), T(@b ++ @x).");
  Instance in;
  RelId r = *u.InternRel("R", 1), q = *u.InternRel("Q", 1),
        t = *u.InternRel("T", 1);
  for (int i = 0; i < 12; ++i) {
    std::string ri = "r" + std::to_string(i);
    std::string qi = "q" + std::to_string(i);
    in.Add(r, {u.PathOfWords(ri + " b0")});
    in.Add(q, {u.PathOfWords(qi + " c0")});
  }
  in.Add(t, {u.PathOfWords("b0 q0")});
  EvalOptions ordered, unordered;
  unordered.reorder_scans = false;
  EvalStats with, without;
  Result<Instance> o1 = Eval(u, p, in, ordered, &with);
  Result<Instance> o2 = Eval(u, p, in, unordered, &without);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  // Both derive the same single fact; reordering just does it with fewer
  // intermediate bindings (firings count head derivations, which are
  // equal — the difference shows in wall time; at minimum semantics hold).
  EXPECT_EQ(with.derived_facts, without.derived_facts);
}

TEST(PlannerTest, NaiveReorderCombinationsAllAgree) {
  Universe u;
  Result<ParsedQuery> reach = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(reach.ok());
  GraphWorkload gw;
  gw.nodes = 7;
  gw.edges = 12;
  gw.seed = 3;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  std::vector<Instance> results;
  for (bool seminaive : {true, false}) {
    for (bool reorder : {true, false}) {
      EvalOptions opts;
      opts.seminaive = seminaive;
      opts.reorder_scans = reorder;
      Result<Instance> out = Eval(u, reach->program, *in, opts);
      ASSERT_TRUE(out.ok());
      results.push_back(std::move(*out));
    }
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "combination " << i;
  }
}

// --- Selectivity-aware planning -----------------------------------------------

// A skewed fixture: R(tag, id) where column 0 is near-constant (one huge
// bucket) and column 1 is a unique key (singleton buckets); P holds the
// two-value paths tag·id the rule destructures.
Instance SkewedInstance(Universe& u, size_t n) {
  std::string text;
  for (size_t k = 0; k < n; ++k) {
    std::string id = "i" + std::to_string(k);
    text += "P(t ++ " + id + ").\n";
    text += "R(t, " + id + ").\n";
  }
  return MustInstance(u, text);
}

TEST(SelectivityPlannerTest, PicksMostSelectiveWholeKeyOnSkewedData) {
  Universe u;
  Program p = MustParse(u, "S(@i) <- P(@t ++ @i), R(@t, @i).\n");
  Instance in = SkewedInstance(u, 20);
  StoreStats stats = ComputeInstanceStats(u, in);
  const Rule& rule = p.strata[0].rules[0];

  // Legacy heuristic: the first fully ground argument of R wins — the
  // near-constant tag column, whose bucket holds the whole relation.
  Result<RulePlan> legacy = PlanRule(u, rule, /*reorder_scans=*/true);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  ASSERT_EQ(legacy->steps.size(), 2u);
  EXPECT_EQ(legacy->steps[1].index_arg, 0);

  // Selectivity-aware: measured mean bucket sizes (20.0 vs 1.0) flip the
  // key to the unique id column.
  PlannerOptions opts;
  opts.stats = &stats;
  Result<RulePlan> planned = PlanRule(u, rule, opts);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ASSERT_EQ(planned->steps.size(), 2u);
  EXPECT_EQ(planned->steps[1].index_arg, 1);
  EXPECT_TRUE(planned->steps[1].stats_chosen);
  EXPECT_DOUBLE_EQ(planned->steps[1].est_cost, 1.0);
  // The P scan stays a full scan, estimated at the relation size.
  EXPECT_EQ(planned->steps[0].index_arg, -1);
  EXPECT_DOUBLE_EQ(planned->steps[0].est_cost, 20.0);
}

TEST(SelectivityPlannerTest, PrefixProbeBeatsNearConstantWholeKey) {
  Universe u;
  // R's column 0 is fully ground immediately (the constant t0) but
  // near-constant in the data; column 1 only ever has a ground one-atom
  // prefix, yet its first-value buckets are singletons.
  Program p = MustParse(u, "S($r) <- P(@a), R(t0, @a ++ $r).\n");
  std::string text;
  for (size_t k = 0; k < 16; ++k) {
    std::string a = "x" + std::to_string(k);
    text += "P(" + a + ").\n";
    text += "R(t0, " + a + " ++ y ++ z).\n";
  }
  Instance in = MustInstance(u, text);
  StoreStats stats = ComputeInstanceStats(u, in);
  const Rule& rule = p.strata[0].rules[0];

  // Legacy: a fully ground argument always wins, however unselective.
  Result<RulePlan> legacy = PlanRule(u, rule, /*reorder_scans=*/true);
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(legacy->steps.size(), 2u);
  EXPECT_EQ(legacy->steps[1].index_arg, 0);

  // Selectivity-aware: the first-value probe on column 1 (mean bucket
  // 1.0) beats the whole-value probe on column 0 (mean bucket 16.0).
  PlannerOptions opts;
  opts.stats = &stats;
  Result<RulePlan> planned = PlanRule(u, rule, opts);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->steps.size(), 2u);
  EXPECT_EQ(planned->steps[1].index_arg, -1);
  EXPECT_EQ(planned->steps[1].prefix_arg, 1);
  EXPECT_TRUE(planned->steps[1].stats_chosen);
  EXPECT_DOUBLE_EQ(planned->steps[1].est_cost, 1.0);
}

TEST(SelectivityPlannerTest, ReordersBodyAtomsByEstimatedCost) {
  Universe u;
  Program p = MustParse(u, "S(@x) <- Big(@x), Small(@x).\n");
  std::string text = "Small(s0). Small(s1).\n";
  for (size_t k = 0; k < 40; ++k) {
    text += "Big(b" + std::to_string(k) + ").\n";
  }
  text += "Big(s0).\n";
  Instance in = MustInstance(u, text);
  StoreStats stats = ComputeInstanceStats(u, in);
  const Rule& rule = p.strata[0].rules[0];

  // Legacy ordering keeps body order (no variables bound either way).
  Result<RulePlan> legacy = PlanRule(u, rule, /*reorder_scans=*/true);
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(legacy->steps.size(), 2u);
  EXPECT_EQ(legacy->steps[0].lit_idx, 0u);

  // Selectivity-aware ordering scans the 2-tuple relation first (est 2
  // vs 41), then answers Big with a whole-value probe on the now-bound
  // variable.
  PlannerOptions opts;
  opts.stats = &stats;
  Result<RulePlan> planned = PlanRule(u, rule, opts);
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->steps.size(), 2u);
  EXPECT_EQ(planned->steps[0].lit_idx, 1u);
  EXPECT_DOUBLE_EQ(planned->steps[0].est_cost, 2.0);
  EXPECT_EQ(planned->steps[1].lit_idx, 0u);
  EXPECT_EQ(planned->steps[1].index_arg, 0);

  // Both plans derive the same facts (the harness checks this at scale;
  // pin it here for the fixture).
  Result<Instance> o1 = Eval(u, p, in, {});
  Result<Database> db = Database::Open(u, in);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(db.ok());
  Result<PreparedProgram> prog = db->Compile(p);
  ASSERT_TRUE(prog.ok());
  Result<Instance> derived = db->OpenSession().Run(*prog);
  ASSERT_TRUE(derived.ok());
  Instance o2 = db->edb();
  o2.UnionWith(std::move(*derived));
  EXPECT_EQ(*o1, o2);
}

TEST(SelectivityPlannerTest, UnskewedDataPinsLegacyChoices) {
  Universe u;
  Program p = MustParse(u, "S(@i) <- P(@t ++ @i), R(@t, @i).\n");
  // Uniform data: both columns of R are unique keys, so every estimate
  // ties at 1.0 and the deterministic tie-break (lower argument position)
  // must reproduce the legacy choice. A regression that changes this
  // breaks plan stability for the common unskewed case.
  std::string text;
  for (size_t k = 0; k < 12; ++k) {
    std::string t = "t" + std::to_string(k), i = "i" + std::to_string(k);
    text += "P(" + t + " ++ " + i + ").\n";
    text += "R(" + t + ", " + i + ").\n";
  }
  Instance in = MustInstance(u, text);
  StoreStats stats = ComputeInstanceStats(u, in);
  const Rule& rule = p.strata[0].rules[0];

  Result<RulePlan> legacy = PlanRule(u, rule, /*reorder_scans=*/true);
  PlannerOptions opts;
  opts.stats = &stats;
  Result<RulePlan> planned = PlanRule(u, rule, opts);
  ASSERT_TRUE(legacy.ok());
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->steps.size(), legacy->steps.size());
  for (size_t i = 0; i < planned->steps.size(); ++i) {
    EXPECT_EQ(planned->steps[i].lit_idx, legacy->steps[i].lit_idx) << i;
    EXPECT_EQ(planned->steps[i].index_arg, legacy->steps[i].index_arg) << i;
    EXPECT_EQ(planned->steps[i].prefix_arg, legacy->steps[i].prefix_arg) << i;
    EXPECT_EQ(planned->steps[i].suffix_arg, legacy->steps[i].suffix_arg) << i;
  }
}

TEST(SelectivityPlannerTest, ExplainPlanReportsChosenKeys) {
  Universe u;
  Program p = MustParse(u, "S(@i) <- P(@t ++ @i), R(@t, @i).\n");
  Instance in = SkewedInstance(u, 20);

  Result<Database> db = Database::Open(u, in);
  ASSERT_TRUE(db.ok());
  Result<PreparedProgram> planned = db->Compile(p);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  std::string explain = planned->ExplainPlan();
  EXPECT_NE(explain.find("whole-value key col 1"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("[stats]"), std::string::npos) << explain;

  Result<PreparedProgram> legacy = Engine::Compile(u, p);
  ASSERT_TRUE(legacy.ok());
  std::string legacy_explain = legacy->ExplainPlan();
  EXPECT_NE(legacy_explain.find("whole-value key col 0"), std::string::npos)
      << legacy_explain;
  EXPECT_EQ(legacy_explain.find("[stats]"), std::string::npos)
      << legacy_explain;

  // The same decisions land in EvalStats::plan_decisions on stats runs.
  EvalStats stats;
  ASSERT_TRUE(db->OpenSession().Run(*planned, {}, &stats).ok());
  ASSERT_FALSE(stats.plan_decisions.empty());
  bool found = false;
  for (const std::string& line : stats.plan_decisions) {
    found |= line.find("whole-value key col 1") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace seqdl
