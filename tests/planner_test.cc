// Tests for the boolean-query observation of §5.1.1 and for the engine's
// scan-reordering planner.
#include <gtest/gtest.h>

#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/boolean_queries.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// --- §5.1.1: recursion is redundant for boolean queries without I -------------

TEST(BooleanQueryTest, RecursiveRulesAreDroppable) {
  Universe u;
  // A boolean query with a (useless, but legal) recursive rule: A fires
  // iff R contains a path with two equal adjacent atoms.
  Program p = MustParse(u,
                        "A <- R($u ++ @x ++ @x ++ $v).\n"
                        "A <- A, R($x).\n");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumRules(), 1u);
  for (const char* data :
       {"R(a ++ a).", "R(a ++ b).", "R(a ++ b ++ b ++ c). R(d).",
        "R(eps)."}) {
    Universe u2;
    Program p2 = MustParse(u2,
                           "A <- R($u ++ @x ++ @x ++ $v).\n"
                           "A <- A, R($x).\n");
    Result<Program> q2 = StripRecursionFromBooleanQuery(u2, p2);
    ASSERT_TRUE(q2.ok());
    Instance in = MustInstance(u2, data);
    RelId a = *u2.FindRel("A");
    Result<Instance> o1 = EvalQuery(u2, p2, in, a);
    Result<Instance> o2 = EvalQuery(u2, *q2, in, a);
    ASSERT_TRUE(o1.ok());
    ASSERT_TRUE(o2.ok());
    EXPECT_EQ(o1->Contains(a, {}), o2->Contains(a, {})) << data;
  }
}

TEST(BooleanQueryTest, RejectsIntermediatePredicates) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x).\nA <- T($x).");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BooleanQueryTest, RejectsNonBooleanOutput) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  Result<Program> q = StripRecursionFromBooleanQuery(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

// --- Scan reordering ------------------------------------------------------------

TEST(PlannerTest, ReorderingPreservesSemantics) {
  // A body written in a deliberately bad order: the selective Q predicate
  // comes last.
  Universe u;
  Program p = MustParse(
      u, "S(@x) <- R(@a ++ @b), T(@b ++ @x), Q(@x).\n");
  Instance in = MustInstance(
      u,
      "R(a ++ b). R(c ++ d). R(e ++ f).\n"
      "T(b ++ g). T(d ++ h). T(f ++ g).\n"
      "Q(g).");
  RelId s = *u.FindRel("S");
  EvalOptions ordered, unordered;
  unordered.reorder_scans = false;
  Result<Instance> o1 = EvalQuery(u, p, in, s, ordered);
  Result<Instance> o2 = EvalQuery(u, p, in, s, unordered);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  EXPECT_TRUE(o1->Contains(s, {u.PathOfChars("g")}));
}

TEST(PlannerTest, ReorderingAgreesOnCorpus) {
  for (const PaperQuery& q : PaperCorpus()) {
    if (!q.terminating) continue;
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    Instance in;
    for (RelId rel : EdbRels(parsed->program)) {
      uint32_t arity = u.RelArity(rel);
      Tuple t;
      for (uint32_t i = 0; i < arity; ++i) t.push_back(u.PathOfChars("ab"));
      in.Add(rel, t);
    }
    EvalOptions ordered, unordered;
    unordered.reorder_scans = false;
    Result<Instance> o1 = Eval(u, parsed->program, in, ordered);
    Result<Instance> o2 = Eval(u, parsed->program, in, unordered);
    ASSERT_TRUE(o1.ok()) << q.id;
    ASSERT_TRUE(o2.ok()) << q.id;
    EXPECT_EQ(*o1, *o2) << q.id;
  }
}

TEST(PlannerTest, ReorderingReducesFirings) {
  // Join of three relations where body order is worst-case: R x Q is a
  // cartesian product unless the planner moves T between them.
  Universe u;
  Program p = MustParse(u, "S(@x) <- R(@a ++ @b), Q(@x ++ @c), T(@b ++ @x).");
  Instance in;
  RelId r = *u.InternRel("R", 1), q = *u.InternRel("Q", 1),
        t = *u.InternRel("T", 1);
  for (int i = 0; i < 12; ++i) {
    std::string ri = "r" + std::to_string(i);
    std::string qi = "q" + std::to_string(i);
    in.Add(r, {u.PathOfWords(ri + " b0")});
    in.Add(q, {u.PathOfWords(qi + " c0")});
  }
  in.Add(t, {u.PathOfWords("b0 q0")});
  EvalOptions ordered, unordered;
  unordered.reorder_scans = false;
  EvalStats with, without;
  Result<Instance> o1 = Eval(u, p, in, ordered, &with);
  Result<Instance> o2 = Eval(u, p, in, unordered, &without);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  // Both derive the same single fact; reordering just does it with fewer
  // intermediate bindings (firings count head derivations, which are
  // equal — the difference shows in wall time; at minimum semantics hold).
  EXPECT_EQ(with.derived_facts, without.derived_facts);
}

TEST(PlannerTest, NaiveReorderCombinationsAllAgree) {
  Universe u;
  Result<ParsedQuery> reach = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(reach.ok());
  GraphWorkload gw;
  gw.nodes = 7;
  gw.edges = 12;
  gw.seed = 3;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  std::vector<Instance> results;
  for (bool seminaive : {true, false}) {
    for (bool reorder : {true, false}) {
      EvalOptions opts;
      opts.seminaive = seminaive;
      opts.reorder_scans = reorder;
      Result<Instance> out = Eval(u, reach->program, *in, opts);
      ASSERT_TRUE(out.ok());
      results.push_back(std::move(*out));
    }
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "combination " << i;
  }
}

}  // namespace
}  // namespace seqdl
