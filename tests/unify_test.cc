#include <gtest/gtest.h>

#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/unify/unify.h"

namespace seqdl {
namespace {

PathExpr MustExpr(Universe& u, const std::string& text) {
  Result<PathExpr> e = ParsePathExpr(u, text);
  EXPECT_TRUE(e.ok()) << e.status().ToString() << "\n" << text;
  return std::move(e).value();
}

// Every symbolic solution must make both sides literally identical.
void CheckSolutions(Universe& u, const PathExpr& lhs, const PathExpr& rhs,
                    const UnifyResult& res) {
  for (const ExprSubst& rho : res.solutions) {
    PathExpr l = SubstituteExpr(lhs, rho);
    PathExpr r = SubstituteExpr(rhs, rho);
    EXPECT_EQ(l, r) << FormatSubst(u, rho) << " does not unify "
                    << FormatExpr(u, lhs) << " = " << FormatExpr(u, rhs);
  }
}

TEST(OneSidedNonlinearTest, Detection) {
  Universe u;
  // $u occurs twice but only on the right: one-sided nonlinear.
  EXPECT_TRUE(IsOneSidedNonlinear(MustExpr(u, "$x ++ <@y ++ $z> ++ @w"),
                                  MustExpr(u, "$u ++ $v ++ $u")));
  // $x occurs on both sides: not one-sided.
  EXPECT_FALSE(IsOneSidedNonlinear(MustExpr(u, "$x ++ a"),
                                   MustExpr(u, "a ++ $x")));
  // Linear equations are trivially one-sided nonlinear.
  EXPECT_TRUE(IsOneSidedNonlinear(MustExpr(u, "$x ++ a"),
                                  MustExpr(u, "b ++ $y")));
}

TEST(PigPugTest, GroundEquationsSolve) {
  Universe u;
  UnifyOptions opts;
  Result<UnifyResult> same =
      UnifyExprs(u, MustExpr(u, "a ++ b"), MustExpr(u, "a ++ b"), opts);
  ASSERT_TRUE(same.ok());
  ASSERT_EQ(same->solutions.size(), 1u);
  EXPECT_TRUE(same->solutions[0].empty());

  Result<UnifyResult> diff =
      UnifyExprs(u, MustExpr(u, "a ++ b"), MustExpr(u, "a ++ c"), opts);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->solutions.empty());

  Result<UnifyResult> len =
      UnifyExprs(u, MustExpr(u, "a"), MustExpr(u, "a ++ a"), opts);
  ASSERT_TRUE(len.ok());
  EXPECT_TRUE(len->solutions.empty());
}

TEST(PigPugTest, SingleVariableBindsWholePath) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x");
  PathExpr rhs = MustExpr(u, "a ++ b ++ c");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, res->solutions[0]), "{$x -> a·b·c}");
  CheckSolutions(u, lhs, rhs, *res);
}

TEST(PigPugTest, SplitTwoVariablesOverWord) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x ++ $y");
  PathExpr rhs = MustExpr(u, "a ++ b");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  // Splits: (eps,ab), (a,b), (ab,eps).
  EXPECT_EQ(res->solutions.size(), 3u);
  CheckSolutions(u, lhs, rhs, *res);
}

TEST(PigPugTest, NonemptySemanticsExcludesEmptySplits) {
  Universe u;
  UnifyOptions opts;
  opts.allow_empty = false;
  PathExpr lhs = MustExpr(u, "$x ++ $y");
  PathExpr rhs = MustExpr(u, "a ++ b");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs, opts);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, res->solutions[0]), "{$x -> a, $y -> b}");
}

TEST(PigPugTest, AtomicVariableUnifiesWithAtomOnly) {
  Universe u;
  Result<UnifyResult> ok =
      UnifyExprs(u, MustExpr(u, "@x ++ b"), MustExpr(u, "a ++ b"));
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, ok->solutions[0]), "{@x -> a}");

  // An atomic variable cannot absorb a pack.
  Result<UnifyResult> pack =
      UnifyExprs(u, MustExpr(u, "@x"), MustExpr(u, "<a>"));
  ASSERT_TRUE(pack.ok());
  EXPECT_TRUE(pack->solutions.empty());

  // Nor two symbols.
  Result<UnifyResult> two =
      UnifyExprs(u, MustExpr(u, "@x"), MustExpr(u, "a ++ b"));
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(two->solutions.empty());
}

TEST(PigPugTest, AtomicVsAtomicVariables) {
  Universe u;
  PathExpr lhs = MustExpr(u, "@x ++ @x");
  PathExpr rhs = MustExpr(u, "@y ++ @z");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  CheckSolutions(u, lhs, rhs, *res);
}

TEST(PigPugTest, PackVsPackSolvesInner) {
  Universe u;
  PathExpr lhs = MustExpr(u, "<$x ++ b>");
  PathExpr rhs = MustExpr(u, "<a ++ b>");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, res->solutions[0]), "{$x -> a}");
}

TEST(PigPugTest, PackVsAtomFails) {
  Universe u;
  Result<UnifyResult> res =
      UnifyExprs(u, MustExpr(u, "<a>"), MustExpr(u, "a"));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->solutions.empty());
}

TEST(PigPugTest, PathVarAbsorbsPack) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x");
  PathExpr rhs = MustExpr(u, "<a> ++ b");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, res->solutions[0]), "{$x -> <a>·b}");
}

TEST(PigPugTest, CyclicEquationDetected) {
  Universe u;
  // The paper's example of an equation with no finite complete set.
  Result<UnifyResult> res =
      UnifyExprs(u, MustExpr(u, "$x ++ a"), MustExpr(u, "a ++ $x"));
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(PigPugTest, Figure2EquationNonemptySemantics) {
  Universe u;
  // Figure 2: $x·<@y·$z>·@w = $u·$v·$u has exactly 4 successful branches.
  PathExpr lhs = MustExpr(u, "$x ++ <@y ++ $z> ++ @w");
  PathExpr rhs = MustExpr(u, "$u ++ $v ++ $u");
  UnifyOptions opts;
  opts.allow_empty = false;
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->successful_branches, 4u);
  ASSERT_EQ(res->solutions.size(), 4u);
  CheckSolutions(u, lhs, rhs, *res);

  // The four solutions printed in the paper (Example 4.8).
  std::set<std::string> got;
  for (const ExprSubst& rho : res->solutions) {
    got.insert(FormatSubst(u, rho));
  }
  EXPECT_TRUE(got.count("{$u -> @w, $v -> <@y·$z>, $x -> @w}")) << [&] {
    std::string all;
    for (const std::string& s : got) all += s + "\n";
    return all;
  }();
  EXPECT_TRUE(got.count("{$u -> @w, $v -> $x·<@y·$z>, $x -> @w·$x}"));
  EXPECT_TRUE(got.count("{$u -> <@y·$z>·@w, $x -> <@y·$z>·@w·$v}"));
  EXPECT_TRUE(
      got.count("{$u -> $x·<@y·$z>·@w, $x -> $x·<@y·$z>·@w·$v·$x}"));
}

TEST(PigPugTest, Figure2WithEmptyClosureStillCorrect) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x ++ <@y ++ $z> ++ @w");
  PathExpr rhs = MustExpr(u, "$u ++ $v ++ $u");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  // With the empty word allowed, minimization compresses the closure's
  // solutions into a smaller complete set (instances are pruned).
  EXPECT_FALSE(res->solutions.empty());
  CheckSolutions(u, lhs, rhs, *res);
}

TEST(PigPugTest, MinimizationPrunesInstances) {
  Universe u;
  // Without minimization the empty-word closure produces specializations
  // of the principal solution $x -> $v1·<$v2>·$v3.
  PathExpr lhs = MustExpr(u, "$v1 ++ <$v2> ++ $v3");
  PathExpr rhs = MustExpr(u, "$x");
  UnifyOptions raw;
  raw.minimize = false;
  UnifyOptions min;
  min.minimize = true;
  Result<UnifyResult> r1 = UnifyExprs(u, lhs, rhs, raw);
  Result<UnifyResult> r2 = UnifyExprs(u, lhs, rhs, min);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r1->solutions.size(), r2->solutions.size());
  EXPECT_EQ(r2->solutions.size(), 1u);
  // Every unminimized solution is an instance of some minimized one.
  std::vector<VarId> eq_vars;
  CollectVars(lhs, &eq_vars);
  CollectVars(rhs, &eq_vars);
  for (const ExprSubst& s : r1->solutions) {
    bool covered = false;
    for (const ExprSubst& g : r2->solutions) {
      covered |= IsSymbolicInstance(u, eq_vars, g, s, /*allow_empty=*/true);
    }
    EXPECT_TRUE(covered) << FormatSubst(u, s);
  }
}

TEST(SymbolicInstanceTest, BasicCases) {
  Universe u;
  VarId x = u.InternVar(VarKind::kPath, "x");
  VarId y = u.InternVar(VarKind::kPath, "y");
  ExprSubst general, specific;
  general[x] = MustExpr(u, "$y ++ a");
  specific[x] = MustExpr(u, "b ++ c ++ a");
  // σ($y) = b·c witnesses the instance.
  EXPECT_TRUE(IsSymbolicInstance(u, {x}, general, specific, true));
  // The converse is not an instance.
  EXPECT_FALSE(IsSymbolicInstance(u, {x}, specific, general, true));
  // Under nonempty semantics, $y cannot be erased.
  ExprSubst erased;
  erased[x] = MustExpr(u, "a");
  EXPECT_TRUE(IsSymbolicInstance(u, {x}, general, erased, true));
  EXPECT_FALSE(IsSymbolicInstance(u, {x}, general, erased, false));
  // Shared σ across variables must be consistent.
  ExprSubst g2, s2;
  g2[x] = MustExpr(u, "$y");
  g2[y] = MustExpr(u, "$y ++ $y");
  s2[x] = MustExpr(u, "a");
  s2[y] = MustExpr(u, "a ++ b");  // inconsistent with σ($y) = a
  EXPECT_FALSE(IsSymbolicInstance(u, {x, y}, g2, s2, true));
  s2[y] = MustExpr(u, "a ++ a");
  EXPECT_TRUE(IsSymbolicInstance(u, {x, y}, g2, s2, true));
}

TEST(PigPugTest, EmptyClosureFindsEmptyAssignments) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x ++ $y");
  PathExpr rhs = MustExpr(u, "eps");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->solutions.size(), 1u);
  EXPECT_EQ(FormatSubst(u, res->solutions[0]), "{$x -> eps, $y -> eps}");
}

TEST(PigPugTest, HalfPureShapeFromPackingElimination) {
  Universe u;
  // The Lemma 4.10 shape: fresh linear lhs vs an impure variable.
  PathExpr lhs = MustExpr(u, "$v1 ++ <$v2> ++ $v3");
  PathExpr rhs = MustExpr(u, "$x");
  ASSERT_TRUE(IsOneSidedNonlinear(lhs, rhs));
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  CheckSolutions(u, lhs, rhs, *res);
  // Some solution must map $x to $v1·<$v2>·$v3 (up to symbolic equivalence,
  // at least one solution substitutes to that exact shape).
  bool found = false;
  for (const ExprSubst& rho : res->solutions) {
    found |= SubstituteExpr(rhs, rho) == SubstituteExpr(lhs, rho) &&
             FormatExpr(u, SubstituteExpr(rhs, rho)).find("<") !=
                 std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(PigPugTest, NodeBudgetIsEnforced) {
  Universe u;
  UnifyOptions opts;
  opts.max_nodes = 3;
  Result<UnifyResult> res = UnifyExprs(u, MustExpr(u, "$x ++ $y ++ $z"),
                                       MustExpr(u, "a ++ b ++ c ++ d"), opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(PigPugTest, SubstEqualsIsStructural) {
  Universe u;
  ExprSubst a, b;
  a[u.InternVar(VarKind::kPath, "x")] = MustExpr(u, "a ++ b");
  b[u.InternVar(VarKind::kPath, "x")] = MustExpr(u, "a ++ b");
  EXPECT_TRUE(SubstEquals(a, b));
  b[u.InternVar(VarKind::kPath, "y")] = MustExpr(u, "c");
  EXPECT_FALSE(SubstEquals(a, b));
}

// Scaling family: $x1 ++ ... ++ $xk = a^n has C(n + k - 1, k - 1)
// solutions; check the count for small cases.
TEST(PigPugTest, SplitCountMatchesCombinatorics) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$s1 ++ $s2 ++ $s3");
  PathExpr rhs = MustExpr(u, "a ++ a ++ a ++ a");
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok());
  // C(4+2, 2) = 15 ways to split aaaa into 3 (possibly empty) parts.
  EXPECT_EQ(res->solutions.size(), 15u);
  CheckSolutions(u, lhs, rhs, *res);
}

}  // namespace
}  // namespace seqdl
