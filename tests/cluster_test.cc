// The cluster subsystem: partitioner routing (hash stability, affinity,
// broadcast, balance), shard-list parsing, the SD2xx shard-locality
// analysis, and a coordinator scatter-gathering over real loopback shard
// servers — transparent and residual evaluation, append/retract routing,
// the epoch-vector result cache, structured failure on killed/hung/
// mismatched shards, and the wire front end (a coordinator looks like a
// server to clients).
//
// DifferentialTest.ClusterScatterGatherMatchesSingleNode is the byte-
// level acceptance check: for random programs of both locality classes,
// coordinator output must equal a single-node run over the same total
// EDB across append/retract epochs and per-shard compaction. Iteration
// count wired to SEQDL_DIFFTEST_ITERS like the other differentials.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/analysis/locality.h"
#include "src/cluster/coordinator.h"
#include "src/cluster/frontend.h"
#include "src/cluster/partitioner.h"
#include "src/engine/database.h"
#include "src/engine/instance.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

// --- Partitioner --------------------------------------------------------------

TEST(PartitionerTest, HashKeyIsStableAcrossRunsAndPlatforms) {
  // Golden FNV-1a 64 values: the routing hash decides where every fact
  // *persistently* lives, so any drift (a seed, a different prime, a
  // platform-dependent char signedness bug) silently reshuffles the
  // cluster. These values are the published FNV-1a constants — computed
  // independently, not with this implementation.
  EXPECT_EQ(Partitioner::HashKey(""), 14695981039346656037ULL);
  EXPECT_EQ(Partitioner::HashKey("a"), 12638187200555641996ULL);
  EXPECT_EQ(Partitioner::HashKey("b"), 12638190499090526629ULL);
  EXPECT_EQ(Partitioner::HashKey("n0"), 626981145683744371ULL);
  EXPECT_EQ(Partitioner::HashKey("needle"), 7377580679817058ULL);
}

TEST(PartitionerTest, RoutingIsKeyedByFirstValueAcrossRelations) {
  Universe u;
  Result<Instance> in = ParseInstance(
      u, "E(a, b). E(a, c). E(b, a). F(a, x). F(b, y). G(a).");
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  Partitioner p(4);

  // All facts keyed `a` co-locate — across relations and regardless of
  // trailing columns. That cross-relation agreement is what makes a join
  // keyed on the partition column shard-local.
  std::map<std::string, std::set<uint32_t>> shards_by_key;
  for (RelId rel : in->Relations()) {
    for (const Tuple& t : in->Tuples(rel)) {
      ASSERT_FALSE(t.empty());
      shards_by_key[u.FormatPath(t[0])].insert(p.ShardOf(u, rel, t));
    }
  }
  ASSERT_EQ(shards_by_key.count("a"), 1u);
  EXPECT_EQ(shards_by_key["a"].size(), 1u);
  EXPECT_EQ(shards_by_key["b"].size(), 1u);

  // A second partitioner with the same shard count routes identically.
  Partitioner q(4);
  for (RelId rel : in->Relations()) {
    for (const Tuple& t : in->Tuples(rel)) {
      EXPECT_EQ(p.ShardOf(u, rel, t), q.ShardOf(u, rel, t));
    }
  }
}

TEST(PartitionerTest, PinnedRelationRoutesToItsShard) {
  Universe u;
  Result<Instance> in =
      ParseInstance(u, "dim(a, x). dim(b, y). dim(c, z). E(a, b).");
  ASSERT_TRUE(in.ok());

  PartitionerOptions opts;
  opts.pinned["dim"] = 2;
  Partitioner p(4, opts);
  Result<RelId> dim = u.FindRel("dim");
  ASSERT_TRUE(dim.ok());
  for (const Tuple& t : in->Tuples(*dim)) {
    EXPECT_EQ(p.ShardOf(u, *dim, t), 2u);
  }

  // Pin indices wrap modulo the shard count.
  PartitionerOptions wrap;
  wrap.pinned["dim"] = 7;
  Partitioner w(4, wrap);
  for (const Tuple& t : in->Tuples(*dim)) {
    EXPECT_EQ(w.ShardOf(u, *dim, t), 3u);
  }
}

TEST(PartitionerTest, BroadcastReplicatesIntoEveryPartition) {
  Universe u;
  Result<Instance> in =
      ParseInstance(u, "dim(a). dim(b). E(a, b). E(b, c). E(c, d).");
  ASSERT_TRUE(in.ok());
  PartitionerOptions opts;
  opts.broadcast.insert("dim");
  Partitioner p(3, opts);

  Result<RelId> dim = u.FindRel("dim");
  ASSERT_TRUE(dim.ok());
  EXPECT_TRUE(p.IsBroadcast(u, *dim));
  // ShardOf reports the primary copy (0) so appends are counted once.
  for (const Tuple& t : in->Tuples(*dim)) {
    EXPECT_EQ(p.ShardOf(u, *dim, t), 0u);
  }

  std::vector<Instance> parts = p.Split(u, *in);
  ASSERT_EQ(parts.size(), 3u);
  Result<RelId> e = u.FindRel("E");
  ASSERT_TRUE(e.ok());
  size_t partitioned_total = 0;
  for (const Instance& part : parts) {
    // Every partition carries the full broadcast relation.
    EXPECT_EQ(part.Tuples(*dim).size(), in->Tuples(*dim).size());
    partitioned_total += part.Tuples(*e).size();
  }
  // Partitioned facts land in exactly one part each.
  EXPECT_EQ(partitioned_total, in->Tuples(*e).size());
}

TEST(PartitionerTest, SplitPreservesEveryFact) {
  Universe u;
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "E(k" + std::to_string(i) + ", v" + std::to_string(i % 7) + ").\n";
    if (i % 3 == 0) text += "F(k" + std::to_string(i) + ").\n";
  }
  Result<Instance> in = ParseInstance(u, text);
  ASSERT_TRUE(in.ok());

  Partitioner p(4);
  std::vector<Instance> parts = p.Split(u, *in);
  Instance merged;
  size_t total = 0;
  for (Instance& part : parts) {
    total += part.NumFacts();
    merged.UnionWith(std::move(part));
  }
  // Disjoint (no double placement) and lossless.
  EXPECT_EQ(total, in->NumFacts());
  EXPECT_EQ(merged.ToString(u), in->ToString(u));
}

TEST(PartitionerTest, SkewedKeysStaySpread) {
  // 400 distinct keys all in one relation (maximal relation skew): the
  // value hash must still spread them — every shard gets at least 10%
  // of an even share... generously, at least 40 of the expected 100.
  Universe u;
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text += "K(s" + std::to_string(i) + ").\n";
  }
  Result<Instance> in = ParseInstance(u, text);
  ASSERT_TRUE(in.ok());
  Partitioner p(4);
  std::vector<Instance> parts = p.Split(u, *in);
  for (size_t i = 0; i < parts.size(); ++i) {
    EXPECT_GE(parts[i].NumFacts(), 40u) << "shard " << i;
    EXPECT_LE(parts[i].NumFacts(), 200u) << "shard " << i;
  }
}

// --- Shard-list parsing -------------------------------------------------------

TEST(ClusterTest, ParseShardListAcceptsHostPortPairs) {
  Result<std::vector<ShardAddress>> shards =
      ParseShardList("127.0.0.1:4001,localhost:65535");
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ASSERT_EQ(shards->size(), 2u);
  EXPECT_EQ((*shards)[0].host, "127.0.0.1");
  EXPECT_EQ((*shards)[0].port, 4001u);
  EXPECT_EQ((*shards)[0].ToString(), "127.0.0.1:4001");
  EXPECT_EQ((*shards)[1].host, "localhost");
  EXPECT_EQ((*shards)[1].port, 65535u);
}

TEST(ClusterTest, ParseShardListRejectsMalformedSpecs) {
  for (const char* bad : {"", "127.0.0.1", "host:", "host:0", "host:70000",
                          "host:12ab", "host:4001,"}) {
    Result<std::vector<ShardAddress>> shards = ParseShardList(bad);
    EXPECT_FALSE(shards.ok()) << "accepted '" << bad << "'";
    if (!shards.ok()) {
      EXPECT_EQ(shards.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

// --- Shard-locality analysis --------------------------------------------------

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.ok() ? std::move(*p) : Program{};
}

TEST(LocalityTest, KeyedJoinIsTransparent) {
  Universe u;
  Program p = MustParse(u,
                        "S($x) <- E($x, $y).\n"
                        "T($x, $y) <- E($x, $y), F($x, $y).\n");
  DiagnosticList diags;
  LocalityReport report = AnalyzeLocality(u, p, {}, &diags);
  EXPECT_EQ(report.cls, LocalityClass::kTransparent);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(diags.HasCode("SD200"));
  // Heads keep the partition key in the first argument, so the derived
  // relations stay co-partitioned too.
  Result<RelId> s = u.FindRel("S");
  Result<RelId> t = u.FindRel("T");
  ASSERT_TRUE(s.ok() && t.ok());
  EXPECT_EQ(report.co_partitioned.count(*s), 1u);
  EXPECT_EQ(report.co_partitioned.count(*t), 1u);
}

TEST(LocalityTest, UnkeyedJoinIsResidual) {
  Universe u;
  Program p = MustParse(u, "J($x, $z) <- E($x, $y), F($y, $z).\n");
  DiagnosticList diags;
  LocalityReport report = AnalyzeLocality(u, p, {}, &diags);
  EXPECT_EQ(report.cls, LocalityClass::kResidual);
  EXPECT_EQ(report.violations, 1u);
  EXPECT_TRUE(diags.HasCode("SD201"));
  EXPECT_FALSE(diags.HasCode("SD200"));
}

TEST(LocalityTest, BroadcastRelationMakesTheJoinLocal) {
  Universe u;
  Program p = MustParse(u, "J($x, $z) <- E($x, $y), D($y, $z).\n");
  Result<RelId> d = u.FindRel("D");
  ASSERT_TRUE(d.ok());
  LocalityOptions opts;
  opts.broadcast.insert(*d);
  DiagnosticList diags;
  LocalityReport report = AnalyzeLocality(u, p, opts, &diags);
  EXPECT_EQ(report.cls, LocalityClass::kTransparent);
  EXPECT_TRUE(diags.HasCode("SD200"));
  // Broadcast relations are replicated, never co-partitioned.
  EXPECT_EQ(report.co_partitioned.count(*d), 0u);
}

TEST(LocalityTest, UnanchoredNegationIsResidual) {
  Universe u;
  Program p = MustParse(u, "S($x) <- B($x), !E($x).\n");
  Result<RelId> b = u.FindRel("B");
  ASSERT_TRUE(b.ok());
  LocalityOptions opts;
  opts.broadcast.insert(*b);  // the only positive literal is replicated
  DiagnosticList diags;
  LocalityReport report = AnalyzeLocality(u, p, opts, &diags);
  EXPECT_EQ(report.cls, LocalityClass::kResidual);
  EXPECT_TRUE(diags.HasCode("SD202"));
}

TEST(LocalityTest, CoPartitionedNegationIsTransparent) {
  // H inherits the partition key ($x flows head-first-arg to head-first-
  // arg), so a shard's local "no H($x)" is the global answer for the
  // keys it owns.
  Universe u;
  Program p = MustParse(u,
                        "H($x) <- E($x, $y).\n"
                        "---\n"
                        "N($x) <- F($x, $y), !H($x).\n");
  DiagnosticList diags;
  LocalityReport report = AnalyzeLocality(u, p, {}, &diags);
  EXPECT_EQ(report.cls, LocalityClass::kTransparent);
  EXPECT_TRUE(diags.HasCode("SD200"));
}

TEST(LocalityTest, DerivedRelationLosingTheKeyIsResidual) {
  // H($y) <- E($x, $y) drops the partition key: H's facts live wherever
  // their *E* key hashed, so joining H on $x is not shard-local.
  Universe u;
  Program join = MustParse(u,
                           "H($y) <- E($x, $y).\n"
                           "J($x) <- F($x, $y), H($x).\n");
  DiagnosticList jdiags;
  LocalityReport jreport = AnalyzeLocality(u, join, {}, &jdiags);
  EXPECT_EQ(jreport.cls, LocalityClass::kResidual);
  EXPECT_TRUE(jdiags.HasCode("SD203"));
  Result<RelId> h = u.FindRel("H");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(jreport.co_partitioned.count(*h), 0u);

  // The same shape under negation reports SD202 (it is the negation
  // that is unsound locally).
  Universe u2;
  Program neg = MustParse(u2,
                          "H($y) <- E($x, $y).\n"
                          "---\n"
                          "N($x) <- F($x, $y), !H($x).\n");
  DiagnosticList ndiags;
  LocalityReport nreport = AnalyzeLocality(u2, neg, {}, &ndiags);
  EXPECT_EQ(nreport.cls, LocalityClass::kResidual);
  EXPECT_TRUE(ndiags.HasCode("SD202"));
}

// --- Live loopback clusters ---------------------------------------------------

/// Universe + Database + DatabaseService + Server with matched
/// lifetimes — one shard of a test cluster.
struct TestShard {
  std::unique_ptr<Universe> u;
  std::unique_ptr<DatabaseService> service;
  std::unique_ptr<Server> server;

  static TestShard Start(const std::string& edb_text = "",
                         ServiceOptions sopts = {}, ServerOptions opts = {}) {
    TestShard t;
    t.u = std::make_unique<Universe>();
    Result<Instance> edb = ParseInstance(*t.u, edb_text);
    EXPECT_TRUE(edb.ok()) << edb.status().ToString();
    Result<Database> db = Database::Open(*t.u, std::move(*edb));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    t.service = std::make_unique<DatabaseService>(*t.u, std::move(*db),
                                                  std::move(sopts));
    Result<std::unique_ptr<Server>> server = Server::Start(*t.service, opts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    t.server = std::move(*server);
    return t;
  }

  uint16_t port() const { return server->port(); }
};

/// N empty loopback shards behind one Coordinator. Declared shards-first
/// so the coordinator (and its client connections) tears down before the
/// servers do.
struct TestCluster {
  std::vector<TestShard> shards;
  std::unique_ptr<Universe> u;
  std::unique_ptr<Coordinator> coord;

  static TestCluster Start(size_t n, CoordinatorOptions copts = {},
                           ServiceOptions sopts = {}) {
    TestCluster t;
    std::vector<ShardAddress> addrs;
    for (size_t i = 0; i < n; ++i) {
      ServerOptions opts;
      opts.threads = 2;
      t.shards.push_back(TestShard::Start("", sopts, opts));
      addrs.push_back({"127.0.0.1", t.shards.back().port()});
    }
    t.u = std::make_unique<Universe>();
    t.coord = std::make_unique<Coordinator>(*t.u, std::move(addrs), copts);
    return t;
  }

  Result<protocol::AppendReply> Append(const std::string& facts) {
    protocol::AppendRequest req;
    req.facts = facts;
    return coord->Append(req);
  }

  Result<protocol::RunReply> Run(const std::string& program,
                                 const std::string& output_rel = "") {
    protocol::RunRequest req;
    req.program = program;
    req.output_rel = output_rel;
    return coord->Run(req);
  }
};

/// The reference: the same program over the same total EDB on one node,
/// through the same DatabaseService rendering path a server uses.
std::string SingleNodeRendered(const std::string& edb_text,
                               const std::string& program,
                               const std::string& output_rel = "") {
  Universe u;
  Result<Instance> edb = ParseInstance(u, edb_text);
  EXPECT_TRUE(edb.ok()) << edb.status().ToString();
  Result<Database> db = Database::Open(u, std::move(*edb));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  ServiceOptions sopts;
  sopts.result_cache_entries = 0;
  DatabaseService service(u, std::move(*db), sopts);
  protocol::RunRequest req;
  req.program = program;
  req.output_rel = output_rel;
  Result<protocol::RunReply> r = service.Run(req);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r->rendered : std::string();
}

constexpr char kKeyedJoin[] = "T($x) <- E($x, $y), F($x, $z).\n";
constexpr char kReachProgram[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

TEST(ClusterTest, TransparentJoinMatchesSingleNode) {
  // Keys a..d spread over 3 shards; the join keys on the partition
  // column, so every shard answers its slice and the union is exact.
  const std::string edb =
      "E(a, b). E(b, c). E(c, d). F(a, x). F(b, y). F(d, z).";
  TestCluster t = TestCluster::Start(3);
  Result<protocol::AppendReply> appended = t.Append(edb);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->appended, 6u);

  Result<protocol::RunReply> run = t.Run(kKeyedJoin);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->result_cached);
  EXPECT_EQ(run->rendered, SingleNodeRendered(edb, kKeyedJoin));

  // The facts really are spread: no single shard holds the whole EDB.
  uint64_t max_shard_facts = 0;
  for (TestShard& shard : t.shards) {
    max_shard_facts = std::max(max_shard_facts, shard.service->Info().facts);
  }
  EXPECT_LT(max_shard_facts, 6u);
}

TEST(ClusterTest, ResidualReachabilityMatchesSingleNode) {
  // A chain crossing shard boundaries: the per-shard union would miss
  // every multi-hop path, so this is exact only because the coordinator
  // gathers and finishes the evaluation itself.
  std::string edb;
  for (int i = 0; i < 7; ++i) {
    edb += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ").\n";
  }
  TestCluster t = TestCluster::Start(2);
  ASSERT_TRUE(t.Append(edb).ok());

  Result<protocol::RunReply> run = t.Run(kReachProgram);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rendered, SingleNodeRendered(edb, kReachProgram));
  // 7 edges -> 28 reachable pairs; a per-shard union would have found
  // far fewer. Projection goes through the same residual path.
  Result<protocol::RunReply> projected = t.Run(kReachProgram, "R");
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->rendered, SingleNodeRendered(edb, kReachProgram, "R"));

  // Unknown output relation: the same structured error a server gives.
  Result<protocol::RunReply> bad = t.Run(kReachProgram, "Nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, BroadcastJoinMatchesSingleNode) {
  const std::string edb =
      "E(a, b). E(b, c). E(c, d). D(b, u). D(c, v). D(d, w).";
  const std::string program = "J($x, $z) <- E($x, $y), D($y, $z).\n";
  CoordinatorOptions copts;
  copts.partition.broadcast.insert("D");
  TestCluster t = TestCluster::Start(2, copts);

  Result<protocol::AppendReply> appended = t.Append(edb);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  // Broadcast facts are counted once even though every shard stores
  // them.
  EXPECT_EQ(appended->appended, 6u);
  uint64_t stored = 0;
  for (TestShard& shard : t.shards) stored += shard.service->Info().facts;
  EXPECT_GT(stored, 6u);

  Result<protocol::RunReply> run = t.Run(program);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rendered, SingleNodeRendered(edb, program));
}

TEST(ClusterTest, RetractionsRouteAndRecount) {
  const std::string edb = "E(a, b). E(b, c). E(c, d). E(d, e).";
  TestCluster t = TestCluster::Start(2);
  ASSERT_TRUE(t.Append(edb).ok());

  protocol::RetractRequest req;
  req.facts = "E(b, c). E(d, e). E(zz, zz).";  // last one was never there
  Result<protocol::RetractReply> retracted = t.coord->Retract(req);
  ASSERT_TRUE(retracted.ok()) << retracted.status().ToString();
  EXPECT_EQ(retracted->retracted, 2u);

  Result<protocol::RunReply> run = t.Run(kReachProgram);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->rendered,
            SingleNodeRendered("E(a, b). E(c, d).", kReachProgram));

  Result<protocol::DbInfo> info = t.coord->Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->facts, 2u);
}

TEST(ClusterTest, ResultCacheServesUnchangedEpochVector) {
  CoordinatorOptions copts;
  copts.result_cache_entries = 8;
  TestCluster t = TestCluster::Start(2, copts);
  ASSERT_TRUE(t.Append("E(a, b). E(b, c). F(a, x).").ok());

  Result<protocol::RunReply> first = t.Run(kKeyedJoin);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->result_cached);
  Result<protocol::RunReply> second = t.Run(kKeyedJoin);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->result_cached);
  EXPECT_EQ(second->rendered, first->rendered);

  // An append through the coordinator moves a shard epoch: miss, then
  // hit again at the new epoch vector.
  ASSERT_TRUE(t.Append("F(b, y).").ok());
  Result<protocol::RunReply> third = t.Run(kKeyedJoin);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->result_cached);
  EXPECT_NE(third->rendered, first->rendered);

  // Per-shard compaction folds segments without changing epochs or
  // facts: cached results stay valid.
  Result<protocol::CompactReply> compacted = t.coord->Compact();
  ASSERT_TRUE(compacted.ok());
  Result<protocol::RunReply> fourth = t.Run(kKeyedJoin);
  ASSERT_TRUE(fourth.ok());
  EXPECT_TRUE(fourth->result_cached);
  EXPECT_EQ(fourth->rendered, third->rendered);
}

TEST(ClusterTest, PinnedRelationForcesResidualEvaluation) {
  // Pinning E to shard 0 breaks hash co-location, so even the keyed-join
  // shape must be evaluated residually — and still exactly.
  CoordinatorOptions copts;
  copts.partition.pinned["E"] = 0;
  TestCluster t = TestCluster::Start(2, copts);
  const std::string edb = "E(a, b). E(b, c). F(a, x). F(b, y).";
  ASSERT_TRUE(t.Append(edb).ok());
  // All E facts landed on shard 0 regardless of key.
  Result<RelId> e = t.shards[1].u->FindRel("E");
  EXPECT_FALSE(e.ok() && !t.shards[1].service->db().edb().Tuples(*e).empty());

  Result<protocol::RunReply> run = t.Run(kKeyedJoin);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rendered, SingleNodeRendered(edb, kKeyedJoin));
}

TEST(ClusterTest, KilledShardYieldsStructuredErrorNamingTheShard) {
  CoordinatorOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 2000;
  // The coordinator result cache legitimately answers a repeated program
  // without shard traffic while the epoch vector is unchanged — which
  // would mask the kill. Off, so the second Run must hit the shards.
  copts.result_cache_entries = 0;
  TestCluster t = TestCluster::Start(2, copts);
  ASSERT_TRUE(t.Append("E(a, b). E(b, c).").ok());
  ASSERT_TRUE(t.Run(kReachProgram).ok());

  const uint16_t killed_port = t.shards[1].port();
  t.shards[1].server->Shutdown();

  // Not a hang, not a wrong answer: a structured error naming the shard.
  Result<protocol::RunReply> run = t.Run(kReachProgram);
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().code() == StatusCode::kUnavailable ||
              run.status().code() == StatusCode::kDeadlineExceeded)
      << run.status().ToString();
  EXPECT_NE(run.status().message().find(
                "shard 127.0.0.1:" + std::to_string(killed_port)),
            std::string::npos)
      << run.status().ToString();

  // Still structured on the reconnect attempt.
  Result<protocol::DbInfo> info = t.coord->Info();
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kUnavailable)
      << info.status().ToString();
}

TEST(ClusterTest, RestartedShardHealsThroughLazyReconnect) {
  CoordinatorOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 2000;
  copts.result_cache_entries = 0;  // force shard traffic on every Run
  TestCluster t = TestCluster::Start(1, copts);
  ASSERT_TRUE(t.Append("E(a, b). E(b, c).").ok());
  Result<protocol::RunReply> before = t.Run(kReachProgram);
  ASSERT_TRUE(before.ok());

  const uint16_t port = t.shards[0].port();
  t.shards[0].server->Shutdown();
  ASSERT_FALSE(t.Run(kReachProgram).ok());

  // Restart a shard on the same port with the same partition; the next
  // coordinator request reconnects without any intervention.
  ServerOptions opts;
  opts.port = port;
  opts.threads = 2;
  t.shards[0] = TestShard::Start("E(a, b). E(b, c).", {}, opts);
  ASSERT_EQ(t.shards[0].port(), port);
  Result<protocol::RunReply> after = t.Run(kReachProgram);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rendered, before->rendered);
}

TEST(ClusterTest, CompileBroadcastsAndReportsLocality) {
  TestCluster t = TestCluster::Start(2);
  protocol::CompileRequest req;
  req.program = kKeyedJoin;
  Result<protocol::CompileReply> compiled = t.coord->Compile(req);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  bool has_sd200 = false;
  for (const protocol::WireDiagnostic& d : compiled->diagnostics) {
    has_sd200 = has_sd200 || d.code == "SD200";
  }
  EXPECT_TRUE(has_sd200);
  // Every shard's program cache was warmed.
  for (TestShard& shard : t.shards) {
    EXPECT_EQ(shard.service->NumCachedPrograms(), 1u);
  }

  req.program = kReachProgram;
  compiled = t.coord->Compile(req);
  ASSERT_TRUE(compiled.ok());
  bool has_sd201 = false;
  for (const protocol::WireDiagnostic& d : compiled->diagnostics) {
    has_sd201 = has_sd201 || d.code == "SD201";
  }
  EXPECT_TRUE(has_sd201);
}

// --- The wire front end -------------------------------------------------------

TEST(ClusterTest, CoordinatorLooksLikeAServerOnTheWire) {
  TestCluster t = TestCluster::Start(2);
  CoordinatorHandler handler(*t.coord, /*forward_shutdown=*/true);
  ServerOptions fopts;
  fopts.threads = 2;
  Result<std::unique_ptr<Server>> front = Server::Start(handler, fopts);
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  Result<Client> client = Client::Connect("127.0.0.1", (*front)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<protocol::HelloReply> hello = client->Hello();
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->wire_version, protocol::kWireVersion);

  const std::string edb = "E(a, b). E(b, c). E(c, d).";
  Result<protocol::AppendReply> appended = client->Append(edb);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->appended, 3u);

  Result<protocol::RunReply> run = client->Run(kReachProgram);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rendered, SingleNodeRendered(edb, kReachProgram));

  Result<protocol::StatsReply> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->rendered.find("-- shard 127.0.0.1:"), std::string::npos);

  // One client `shutdown` takes the whole cluster down: the coordinator
  // forwards it to every shard, then drains its own front end.
  ASSERT_TRUE(client->Shutdown().ok());
  (*front)->Wait();
  for (TestShard& shard : t.shards) {
    shard.server->Wait();
    EXPECT_TRUE(shard.server->ShuttingDown());
  }
}

// --- Misbehaving shards at the byte level -------------------------------------

/// A fake shard: accepts one connection and either replies to the first
/// frame with a wrong-version kHello reply or swallows bytes forever.
struct FakeShard {
  enum class Mode { kWrongVersion, kNeverReplies };

  int listen_fd = -1;
  uint16_t port = 0;
  std::thread thread;

  static FakeShard Start(Mode mode) {
    FakeShard f;
    f.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(f.listen_fd, 0);
    int one = 1;
    ::setsockopt(f.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(f.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(f.listen_fd, 4), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(f.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    f.port = ntohs(addr.sin_port);
    f.thread = std::thread([fd = f.listen_fd, mode] {
      int c = ::accept(fd, nullptr, nullptr);
      if (c < 0) return;
      char buf[4096];
      ssize_t n = ::recv(c, buf, sizeof(buf), 0);
      if (mode == Mode::kWrongVersion && n > 0) {
        protocol::HelloReply hello;
        hello.wire_version = 99;
        std::string frame = protocol::EncodeHelloReply(hello);
        (void)::send(c, frame.data(), frame.size(), 0);
      }
      // Swallow everything until the client hangs up (never reply
      // again).
      while (::recv(c, buf, sizeof(buf), 0) > 0) {
      }
      ::close(c);
    });
    return f;
  }

  FakeShard() = default;
  FakeShard(FakeShard&&) = default;
  ~FakeShard() {
    if (listen_fd >= 0) {
      ::shutdown(listen_fd, SHUT_RDWR);  // wakes a blocked accept
      ::close(listen_fd);
    }
    if (thread.joinable()) thread.join();
  }
};

TEST(ClusterTest, MismatchedShardWireVersionIsStructured) {
  FakeShard fake = FakeShard::Start(FakeShard::Mode::kWrongVersion);
  Universe u;
  CoordinatorOptions copts;
  copts.connect_timeout_ms = 2000;
  copts.io_timeout_ms = 2000;
  Coordinator coord(u, {{"127.0.0.1", fake.port}}, copts);
  Result<protocol::DbInfo> info = coord.Info();
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kFailedPrecondition)
      << info.status().ToString();
  EXPECT_NE(info.status().message().find("shard 127.0.0.1:" +
                                         std::to_string(fake.port)),
            std::string::npos)
      << info.status().ToString();
  EXPECT_NE(info.status().message().find("wire version mismatch"),
            std::string::npos)
      << info.status().ToString();
}

TEST(ClusterTest, HungShardSurfacesDeadlineExceeded) {
  FakeShard fake = FakeShard::Start(FakeShard::Mode::kNeverReplies);

  // Straight through the client: the deadline fires instead of blocking.
  ClientOptions copts;
  copts.connect_timeout_ms = 1000;
  copts.io_timeout_ms = 200;
  Result<Client> client = Client::Connect("127.0.0.1", fake.port, copts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<protocol::DbInfo> epoch = client->Epoch();
  ASSERT_FALSE(epoch.ok());
  EXPECT_EQ(epoch.status().code(), StatusCode::kDeadlineExceeded)
      << epoch.status().ToString();
  client->Close();

  // Through a coordinator: same code, now naming the shard.
  FakeShard fake2 = FakeShard::Start(FakeShard::Mode::kNeverReplies);
  Universe u;
  CoordinatorOptions opts;
  opts.connect_timeout_ms = 1000;
  opts.io_timeout_ms = 200;
  Coordinator coord(u, {{"127.0.0.1", fake2.port}}, opts);
  Result<protocol::DbInfo> info = coord.Info();
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kDeadlineExceeded)
      << info.status().ToString();
  EXPECT_NE(info.status().message().find("shard 127.0.0.1:" +
                                         std::to_string(fake2.port)),
            std::string::npos)
      << info.status().ToString();
}

// --- The cluster differential -------------------------------------------------

size_t Iterations() {
  const char* env = std::getenv("SEQDL_DIFFTEST_ITERS");
  if (env != nullptr) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  // Each seed stands up a whole loopback cluster, so the default is
  // smaller than the in-process differentials'; CI's nightly difftest
  // raises it through the environment.
  return 60;
}

struct ClusterCase {
  std::string program;
  std::string output_rel;
  bool residual = false;  ///< template class, for coverage accounting
  PartitionerOptions partition;
  std::vector<std::string> facts;   ///< initial EDB, one fact per entry
  std::vector<std::string> append;  ///< second-epoch batch
};

/// Random cases cycling through program templates of both locality
/// classes (including broadcast joins and a pinned relation forcing
/// residual evaluation), with random EDBs over a small atom pool so
/// shard overlap and cross-shard joins actually happen.
ClusterCase MakeClusterCase(uint64_t seed) {
  std::mt19937 rng(static_cast<uint32_t>(seed * 2654435761ULL + 17));
  static const char* kAtoms[] = {"a", "b", "c", "d", "e", "x", "y", "z"};
  auto atom = [&rng] { return std::string(kAtoms[rng() % 8]); };
  auto add_facts = [&](std::vector<std::string>* out, const char* rel,
                       size_t lo, size_t hi) {
    size_t n = lo + rng() % (hi - lo + 1);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::string(rel) + "(" + atom() + ", " + atom() + ").\n");
    }
  };

  ClusterCase c;
  bool wants_d = false;
  switch (seed % 9) {
    case 0:
      c.program = "S($x, $y) <- E($x, $y).\n";
      c.output_rel = "S";
      break;
    case 1:
      c.program = "T($x) <- E($x, $y), F($x, $z).\n";
      c.output_rel = "T";
      break;
    case 2:
      c.program =
          "S($x) <- E($x, $y).\n"
          "T($x, $y) <- E($x, $y), F($x, $y).\n";
      c.output_rel = "T";
      break;
    case 3:
      c.program = "J($x, $z) <- E($x, $y), D($y, $z).\n";
      c.output_rel = "J";
      c.partition.broadcast.insert("D");
      wants_d = true;
      break;
    case 4:
      c.program =
          "H($x) <- E($x, $y).\n"
          "---\n"
          "N($x) <- F($x, $y), !H($x).\n";
      c.output_rel = "N";
      break;
    case 5:
      c.program =
          "R($x, $y) <- E($x, $y).\n"
          "R($x, $z) <- R($x, $y), E($y, $z).\n";
      c.output_rel = "R";
      c.residual = true;
      break;
    case 6:
      c.program = "J($x, $z) <- E($x, $y), F($y, $z).\n";
      c.output_rel = "J";
      c.residual = true;
      break;
    case 7:
      c.program =
          "H($y) <- E($x, $y).\n"
          "---\n"
          "N($x) <- F($x, $y), !H($x).\n";
      c.output_rel = "N";
      c.residual = true;
      break;
    default:
      // A transparent shape made residual by pinning: co-location is
      // broken on purpose, correctness must survive.
      c.program = "T($x) <- E($x, $y), F($x, $z).\n";
      c.output_rel = "T";
      c.partition.pinned["E"] = 0;
      c.residual = true;
      break;
  }
  // Two of three runs ask for all derived facts; one projects.
  if (rng() % 3 != 0) c.output_rel.clear();

  add_facts(&c.facts, "E", 6, 14);
  add_facts(&c.facts, "F", 4, 10);
  if (wants_d) add_facts(&c.facts, "D", 2, 5);
  add_facts(&c.append, "E", 2, 6);
  add_facts(&c.append, "F", 1, 4);
  return c;
}

std::string Join(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) out += l;
  return out;
}

// The acceptance differential: coordinator scatter-gather output must be
// byte-identical to a single-node run over the same total EDB — for both
// locality classes, across an append epoch, a retraction epoch, and
// per-shard compaction. All caches are off (coordinator and shards), so
// every comparison is a real evaluation.
TEST(DifferentialTest, ClusterScatterGatherMatchesSingleNode) {
  size_t iterations = Iterations();
  size_t transparent_seeds = 0, residual_seeds = 0;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    ClusterCase c = MakeClusterCase(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + c.program +
                 Join(c.facts));
    (c.residual ? residual_seeds : transparent_seeds)++;

    // The single-node reference: one service over the whole EDB.
    Universe ref_u;
    Result<Instance> ref_edb = ParseInstance(ref_u, Join(c.facts));
    ASSERT_TRUE(ref_edb.ok()) << ref_edb.status().ToString();
    Result<Database> ref_db = Database::Open(ref_u, std::move(*ref_edb));
    ASSERT_TRUE(ref_db.ok()) << ref_db.status().ToString();
    ServiceOptions ref_sopts;
    ref_sopts.result_cache_entries = 0;
    DatabaseService ref(ref_u, std::move(*ref_db), ref_sopts);

    // The cluster under test: 2 or 3 empty shards, seeded through the
    // coordinator's routing.
    CoordinatorOptions copts;
    copts.result_cache_entries = 0;
    copts.partition = c.partition;
    ServiceOptions shard_sopts;
    shard_sopts.result_cache_entries = 0;
    TestCluster cluster =
        TestCluster::Start(2 + seed % 2, copts, shard_sopts);
    Result<protocol::AppendReply> seeded = cluster.Append(Join(c.facts));
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();

    auto check = [&](const char* phase) {
      protocol::RunRequest req;
      req.program = c.program;
      req.output_rel = c.output_rel;
      Result<protocol::RunReply> want = ref.Run(req);
      ASSERT_TRUE(want.ok()) << phase << ": " << want.status().ToString();
      Result<protocol::RunReply> got = cluster.coord->Run(req);
      ASSERT_TRUE(got.ok()) << phase << ": " << got.status().ToString();
      EXPECT_EQ(want->rendered, got->rendered) << phase;
    };
    check("epoch 0 (seeded)");

    // Append epoch: both sides ingest the same batch (and must count it
    // identically — the routed split plus the primary broadcast copy).
    protocol::AppendRequest append;
    append.facts = Join(c.append);
    Result<protocol::AppendReply> ref_appended = ref.Append(append);
    ASSERT_TRUE(ref_appended.ok());
    Result<protocol::AppendReply> got_appended = cluster.Append(append.facts);
    ASSERT_TRUE(got_appended.ok()) << got_appended.status().ToString();
    EXPECT_EQ(got_appended->appended, ref_appended->appended);
    check("epoch 1 (append)");

    // Retraction epoch: a random third of everything ever appended
    // (victim choice drawn from a schedule RNG separate from the case
    // generator's, so it cannot perturb what the seed denotes).
    std::mt19937 sched(static_cast<uint32_t>(seed * 7919 + 13));
    std::vector<std::string> victims;
    for (const std::vector<std::string>* batch : {&c.facts, &c.append}) {
      for (const std::string& fact : *batch) {
        if (sched() % 3 == 0) victims.push_back(fact);
      }
    }
    if (!victims.empty()) {
      protocol::RetractRequest retract;
      retract.facts = Join(victims);
      Result<protocol::RetractReply> ref_r = ref.Retract(retract);
      ASSERT_TRUE(ref_r.ok());
      Result<protocol::RetractReply> got_r = cluster.coord->Retract(retract);
      ASSERT_TRUE(got_r.ok()) << got_r.status().ToString();
      EXPECT_EQ(got_r->retracted, ref_r->retracted);
      check("epoch 2 (retract)");
    }

    // Per-shard compaction folds every shard's segment stack (tombstones
    // included); same facts, same answers.
    ASSERT_TRUE(ref.Compact().ok());
    Result<protocol::CompactReply> compacted = cluster.coord->Compact();
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    check("post-compaction");
  }
  if (iterations >= 9) {
    // The template cycle guarantees both evaluation paths ran.
    EXPECT_GT(transparent_seeds, 0u);
    EXPECT_GT(residual_seeds, 0u);
  }
}

}  // namespace
}  // namespace seqdl
