#include <gtest/gtest.h>

#include "src/analysis/features.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/doubling.h"
#include "src/transform/equation_elim.h"
#include "src/transform/fold_intermediates.h"
#include "src/transform/normal_form.h"
#include "src/transform/rewrite.h"
#include "src/transform/simplify.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// Asserts that two programs compute the same facts for `rel` on `input`.
void ExpectSameOutput(Universe& u, const Program& p1, const Program& p2,
                      const std::string& rel, const Instance& input) {
  RelId out_rel = *u.FindRel(rel);
  Result<Instance> o1 = EvalQuery(u, p1, input, out_rel);
  Result<Instance> o2 = EvalQuery(u, p2, input, out_rel);
  ASSERT_TRUE(o1.ok()) << o1.status().ToString();
  ASSERT_TRUE(o2.ok()) << o2.status().ToString();
  EXPECT_EQ(*o1, *o2) << "original:\n"
                      << o1->ToString(u) << "transformed:\n"
                      << o2->ToString(u);
}

// --- Lemma 4.1 pairing encoding ---------------------------------------------

TEST(PairEncodeTest, InjectiveOnSamples) {
  Universe u;
  Value a = Value::Atom(u.InternAtom("0"));
  Value b = Value::Atom(u.InternAtom("1"));
  // Paths over {a, b, 0, 1} — the encoding must stay injective even when
  // the separator atoms occur in the data (Lemma 4.1).
  std::vector<std::string> samples = {"",   "a",  "b",   "0",  "1",
                                      "ab", "a0", "0a",  "01", "10",
                                      "aa", "b1", "0ab", "ba"};
  std::map<PathId, std::pair<std::string, std::string>> seen;
  for (const std::string& s1 : samples) {
    for (const std::string& s2 : samples) {
      PathExpr e = PairEncode(ExprOfPath(u, u.PathOfChars(s1)),
                              ExprOfPath(u, u.PathOfChars(s2)), a, b);
      Result<PathId> p = EvalGroundExpr(u, e);
      ASSERT_TRUE(p.ok());
      auto [it, inserted] = seen.emplace(*p, std::make_pair(s1, s2));
      EXPECT_TRUE(inserted) << "collision: (" << s1 << "," << s2 << ") vs ("
                            << it->second.first << "," << it->second.second
                            << ")";
    }
  }
}

// --- Theorem 4.2: arity elimination -------------------------------------------

TEST(ArityElimTest, RemovesArityFeature) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, eps) <- R($x).\n"
                        "T($x, $y ++ @u) <- T($x ++ @u, $y).\n"
                        "S($x) <- T(eps, $x).\n");
  EXPECT_TRUE(DetectFeatures(p).Contains(Feature::kArity));
  Result<Program> q = EliminateArity(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kArity));
  // The other features are untouched.
  EXPECT_TRUE(DetectFeatures(*q).Contains(Feature::kRecursion));
  EXPECT_TRUE(DetectFeatures(*q).Contains(Feature::kIntermediate));
}

TEST(ArityElimTest, ReversalStillCorrect) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, eps) <- R($x).\n"
                        "T($x, $y ++ @u) <- T($x ++ @u, $y).\n"
                        "S($x) <- T(eps, $x).\n");
  Result<Program> q = EliminateArity(u, p);
  ASSERT_TRUE(q.ok());
  Instance in = MustInstance(u, "R(a ++ b ++ c ++ d). R(eps). R(b).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(ArityElimTest, MatchesPaperHandEncodingSemantics) {
  // The paper's hand-encoded program (Example 4.3) and our mechanical
  // elimination must both compute reversal.
  Universe u;
  Program hand = MustParse(
      u,
      "T($x ++ a ++ a ++ $x ++ b) <- R($x).\n"
      "T($x ++ a ++ $y ++ @u ++ a ++ $x ++ b ++ $y ++ @u) <- "
      "T($x ++ @u ++ a ++ $y ++ a ++ $x ++ @u ++ b ++ $y).\n"
      "S($x) <- T(a ++ $x ++ a ++ b ++ $x).\n");
  Instance in = MustInstance(u, "R(c ++ d ++ e). R(eps).");
  Result<Instance> out = EvalQuery(u, hand, in, *u.FindRel("S"));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {u.PathOfChars("edc")}));
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {kEmptyPath}));
  EXPECT_EQ(out->NumFacts(), 2u);
}

TEST(ArityElimTest, TernaryRelations) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, $y, $z) <- R($x ++ $y ++ $z).\n"
                        "S($y) <- T($x, $y, $x).\n");
  Result<Program> q = EliminateArity(u, p);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kArity));
  Instance in = MustInstance(u, "R(a ++ b ++ a). R(a ++ b ++ c).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(ArityElimTest, NegatedIdbPredicatesAreRewritten) {
  Universe u;
  Program p = MustParse(u,
                        "T($x, $y) <- R($x ++ $y).\n"
                        "---\n"
                        "S($x) <- R($x), !T($x, $x).\n");
  Result<Program> q = EliminateArity(u, p);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kArity));
  Instance in = MustInstance(u, "R(a ++ a). R(a). R(b).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(ArityElimTest, RejectsWideEdb) {
  Universe u;
  Program p = MustParse(u, "S($x) <- D($x, $y, $z).");
  Result<Program> q = EliminateArity(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

// --- Lemma 4.5 / Theorem 4.7: equation elimination ----------------------------

TEST(EquationElimTest, PositiveOnlyAs) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  Result<Program> q = EliminatePositiveEquations(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kEquations));
  EXPECT_TRUE(DetectFeatures(*q).Contains(Feature::kIntermediate));
  Instance in = MustInstance(u, "R(a ++ a). R(a ++ b). R(eps).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(EquationElimTest, PositiveMatchesPaperShape) {
  // Example 4.4 produces: T(a·$x, $x) <- R($x).  S($x) <- T($x·a, $x).
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  Result<Program> q = EliminatePositiveEquations(u, p);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->NumRules(), 2u);
  const Rule& aux = q->strata[0].rules[0];
  const Rule& main = q->strata[0].rules[1];
  EXPECT_EQ(aux.head.args.size(), 2u);
  ASSERT_EQ(main.body.size(), 1u);
  EXPECT_TRUE(main.body[0].is_predicate());
  EXPECT_EQ(main.body[0].pred.rel, aux.head.rel);
}

TEST(EquationElimTest, MultipleChainedEquations) {
  Universe u;
  Program p =
      MustParse(u, "S($z) <- R($x), $x = $y ++ a, $y ++ $y = $z.");
  Result<Program> q = EliminateEquations(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kEquations));
  Instance in = MustInstance(u, "R(b ++ a). R(a). R(b).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(EquationElimTest, NegatedEquationsInRecursiveStratum) {
  // Example 4.6: the marked-pair query.
  Universe u;
  Program p = MustParse(u,
                        "U($x, $x) <- R($x).\n"
                        "U($x, $y) <- U($x, @a ++ $y ++ @b), @a != @b.\n"
                        "S($x) <- U($x, eps).\n");
  Result<Program> q = EliminateEquations(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kEquations));
  Instance in = MustInstance(
      u, "R(a ++ b). R(a ++ a). R(a ++ b ++ a ++ b). R(a ++ b ++ b ++ a). "
         "R(eps). R(a).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(EquationElimTest, Example46StructureHasPreStratum) {
  Universe u;
  Program p = MustParse(u,
                        "U($x, $x) <- R($x).\n"
                        "U($x, $y) <- U($x, @a ++ $y ++ @b), @a != @b.\n"
                        "S($x) <- U($x, eps).\n");
  Result<Program> q = EliminateNegatedEquations(u, p);
  ASSERT_TRUE(q.ok());
  // One stratum becomes two: the renamed pre-stratum plus the fixed one.
  ASSERT_EQ(q->strata.size(), 2u);
  // The pre-stratum has 4 rules (two renamed U rules, one T rule, one
  // renamed S rule); the fixed stratum has the original 3.
  EXPECT_EQ(q->strata[0].rules.size(), 4u);
  EXPECT_EQ(q->strata[1].rules.size(), 3u);
  // No negated equations remain anywhere.
  for (const Rule* r : q->AllRules()) {
    for (const Literal& l : r->body) {
      EXPECT_FALSE(l.is_equation() && l.negated) << FormatRule(u, *r);
    }
  }
}

TEST(EquationElimTest, NegatedEquationWithNegatedPredicates) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- R($x), $x != a ++ a, !Q($x).\n"
                        "---\n"
                        "S($x) <- T($x).\n");
  Result<Program> q = EliminateEquations(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kEquations));
  Instance in = MustInstance(u, "R(a ++ a). R(a ++ b). R(a). Q(a).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(EquationElimTest, GroundEquationBothSides) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ b = a ++ b.");
  Result<Program> q = EliminateEquations(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Instance in = MustInstance(u, "R(a).");
  ExpectSameOutput(u, p, *q, "S", in);
}

// --- Theorem 4.16: folding away intermediate predicates -----------------------

TEST(FoldTest, SimpleChain) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- R($x ++ a).\n"
                        "S($x ++ b) <- T($x).\n");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kIntermediate));
  EXPECT_EQ(IdbRels(*q).size(), 1u);
  Instance in = MustInstance(u, "R(c ++ a). R(a). R(c).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(FoldTest, MultipleDefiningRulesCrossProduct) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- R(a ++ $x).\n"
                        "T($x) <- R(b ++ $x).\n"
                        "S($x) <- T($x), T($x ++ c).\n");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kIntermediate));
  // 2 defining rules x 2 occurrences = 4 folded rules.
  EXPECT_EQ(q->NumRules(), 4u);
  Instance in = MustInstance(
      u, "R(a ++ d). R(b ++ d ++ c). R(a ++ d ++ c). R(b ++ e).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(FoldTest, DeepChainWithEquationsAndPacking) {
  Universe u;
  Program p = MustParse(u,
                        "T1(<$x>) <- R($x).\n"
                        "T2($y ++ $y) <- T1($y).\n"
                        "S($z) <- T2($z).\n");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(IdbRels(*q).size(), 1u);
  Instance in = MustInstance(u, "R(a ++ b). R(eps).");
  ExpectSameOutput(u, p, *q, "S", in);
}

TEST(FoldTest, RejectsRecursion) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FoldTest, RejectsNegatedIdb) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- R($x).\n"
                        "---\n"
                        "S($x) <- R($x), !T($x ++ a).\n");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FoldTest, ArityZeroIntermediate) {
  Universe u;
  Program p = MustParse(u,
                        "Nonempty <- R($x).\n"
                        "S(a) <- Nonempty.\n");
  Result<Program> q = FoldIntermediates(u, p, *u.FindRel("S"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Instance in = MustInstance(u, "R(b).");
  ExpectSameOutput(u, p, *q, "S", in);
  Instance empty;
  ExpectSameOutput(u, p, *q, "S", empty);
}

// --- Theorem 4.15: doubling -----------------------------------------------------

TEST(DoublingTest, DoublePathGroundRoundTrip) {
  Universe u;
  Value lb = Value::Atom(u.InternAtom("LB"));
  Value rb = Value::Atom(u.InternAtom("RB"));
  EXPECT_EQ(DoublePath(u, u.PathOfChars("abc"), lb, rb),
            u.PathOfChars("aabbcc"));
  // Packed values become delimited segments.
  PathId packed = u.Append(u.PathOfChars("c"),
                           Value::Packed(u.PathOfChars("ab")));
  PathId doubled = DoublePath(u, packed, lb, rb);
  EXPECT_EQ(u.FormatPath(doubled), "c·c·LB·a·a·b·b·RB");
}

TEST(DoublingTest, DoublingRulesComputeDoubledPaths) {
  Universe u;
  RelId r = *u.InternRel("R", 1);
  RelId rd = *u.InternRel("Rdbl", 1);
  Program p;
  p.strata.emplace_back();
  p.strata.back().rules = DoubleRelationRules(u, r, rd);
  Instance in = MustInstance(u, "R(a ++ b). R(eps).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->Tuples(rd).size(), 2u);
  EXPECT_TRUE(out->Contains(rd, {u.PathOfChars("aabb")}));
  EXPECT_TRUE(out->Contains(rd, {kEmptyPath}));
}

TEST(DoublingTest, UndoublingInverts) {
  Universe u;
  RelId r = *u.InternRel("Rd", 1);
  RelId back = *u.InternRel("Back", 1);
  Program p;
  p.strata.emplace_back();
  p.strata.back().rules = UndoubleRelationRules(u, r, back);
  Instance in = MustInstance(u, "Rd(a ++ a ++ b ++ b).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(back, {u.PathOfChars("ab")}));
  EXPECT_EQ(out->Tuples(back).size(), 1u);
}

TEST(DoublingTest, UndoublingIgnoresNonDoubledJunk) {
  Universe u;
  RelId r = *u.InternRel("Rd", 1);
  RelId back = *u.InternRel("Back", 1);
  Program p;
  p.strata.emplace_back();
  p.strata.back().rules = UndoubleRelationRules(u, r, back);
  Instance in = MustInstance(u, "Rd(a ++ b). Rd(a ++ a ++ b).");
  Result<Instance> out = Eval(u, p, in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Tuples(back).empty());
}

TEST(DoublingTest, EliminatePackingViaDoublingOnExample22) {
  Universe u;
  Program p = MustParse(u,
                        "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                        "A <- T($x), T($y), T($z), $x != $y, $x != $z, "
                        "$y != $z.\n");
  Result<Program> q = EliminatePackingViaDoubling(u, p, *u.FindRel("A"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kPacking));

  // Differential check on several instances.
  std::vector<std::string> instances = {
      "R(a ++ b ++ a ++ b). S(a ++ b). S(b ++ a).",  // 3 marked: true
      "R(a ++ b ++ a ++ b). S(a ++ b).",             // 2 marked: false
      "R(a ++ a ++ a). S(a).",                       // 3 marked: true
      "R(a). S(b).",                                 // none: false
  };
  for (const std::string& text : instances) {
    Instance in = MustInstance(u, text);
    ExpectSameOutput(u, p, *q, "A", in);
  }
}

TEST(DoublingTest, EliminatePackingViaDoublingRecursivePackBuilder) {
  // A recursive program that wraps prefixes in packs and later inspects
  // them; packing is essential to its intermediate state.
  Universe u;
  Program p = MustParse(u,
                        "T(<$x>) <- R($x).\n"
                        "T(<$x>) <- T(<$x ++ @a>).\n"
                        "S($x) <- T(<$x>).\n");
  Result<Program> q = EliminatePackingViaDoubling(u, p, *u.FindRel("S"));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kPacking));
  Instance in = MustInstance(u, "R(a ++ b ++ c). R(eps).");
  ExpectSameOutput(u, p, *q, "S", in);
}

// --- Simplification pass --------------------------------------------------------

TEST(SimplifyTest, CopyPropagationRemovesVarEquations) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- R($y), $x = $y ++ a.");
  ASSERT_TRUE(r.ok());
  std::optional<Rule> s = SimplifyRule(u, *r);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->body.size(), 1u);
  EXPECT_EQ(FormatRule(u, *s), "S($y·a) <- R($y).");
}

TEST(SimplifyTest, TrivialEquationsDropped) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- R($x), $x = $x, a = a.");
  ASSERT_TRUE(r.ok());
  std::optional<Rule> s = SimplifyRule(u, *r);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->body.size(), 1u);
}

TEST(SimplifyTest, UnsatisfiableRuleDropped) {
  Universe u;
  Result<Rule> r1 = ParseRule(u, "S($x) <- R($x), a = b.");
  Result<Rule> r2 = ParseRule(u, "S($x) <- R($x), $x != $x.");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(SimplifyRule(u, *r1).has_value());
  EXPECT_FALSE(SimplifyRule(u, *r2).has_value());
}

TEST(SimplifyTest, AtomVarAbsorbsAtomOnly) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S(@a) <- R(@a ++ @b), @a = @b.");
  ASSERT_TRUE(r.ok());
  std::optional<Rule> s = SimplifyRule(u, *r);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->body.size(), 1u);
  // @a and @b collapsed to one variable.
  std::vector<VarId> vars;
  CollectVars(*s, &vars);
  EXPECT_EQ(vars.size(), 1u);
}

TEST(SimplifyTest, AlphaEquivalentRulesDeduplicated) {
  Universe u;
  Program p = MustParse(u,
                        "S($x) <- R($x ++ $y).\n"
                        "S($u) <- R($u ++ $w).\n"
                        "S($x) <- R($y ++ $x).\n");
  Program q = SimplifyProgram(u, p);
  EXPECT_EQ(q.NumRules(), 2u);
}

TEST(SimplifyTest, PreservesSemantics) {
  Universe u;
  Program p = MustParse(
      u, "S($x) <- R($y), $x = $y ++ a, $y != b, c = c, $z = $x.");
  Program q = SimplifyProgram(u, p);
  Instance in = MustInstance(u, "R(b). R(c). R(eps).");
  ExpectSameOutput(u, p, q, "S", in);
}

// --- Lemma 7.2: normal form -----------------------------------------------------

TEST(NormalFormTest, ClassifiesForms) {
  struct Case {
    const char* rule;
    int form;
  };
  std::vector<Case> cases = {
      {"H1($x, @u) <- P1($x ++ $x, @u ++ d).", 1},
      {"N1($x, $y, $x ++ a ++ $y) <- H($x, $y).", 2},
      {"J($x, $y, $z) <- H1($x, $y), H2($y, $z).", 3},
      {"FN($x, $y) <- N2($x, $y), !N($y).", 4},
      {"HN($y) <- FN($x, $y).", 5},
      {"R(a ++ b) <- .", 6},
  };
  for (const Case& c : cases) {
    Universe uc;
    Result<Rule> r = ParseRule(uc, c.rule);
    ASSERT_TRUE(r.ok()) << c.rule;
    Result<int> form = NormalFormOf(uc, *r);
    ASSERT_TRUE(form.ok()) << c.rule << ": " << form.status().ToString();
    EXPECT_EQ(*form, c.form) << c.rule;
  }
}

TEST(NormalFormTest, RejectsNonNormalRules) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x ++ a) <- R($x), Q($x ++ b).");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(NormalFormOf(u, *r).ok());
}

TEST(NormalFormTest, PaperExampleNormalizes) {
  // The general example of Lemma 7.2's proof.
  Universe u;
  Program p = MustParse(
      u,
      "T(a ++ b ++ c, @x ++ c ++ $y, $z ++ $z) <- "
      "P1($y ++ $y, $z ++ a, @u ++ d), P2($z ++ @x ++ c, d), "
      "!N1(@x ++ $y ++ $z, a ++ @x), !N2(a ++ b, $y).\n");
  Result<Program> q = ToNormalForm(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(ValidateNormalForm(u, *q).ok());
  // Semantics preserved.
  Instance in = MustInstance(
      u,
      "P1(e ++ e, f ++ a, g ++ d). P2(f ++ h ++ c, d). "
      "N1(h ++ e ++ f, a ++ h). N2(a ++ c, e).");
  ExpectSameOutput(u, p, *q, "T", in);
  // And with the first negation firing, T must be empty.
  Instance in2 = MustInstance(
      u,
      "P1(e ++ e, f ++ a, g ++ d). P2(f ++ h ++ c, d). "
      "N1(h ++ e ++ e, a ++ h). N2(a ++ b, e).");
  ExpectSameOutput(u, p, *q, "T", in2);
}

TEST(NormalFormTest, VariableFreeAtomHandled) {
  Universe u;
  Program p = MustParse(u, "S(a) <- Q(b ++ c).");
  Result<Program> q = ToNormalForm(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(ValidateNormalForm(u, *q).ok());
  Instance has = MustInstance(u, "Q(b ++ c).");
  Instance hasnt = MustInstance(u, "Q(b).");
  ExpectSameOutput(u, p, *q, "S", has);
  ExpectSameOutput(u, p, *q, "S", hasnt);
}

TEST(NormalFormTest, EmptyBodyHandled) {
  Universe u;
  Program p = MustParse(u, "S(a ++ b).");
  Result<Program> q = ToNormalForm(u, p);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(ValidateNormalForm(u, *q).ok());
  ExpectSameOutput(u, p, *q, "S", Instance{});
}

TEST(NormalFormTest, ArityZeroNegatedAtom) {
  Universe u;
  Program p = MustParse(u, "Flag <- Q($x).\n---\nS($x) <- R($x), !Flag.");
  Result<Program> q = ToNormalForm(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(ValidateNormalForm(u, *q).ok());
  Instance in1 = MustInstance(u, "R(a). Q(b).");
  Instance in2 = MustInstance(u, "R(a).");
  ExpectSameOutput(u, p, *q, "S", in1);
  ExpectSameOutput(u, p, *q, "S", in2);
}

TEST(NormalFormTest, RejectsEquationsAndRecursion) {
  Universe u;
  Program with_eq = MustParse(u, "S($x) <- R($x), $x = a.");
  EXPECT_EQ(ToNormalForm(u, with_eq).status().code(),
            StatusCode::kFailedPrecondition);
  Universe u2;
  Program rec = MustParse(u2, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  EXPECT_EQ(ToNormalForm(u2, rec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(NormalFormTest, PackingSurvivesNormalization) {
  Universe u;
  Program p = MustParse(u, "S(<$x> ++ $y) <- R($x ++ <$y>).");
  Result<Program> q = ToNormalForm(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(ValidateNormalForm(u, *q).ok());
  Instance in = MustInstance(u, "R(a ++ <b ++ c>). R(a ++ b).");
  ExpectSameOutput(u, p, *q, "S", in);
}

// --- FreshenVars / rename utilities ---------------------------------------------

TEST(RewriteTest, FreshenVarsRenamesApart) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- R($x ++ @y), T($x, @y).");
  ASSERT_TRUE(r.ok());
  Rule fresh = FreshenVars(u, *r);
  std::vector<VarId> orig_vars, fresh_vars;
  CollectVars(*r, &orig_vars);
  CollectVars(fresh, &fresh_vars);
  ASSERT_EQ(orig_vars.size(), fresh_vars.size());
  for (VarId v : fresh_vars) {
    for (VarId o : orig_vars) EXPECT_NE(v, o);
  }
  // Kinds preserved.
  EXPECT_EQ(u.VarKindOf(fresh_vars[1]), VarKind::kAtomic);
}

TEST(RewriteTest, RenameRelsTouchesHeadsAndBodies) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- T($x), !T($x ++ a).");
  ASSERT_TRUE(r.ok());
  RelId t = *u.FindRel("T");
  RelId t2 = u.FreshRel("T2", 1);
  Rule renamed = RenameRels(*r, {{t, t2}});
  EXPECT_EQ(renamed.body[0].pred.rel, t2);
  EXPECT_EQ(renamed.body[1].pred.rel, t2);
  EXPECT_EQ(renamed.head.rel, r->head.rel);
}

}  // namespace
}  // namespace seqdl
