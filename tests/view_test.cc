// Tests for the materialized-view subsystem (view/view.h): cold
// materialization, epoch hits, semi-naive delta refresh after appends,
// EDB promotion of derived facts, negation-forced stratum recomputation
// with downstream retraction cascades, support counting, and
// invalidation. The cross-cutting guarantee — a maintained view is
// byte-identical to a cold fixpoint at every epoch, over random programs
// and append schedules — lives in tests/differential_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/view/view.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

PreparedProgram MustCompile(Universe& u, const std::string& text) {
  Result<PreparedProgram> prog = Engine::Compile(u, MustParse(u, text));
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return std::move(prog).value();
}

/// What a cold fixpoint at the database's current epoch derives —
/// the reference every maintained view must match byte-for-byte.
std::string ColdRendered(Universe& u, const Database& db,
                         const PreparedProgram& prog) {
  Result<Instance> derived = db.Snapshot().Run(prog);
  EXPECT_TRUE(derived.ok()) << derived.status().ToString();
  return derived->ToString(u);
}

constexpr char kReach[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

TEST(ViewTest, ColdRunThenEpochHit) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);

  auto v1 = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ((*v1)->epoch(), 0u);
  EXPECT_EQ((*v1)->idb().ToString(u), ColdRendered(u, *db, prog));
  EXPECT_GT((*v1)->ApproxBytes(), 0u);

  // Unchanged epoch: the stored snapshot comes back, same object.
  auto v2 = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v1->get(), v2->get());

  ViewManager::Counters c = db->views().counters();
  EXPECT_EQ(c.cold_runs, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.delta_refreshes, 0u);
  EXPECT_EQ(db->views().NumViews(), 1u);
}

TEST(ViewTest, DeltaRefreshMatchesColdRun) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b). E(b, c)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());

  // An append moves the epoch; Refresh delta-evaluates just the new edge
  // against the stored IDB instead of re-running the fixpoint.
  ASSERT_TRUE(db->Append(MustInstance(u, "E(c, d).")).ok());
  EvalStats stats;
  auto v = db->views().Refresh("reach", prog, {}, &stats);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ((*v)->epoch(), 1u);
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
  // Only the 3 tuples reaching the new node were derived; the delta pass
  // was seeded from exactly the appended fact.
  EXPECT_EQ(stats.delta_seed_facts, 1u);
  EXPECT_EQ(stats.derived_facts, 3u);
  EXPECT_EQ(stats.strata_recomputed, 0u);

  ViewManager::Counters c = db->views().counters();
  EXPECT_EQ(c.cold_runs, 1u);
  EXPECT_EQ(c.delta_refreshes, 1u);
  EXPECT_EQ(c.strata_recomputed, 0u);
}

TEST(ViewTest, DeltaRefreshAcrossCompaction) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());

  // Compaction folds the stack under an unchanged epoch; the merged
  // segment keeps the newest folded publish stamp, so a view older than
  // that stamp sees it as one (over-approximate but sound) delta.
  ASSERT_TRUE(db->Append(MustInstance(u, "E(b, c).")).ok());
  ASSERT_TRUE(*db->Compact());
  auto v = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));

  // A view refreshed at the compacted epoch is a plain hit afterwards.
  auto again = db->views().Refresh("reach", prog);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(v->get(), again->get());
}

TEST(ViewTest, AppendPromotingDerivedFactToEdb) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());
  RelId r = *u.FindRel("R");

  // Appending a fact the view had *derived* promotes it to EDB. Derived
  // results exclude EDB facts (Session::Run contract), so the refreshed
  // view must drop it — exactly what a cold run at the new epoch does.
  ASSERT_TRUE(db->Append(MustInstance(u, "R(a, b).")).ok());
  auto v = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)->idb().Contains(r, {u.PathOfChars("a"),
                                        u.PathOfChars("b")}));
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
}

TEST(ViewTest, NegationForcesStratumRecomputeAndCascade) {
  Universe u;
  // Stratum 1: A and A2 read through negation over EDB N. Stratum 2
  // (forced by !A2): B feeds from A *positively*.
  Result<Database> db =
      Database::Open(u, MustInstance(u, "R(a). R(b). M(b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u,
                                     "A($x) <- R($x), !N($x).\n"
                                     "A2($x) <- M($x), !N($x).\n"
                                     "---\n"
                                     "B($x) <- A($x), !A2($x).\n");
  ASSERT_TRUE(db->views().Refresh("ab", prog).ok());
  RelId a = *u.FindRel("A");
  RelId b = *u.FindRel("B");
  EXPECT_TRUE(db->views().Lookup("ab")->idb().Contains(
      b, {u.PathOfChars("a")}));

  // Appending into the negated input can only *retract* derived facts —
  // the one case delta evaluation cannot patch. The stratum of A
  // recomputes and A(a) disappears. That loss cascades into B's stratum
  // as a *positive* shrink, which DRed deletion handles in place: B's
  // negated input A2 did not change, so the stratum stays maintained and
  // B(a) is deleted by support counting, not by a recompute.
  ASSERT_TRUE(db->Append(MustInstance(u, "N(a).")).ok());
  EvalStats stats;
  auto v = db->views().Refresh("ab", prog, {}, &stats);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE((*v)->idb().Contains(a, {u.PathOfChars("a")}));
  EXPECT_FALSE((*v)->idb().Contains(b, {u.PathOfChars("a")}));
  EXPECT_TRUE((*v)->idb().Contains(a, {u.PathOfChars("b")}));
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
  EXPECT_EQ(stats.strata_recomputed, 1u);
  EXPECT_EQ(stats.strata_delta_maintained, 1u);
  EXPECT_GE(stats.dred_over_deleted, 1u);
  EXPECT_EQ(db->views().counters().strata_recomputed, 1u);
}

TEST(ViewTest, SupportCountsCoverEveryViewTuple) {
  Universe u;
  // R(a,b) is derived twice at the diamond join: via b and via c.
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b). E(a, c). E(b, d). E(c, d)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  auto v = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  RelId r = *u.FindRel("R");

  const SharedSupport& support = (*v)->support();
  auto rel_it = support.find(r);
  ASSERT_NE(rel_it, support.end());
  for (const Tuple& t : (*v)->idb().Tuples(r)) {
    auto it = rel_it->second->find(t);
    ASSERT_NE(it, rel_it->second->end());
    EXPECT_GE(it->second, 1u);
  }
  // The diamond apex: two derivation events for R(a, d).
  auto apex = rel_it->second->find({u.PathOfChars("a"), u.PathOfChars("d")});
  ASSERT_NE(apex, rel_it->second->end());
  EXPECT_EQ(apex->second, 2u);

  // Delta refreshes keep the invariant: counts carry forward for
  // maintained strata plus fresh derivation events.
  ASSERT_TRUE(db->Append(MustInstance(u, "E(d, e).")).ok());
  v = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  rel_it = (*v)->support().find(r);
  ASSERT_NE(rel_it, (*v)->support().end());
  for (const Tuple& t : (*v)->idb().Tuples(r)) {
    auto it = rel_it->second->find(t);
    ASSERT_NE(it, rel_it->second->end());
    EXPECT_GE(it->second, 1u);
  }
  // The carried diamond count survives the refresh untouched.
  apex = rel_it->second->find({u.PathOfChars("a"), u.PathOfChars("d")});
  ASSERT_NE(apex, rel_it->second->end());
  EXPECT_EQ(apex->second, 2u);

  // A refresh that derives nothing new for R shares the stored map
  // instead of rebuilding it (copy-on-write across snapshots).
  auto before = rel_it->second;
  ASSERT_TRUE(db->Append(MustInstance(u, "Z(q).")).ok());
  v = db->views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  rel_it = (*v)->support().find(r);
  ASSERT_NE(rel_it, (*v)->support().end());
  EXPECT_EQ(rel_it->second.get(), before.get());
}

TEST(ViewTest, InvalidateForcesColdRun) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());
  EXPECT_EQ(db->views().NumViews(), 1u);

  db->views().Invalidate("reach");
  EXPECT_EQ(db->views().NumViews(), 0u);
  EXPECT_EQ(db->views().Lookup("reach"), nullptr);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());
  EXPECT_EQ(db->views().counters().cold_runs, 2u);

  db->views().Clear();
  EXPECT_EQ(db->views().NumViews(), 0u);
}

TEST(ViewTest, ViewsSurviveDatabaseMove) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());

  // ViewManager lives in the heap-stable DbState: moving the Database
  // moves ownership, not the manager — the stored snapshot is still hot.
  Database moved = std::move(*db);
  auto v = moved.views().Refresh("reach", prog);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(moved.views().counters().hits, 1u);
}

}  // namespace
}  // namespace seqdl
