#include <gtest/gtest.h>

#include "src/term/universe.h"
#include "src/term/value.h"

namespace seqdl {
namespace {

TEST(ValueTest, AtomRoundTrip) {
  Value v = Value::Atom(17);
  EXPECT_TRUE(v.is_atom());
  EXPECT_FALSE(v.is_packed());
  EXPECT_EQ(v.atom(), 17u);
}

TEST(ValueTest, PackedRoundTrip) {
  Value v = Value::Packed(23);
  EXPECT_TRUE(v.is_packed());
  EXPECT_FALSE(v.is_atom());
  EXPECT_EQ(v.packed_path(), 23u);
}

TEST(ValueTest, AtomAndPackedWithSamePayloadDiffer) {
  EXPECT_NE(Value::Atom(5), Value::Packed(5));
}

TEST(UniverseTest, AtomInterningIsIdempotent) {
  Universe u;
  AtomId a1 = u.InternAtom("hello");
  AtomId a2 = u.InternAtom("hello");
  AtomId b = u.InternAtom("world");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(u.AtomName(a1), "hello");
}

TEST(UniverseTest, EmptyPathIsIdZero) {
  Universe u;
  EXPECT_EQ(u.InternPath({}), kEmptyPath);
  EXPECT_EQ(u.PathLength(kEmptyPath), 0u);
}

TEST(UniverseTest, PathInterningGivesStructuralEquality) {
  Universe u;
  PathId p1 = u.PathOfChars("abc");
  PathId p2 = u.PathOfChars("abc");
  PathId p3 = u.PathOfChars("abd");
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
}

TEST(UniverseTest, ConcatIsAssociative) {
  Universe u;
  PathId a = u.PathOfChars("ab");
  PathId b = u.PathOfChars("cd");
  PathId c = u.PathOfChars("ef");
  EXPECT_EQ(u.Concat(u.Concat(a, b), c), u.Concat(a, u.Concat(b, c)));
  EXPECT_EQ(u.Concat(a, kEmptyPath), a);
  EXPECT_EQ(u.Concat(kEmptyPath, a), a);
}

TEST(UniverseTest, SubPath) {
  Universe u;
  PathId p = u.PathOfChars("abcde");
  EXPECT_EQ(u.SubPath(p, 1, 3), u.PathOfChars("bcd"));
  EXPECT_EQ(u.SubPath(p, 0, 0), kEmptyPath);
  EXPECT_EQ(u.SubPath(p, 0, 5), p);
}

TEST(UniverseTest, PackedValuesNestAndCompare) {
  Universe u;
  PathId inner = u.PathOfChars("aba");
  Value packed = Value::Packed(inner);
  PathId outer1 = u.Append(u.PathOfChars("c"), packed);
  PathId outer2 = u.Append(u.PathOfChars("c"), Value::Packed(inner));
  EXPECT_EQ(outer1, outer2);  // hash-consing: O(1) deep equality
  EXPECT_EQ(u.FormatPath(outer1), "c·<a·b·a>");
}

TEST(UniverseTest, IsFlatPath) {
  Universe u;
  EXPECT_TRUE(u.IsFlatPath(u.PathOfChars("abc")));
  EXPECT_TRUE(u.IsFlatPath(kEmptyPath));
  PathId packed = u.Append(kEmptyPath, Value::Packed(u.PathOfChars("a")));
  EXPECT_FALSE(u.IsFlatPath(packed));
}

TEST(UniverseTest, CollectAtomsDescendsIntoPacks) {
  Universe u;
  PathId inner = u.PathOfChars("ab");
  PathId p = u.Append(u.PathOfChars("c"), Value::Packed(inner));
  std::unordered_set<AtomId> atoms;
  u.CollectAtoms(p, &atoms);
  EXPECT_EQ(atoms.size(), 3u);
  EXPECT_TRUE(atoms.count(u.InternAtom("a")));
  EXPECT_TRUE(atoms.count(u.InternAtom("b")));
  EXPECT_TRUE(atoms.count(u.InternAtom("c")));
}

TEST(UniverseTest, AllSubPathsOfAbc) {
  Universe u;
  std::vector<PathId> subs = u.AllSubPaths(u.PathOfChars("abc"));
  // eps, a, b, c, ab, bc, abc = 7 distinct subpaths.
  EXPECT_EQ(subs.size(), 7u);
}

TEST(UniverseTest, AllSubPathsDeduplicates) {
  Universe u;
  std::vector<PathId> subs = u.AllSubPaths(u.PathOfChars("aaa"));
  // eps, a, aa, aaa.
  EXPECT_EQ(subs.size(), 4u);
}

TEST(UniverseTest, FormatPathEmpty) {
  Universe u;
  EXPECT_EQ(u.FormatPath(kEmptyPath), "()");
}

TEST(UniverseTest, VariablesAreKeyedByKindAndName) {
  Universe u;
  VarId pv = u.InternVar(VarKind::kPath, "x");
  VarId av = u.InternVar(VarKind::kAtomic, "x");
  EXPECT_NE(pv, av);
  EXPECT_EQ(u.InternVar(VarKind::kPath, "x"), pv);
  EXPECT_EQ(u.VarKindOf(pv), VarKind::kPath);
  EXPECT_EQ(u.VarKindOf(av), VarKind::kAtomic);
}

TEST(UniverseTest, FreshVarsAvoidCollisions) {
  Universe u;
  u.InternVar(VarKind::kPath, "x_0");
  VarId fresh = u.FreshVar(VarKind::kPath, "x");
  EXPECT_NE(u.VarName(fresh), "x_0");
}

TEST(UniverseTest, RelArityConflictIsError) {
  Universe u;
  ASSERT_TRUE(u.InternRel("R", 1).ok());
  Result<RelId> again = u.InternRel("R", 1);
  ASSERT_TRUE(again.ok());
  Result<RelId> conflict = u.InternRel("R", 2);
  EXPECT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);
}

TEST(UniverseTest, FindRel) {
  Universe u;
  ASSERT_TRUE(u.InternRel("S", 0).ok());
  EXPECT_TRUE(u.FindRel("S").ok());
  EXPECT_EQ(u.FindRel("Nope").status().code(), StatusCode::kNotFound);
}

TEST(UniverseTest, FreshRelAvoidsNames) {
  Universe u;
  ASSERT_TRUE(u.InternRel("T_0", 2).ok());
  RelId fresh = u.FreshRel("T", 1);
  EXPECT_NE(u.RelName(fresh), "T_0");
  EXPECT_EQ(u.RelArity(fresh), 1u);
}

TEST(UniverseTest, PathOfWords) {
  Universe u;
  PathId p = u.PathOfWords("open  pay close");
  EXPECT_EQ(u.PathLength(p), 3u);
  EXPECT_EQ(u.FormatPath(p), "open·pay·close");
}

}  // namespace
}  // namespace seqdl
