#include <gtest/gtest.h>

#include "src/analysis/dependency_graph.h"
#include "src/analysis/features.h"
#include "src/analysis/lint.h"
#include "src/analysis/packing_structure.h"
#include "src/analysis/purity.h"
#include "src/analysis/safety.h"
#include "src/analysis/stratify.h"
#include "src/engine/engine.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

// --- Feature detection (paper §3) -------------------------------------------

struct FeatureCase {
  const char* name;
  const char* program;
  const char* expected;  // letters
};

class FeatureDetectTest : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(FeatureDetectTest, Detects) {
  const FeatureCase& c = GetParam();
  Universe u;
  Program p = MustParse(u, c.program);
  Result<FeatureSet> expected = FeatureSet::FromLetters(c.expected);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(DetectFeatures(p), *expected)
      << "got " << DetectFeatures(p).ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FeatureDetectTest,
    ::testing::Values(
        FeatureCase{"empty_fact", "S(a).", ""},
        FeatureCase{"copy", "S($x) <- R($x).", ""},
        FeatureCase{"only_as_equation", "S($x) <- R($x), a++$x = $x++a.",
                    "E"},
        FeatureCase{"only_as_air",
                    "T($x,$x) <- R($x). T($x,$y) <- T($x,$y++a). "
                    "S($x) <- T($x,eps).",
                    "AIR"},
        FeatureCase{"negation", "S($x) <- R($x), !Q($x).", "N"},
        FeatureCase{"negated_equation_counts_as_both",
                    "S($x) <- R($x), $x != a.", "EN"},
        FeatureCase{"packing", "S(<$x>) <- R($x).", "P"},
        FeatureCase{"arity_from_edb", "S($x) <- R($x, $y).", "A"},
        FeatureCase{"self_recursion", "S($x) <- R($x). S(a++$x) <- S($x).",
                    "R"},
        FeatureCase{"mutual_recursion_with_two_idbs",
                    "P0($x) <- R($x). P0($x) <- Q0($x++a). "
                    "Q0($x) <- P0($x++b).",
                    "IR"},
        FeatureCase{"intermediate_only",
                    "T($x) <- R($x). S($x) <- T($x).", "I"},
        FeatureCase{"nfa_example_21",
                    "S(@q++$x, eps) <- R($x), N(@q).\n"
                    "S(@q2++$y, $z++@a) <- S(@q1++@a++$y, $z), D(@q1,@a,@q2)."
                    "\nA($x) <- S(@q,$x), F(@q).\n",
                    "AIR"}));

TEST(FeatureDetectTest, MutualRecursionWithoutArity) {
  Universe u;
  Program p = MustParse(u,
                        "P0($x) <- R($x). P0($x) <- Q0($x). "
                        "Q0($x) <- P0($x).");
  EXPECT_EQ(DetectFeatures(p),
            FeatureSet::Of({Feature::kIntermediate, Feature::kRecursion}));
}

TEST(FeatureDetectTest, Example22UsesPNAE) {
  Universe u;
  Program p = MustParse(u,
                        "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
                        "A <- T($x), T($y), T($z), $x != $y, $x != $z, "
                        "$y != $z.\n");
  FeatureSet f = DetectFeatures(p);
  EXPECT_TRUE(f.Contains(Feature::kPacking));
  EXPECT_TRUE(f.Contains(Feature::kNegation));
  EXPECT_TRUE(f.Contains(Feature::kEquations));
  EXPECT_TRUE(f.Contains(Feature::kIntermediate));
  EXPECT_FALSE(f.Contains(Feature::kRecursion));
}

TEST(FeatureSetTest, StringRoundTrip) {
  Result<FeatureSet> f = FeatureSet::FromLetters("EIN");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ToString(), "{E,I,N}");
  EXPECT_EQ(FeatureSet().ToString(), "{}");
  EXPECT_EQ(FeatureSet::All().ToString(), "{A,E,I,N,P,R}");
  EXPECT_FALSE(FeatureSet::FromLetters("EX").ok());
}

TEST(FeatureSetTest, SetOperations) {
  FeatureSet ein = *FeatureSet::FromLetters("EIN");
  FeatureSet en = *FeatureSet::FromLetters("EN");
  EXPECT_TRUE(en.SubsetOf(ein));
  EXPECT_FALSE(ein.SubsetOf(en));
  EXPECT_EQ(ein.Without(Feature::kIntermediate), en);
  EXPECT_EQ(en.With(Feature::kIntermediate), ein);
  EXPECT_TRUE(
      en.DisjointFrom(*FeatureSet::FromLetters("APR")));
}

// --- Dependency graph & recursion --------------------------------------------

TEST(DependencyGraphTest, EdgesFollowHeadToBody) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x). S($x) <- T($x), !W($x). W(a).");
  DependencyGraph g = BuildDependencyGraph(p);
  RelId s = *u.FindRel("S"), t = *u.FindRel("T"), w = *u.FindRel("W");
  EXPECT_TRUE(g.HasEdge(s, t));
  EXPECT_TRUE(g.HasEdge(s, w));
  EXPECT_FALSE(g.HasEdge(t, s));
  EXPECT_TRUE(g.negative_edges.at(s).count(w));
}

TEST(DependencyGraphTest, RecursiveRels) {
  Universe u;
  Program p = MustParse(u,
                        "A0($x) <- B0($x). B0($x) <- A0($x). "
                        "C0($x) <- A0($x). C0($x) <- R($x).");
  std::set<RelId> rec = RecursiveRels(BuildDependencyGraph(p));
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_TRUE(rec.count(*u.FindRel("A0")));
  EXPECT_TRUE(rec.count(*u.FindRel("B0")));
  EXPECT_FALSE(rec.count(*u.FindRel("C0")));
}

// --- Safety (limited variables) ----------------------------------------------

TEST(SafetyTest, PredicateVarsAreLimited) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- R($x).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsSafeRule(*r));
}

TEST(SafetyTest, HeadOnlyVarIsUnsafe) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($y) <- R($x).");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsSafeRule(*r));
}

TEST(SafetyTest, EquationPropagatesLimitedness) {
  Universe u;
  // $y is limited because the lhs of the equation is fully limited.
  Result<Rule> r = ParseRule(u, "S($y) <- R($x), $x ++ a = $y.");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsSafeRule(*r));
}

TEST(SafetyTest, EquationChainPropagates) {
  Universe u;
  Result<Rule> r =
      ParseRule(u, "S($z) <- R($x), $x = $y, $y ++ b = $z.");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsSafeRule(*r));
}

TEST(SafetyTest, BothSidesUnlimitedIsUnsafe) {
  Universe u;
  // $y appears on both sides; neither side is fully limited.
  Result<Rule> r = ParseRule(u, "S($y) <- R($x), $y ++ a = a ++ $y.");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsSafeRule(*r));
}

TEST(SafetyTest, NegatedPredicateDoesNotLimit) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- !R($x).");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsSafeRule(*r));
}

TEST(SafetyTest, NegatedEquationDoesNotLimit) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- $x != a.");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(IsSafeRule(*r));
}

TEST(SafetyTest, GroundSideLimitsOtherSide) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- a ++ b = $x.");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsSafeRule(*r));
}

TEST(ValidateProgramTest, AcceptsStratifiedNegation) {
  Universe u;
  Program p = MustParse(u,
                        "W(@x) <- R(@x ++ @y), !B(@y).\n"
                        "---\n"
                        "S(@x) <- R(@x ++ @y), !W(@x).\n");
  EXPECT_TRUE(ValidateProgram(u, p).ok());
}

TEST(ValidateProgramTest, RejectsNegationInSameStratum) {
  Universe u;
  Program p = MustParse(u,
                        "W(@x) <- R(@x ++ @y), !B(@y).\n"
                        "S(@x) <- R(@x ++ @y), !W(@x).\n");
  EXPECT_FALSE(ValidateProgram(u, p).ok());
}

TEST(ValidateProgramTest, RejectsUnsafeRule) {
  Universe u;
  Program p = MustParse(u, "S($y) <- R($x).");
  EXPECT_FALSE(ValidateProgram(u, p).ok());
}

TEST(ValidateProgramTest, RejectsUseBeforeDefinition) {
  Universe u;
  Program p = MustParse(u, "S($x) <- T($x).\n---\nT($x) <- R($x).");
  EXPECT_FALSE(ValidateProgram(u, p).ok());
}

TEST(ValidateProgramTest, RejectsRedefinitionAcrossStrata) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x).\n---\nT($x) <- Q($x).");
  EXPECT_FALSE(ValidateProgram(u, p).ok());
}

// --- Auto-stratification ------------------------------------------------------

TEST(StratifyTest, SplitsOnNegation) {
  Universe u;
  Program flat = MustParse(u,
                           "W(@x) <- R(@x ++ @y), !B(@y).\n"
                           "S(@x) <- R(@x ++ @y), !W(@x).\n");
  std::vector<Rule> rules;
  for (const Rule* r : flat.AllRules()) rules.push_back(*r);
  Result<Program> p = AutoStratify(rules);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->strata.size(), 2u);
  EXPECT_TRUE(ValidateProgram(u, *p).ok());
}

TEST(StratifyTest, RecursionThroughNegationFails) {
  Universe u;
  Program flat = MustParse(u, "P0($x) <- R($x), !Q0($x). Q0($x) <- P0($x).");
  std::vector<Rule> rules;
  for (const Rule* r : flat.AllRules()) rules.push_back(*r);
  EXPECT_FALSE(AutoStratify(rules).ok());
}

TEST(StratifyTest, PositiveRecursionStaysInOneStratum) {
  Universe u;
  Program flat = MustParse(u, "T($x) <- R($x). T(a ++ $x) <- T($x), Q($x).");
  std::vector<Rule> rules;
  for (const Rule* r : flat.AllRules()) rules.push_back(*r);
  Result<Program> p = AutoStratify(rules);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->strata.size(), 1u);
}

// --- Purity (paper §4.3.3, Example 4.9) ----------------------------------------

std::set<RelId> FlatRels(Universe& u, std::initializer_list<const char*> names) {
  std::set<RelId> out;
  for (const char* n : names) out.insert(*u.FindRel(n));
  return out;
}

TEST(PurityTest, Example49AllPure) {
  Universe u;
  Result<Rule> r = ParseRule(
      u, "S($x) <- R($x, $y), <$x> = <$y>, a ++ $x = $z, $y = <$u>.");
  ASSERT_TRUE(r.ok());
  PurityInfo info = AnalyzePurity(*r, FlatRels(u, {"R"}));
  // All three equations are pure (paper Example 4.9, first rule).
  EXPECT_EQ(info.equation_class.size(), 3u);
  for (const auto& [_, cls] : info.equation_class) {
    EXPECT_EQ(cls, EquationPurity::kPure);
  }
  // $z is pure (bound by a packing-free pure side); $u is pure too.
  EXPECT_TRUE(info.IsPure(u.InternVar(VarKind::kPath, "z")));
  EXPECT_TRUE(info.IsPure(u.InternVar(VarKind::kPath, "u")));
}

TEST(PurityTest, Example49HalfPure) {
  Universe u;
  Result<Rule> r =
      ParseRule(u, "S($x) <- R($x, $y), <$y> = $z, <$x> = <$z>.");
  ASSERT_TRUE(r.ok());
  PurityInfo info = AnalyzePurity(*r, FlatRels(u, {"R"}));
  EXPECT_FALSE(info.IsPure(u.InternVar(VarKind::kPath, "z")));
  for (const auto& [_, cls] : info.equation_class) {
    EXPECT_EQ(cls, EquationPurity::kHalfPure);
  }
}

TEST(PurityTest, Example49FullyImpure) {
  Universe u;
  Result<Rule> r = ParseRule(
      u, "S($x) <- R($x, $y), <$t> = <$z>, $z = <$y>, $t = <$x>.");
  ASSERT_TRUE(r.ok());
  PurityInfo info = AnalyzePurity(*r, FlatRels(u, {"R"}));
  // <$t> = <$z> (body index 1) is fully impure; the others half-pure.
  EXPECT_EQ(info.equation_class.at(1), EquationPurity::kFullyImpure);
  EXPECT_EQ(info.equation_class.at(2), EquationPurity::kHalfPure);
  EXPECT_EQ(info.equation_class.at(3), EquationPurity::kHalfPure);
}

TEST(PurityTest, SourceVarsArePure) {
  Universe u;
  Result<Rule> r = ParseRule(u, "S($x) <- R($x ++ @a).");
  ASSERT_TRUE(r.ok());
  PurityInfo info = AnalyzePurity(*r, FlatRels(u, {"R"}));
  EXPECT_TRUE(info.IsPure(u.InternVar(VarKind::kPath, "x")));
  EXPECT_TRUE(info.IsPure(u.InternVar(VarKind::kAtomic, "a")));
  EXPECT_TRUE(info.RuleAllPure(*r));
}

// --- Packing structures (paper §4.3.4, Example 4.11) ---------------------------

TEST(PackingStructureTest, FlatExprIsSingleStar) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "a ++ $x ++ @y");
  ASSERT_TRUE(e.ok());
  PackingStructure ps = Delta(*e);
  EXPECT_TRUE(ps.IsStar());
  EXPECT_EQ(ps.NumStars(), 1u);
  EXPECT_EQ(ps.ToString(), "*");
  std::vector<PathExpr> comps = Components(*e);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0], *e);
}

TEST(PackingStructureTest, Example411) {
  Universe u;
  // e = @a · <<$x·$y>·$z> · <eps>; δ(e) = *·<*·<*>·*>·*·<*>·*, 7 stars.
  Result<PathExpr> e =
      ParsePathExpr(u, "@a ++ <<$x ++ $y> ++ $z> ++ <eps>");
  ASSERT_TRUE(e.ok());
  PackingStructure ps = Delta(*e);
  EXPECT_EQ(ps.NumStars(), 7u);
  EXPECT_EQ(ps.ToString(), "*·<*·<*>·*>·*·<*>·*");
  std::vector<PathExpr> comps = Components(*e);
  ASSERT_EQ(comps.size(), 7u);
  EXPECT_EQ(FormatExpr(u, comps[0]), "@a");
  EXPECT_EQ(FormatExpr(u, comps[1]), "eps");
  EXPECT_EQ(FormatExpr(u, comps[2]), "$x·$y");
  EXPECT_EQ(FormatExpr(u, comps[3]), "$z");
  EXPECT_EQ(FormatExpr(u, comps[4]), "eps");
  EXPECT_EQ(FormatExpr(u, comps[5]), "eps");
  EXPECT_EQ(FormatExpr(u, comps[6]), "eps");
}

TEST(PackingStructureTest, FromComponentsInvertsComponents) {
  Universe u;
  Result<PathExpr> e =
      ParsePathExpr(u, "@a ++ <<$x ++ $y> ++ $z> ++ <eps> ++ b");
  ASSERT_TRUE(e.ok());
  Result<PathExpr> back = FromComponents(Delta(*e), Components(*e));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, *e);
}

TEST(PackingStructureTest, EqualityDistinguishesNesting) {
  Universe u;
  Result<PathExpr> e1 = ParsePathExpr(u, "<a> ++ <b>");
  Result<PathExpr> e2 = ParsePathExpr(u, "<a ++ <b>>");
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NE(Delta(*e1), Delta(*e2));
  EXPECT_EQ(Delta(*e1).NumStars(), 5u);
  EXPECT_EQ(Delta(*e2).NumStars(), 5u);
}

TEST(PackingStructureTest, FromComponentsRejectsWrongCount) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "<a>");
  ASSERT_TRUE(e.ok());
  std::vector<PathExpr> comps = Components(*e);
  comps.pop_back();
  EXPECT_FALSE(FromComponents(Delta(*e), comps).ok());
}

// --- Lint passes (SD101-SD107) ------------------------------------------------

DiagnosticList Lint(Universe& u, const std::string& text,
                    const LintOptions& opts = {}) {
  Program p = MustParse(u, text);
  DiagnosticList diags;
  LintProgram(u, p, opts, &diags);
  return diags;
}

std::vector<std::string> Codes(const DiagnosticList& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags.all()) out.push_back(d.code);
  return out;
}

TEST(LintTest, CleanProgramHasNoFindings) {
  Universe u;
  DiagnosticList diags =
      Lint(u, "R($x, $y) <- E($x, $y).\nR($x, $z) <- R($x, $y), E($y, $z).\n");
  EXPECT_TRUE(diags.empty()) << diags.RenderText();
}

TEST(LintTest, SD101DuplicateRule) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x) <- R($x).\nS($x) <- R($x).\n");
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD101"});
  const Diagnostic& d = diags[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  // The *second* occurrence is flagged, with a note pointing back at the
  // first.
  EXPECT_EQ(d.span.line, 2u);
  EXPECT_EQ(d.message, "duplicate rule: identical to an earlier rule");
  ASSERT_GE(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0], "first occurrence at line 1");
}

TEST(LintTest, SD102DuplicateBodyLiteral) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x) <- R($x), R($x).\n");
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD102"});
  EXPECT_EQ(diags[0].span.line, 1u);
  EXPECT_EQ(diags[0].message, "duplicate body literal: R($x)");
}

TEST(LintTest, SD103SingletonVariable) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x) <- R($x, $y).\n");
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD103"});
  EXPECT_EQ(diags[0].message,
            "singleton variable $y: occurs exactly once in the rule");
}

TEST(LintTest, SD104NeverFiresOnEmptyRelation) {
  Universe u;
  // T only derives from itself, so it can never contain facts; both rules
  // are unfireable.
  DiagnosticList diags = Lint(u, "T($x) <- T($x).\nS($x) <- T($x).\n");
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"SD104", "SD104"}));
  EXPECT_EQ(diags[0].message, "rule can never fire");
  ASSERT_GE(diags[1].notes.size(), 1u);
  EXPECT_EQ(diags[1].notes[0], "relation T can never contain facts");
}

TEST(LintTest, SD104NeverFiresOnFalseEquation) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x) <- R($x), a = b.\n");
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD104"});
  ASSERT_GE(diags[0].notes.size(), 1u);
  EXPECT_EQ(diags[0].notes[0], "equation a = b can never hold");
}

TEST(LintTest, SD104NeverFiresOnNegatedIdenticalSides) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x) <- R($x), $x != $x.\n");
  EXPECT_EQ(Codes(diags), std::vector<std::string>{"SD104"});
}

TEST(LintTest, SD105CrossProductJoin) {
  Universe u;
  DiagnosticList diags = Lint(u, "S($x, $y) <- R($x), Q($y).\n");
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD105"});
  EXPECT_EQ(diags[0].message,
            "cross-product join: body predicates form 2 groups sharing no "
            "variables: R($x) | Q($y)");
}

TEST(LintTest, SD105EquationConnectsTheJoin) {
  Universe u;
  // The equation links $x and $y, so the join is not a cross product.
  DiagnosticList diags = Lint(u, "S($x, $y) <- R($x), Q($y), $x = $y.\n");
  EXPECT_TRUE(diags.empty()) << diags.RenderText();
}

TEST(LintTest, SD105NoteCarriesMeasuredSizes) {
  Universe u;
  Program p = MustParse(u, "S($x, $y) <- R($x), Q($y).\n");
  StoreStats stats;
  stats.relations[*u.FindRel("R")].tuples = 10;
  stats.relations[*u.FindRel("Q")].tuples = 3;
  LintOptions opts;
  opts.stats = &stats;
  DiagnosticList diags;
  LintProgram(u, p, opts, &diags);
  ASSERT_EQ(Codes(diags), std::vector<std::string>{"SD105"});
  ASSERT_GE(diags[0].notes.size(), 1u);
  EXPECT_EQ(diags[0].notes[0], "measured relation sizes: R=10, Q=3");
}

TEST(LintTest, SD106SD107DeadRuleAndUnusedRelation) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- E($x).\n"
                        "U($x) <- E($x).\n"
                        "S($x) <- T($x).\n");
  LintOptions opts;
  opts.output = *u.FindRel("S");
  DiagnosticList diags;
  LintProgram(u, p, opts, &diags);
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"SD106", "SD107"}));
  EXPECT_EQ(diags[0].span.line, 2u);
  EXPECT_EQ(diags[0].message,
            "dead rule: U is never used to compute the output S");
  EXPECT_EQ(diags[1].message,
            "relation U is derived but never read and is not the output");
}

TEST(LintTest, SD106RequiresAnOutput) {
  Universe u;
  // Without LintOptions::output the dead-rule/unused passes are skipped.
  DiagnosticList diags = Lint(u, "T($x) <- E($x).\nS($x) <- E($x).\n");
  EXPECT_TRUE(diags.empty()) << diags.RenderText();
}

// --- Dead-rule elimination (RemoveDeadRules) ----------------------------------

TEST(DeadRuleElimTest, KeepsOnlyLiveRules) {
  Universe u;
  Program p = MustParse(u,
                        "T($x) <- E($x).\n"
                        "U($x) <- T($x).\n"
                        "S($x) <- T($x).\n");
  Program pruned = RemoveDeadRules(p, *u.FindRel("S"));
  EXPECT_EQ(p.AllRules().size(), 3u);
  EXPECT_EQ(pruned.AllRules().size(), 2u);
  std::set<RelId> live = LiveRels(p, *u.FindRel("S"));
  EXPECT_TRUE(live.count(*u.FindRel("S")));
  EXPECT_TRUE(live.count(*u.FindRel("T")));
  EXPECT_FALSE(live.count(*u.FindRel("U")));
}

TEST(DeadRuleElimTest, ProjectionIsByteIdentical) {
  Universe u;
  const char* text =
      "T($x) <- E($x).\n"
      "T(a ++ $x) <- T($x), G($x).\n"
      "U($x, $x) <- E($x).\n"
      "V($x) <- U($x, $x), G($x).\n"
      "S($x) <- T($x).\n";
  Program full = MustParse(u, text);
  RelId output = *u.FindRel("S");
  Program pruned = RemoveDeadRules(full, output);
  ASSERT_LT(pruned.AllRules().size(), full.AllRules().size());

  Result<Instance> edb = ParseInstance(u, "E(a). E(b). G(b). G(a ++ b).");
  ASSERT_TRUE(edb.ok()) << edb.status().ToString();
  Result<PreparedProgram> pf = Engine::Compile(u, std::move(full));
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  Result<PreparedProgram> pp = Engine::Compile(u, std::move(pruned));
  ASSERT_TRUE(pp.ok()) << pp.status().ToString();

  Result<Instance> of = pf->RunQuery(*edb, output);
  ASSERT_TRUE(of.ok()) << of.status().ToString();
  Result<Instance> op = pp->RunQuery(*edb, output);
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  // Dropping SD106-dead rules cannot change the output's projection.
  EXPECT_EQ(of->ToString(u), op->ToString(u));
  EXPECT_FALSE(of->ToString(u).empty());
}

}  // namespace
}  // namespace seqdl
