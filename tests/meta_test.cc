// Meta-consistency between Section 4 (the constructive redundancy
// results) and Section 6 (the fragment lattice): every transformation must
// deliver a program inside the fragment its theorem promises, and that
// promise must be consistent with the Theorem 6.1 subsumption relation.
#include <gtest/gtest.h>

#include "src/analysis/dependency_graph.h"
#include "src/analysis/features.h"
#include "src/fragments/fragments.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/doubling.h"
#include "src/transform/equation_elim.h"
#include "src/transform/fold_intermediates.h"
#include "src/transform/normal_form.h"
#include "src/transform/packing_elim.h"

namespace seqdl {
namespace {

bool EdbIsNarrow(const Universe& u, const Program& p) {
  for (RelId r : EdbRels(p)) {
    if (u.RelArity(r) > 1) return false;
  }
  return true;
}

// Theorem 4.7 promise: eliminating equations lands in F - {E} + {A, I}.
TEST(MetaTest, EquationEliminationRespectsItsFragmentPromise) {
  size_t checked = 0;
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    FeatureSet f1 = DetectFeatures(parsed->program);
    if (!f1.Contains(Feature::kEquations)) continue;
    Result<Program> t = EliminateEquations(u, parsed->program);
    ASSERT_TRUE(t.ok()) << q.id << ": " << t.status().ToString();
    FeatureSet promised = f1.Without(Feature::kEquations)
                              .With(Feature::kArity)
                              .With(Feature::kIntermediate);
    EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
        << q.id << ": got " << DetectFeatures(*t).ToString()
        << ", promised " << promised.ToString();
    // Consistency with Theorem 6.1: the source fragment is subsumed by the
    // promised target fragment.
    EXPECT_TRUE(Subsumes(f1, promised)) << q.id;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

// Theorem 4.2 promise: arity elimination lands in F - {A}.
TEST(MetaTest, ArityEliminationRespectsItsFragmentPromise) {
  size_t checked = 0;
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    FeatureSet f1 = DetectFeatures(parsed->program);
    if (!f1.Contains(Feature::kArity)) continue;
    if (!EdbIsNarrow(u, parsed->program)) continue;
    Result<Program> t = EliminateArity(u, parsed->program);
    ASSERT_TRUE(t.ok()) << q.id << ": " << t.status().ToString();
    FeatureSet promised = f1.Without(Feature::kArity);
    EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
        << q.id << ": got " << DetectFeatures(*t).ToString();
    EXPECT_TRUE(Subsumes(f1, promised)) << q.id;
    ++checked;
  }
  EXPECT_GE(checked, 3u);
}

// Lemma 4.13 promise: nonrecursive packing elimination lands in
// F - {P} + {A, E, I}.
TEST(MetaTest, PackingEliminationRespectsItsFragmentPromise) {
  size_t checked = 0;
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    FeatureSet f1 = DetectFeatures(parsed->program);
    if (!f1.Contains(Feature::kPacking) ||
        f1.Contains(Feature::kRecursion)) {
      continue;
    }
    Result<Program> t = EliminatePackingNonrecursive(u, parsed->program);
    ASSERT_TRUE(t.ok()) << q.id << ": " << t.status().ToString();
    FeatureSet promised = f1.Without(Feature::kPacking)
                              .With(Feature::kArity)
                              .With(Feature::kEquations)
                              .With(Feature::kIntermediate);
    EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
        << q.id << ": got " << DetectFeatures(*t).ToString();
    EXPECT_TRUE(Subsumes(f1, promised)) << q.id;
    ++checked;
  }
  EXPECT_GE(checked, 1u);
}

// Theorem 4.15 promise: the doubling pipeline lands in F - {P} + {A, I, R}.
TEST(MetaTest, DoublingRespectsItsFragmentPromise) {
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "T(<$x>) <- R($x).\n"
                                   "T(<$x>) <- T(<$x ++ @a>).\n"
                                   "S($x) <- T(<$x>).\n");
  ASSERT_TRUE(p.ok());
  FeatureSet f1 = DetectFeatures(*p);
  Result<Program> t = EliminatePackingViaDoubling(u, *p, *u.FindRel("S"));
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  FeatureSet promised = f1.Without(Feature::kPacking)
                            .With(Feature::kArity)
                            .With(Feature::kIntermediate)
                            .With(Feature::kRecursion);
  EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
      << "got " << DetectFeatures(*t).ToString();
  EXPECT_TRUE(Subsumes(f1, promised));
}

// Theorem 4.16 promise: folding lands in F - {I} + {E}.
TEST(MetaTest, FoldingRespectsItsFragmentPromise) {
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "T($x) <- R($x ++ a).\n"
                                   "S($x ++ b) <- T($x).\n");
  ASSERT_TRUE(p.ok());
  FeatureSet f1 = DetectFeatures(*p);
  Result<Program> t = FoldIntermediates(u, *p, *u.FindRel("S"));
  ASSERT_TRUE(t.ok());
  FeatureSet promised =
      f1.Without(Feature::kIntermediate).With(Feature::kEquations);
  EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
      << "got " << DetectFeatures(*t).ToString();
  EXPECT_TRUE(Subsumes(f1, promised));
}

// Lemma 7.2 promise: the normal form uses no equations or packing beyond
// the input's, and adds at most A and I.
TEST(MetaTest, NormalFormRespectsItsFragmentPromise) {
  size_t checked = 0;
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    FeatureSet f1 = DetectFeatures(parsed->program);
    if (f1.Contains(Feature::kRecursion) ||
        f1.Contains(Feature::kEquations)) {
      continue;
    }
    Result<Program> t = ToNormalForm(u, parsed->program);
    ASSERT_TRUE(t.ok()) << q.id << ": " << t.status().ToString();
    EXPECT_TRUE(ValidateNormalForm(u, *t).ok()) << q.id;
    FeatureSet promised =
        f1.With(Feature::kArity).With(Feature::kIntermediate);
    EXPECT_TRUE(DetectFeatures(*t).SubsetOf(promised))
        << q.id << ": got " << DetectFeatures(*t).ToString();
    ++checked;
  }
  EXPECT_GE(checked, 1u);
}

// Every corpus program must land exactly in one of the paper's 11
// Figure 1 classes, and that class must be consistent with the features
// the corpus entry claims to exercise.
TEST(MetaTest, EveryCorpusProgramHasAFigure1Class) {
  for (const PaperQuery& q : PaperCorpus()) {
    Universe u;
    Result<ParsedQuery> parsed = ParsePaperQuery(u, q);
    ASSERT_TRUE(parsed.ok()) << q.id;
    FeatureSet f = DetectFeatures(parsed->program);
    size_t matches = 0;
    for (const FragmentClass& cls : CoreEquivalenceClasses()) {
      matches += Equivalent(f, cls.Rep()) ? 1 : 0;
    }
    EXPECT_EQ(matches, 1u) << q.id << " features " << f.ToString();
  }
}

}  // namespace
}  // namespace seqdl
