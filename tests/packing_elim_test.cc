#include <gtest/gtest.h>

#include "src/analysis/features.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/packing_elim.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// Keeps only the flat facts of an instance. The paper's query semantics is
// over flat outputs; a packing-free program can by definition only produce
// the flat subset of a packing-producing program's output relation.
Instance FlatFacts(Universe& u, const Instance& i) {
  Instance out;
  for (RelId rel : i.Relations()) {
    for (const Tuple& t : i.Tuples(rel)) {
      bool flat = true;
      for (PathId p : t) flat &= u.IsFlatPath(p);
      if (flat) out.Add(rel, t);
    }
  }
  return out;
}

void ExpectSameOutput(Universe& u, const Program& p1, const Program& p2,
                      const std::string& rel, const Instance& input) {
  RelId out_rel = *u.FindRel(rel);
  Result<Instance> o1 = EvalQuery(u, p1, input, out_rel);
  Result<Instance> o2 = EvalQuery(u, p2, input, out_rel);
  ASSERT_TRUE(o1.ok()) << o1.status().ToString();
  ASSERT_TRUE(o2.ok()) << o2.status().ToString();
  Instance f1 = FlatFacts(u, *o1);
  Instance f2 = FlatFacts(u, *o2);
  EXPECT_EQ(f1, f2) << "original (flat):\n"
                    << f1.ToString(u) << "transformed (flat):\n"
                    << f2.ToString(u);
}

void ExpectPackingFreeAndEquivalent(const std::string& program_text,
                                    const std::string& output_rel,
                                    const std::vector<std::string>& instances) {
  Universe u;
  Program p = MustParse(u, program_text);
  Result<Program> q = EliminatePackingNonrecursive(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(DetectFeatures(*q).Contains(Feature::kPacking))
      << FormatProgram(u, *q);
  for (const std::string& text : instances) {
    Instance in = MustInstance(u, text);
    ASSERT_TRUE(in.IsFlat(u)) << "test instances must be flat";
    ExpectSameOutput(u, p, *q, output_rel, in);
  }
}

// --- Simple shapes -------------------------------------------------------------

TEST(PackingElimTest, PackInHeadOnly) {
  // The head packs; the packed variant is materialized under a fresh name,
  // and the flat output relation S sees exactly the all-star facts.
  ExpectPackingFreeAndEquivalent(
      "T(<$x>) <- R($x).\n"
      "S($x) <- T(<$x>).\n",
      "S", {"R(a ++ b). R(eps).", "R(a)."});
}

TEST(PackingElimTest, PackAroundConstant) {
  ExpectPackingFreeAndEquivalent(
      "T($x ++ <a>) <- R($x).\n"
      "S($x) <- T($x ++ <a>).\n",
      "S", {"R(a ++ b). R(eps)."});
}

TEST(PackingElimTest, MixedStructuresOfOneRelation) {
  // T holds facts of two different packing structures.
  ExpectPackingFreeAndEquivalent(
      "T(<$x> ++ $y) <- R($x ++ $y).\n"
      "T($x) <- R($x).\n"
      "S($y) <- T(<a> ++ $y).\n"
      "S($y) <- T($y).\n",
      "S", {"R(a ++ b ++ c). R(a). R(eps).", "R(b ++ a)."});
}

TEST(PackingElimTest, NestedPacks) {
  ExpectPackingFreeAndEquivalent(
      "T(<<$x> ++ $y>) <- R($x ++ $y).\n"
      "S($x ++ $y) <- T(<<$x> ++ $y>).\n",
      "S", {"R(a ++ b). R(eps). R(c)."});
}

TEST(PackingElimTest, PositiveEdbWithPackingIsDropped) {
  // R is flat, so R(<$x>) can never hold; S must be empty, and the
  // rewritten program must agree.
  ExpectPackingFreeAndEquivalent("S($x) <- R(<$x>).\n", "S",
                                 {"R(a ++ b).", "R(a)."});
}

TEST(PackingElimTest, NegatedEdbWithPackingIsTrue) {
  ExpectPackingFreeAndEquivalent(
      "S($x) <- R($x), !R(<$x> ++ a).\n", "S",
      {"R(a ++ b). R(eps)."});
}

TEST(PackingElimTest, EqualStructureEquationSplits) {
  // <$x>·$y = <$u>·$v is satisfiable; different structures are not.
  ExpectPackingFreeAndEquivalent(
      "T(<$x> ++ $y) <- R($x ++ $y).\n"
      "S($x) <- T($z), $z = <$x> ++ $y.\n",
      "S", {"R(a ++ b ++ c). R(eps). R(a)."});
}

TEST(PackingElimTest, MismatchedStructureEquationKillsRule) {
  ExpectPackingFreeAndEquivalent(
      "S($x) <- R($x), <$x> = $x ++ a.\n", "S",
      {"R(a ++ b). R(a)."});
}

TEST(PackingElimTest, NegatedEquationWithPackingSplitsRule) {
  ExpectPackingFreeAndEquivalent(
      "T(<$x> ++ <$y>) <- R($x ++ $y).\n"
      "S($x ++ $y) <- T($z), $z = <$x> ++ <$y>, $z != <$y> ++ <$x>.\n",
      "S", {"R(a ++ b). R(a ++ a). R(eps)."});
}

TEST(PackingElimTest, NegatedEquationDifferentStructuresIsTrue) {
  ExpectPackingFreeAndEquivalent(
      "S($x) <- R($x), $x != <$x> ++ a.\n", "S", {"R(a ++ b). R(eps)."});
}

// --- The paper's Example 2.2 / 4.14 ---------------------------------------------

constexpr const char* kExample22 =
    "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
    "A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.\n";

TEST(PackingElimTest, Example22Equivalent) {
  ExpectPackingFreeAndEquivalent(
      kExample22, "A",
      {
          "R(a ++ b ++ a ++ b). S(a ++ b). S(b ++ a).",  // true
          "R(a ++ b ++ a ++ b). S(a ++ b).",             // false
          "R(a ++ a ++ a). S(a).",                       // true
          "R(a). S(b).",                                 // false
          "R(a ++ a). S(a). S(a ++ a).",                 // true (3 marked)
      });
}

TEST(PackingElimTest, Example414RuleCountIs28) {
  Universe u;
  Program p = MustParse(u, kExample22);
  Result<Program> q = EliminatePackingNonrecursive(u, p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // The paper: "Rewriting the program from Example 2.2 without packing
  // yields a program with 28 rules": 1 rule for T_ps plus 27 rules for A
  // (three negated equations, each splitting into 3 component
  // nonequalities).
  EXPECT_EQ(q->NumRules(), 28u) << FormatProgram(u, *q);
}

// --- Purity-driven elimination (Lemma 4.10) --------------------------------------

TEST(PackingElimTest, HalfPureEquationSolved) {
  // $z is impure; the equation <$y> = $z is half-pure and must be solved
  // by unification.
  ExpectPackingFreeAndEquivalent(
      "T(<$y> ++ $y) <- R($y).\n"
      "S($y) <- T($z ++ $y), $z = <$y>.\n",
      "S", {"R(a ++ b). R(eps). R(a)."});
}

TEST(PackingElimTest, ChainedImpureVariables) {
  ExpectPackingFreeAndEquivalent(
      "T(<$x> ++ <$x ++ $x>) <- R($x).\n"
      "S($x) <- T($z), $z = <$x> ++ $w, $w = <$x ++ $x>.\n",
      "S", {"R(a ++ b). R(a). R(eps)."});
}

TEST(PackingElimTest, RecursiveProgramRejected) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x). S(<$x>) <- S($x).");
  Result<Program> q = EliminatePackingNonrecursive(u, p);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PackingElimTest, ThreeStrataPipeline) {
  ExpectPackingFreeAndEquivalent(
      "T1(<$x>) <- R($x).\n"
      "T2(<$y> ++ <$y>) <- T1(<$y>).\n"
      "S($y) <- T2(<$y> ++ <$y>).\n",
      "S", {"R(a ++ b). R(eps). R(c)."});
}

TEST(PackingElimTest, NegationOverPackedIntermediate) {
  ExpectPackingFreeAndEquivalent(
      "T(<$x>) <- R($x).\n"
      "---\n"
      "S($x) <- R($x), !T(<$x ++ a>).\n",
      "S", {"R(b). R(b ++ a). R(a). R(eps)."});
}

TEST(PackingElimTest, FlatProgramIsUntouchedSemantically) {
  ExpectPackingFreeAndEquivalent(
      "T($x ++ $y) <- R($x), R($y).\n"
      "S($x) <- T($x ++ $x).\n",
      "S", {"R(a). R(b). R(a ++ b)."});
}

TEST(PackingElimTest, PackedConstantsInEquations) {
  ExpectPackingFreeAndEquivalent(
      "T(<a ++ b>) <- R($x).\n"
      "S(c) <- T($z), $z = <a ++ b>.\n",
      "S", {"R(a).", "R(b ++ c)."});
}

TEST(PackingElimTest, EmptyPackComponent) {
  ExpectPackingFreeAndEquivalent(
      "T(<eps> ++ $x) <- R($x).\n"
      "S($x) <- T(<eps> ++ $x).\n",
      "S", {"R(a ++ b). R(eps)."});
}

TEST(PackingElimTest, ArityTwoHeadsSupported) {
  ExpectPackingFreeAndEquivalent(
      "T(<$x>, $y) <- R($x ++ $y).\n"
      "S($y) <- T(<a>, $y).\n",
      "S", {"R(a ++ b ++ c). R(a). R(b ++ c)."});
}

// Differential testing on random flat instances.
TEST(PackingElimTest, RandomizedDifferential) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Universe u;
    Program p = MustParse(u, kExample22);
    Result<Program> q = EliminatePackingNonrecursive(u, p);
    ASSERT_TRUE(q.ok());
    StringWorkload rw;
    rw.count = 4;
    rw.max_len = 5;
    rw.seed = seed;
    rw.rel = "R";
    StringWorkload sw;
    sw.count = 2;
    sw.min_len = 1;
    sw.max_len = 2;
    sw.seed = seed + 50;
    sw.rel = "S";
    Result<Instance> in = RandomStrings(u, rw);
    ASSERT_TRUE(in.ok());
    Result<Instance> needles = RandomStrings(u, sw);
    ASSERT_TRUE(needles.ok());
    in->UnionWith(*needles);
    ExpectSameOutput(u, p, *q, "A", *in);
  }
}

}  // namespace
}  // namespace seqdl
