#include <gtest/gtest.h>

#include "src/syntax/ast.h"
#include "src/syntax/builder.h"
#include "src/syntax/lexer.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

// --- Lexer ----------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> toks = Tokenize("S($x) <- R($x), a ++ $x = $x.");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEnd);
}

TEST(LexerTest, InterpunctAndPlusPlusAreConcat) {
  Result<std::vector<Token>> t1 = Tokenize("a·b");
  Result<std::vector<Token>> t2 = Tokenize("a ++ b");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ((*t1)[1].kind, TokenKind::kConcat);
  EXPECT_EQ((*t2)[1].kind, TokenKind::kConcat);
}

TEST(LexerTest, ArrowVersusAngle) {
  Result<std::vector<Token>> toks = Tokenize("<- < > :-");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kArrow);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kLAngle);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kRAngle);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kArrow);
}

TEST(LexerTest, NeqVersusBang) {
  Result<std::vector<Token>> toks = Tokenize("!= ! not");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kNeq);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kBang);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kNot);
}

TEST(LexerTest, CommentsAreSkipped) {
  Result<std::vector<Token>> toks =
      Tokenize("% comment\n# another\n// third\nS.");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "S");
}

TEST(LexerTest, QuotedAtoms) {
  Result<std::vector<Token>> toks = Tokenize("\"complete order\"");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "complete order");
}

TEST(LexerTest, StratumSeparator) {
  Result<std::vector<Token>> toks = Tokenize("---");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kStratumSep);
}

TEST(LexerTest, ErrorsCarryPosition) {
  Result<std::vector<Token>> toks = Tokenize("S(^)");
  ASSERT_FALSE(toks.ok());
  EXPECT_NE(toks.status().message().find("1:3"), std::string::npos);
}

TEST(LexerTest, VariablesNeedNames) {
  EXPECT_FALSE(Tokenize("$ x").ok());
  EXPECT_FALSE(Tokenize("@ x").ok());
}

// --- Parser ----------------------------------------------------------------

TEST(ParserTest, OnlyAsProgram) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->strata.size(), 1u);
  ASSERT_EQ(p->strata[0].rules.size(), 1u);
  const Rule& r = p->strata[0].rules[0];
  EXPECT_EQ(u.RelName(r.head.rel), "S");
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_TRUE(r.body[0].is_predicate());
  EXPECT_TRUE(r.body[1].is_equation());
  EXPECT_FALSE(r.body[1].negated);
}

TEST(ParserTest, FactsAndArityZero) {
  Universe u;
  Result<Program> p = ParseProgram(u, "A. R(a ++ b).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumRules(), 2u);
  EXPECT_EQ(u.RelArity(p->strata[0].rules[0].head.rel), 0u);
  EXPECT_EQ(u.RelArity(p->strata[0].rules[1].head.rel), 1u);
}

TEST(ParserTest, EmptyPathForms) {
  Universe u;
  Result<Program> p1 = ParseProgram(u, "S(eps) <- R($x).");
  Result<Program> p2 = ParseProgram(u, "S(()) <- R($x).");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(p1->strata[0].rules[0].head.args[0].empty());
  EXPECT_TRUE(p2->strata[0].rules[0].head.args[0].empty());
}

TEST(ParserTest, PackingNestsAndMixes) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "@a ++ <<$x ++ $y> ++ $z> ++ <eps>");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_EQ(e->items.size(), 3u);
  EXPECT_EQ(e->items[0].kind, ExprItem::Kind::kAtomVar);
  EXPECT_EQ(e->items[1].kind, ExprItem::Kind::kPack);
  EXPECT_EQ(e->items[2].kind, ExprItem::Kind::kPack);
  EXPECT_TRUE(e->items[2].pack->empty());
}

TEST(ParserTest, NegationForms) {
  Universe u;
  Result<Program> p = ParseProgram(
      u, "S($x) <- R($x), !T($x), not W($x), $x != eps, not $x = a.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Rule& r = p->strata[0].rules[0];
  ASSERT_EQ(r.body.size(), 5u);
  EXPECT_TRUE(r.body[1].negated);
  EXPECT_TRUE(r.body[2].negated);
  EXPECT_TRUE(r.body[3].negated);
  EXPECT_TRUE(r.body[3].is_equation());
  EXPECT_TRUE(r.body[4].negated);
}

TEST(ParserTest, DoubleNegatedNonequalityRejected) {
  Universe u;
  EXPECT_FALSE(ParseProgram(u, "S($x) <- R($x), !$x != a.").ok());
}

TEST(ParserTest, StrataSplit) {
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "W(@x) <- R(@x).\n"
                                   "---\n"
                                   "S(@x) <- R(@x), !W(@x).\n");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->strata.size(), 2u);
}

TEST(ParserTest, ArityMismatchIsError) {
  Universe u;
  Result<Program> p = ParseProgram(u, "R(a). S($x) <- R($x, $y).");
  EXPECT_FALSE(p.ok());
}

TEST(ParserTest, EquationWithAtomLhs) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x), a = $x.");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->strata[0].rules[0].body[1].is_equation());
}

TEST(ParserTest, EmptyBodyWithArrow) {
  Universe u;
  Result<Program> p = ParseProgram(u, "R(a) <- .");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->strata[0].rules[0].body.empty());
}

TEST(ParserTest, MissingPeriodIsError) {
  Universe u;
  EXPECT_FALSE(ParseProgram(u, "S($x) <- R($x)").ok());
}

// --- Printer round-trips ----------------------------------------------------

void ExpectRoundTrip(const std::string& text) {
  Universe u;
  Result<Program> p1 = ParseProgram(u, text);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString() << "\n" << text;
  std::string printed = FormatProgram(u, *p1);
  Result<Program> p2 = ParseProgram(u, printed);
  ASSERT_TRUE(p2.ok()) << p2.status().ToString() << "\n" << printed;
  EXPECT_EQ(FormatProgram(u, *p2), printed);
}

TEST(PrinterTest, RoundTripOnlyAs) {
  ExpectRoundTrip("S($x) <- R($x), a ++ $x = $x ++ a.");
}

TEST(PrinterTest, RoundTripNfa) {
  ExpectRoundTrip(
      "S(@q ++ $x, eps) <- R($x), N(@q).\n"
      "S(@q2 ++ $y, $z ++ @a) <- S(@q1 ++ @a ++ $y, $z), D(@q1, @a, @q2).\n"
      "A($x) <- S(@q, $x), F(@q).\n");
}

TEST(PrinterTest, RoundTripPacking) {
  ExpectRoundTrip(
      "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
      "A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.\n");
}

TEST(PrinterTest, RoundTripStrata) {
  ExpectRoundTrip(
      "W(@x) <- R(@x ++ @y), !B(@y).\n"
      "---\n"
      "S(@x) <- R(@x ++ @y), !W(@x).\n");
}

TEST(PrinterTest, FormatExprForms) {
  Universe u;
  ProgramBuilder b(u);
  EXPECT_EQ(FormatExpr(u, b.Eps()), "eps");
  EXPECT_EQ(FormatExpr(u, b.Cat({b.A("a"), b.PV("x"), b.AV("q")})),
            "a·$x·@q");
  EXPECT_EQ(FormatExpr(u, b.Pk(b.Cat({b.A("a"), b.A("b")}))), "<a·b>");
}

// --- AST helpers -------------------------------------------------------------

TEST(AstTest, ExprEquality) {
  Universe u;
  ProgramBuilder b(u);
  EXPECT_EQ(b.Cat({b.A("a"), b.PV("x")}), b.Cat({b.A("a"), b.PV("x")}));
  EXPECT_NE(b.Cat({b.A("a"), b.PV("x")}), b.Cat({b.A("a"), b.PV("y")}));
  EXPECT_EQ(b.Pk(b.A("a")), b.Pk(b.A("a")));
  EXPECT_NE(b.Pk(b.A("a")), b.A("a"));
}

TEST(AstTest, CollectVarsOrderAndDedup) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "$x ++ <@y ++ $x> ++ $z");
  ASSERT_TRUE(e.ok());
  std::vector<VarId> vars;
  CollectVars(*e, &vars);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(u.VarName(vars[0]), "x");
  EXPECT_EQ(u.VarName(vars[1]), "y");
  EXPECT_EQ(u.VarName(vars[2]), "z");
}

TEST(AstTest, EvalGroundExpr) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "a ++ <b ++ c> ++ d");
  ASSERT_TRUE(e.ok());
  Result<PathId> p = EvalGroundExpr(u, *e);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(u.FormatPath(*p), "a·<b·c>·d");
  Result<PathExpr> bad = ParsePathExpr(u, "a ++ $x");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(EvalGroundExpr(u, *bad).ok());
}

TEST(AstTest, SubstituteSplicesPathVars) {
  Universe u;
  ProgramBuilder b(u);
  PathExpr e = b.Cat({b.A("a"), b.PV("x"), b.A("b")});
  ExprSubst subst;
  subst[u.InternVar(VarKind::kPath, "x")] = b.Cat({b.A("c"), b.A("d")});
  EXPECT_EQ(FormatExpr(u, SubstituteExpr(e, subst)), "a·c·d·b");
}

TEST(AstTest, SubstituteDescendsIntoPacks) {
  Universe u;
  ProgramBuilder b(u);
  PathExpr e = b.Pk(b.PV("x"));
  ExprSubst subst;
  subst[u.InternVar(VarKind::kPath, "x")] = b.A("a");
  EXPECT_EQ(FormatExpr(u, SubstituteExpr(e, subst)), "<a>");
}

TEST(AstTest, IdbEdbRels) {
  Universe u;
  Result<Program> p =
      ParseProgram(u, "T($x) <- R($x).\nS($x) <- T($x), !Q($x).");
  ASSERT_TRUE(p.ok());
  std::set<RelId> idb = IdbRels(*p);
  std::set<RelId> edb = EdbRels(*p);
  EXPECT_EQ(idb.size(), 2u);
  EXPECT_EQ(edb.size(), 2u);
  EXPECT_TRUE(idb.count(*u.FindRel("T")));
  EXPECT_TRUE(idb.count(*u.FindRel("S")));
  EXPECT_TRUE(edb.count(*u.FindRel("R")));
  EXPECT_TRUE(edb.count(*u.FindRel("Q")));
}

TEST(AstTest, ExprOfPathRoundTrip) {
  Universe u;
  PathId inner = u.PathOfChars("ab");
  PathId p = u.Append(u.PathOfChars("c"), Value::Packed(inner));
  PathExpr e = ExprOfPath(u, p);
  Result<PathId> back = EvalGroundExpr(u, e);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(AstTest, RuleHasPackingChecksEverywhere) {
  Universe u;
  Result<Rule> r1 = ParseRule(u, "S(<$x>) <- R($x).");
  Result<Rule> r2 = ParseRule(u, "S($x) <- R($x), $x = <$y>.");
  Result<Rule> r3 = ParseRule(u, "S($x) <- R($x).");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(RuleHasPacking(*r1));
  EXPECT_TRUE(RuleHasPacking(*r2));
  EXPECT_FALSE(RuleHasPacking(*r3));
}

}  // namespace
}  // namespace seqdl
