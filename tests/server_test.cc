// The network subsystem: wire-protocol round trips and malformed-frame
// handling (protocol.h), request dispatch over a real loopback TCP
// server (server.h + service.h + client.h), and the server's edge cases
// — oversized frames, truncated frames, clients vanishing mid-run, and
// graceful shutdown cancelling in-flight runs through
// RunOptions::cancel.
//
// ServerConcurrencyTest races N client threads against a writer, which
// also puts the whole stack under the TSan CI job's *Concurrency*
// filter. Byte-level semantics (server output vs in-process Session::Run
// across epochs and compaction) live in the loopback differential in
// differential_test.cc.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

using protocol::MsgType;

// --- Protocol round trips -----------------------------------------------------

// Strips the u32 length prefix an encoder prepended.
std::string Payload(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

TEST(ProtocolTest, RequestRoundTrips) {
  protocol::RunRequest run;
  run.program = "S($x) <- R($x).";
  run.source_name = "q.sdl";
  run.output_rel = "S";
  run.collect_derived_stats = false;
  Result<protocol::Request> decoded =
      protocol::DecodeRequest(Payload(protocol::EncodeRunRequest(run)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MsgType::kRun);
  EXPECT_EQ(decoded->run.program, run.program);
  EXPECT_EQ(decoded->run.source_name, run.source_name);
  EXPECT_EQ(decoded->run.output_rel, run.output_rel);
  EXPECT_FALSE(decoded->run.collect_derived_stats);

  protocol::CompileRequest compile;
  compile.program = "T() <- R(a).";
  compile.source_name = "c.sdl";
  decoded = protocol::DecodeRequest(
      Payload(protocol::EncodeCompileRequest(compile)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kCompile);
  EXPECT_EQ(decoded->compile.program, compile.program);

  protocol::AppendRequest append;
  append.facts = "R(b).";
  append.source_name = "facts.sdl";
  decoded = protocol::DecodeRequest(
      Payload(protocol::EncodeAppendRequest(append)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kAppend);
  EXPECT_EQ(decoded->append.facts, append.facts);
  EXPECT_EQ(decoded->append.source_name, append.source_name);

  protocol::RetractRequest retract;
  retract.facts = "R(b). R(c).";
  retract.source_name = "victims.sdl";
  decoded = protocol::DecodeRequest(
      Payload(protocol::EncodeRetractRequest(retract)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kRetract);
  EXPECT_EQ(decoded->retract.facts, retract.facts);
  EXPECT_EQ(decoded->retract.source_name, retract.source_name);

  for (MsgType t : {MsgType::kEpoch, MsgType::kCompact, MsgType::kStats,
                    MsgType::kShutdown}) {
    decoded = protocol::DecodeRequest(Payload(protocol::EncodeBareRequest(t)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->type, t);
  }
}

TEST(ProtocolTest, ReplyRoundTrips) {
  protocol::RunReply run;
  run.epoch = 3;
  run.segments = 2;
  run.rendered = "S(a).\nS(b).\n";
  run.stats.derived_facts = 2;
  run.stats.rounds = 4;
  run.stats.index_probes = 7;
  run.stats.run_seconds = 0.125;
  Result<protocol::Reply> decoded =
      protocol::DecodeReply(Payload(protocol::EncodeRunReply(run)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->orig_type, MsgType::kRun);
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->run.epoch, 3u);
  EXPECT_EQ(decoded->run.segments, 2u);
  EXPECT_EQ(decoded->run.rendered, run.rendered);
  EXPECT_EQ(decoded->run.stats.derived_facts, 2u);
  EXPECT_EQ(decoded->run.stats.rounds, 4u);
  EXPECT_EQ(decoded->run.stats.index_probes, 7u);
  EXPECT_DOUBLE_EQ(decoded->run.stats.run_seconds, 0.125);

  protocol::CompileReply compile;
  compile.cache_hit = true;
  compile.rules = 5;
  compile.strata = 2;
  compile.compile_seconds = 0.5;
  decoded = protocol::DecodeReply(
      Payload(protocol::EncodeCompileReply(compile)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->compile.cache_hit);
  EXPECT_EQ(decoded->compile.rules, 5u);
  EXPECT_EQ(decoded->compile.strata, 2u);

  protocol::AppendReply append;
  append.appended = 9;
  append.db = {4, 3, 100};
  decoded = protocol::DecodeReply(
      Payload(protocol::EncodeAppendReply(append)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->append.appended, 9u);
  EXPECT_EQ(decoded->append.db.epoch, 4u);
  EXPECT_EQ(decoded->append.db.segments, 3u);
  EXPECT_EQ(decoded->append.db.facts, 100u);

  protocol::RetractReply retract;
  retract.retracted = 6;
  retract.db = {5, 4, 94};
  decoded = protocol::DecodeReply(
      Payload(protocol::EncodeRetractReply(retract)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->orig_type, MsgType::kRetract);
  EXPECT_EQ(decoded->retract.retracted, 6u);
  EXPECT_EQ(decoded->retract.db.epoch, 5u);
  EXPECT_EQ(decoded->retract.db.segments, 4u);
  EXPECT_EQ(decoded->retract.db.facts, 94u);

  decoded = protocol::DecodeReply(
      Payload(protocol::EncodeEpochReply({7, 2, 42})));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->info.epoch, 7u);

  protocol::CompactReply compact;
  compact.folded = true;
  compact.db = {7, 1, 42};
  decoded = protocol::DecodeReply(
      Payload(protocol::EncodeCompactReply(compact)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->compact.folded);

  protocol::StatsReply stats;
  stats.rendered = "R  col 0  whole  buckets=1\n";
  decoded = protocol::DecodeReply(Payload(protocol::EncodeStatsReply(stats)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats.rendered, stats.rendered);

  decoded = protocol::DecodeReply(Payload(protocol::EncodeShutdownReply()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->orig_type, MsgType::kShutdown);
}

TEST(ProtocolTest, ErrorReplyCarriesStatusAndNoBody) {
  std::string frame = protocol::EncodeErrorReply(
      MsgType::kRun, Status::InvalidArgument("q.sdl:3:7: expected ')'"));
  Result<protocol::Reply> decoded = protocol::DecodeReply(Payload(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->orig_type, MsgType::kRun);
  EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded->status.message(), "q.sdl:3:7: expected ')'");
}

TEST(ProtocolTest, TruncatedPayloadsAreRejectedAtEveryLength) {
  protocol::RunRequest run;
  run.program = "S($x) <- R($x).";
  run.source_name = "q.sdl";
  run.output_rel = "S";
  std::string payload = Payload(protocol::EncodeRunRequest(run));
  // Every strict prefix must fail decoding — never crash, never
  // misparse. (The frame layer reports mid-frame EOF separately.)
  for (size_t len = 0; len < payload.size(); ++len) {
    Result<protocol::Request> decoded =
        protocol::DecodeRequest(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolTest, TrailingBytesAreMalformed) {
  std::string payload =
      Payload(protocol::EncodeBareRequest(MsgType::kEpoch)) + "x";
  Result<protocol::Request> decoded = protocol::DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST(ProtocolTest, UnknownRequestTypeIsRejected) {
  std::string payload(1, static_cast<char>(99));
  Result<protocol::Request> decoded = protocol::DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, AnnotateParseErrorFormatsFileLineColumn) {
  Status parse = Status::InvalidArgument("parse error at 3:7: expected ')'");
  Status annotated = protocol::AnnotateParseError("facts.sdl", parse);
  EXPECT_EQ(annotated.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(annotated.message(), "facts.sdl:3:7: expected ')'");

  // Non-positional errors get a plain file prefix.
  Status other = Status::InvalidArgument("relation R used with arity 2");
  EXPECT_EQ(protocol::AnnotateParseError("facts.sdl", other).message(),
            "facts.sdl: relation R used with arity 2");

  // No source name / no error: unchanged.
  EXPECT_EQ(protocol::AnnotateParseError("", parse).message(),
            parse.message());
  EXPECT_TRUE(protocol::AnnotateParseError("facts.sdl", Status::OK()).ok());
}

// --- A live loopback server ---------------------------------------------------

constexpr char kReachProgram[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

/// "E(n0, n1). E(n1, n2). ..." — a chain whose reachability closure takes
/// ~`n` fixpoint rounds and derives ~n^2/2 facts: cheap to parse, slow
/// enough to be interrupted, deterministic to render.
std::string ChainEdb(size_t n, size_t start = 0) {
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out += "E(n" + std::to_string(start + i) + ", n" +
           std::to_string(start + i + 1) + ").\n";
  }
  return out;
}

/// Universe + Database + DatabaseService + Server with matched
/// lifetimes, torn down in the right order.
struct TestServer {
  std::unique_ptr<Universe> u;
  std::unique_ptr<DatabaseService> service;
  std::unique_ptr<Server> server;

  static TestServer Start(const std::string& edb_text,
                          ServiceOptions sopts = {},
                          ServerOptions opts = {}) {
    TestServer t;
    t.u = std::make_unique<Universe>();
    Result<Instance> edb = ParseInstance(*t.u, edb_text);
    EXPECT_TRUE(edb.ok()) << edb.status().ToString();
    Result<Database> db = Database::Open(*t.u, std::move(*edb));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    t.service = std::make_unique<DatabaseService>(*t.u, std::move(*db),
                                                  std::move(sopts));
    Result<std::unique_ptr<Server>> server = Server::Start(*t.service, opts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    t.server = std::move(*server);
    return t;
  }

  Result<Client> Connect() {
    return Client::Connect("127.0.0.1", server->port());
  }
};

TEST(ServerTest, FullRequestFlow) {
  TestServer t = TestServer::Start("E(a, b). E(b, c).");
  Result<Client> client = t.Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // compile: miss, then hit (the cache is keyed by program text, so a
  // second connection sending identical text also hits).
  Result<protocol::CompileReply> compiled =
      client->Compile(kReachProgram, "reach.sdl");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_FALSE(compiled->cache_hit);
  EXPECT_EQ(compiled->rules, 2u);
  EXPECT_EQ(compiled->strata, 1u);
  compiled = client->Compile(kReachProgram, "reach.sdl");
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->cache_hit);
  EXPECT_EQ(t.service->NumCachedPrograms(), 1u);

  // run: rendered derived facts, pinned at epoch 0.
  Result<protocol::RunReply> run = client->Run(kReachProgram);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->epoch, 0u);
  EXPECT_FALSE(run->result_cached);
  EXPECT_EQ(run->rendered, "R(a, b).\nR(a, c).\nR(b, c).\n");
  EXPECT_EQ(run->stats.derived_facts, 3u);

  // The identical query at the unchanged epoch is a result-cache hit —
  // same bytes, no evaluation.
  run = client->Run(kReachProgram);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
  EXPECT_EQ(run->rendered, "R(a, b).\nR(a, c).\nR(b, c).\n");

  // run with projection: a distinct cache key, evaluated on first use.
  run = client->Run(kReachProgram, "R");
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->result_cached);
  EXPECT_EQ(run->rendered, "R(a, b).\nR(a, c).\nR(b, c).\n");
  EXPECT_EQ(t.service->NumCachedResults(), 2u);

  // append: a new epoch, visible to later runs — and a cache miss, the
  // epoch counter is the invalidation.
  Result<protocol::AppendReply> appended = client->Append("E(c, d).");
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->appended, 1u);
  EXPECT_EQ(appended->db.epoch, 1u);
  EXPECT_EQ(appended->db.segments, 2u);
  run = client->Run(kReachProgram);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->epoch, 1u);
  EXPECT_FALSE(run->result_cached);
  EXPECT_EQ(run->rendered,
            "R(a, b).\nR(a, c).\nR(a, d).\nR(b, c).\nR(b, d).\nR(c, d).\n");
  // The append delta-refreshed the maintained view instead of re-running
  // the fixpoint: only the 3 tuples reachable through the new edge were
  // derived (a cold run would derive all 6).
  EXPECT_EQ(run->stats.derived_facts, 3u);

  // epoch / compact / stats.
  Result<protocol::DbInfo> info = client->Epoch();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->facts, 3u);
  Result<protocol::CompactReply> compacted = client->Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_TRUE(compacted->folded);
  EXPECT_EQ(compacted->db.segments, 1u);
  EXPECT_EQ(compacted->db.epoch, 1u);
  // Compaction keeps the epoch (same facts), so cached results stay
  // valid and correct (stats replay those of the delta refresh that
  // brought the entry to this epoch).
  run = client->Run(kReachProgram);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
  EXPECT_EQ(run->stats.derived_facts, 3u);
  Result<protocol::StatsReply> stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->rendered.find("E"), std::string::npos);

  // shutdown: acknowledged, then the server drains.
  EXPECT_TRUE(client->Shutdown().ok());
  t.server->Wait();
  EXPECT_GE(t.server->requests_served(), 9u);
}

TEST(ServerTest, ServerSideErrorsComeBackStructured) {
  TestServer t = TestServer::Start("E(a, b).");
  Result<Client> client = t.Connect();
  ASSERT_TRUE(client.ok());

  // A parse error in shipped program text points at the client's file.
  Result<protocol::RunReply> run =
      client->Run("R($x <- E($x).", "", "bad.sdl");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run.status().message().rfind("bad.sdl:1:", 0), 0u)
      << run.status().message();

  // Same for malformed appended facts.
  Result<protocol::AppendReply> appended =
      client->Append("E(a b).", "facts.sdl");
  ASSERT_FALSE(appended.ok());
  EXPECT_EQ(appended.status().message().rfind("facts.sdl:1:", 0), 0u)
      << appended.status().message();

  // Unknown output relation: a clean error reply, not a dropped
  // connection — the same client keeps working.
  run = client->Run(kReachProgram, "NoSuchRel");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
  Result<protocol::DbInfo> info = client->Epoch();
  EXPECT_TRUE(info.ok()) << info.status().ToString();
}

TEST(ServerTest, OversizedFrameIsRejectedWithErrorReply) {
  ServerOptions opts;
  opts.max_frame_bytes = 1024;
  TestServer t = TestServer::Start("E(a, b).", {}, opts);
  Result<Client> client = t.Connect();
  ASSERT_TRUE(client.ok());

  // Declare a 1 MiB frame against the 1 KiB limit: header only, the
  // server must reject on the declared length without reading further.
  std::string header = {'\0', '\0', '\x10', '\0'};  // u32le 0x100000
  ASSERT_TRUE(protocol::WriteFrame(client->fd(), header).ok());
  Result<std::string> payload =
      protocol::ReadFrame(client->fd(), protocol::kDefaultMaxFrameBytes);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<protocol::Reply> reply = protocol::DecodeReply(*payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(reply->status.message().find("oversized frame"),
            std::string::npos);
  // ... and the connection is closed behind the reply.
  Result<std::string> next =
      protocol::ReadFrame(client->fd(), protocol::kDefaultMaxFrameBytes);
  EXPECT_FALSE(next.ok());

  // The server itself is unharmed.
  Result<Client> fresh = t.Connect();
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Epoch().ok());
}

TEST(ServerTest, TruncatedFrameDropsConnectionOnly) {
  TestServer t = TestServer::Start("E(a, b).");
  {
    Result<Client> client = t.Connect();
    ASSERT_TRUE(client.ok());
    // Declare 100 payload bytes, deliver 10, vanish.
    std::string partial = {'\x64', '\0', '\0', '\0'};
    partial += "0123456789";
    ASSERT_TRUE(protocol::WriteFrame(client->fd(), partial).ok());
    client->Close();
  }
  // The worker saw a truncated frame and dropped that connection; the
  // server keeps serving.
  Result<Client> fresh = t.Connect();
  ASSERT_TRUE(fresh.ok());
  Result<protocol::DbInfo> info = fresh->Epoch();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->facts, 1u);
}

TEST(ServerTest, ClientDisconnectMidRunLeavesServerHealthy) {
  TestServer t = TestServer::Start(ChainEdb(200));
  {
    Result<Client> client = t.Connect();
    ASSERT_TRUE(client.ok());
    // Fire a ~200-round run and hang up without reading the reply: the
    // worker's reply write fails (MSG_NOSIGNAL, no SIGPIPE) and the
    // connection is reaped.
    protocol::RunRequest req;
    req.program = kReachProgram;
    ASSERT_TRUE(
        protocol::WriteFrame(client->fd(), protocol::EncodeRunRequest(req))
            .ok());
    client->Close();
  }
  // The server survives and still answers — including the same query.
  Result<Client> fresh = t.Connect();
  ASSERT_TRUE(fresh.ok());
  Result<protocol::RunReply> run = fresh->Run(kReachProgram);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->stats.derived_facts, 200u * 201u / 2u);
}

TEST(ServerTest, ShutdownCancelsInFlightRuns) {
  // A long chain: thousands of fixpoint rounds, far longer than the
  // shutdown below. RunOptions::cancel is polled every round, so the
  // drain interrupts the run near-instantly instead of waiting it out.
  TestServer t = TestServer::Start(ChainEdb(1500));
  Result<Client> client = t.Connect();
  ASSERT_TRUE(client.ok());
  protocol::RunRequest req;
  req.program = kReachProgram;
  ASSERT_TRUE(
      protocol::WriteFrame(client->fd(), protocol::EncodeRunRequest(req))
          .ok());
  // Give a worker time to pick the run up, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  t.server->Shutdown();

  // The client sees either a kCancelled error reply (run was in flight
  // when the drain started) or a closed connection (the run had not
  // started / the reply raced the close). Either way the drain already
  // finished — Shutdown() joined every thread without waiting out the
  // full fixpoint.
  Result<std::string> payload =
      protocol::ReadFrame(client->fd(), protocol::kDefaultMaxFrameBytes);
  if (payload.ok()) {
    Result<protocol::Reply> reply = protocol::DecodeReply(*payload);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->status.code(), StatusCode::kCancelled)
        << reply->status.ToString();
  }
  EXPECT_TRUE(t.server->ShuttingDown());
}

TEST(ServerTest, QueuedConnectionsAreDroppedOnShutdown) {
  // One worker, held busy by a slow run; further connections queue and
  // must be closed (not served, not leaked) by the drain.
  ServerOptions opts;
  opts.threads = 1;
  TestServer t = TestServer::Start(ChainEdb(1200), {}, opts);
  Result<Client> busy = t.Connect();
  ASSERT_TRUE(busy.ok());
  protocol::RunRequest req;
  req.program = kReachProgram;
  ASSERT_TRUE(
      protocol::WriteFrame(busy->fd(), protocol::EncodeRunRequest(req)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Result<Client> queued = t.Connect();
  ASSERT_TRUE(queued.ok());
  t.server->Shutdown();
  // The queued connection was closed without a reply.
  Result<std::string> payload =
      protocol::ReadFrame(queued->fd(), protocol::kDefaultMaxFrameBytes);
  EXPECT_FALSE(payload.ok());
}

// --- Concurrency (runs under the TSan CI job's *Concurrency* filter) ---------

TEST(ServerConcurrencyTest, ClientsRaceRunsAppendsAndCompaction) {
  // Expected derived rendering per epoch, computed in-process on an
  // independent Universe.
  const std::string batch0 = "E(a, b). E(b, c).";
  const std::string batch1 = "E(c, d).";
  const std::string batch2 = "E(d, e).";
  std::vector<std::string> expected;
  {
    Universe u;
    Result<Program> p = ParseProgram(u, kReachProgram);
    ASSERT_TRUE(p.ok());
    Result<PreparedProgram> prog = Engine::CompileBorrowed(u, *p);
    ASSERT_TRUE(prog.ok());
    Instance acc;
    for (const std::string& batch : {batch0, batch1, batch2}) {
      Result<Instance> delta = ParseInstance(u, batch);
      ASSERT_TRUE(delta.ok());
      acc.UnionWith(std::move(*delta));
      Result<Database> db = Database::Open(u, acc);
      ASSERT_TRUE(db.ok());
      Result<Instance> derived = db->Snapshot().Run(*prog);
      ASSERT_TRUE(derived.ok());
      expected.push_back(derived->ToString(u));
    }
  }

  ServerOptions opts;
  opts.threads = 8;
  // Cache off: every run must actually race the engine (snapshot pins,
  // index call_onces, stats accumulator), not the result cache.
  ServiceOptions sopts;
  sopts.result_cache_entries = 0;
  TestServer t = TestServer::Start(batch0, sopts, opts);

  constexpr size_t kThreads = 8;
  constexpr size_t kRunsPerThread = 12;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      Result<Client> client =
          Client::Connect("127.0.0.1", t.server->port());
      if (!client.ok()) {
        failures[i] = client.status().ToString();
        return;
      }
      for (size_t r = 0; r < kRunsPerThread; ++r) {
        Result<protocol::RunReply> run = client->Run(kReachProgram);
        if (!run.ok()) {
          failures[i] = run.status().ToString();
          return;
        }
        // Every reply must be internally consistent: the rendering of
        // exactly the epoch the run was pinned to, regardless of how
        // appends and compactions interleaved.
        if (run->epoch >= expected.size() ||
            run->rendered != expected[run->epoch]) {
          failures[i] = "epoch " + std::to_string(run->epoch) +
                        " rendered unexpectedly:\n" + run->rendered;
          return;
        }
      }
    });
  }

  // Writer thread: two appends and a compaction race the readers.
  std::thread writer([&] {
    Result<Client> client = Client::Connect("127.0.0.1", t.server->port());
    ASSERT_TRUE(client.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(client->Append(batch1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(client->Compact().ok());
    ASSERT_TRUE(client->Append(batch2).ok());
  });

  for (std::thread& c : clients) c.join();
  writer.join();
  for (size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(failures[i], "") << "client thread " << i;
  }
  Result<Client> check = t.Connect();
  ASSERT_TRUE(check.ok());
  Result<protocol::DbInfo> info = check->Epoch();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->epoch, 2u);
  EXPECT_EQ(info->facts, 4u);
}

TEST(ServerConcurrencyTest, CompileStampedeSharesOneCacheEntry) {
  ServerOptions opts;
  opts.threads = 8;
  TestServer t = TestServer::Start("E(a, b).", {}, opts);
  constexpr size_t kThreads = 8;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Result<Client> client =
          Client::Connect("127.0.0.1", t.server->port());
      if (!client.ok()) {
        failures[i] = client.status().ToString();
        return;
      }
      Result<protocol::CompileReply> compiled =
          client->Compile(kReachProgram);
      if (!compiled.ok()) failures[i] = compiled.status().ToString();
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(failures[i], "") << "client thread " << i;
  }
  // Races may compile redundantly, but the cache converges on one entry
  // per distinct program text.
  EXPECT_EQ(t.service->NumCachedPrograms(), 1u);
}

// --- Maintained-view cache: byte accounting, LRU eviction, counters ----------

constexpr char kProgA[] = "A($x, $y) <- E($x, $y).";
constexpr char kProgB[] = "B($x, $y) <- E($x, $y).";
constexpr char kProgC[] = "C($x, $y) <- E($x, $y).";

protocol::RunRequest ReqFor(const char* program) {
  protocol::RunRequest req;
  req.program = program;
  return req;
}

TEST(ServiceCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b). E(b, c).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  ServiceOptions sopts;
  // Any single entry busts the budget, so only the hottest entry (which
  // eviction never touches) survives each insert.
  sopts.cache_bytes = 1;
  DatabaseService service(u, std::move(*db), sopts);

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  CacheCounters c = service.CacheStats();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_GT(c.bytes, sopts.cache_bytes);  // the survivor is over budget

  // A second program displaces the first: its bytes, its entry, and its
  // materialized view all go.
  ASSERT_TRUE(service.Run(ReqFor(kProgB)).ok());
  c = service.CacheStats();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(service.db().views().NumViews(), 1u);

  // Re-running the evicted program is a cold materialization again.
  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  EXPECT_EQ(service.db().views().counters().cold_runs, 3u);
}

TEST(ServiceCacheTest, EntryCapEvictsLeastRecentlyUsed) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  ServiceOptions sopts;
  sopts.result_cache_entries = 2;
  sopts.cache_bytes = 0;  // unbounded: only the entry cap evicts
  DatabaseService service(u, std::move(*db), sopts);

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  ASSERT_TRUE(service.Run(ReqFor(kProgB)).ok());
  EXPECT_EQ(service.CacheStats().entries, 2u);

  // Touch A so B becomes least recently used, then insert C: B goes.
  Result<protocol::RunReply> run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
  ASSERT_TRUE(service.Run(ReqFor(kProgC)).ok());
  CacheCounters c = service.CacheStats();
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 1u);

  run = service.Run(ReqFor(kProgA));  // still cached
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
  run = service.Run(ReqFor(kProgB));  // was evicted: a fresh evaluation
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->result_cached);
  c = service.CacheStats();
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.evictions, 2u);  // inserting B displaced another entry
}

TEST(ServiceCacheTest, AppendRefreshesViewsEagerly) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b). E(b, c).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  DatabaseService service(u, std::move(*db), ServiceOptions());

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  EXPECT_EQ(service.db().views().counters().cold_runs, 1u);

  // The append itself delta-refreshes the stored view — before any query.
  protocol::AppendRequest append;
  append.facts = "E(c, d).";
  ASSERT_TRUE(service.Append(append).ok());
  ViewManager::Counters v = service.db().views().counters();
  EXPECT_EQ(v.cold_runs, 1u);
  EXPECT_EQ(v.delta_refreshes, 1u);

  // The next run re-renders from the refreshed view (a view-level hit,
  // no evaluation) and replays the delta refresh's stats.
  Result<protocol::RunReply> run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->epoch, 1u);
  EXPECT_EQ(run->stats.derived_facts, 1u);  // only A(c, d) was new
  EXPECT_GE(service.db().views().counters().hits, 1u);

  // And the rendering is cached from here on.
  run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
}

TEST(ServiceCacheTest, RefreshOnAppendOffDefersToNextRun) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  ServiceOptions sopts;
  sopts.refresh_on_append = false;
  DatabaseService service(u, std::move(*db), sopts);

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  protocol::AppendRequest append;
  append.facts = "E(b, c).";
  ASSERT_TRUE(service.Append(append).ok());
  EXPECT_EQ(service.db().views().counters().delta_refreshes, 0u);

  Result<protocol::RunReply> run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->epoch, 1u);
  EXPECT_EQ(service.db().views().counters().delta_refreshes, 1u);
}

TEST(ServiceCacheTest, CountersTravelInStatsReplies) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  DatabaseService service(u, std::move(*db), ServiceOptions());

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());  // hit
  protocol::StatsReply stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_entries, 1u);
  EXPECT_GT(stats.cache_bytes, 0u);
  EXPECT_EQ(stats.view_cold_runs, 1u);

  // And they survive the wire: encode → decode is lossless.
  Result<protocol::Reply> decoded = protocol::DecodeReply(
      Payload(protocol::EncodeStatsReply(stats)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stats.rendered, stats.rendered);
  EXPECT_EQ(decoded->stats.cache_hits, stats.cache_hits);
  EXPECT_EQ(decoded->stats.cache_misses, stats.cache_misses);
  EXPECT_EQ(decoded->stats.cache_evictions, stats.cache_evictions);
  EXPECT_EQ(decoded->stats.cache_entries, stats.cache_entries);
  EXPECT_EQ(decoded->stats.cache_bytes, stats.cache_bytes);
  EXPECT_EQ(decoded->stats.view_hits, stats.view_hits);
  EXPECT_EQ(decoded->stats.view_cold_runs, stats.view_cold_runs);
  EXPECT_EQ(decoded->stats.view_delta_refreshes,
            stats.view_delta_refreshes);
  EXPECT_EQ(decoded->stats.view_dred_refreshes,
            stats.view_dred_refreshes);
  EXPECT_EQ(decoded->stats.view_strata_recomputed,
            stats.view_strata_recomputed);
}

TEST(ServiceCacheTest, RetractRefreshesViewsThroughDRed) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, "E(a, b). E(b, c).");
  ASSERT_TRUE(edb.ok());
  Result<Database> db = Database::Open(u, std::move(*edb));
  ASSERT_TRUE(db.ok());
  ServiceOptions sopts;
  // Admission analysis runs on the eager-refresh path too; kProgA is
  // non-generative, so the budget must not clamp its DRed refresh.
  sopts.admission = AdmissionPolicy::kBudget;
  DatabaseService service(u, std::move(*db), sopts);

  ASSERT_TRUE(service.Run(ReqFor(kProgA)).ok());
  EXPECT_EQ(service.db().views().counters().cold_runs, 1u);

  // The retract eagerly advances the stored view like an append — but
  // through the DRed path, never the append-only delta path: the cached
  // rendering at the shrink epoch must not contain the dead tuple.
  protocol::RetractRequest retract;
  retract.facts = "E(b, c).";
  Result<protocol::RetractReply> rr = service.Retract(retract);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  EXPECT_EQ(rr->retracted, 1u);
  EXPECT_EQ(rr->db.epoch, 1u);
  ViewManager::Counters v = service.db().views().counters();
  EXPECT_EQ(v.cold_runs, 1u);
  EXPECT_EQ(v.delta_refreshes, 1u);
  EXPECT_EQ(v.dred_refreshes, 1u);

  Result<protocol::RunReply> run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->epoch, 1u);
  EXPECT_EQ(run->rendered, "A(a, b).\n");

  // And the post-retraction rendering is cached from here on.
  run = service.Run(ReqFor(kProgA));
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result_cached);
  EXPECT_EQ(run->rendered, "A(a, b).\n");

  // Retracting facts nobody has is a no-op end to end: no epoch bump,
  // no refresh work.
  retract.facts = "E(z, z).";
  rr = service.Retract(retract);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->retracted, 0u);
  EXPECT_EQ(rr->db.epoch, 1u);
  EXPECT_EQ(service.db().views().counters().dred_refreshes, 1u);
}

}  // namespace
}  // namespace seqdl
