// Tests for retraction (database.h Retract / Writer::Retract): tombstone
// segments shadowing older facts, snapshot isolation across a shrink
// epoch, the append/retract flip invariant, compaction folding
// tombstones away, shrink-aware statistics (a retraction must register
// as StatsDrift), and the DRed delete/re-derive path on maintained
// views — count-gated deletion for acyclically-supported tuples,
// classic over-delete-then-rescue for cyclically-supported ones. The
// cross-cutting guarantee — a maintained view is byte-identical to a
// cold fixpoint at every epoch over random retract/append schedules —
// lives in tests/differential_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/engine/stats.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/view/view.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

PreparedProgram MustCompile(Universe& u, const std::string& text) {
  Result<PreparedProgram> prog = Engine::Compile(u, MustParse(u, text));
  EXPECT_TRUE(prog.ok()) << prog.status().ToString();
  return std::move(prog).value();
}

std::string ColdRendered(Universe& u, const Database& db,
                         const PreparedProgram& prog) {
  Result<Instance> derived = db.Snapshot().Run(prog);
  EXPECT_TRUE(derived.ok()) << derived.status().ToString();
  return derived->ToString(u);
}

constexpr char kReach[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

// --- Tombstone segments -------------------------------------------------------

TEST(RetractTest, RetractPublishesTombstoneAndBumpsEpoch) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b). E(b, c)."));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTombstones(), 0u);

  size_t retracted = 0;
  Result<uint64_t> epoch =
      db->Retract(MustInstance(u, "E(b, c)."), &retracted);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(retracted, 1u);
  EXPECT_EQ(db->NumTombstones(), 1u);
  EXPECT_EQ(db->NumFacts(), 1u);
  EXPECT_EQ(db->edb().ToString(u), MustInstance(u, "E(a, b).").ToString(u));
}

TEST(RetractTest, RetractingAbsentFactsIsANoOp) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  uint64_t epoch0 = db->epoch();
  size_t segments0 = db->NumSegments();

  // Neither fact is visible (one never existed, one is a different
  // relation's shape): no tombstone segment, no epoch bump.
  size_t retracted = 99;
  Result<uint64_t> epoch =
      db->Retract(MustInstance(u, "E(x, y)."), &retracted);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, epoch0);
  EXPECT_EQ(retracted, 0u);
  EXPECT_EQ(db->NumSegments(), segments0);
  EXPECT_EQ(db->NumTombstones(), 0u);
  EXPECT_EQ(db->NumFacts(), 1u);
}

TEST(RetractTest, PinnedSessionKeepsSeeingRetractedFacts) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b). E(b, c)."));
  ASSERT_TRUE(db.ok());
  Session before = db->Snapshot();

  ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, b).")).ok());

  // The pinned session reads the pre-retraction stack; a fresh snapshot
  // sees the tombstone shadow the fact.
  EXPECT_EQ(before.NumFacts(), 2u);
  EXPECT_EQ(before.edb().ToString(u),
            MustInstance(u, "E(a, b). E(b, c).").ToString(u));
  EXPECT_EQ(db->Snapshot().NumFacts(), 1u);
  EXPECT_EQ(db->Snapshot().edb().ToString(u),
            MustInstance(u, "E(b, c).").ToString(u));
}

TEST(RetractTest, ReAppendAfterRetractFlipsVisibilityBack) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());

  // Retract, re-append, retract again: visibility is decided by the
  // newest occurrence, so each write flips it.
  ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, b).")).ok());
  EXPECT_EQ(db->NumFacts(), 0u);

  size_t appended = 0;
  ASSERT_TRUE(db->Append(MustInstance(u, "E(a, b)."), &appended).ok());
  EXPECT_EQ(appended, 1u);
  EXPECT_EQ(db->NumFacts(), 1u);
  EXPECT_EQ(db->edb().ToString(u), MustInstance(u, "E(a, b).").ToString(u));

  size_t retracted = 0;
  ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, b)."), &retracted).ok());
  EXPECT_EQ(retracted, 1u);
  EXPECT_EQ(db->NumFacts(), 0u);
  EXPECT_TRUE(db->edb().Empty());
}

TEST(RetractTest, CompactFoldsTombstonesAway) {
  Universe u;
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b). E(b, c). E(c, d)."));
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Retract(MustInstance(u, "E(b, c). E(c, d).")).ok());
  ASSERT_TRUE(db->Append(MustInstance(u, "E(d, e).")).ok());
  uint64_t epoch = db->epoch();
  std::string edb = db->edb().ToString(u);

  EXPECT_GT(db->NumTombstones(), 0u);
  ASSERT_TRUE(*db->Compact());

  // Folding happens under an unchanged epoch and leaves only surviving
  // facts: the post-compaction stack contains no tombstones at all.
  EXPECT_EQ(db->epoch(), epoch);
  EXPECT_EQ(db->NumTombstones(), 0u);
  EXPECT_EQ(db->NumSegments(), 1u);
  EXPECT_EQ(db->NumFacts(), 2u);
  EXPECT_EQ(db->edb().ToString(u), edb);
}

TEST(RetractTest, WriterCommitsAppendsBeforeRetractions) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());

  Writer w = db->MakeWriter();
  w.Stage(MustInstance(u, "E(b, c). E(c, d)."));
  RelId e = *u.FindRel("E");
  w.Retract(e, {u.PathOfChars("a"), u.PathOfChars("b")});
  w.Retract(e, {u.PathOfChars("c"), u.PathOfChars("d")});
  EXPECT_EQ(w.NumStaged(), 2u);
  EXPECT_EQ(w.NumStagedRetractions(), 2u);

  // Appends publish first, tombstones second: a fact both staged and
  // retracted in one batch ends up retracted.
  Result<uint64_t> epoch = w.Commit();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(db->NumFacts(), 1u);
  EXPECT_EQ(db->edb().ToString(u), MustInstance(u, "E(b, c).").ToString(u));
  EXPECT_EQ(w.NumStaged(), 0u);
  EXPECT_EQ(w.NumStagedRetractions(), 0u);
}

TEST(RetractTest, RetractOnClosedDatabaseFails) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "E(a, b)."));
  ASSERT_TRUE(db.ok());
  db->Close();
  Result<uint64_t> epoch = db->Retract(MustInstance(u, "E(a, b)."));
  ASSERT_FALSE(epoch.ok());
  EXPECT_EQ(epoch.status().code(), StatusCode::kFailedPrecondition);
}

// --- Shrink-aware statistics (a retraction is drift) --------------------------

TEST(RetractTest, RetractionShrinksStatsAndRegistersAsDrift) {
  Universe u;
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b). E(b, c). E(c, d). E(d, e)."));
  ASSERT_TRUE(db.ok());
  RelId e = *u.FindRel("E");
  StoreStats before = db->Stats();
  EXPECT_EQ(before.EstimateScan(e), 4.0);

  ASSERT_TRUE(db->Retract(MustInstance(u, "E(b, c). E(c, d). E(d, e).")).ok());
  StoreStats after = db->Stats();

  // The estimate tracks visible facts, not raw segment sizes — and the
  // shrink shows up as drift, so cached plans ranked off the old counts
  // recompile instead of optimizing for a relation that no longer looks
  // like that.
  EXPECT_EQ(after.EstimateScan(e), 1.0);
  EXPECT_GT(StatsDrift(before, after), 0.0);
}

// --- DRed on maintained views -------------------------------------------------

TEST(RetractTest, CountGatedSurvivalSkipsRederivation) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "A(a). B(a)."));
  ASSERT_TRUE(db.ok());
  // P is non-recursive, so its stored support counts are exact: P(a)
  // has two independent derivations, and losing one must not even
  // provisionally delete it.
  PreparedProgram prog =
      MustCompile(u, "P($x) <- A($x).\nP($x) <- B($x).\n");
  ASSERT_TRUE(db->views().Refresh("p", prog).ok());

  ASSERT_TRUE(db->Retract(MustInstance(u, "A(a).")).ok());
  EvalStats stats;
  auto v = db->views().Refresh("p", prog, {}, &stats);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
  EXPECT_GT(stats.dred_decrements, 0u);
  EXPECT_EQ(stats.dred_over_deleted, 0u);
  EXPECT_EQ(stats.dred_re_derived, 0u);
  EXPECT_EQ(db->views().counters().dred_refreshes, 1u);
}

TEST(RetractTest, OverDecrementedTupleSurvivesViaRederivation) {
  Universe u;
  // A cycle a -> b -> c -> a plus the chord a -> c: R(a, c) is reachable
  // both directly and around the cycle.
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b). E(b, c). E(c, a). E(a, c)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(u, kReach);
  ASSERT_TRUE(db->views().Refresh("reach", prog).ok());

  ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, c).")).ok());
  EvalStats stats;
  auto v = db->views().Refresh("reach", prog, {}, &stats);
  ASSERT_TRUE(v.ok()) << v.status().ToString();

  // R is recursive, so the deletion phase over-deletes on the first
  // decrement (cyclic support counts cannot be trusted) and the
  // re-derivation pass rescues everything the cycle still proves —
  // here the whole 3x3 closure survives.
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
  EXPECT_GT(stats.dred_over_deleted, 0u);
  EXPECT_GT(stats.dred_re_derived, 0u);
  RelId r = *u.FindRel("R");
  EXPECT_EQ((*v)->idb().Tuples(r).size(), 9u);

  // Every surviving tuple carries a support count of at least one, so
  // a later retraction can still decrement it toward deletion.
  auto it = (*v)->support().find(r);
  ASSERT_NE(it, (*v)->support().end());
  for (const Tuple& t : (*v)->idb().Tuples(r)) {
    auto ct = it->second->find(t);
    ASSERT_NE(ct, it->second->end());
    EXPECT_GE(ct->second, 1u);
  }
}

TEST(RetractTest, CyclicSupportDoesNotPropItselfUp) {
  Universe u;
  // P(a) and Q(a) support each other; once A(a) goes, the only
  // remaining "support" is the P -> Q -> P cycle, which must not keep
  // either alive (the regression this test pins: count-gated deletion
  // alone would leave the pair propping each other up forever).
  Result<Database> db = Database::Open(u, MustInstance(u, "A(a). B(a)."));
  ASSERT_TRUE(db.ok());
  PreparedProgram prog = MustCompile(
      u, "P($x) <- A($x).\nP($x) <- Q($x), B($x).\nQ($x) <- P($x).\n");
  ASSERT_TRUE(db->views().Refresh("pq", prog).ok());

  ASSERT_TRUE(db->Retract(MustInstance(u, "A(a).")).ok());
  auto v = db->views().Refresh("pq", prog);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_TRUE((*v)->idb().Empty());
  EXPECT_EQ((*v)->idb().ToString(u), ColdRendered(u, *db, prog));
}

}  // namespace
}  // namespace seqdl
