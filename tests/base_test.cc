#include <gtest/gtest.h>

#include "src/base/status.h"

namespace seqdl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rule");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SEQDL_ASSIGN_OR_RETURN(int h, Half(x));
  SEQDL_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status CheckAll(std::initializer_list<int> xs) {
  for (int x : xs) {
    SEQDL_RETURN_IF_ERROR(FailIfNegative(x));
  }
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_FALSE(CheckAll({1, -2, 3}).ok());
}

}  // namespace
}  // namespace seqdl
