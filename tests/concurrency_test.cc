// Concurrency coverage for the Database/Session API and the thread-safe
// Universe: parallel session runs over one shared pre-indexed EDB must be
// byte-identical to sequential runs, and concurrent interning must
// hash-cons consistently across threads. All assertions happen on the
// main thread after joining (gtest assertions are not thread-safe);
// worker threads only record what they saw.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

constexpr size_t kThreads = 8;

// Deterministic per-thread generator (splitmix64), so runs reproduce.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// --- Universe interning ------------------------------------------------------

TEST(UniverseConcurrencyTest, InterningStressAgreesAcrossThreads) {
  Universe u;
  // A shared pool of atoms interned before the threads start; the threads
  // then race to intern overlapping sets of paths built from them.
  constexpr size_t kAtoms = 12;
  std::vector<Value> atoms;
  for (size_t i = 0; i < kAtoms; ++i) {
    atoms.push_back(Value::Atom(u.InternAtom("a" + std::to_string(i))));
  }

  constexpr size_t kItersPerThread = 4000;
  // Each thread records (path contents as digit string) -> PathId.
  std::vector<std::map<std::string, PathId>> seen(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng{t + 1};
      for (size_t i = 0; i < kItersPerThread; ++i) {
        size_t len = rng.Next() % 6;
        std::vector<Value> values;
        std::string key;
        for (size_t k = 0; k < len; ++k) {
          size_t a = rng.Next() % kAtoms;
          values.push_back(atoms[a]);
          key += static_cast<char>('A' + a);
        }
        PathId id = u.InternPath(values);
        seen[t][key] = id;
        // Round-trip through the lock-free read path while other threads
        // are still interning.
        std::span<const Value> got = u.GetPath(id);
        if (got.size() != values.size()) {
          seen[t][key] = static_cast<PathId>(-1);  // poison: caught below
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Equal contents must have interned to equal ids in every thread.
  std::map<std::string, PathId> combined;
  for (const auto& m : seen) {
    for (const auto& [key, id] : m) {
      ASSERT_NE(id, static_cast<PathId>(-1)) << "GetPath mismatch for " << key;
      auto [it, inserted] = combined.emplace(key, id);
      EXPECT_EQ(it->second, id) << "contents " << key
                                << " interned to two different ids";
    }
  }
  // And every id resolves back to its contents.
  for (const auto& [key, id] : combined) {
    std::span<const Value> got = u.GetPath(id);
    ASSERT_EQ(got.size(), key.size());
    for (size_t k = 0; k < key.size(); ++k) {
      EXPECT_EQ(got[k], atoms[static_cast<size_t>(key[k] - 'A')]);
    }
  }
  EXPECT_EQ(u.InternPath({}), kEmptyPath);
}

TEST(UniverseConcurrencyTest, ConcatAppendStress) {
  Universe u;
  PathId base = u.PathOfChars("ab");
  Value c = Value::Atom(u.InternAtom("c"));
  std::vector<PathId> results(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PathId p = base;
      for (int i = 0; i < 500; ++i) {
        p = u.Append(base, c);
        p = u.Concat(p, base);
        p = u.SubPath(p, 0, 3);
      }
      results[t] = p;
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  EXPECT_EQ(u.FormatPath(results[0]), "a·b·c");
}

TEST(UniverseConcurrencyTest, AtomVarRelInterningStress) {
  Universe u;
  std::vector<std::vector<uint32_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        ids[t].push_back(u.InternAtom("atom" + std::to_string(i % 50)));
        ids[t].push_back(
            u.InternVar(VarKind::kPath, "v" + std::to_string(i % 20)));
        Result<RelId> r = u.InternRel("Rel" + std::to_string(i % 10), 2);
        ids[t].push_back(r.ok() ? *r : static_cast<uint32_t>(-1));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  EXPECT_EQ(u.num_atoms(), 50u);
  EXPECT_EQ(u.num_vars(), 20u);
  EXPECT_EQ(u.num_rels(), 10u);
}

// --- Database/Session --------------------------------------------------------

TEST(DatabaseConcurrencyTest, ParallelSessionRunsMatchSequential) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 24;
  gw.edges = 48;
  gw.seed = 7;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<Database> db = Database::Open(u, std::move(*in));
  ASSERT_TRUE(db.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  // Sequential reference (also exercises the lazy base index build before
  // the threads arrive — and again from cold in a fresh Database below).
  Result<Instance> reference = db->OpenSession().Run(*prog);
  ASSERT_TRUE(reference.ok());
  std::string reference_text = reference->ToString(u);
  ASSERT_FALSE(reference_text.empty());

  constexpr size_t kRunsPerThread = 3;
  std::vector<std::string> outputs(kThreads);
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = db->OpenSession();
      for (size_t r = 0; r < kRunsPerThread; ++r) {
        Result<Instance> out = session.Run(*prog);
        if (!out.ok()) {
          errors[t] = out.status().ToString();
          return;
        }
        std::string text = out->ToString(u);
        if (r == 0) {
          outputs[t] = text;
        } else if (text != outputs[t]) {
          errors[t] = "run " + std::to_string(r) + " differed from run 0";
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
    // Byte-identical to the sequential run.
    EXPECT_EQ(outputs[t], reference_text) << "thread " << t;
  }
}

TEST(DatabaseConcurrencyTest, ConcurrentStatsCollectionAndReads) {
  // Threads race stats-collecting runs (each records derived-fact
  // measurements into the Database's accumulator) against Database::Stats()
  // readers (which merge the call_once-cached base measurement with an
  // accumulator snapshot) and stats-driven compiles. Everything must stay
  // data-race free and every run byte-identical.
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 16;
  gw.edges = 32;
  gw.seed = 11;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<Database> db = Database::Open(u, std::move(*in));
  ASSERT_TRUE(db.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  Result<Instance> reference = db->OpenSession().Run(*prog);
  ASSERT_TRUE(reference.ok());
  std::string reference_text = reference->ToString(u);

  constexpr size_t kRunsPerThread = 3;
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session = db->OpenSession();
      RunOptions opts;
      opts.collect_derived_stats = true;
      for (size_t r = 0; r < kRunsPerThread; ++r) {
        // Interleave accumulator writes (the run), snapshot reads, and a
        // stats-driven compile + run.
        EvalStats stats;
        Result<Instance> out = session.Run(*prog, opts, &stats);
        if (!out.ok()) {
          errors[t] = out.status().ToString();
          return;
        }
        if (out->ToString(u) != reference_text) {
          errors[t] = "stats-collecting run differed";
          return;
        }
        StoreStats snapshot = db->Stats();
        if (snapshot.NumRelations() == 0) {
          errors[t] = "Stats() saw no relations";
          return;
        }
        Result<PreparedProgram> planned = db->Compile(q->program);
        if (!planned.ok()) {
          errors[t] = planned.status().ToString();
          return;
        }
        Result<Instance> planned_out = session.Run(*planned);
        if (!planned_out.ok()) {
          errors[t] = planned_out.status().ToString();
          return;
        }
        if (planned_out->ToString(u) != reference_text) {
          errors[t] = "selectivity-planned run differed";
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
  // After the joins, the accumulator holds every collecting run's derived
  // relation (reach_ab's IDB), merged into the base EDB measurements.
  StoreStats final_stats = db->Stats();
  EXPECT_GT(final_stats.NumRelations(), db->base().Stats().NumRelations());
}

TEST(DatabaseConcurrencyTest, ColdDatabaseRacesIndexBuild) {
  // No sequential warm-up run: all threads hit the lazy call_once index
  // build simultaneously.
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 16;
  gw.edges = 32;
  gw.seed = 3;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  Instance edb_copy = *in;
  Result<Database> db = Database::Open(u, std::move(*in));
  ASSERT_TRUE(db.ok());

  std::vector<std::string> outputs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<Instance> out = db->OpenSession().Run(*prog);
      outputs[t] = out.ok() ? out->ToString(u) : out.status().ToString();
    });
  }
  for (std::thread& th : threads) th.join();

  // Reference computed afterwards through the legacy path (derived facts =
  // full result minus the EDB).
  Result<Instance> full = prog->Run(edb_copy);
  ASSERT_TRUE(full.ok());
  std::set<RelId> idb = IdbRels(prog->program());
  std::string reference =
      full->Project({idb.begin(), idb.end()}).ToString(u);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(outputs[t], reference) << "thread " << t;
  }
}

TEST(DatabaseConcurrencyTest, DistinctProgramsShareOneDatabase) {
  Universe u;
  Result<Program> reach = ParseProgram(
      u,
      "Reach($x, $y) <- R($x ++ $y).\n"
      "Reach($x, $z) <- Reach($x, $y), R($y ++ $z).");
  ASSERT_TRUE(reach.ok());
  Result<Program> loops = ParseProgram(u, "Loop($x) <- R($x ++ $x).");
  ASSERT_TRUE(loops.ok());
  Result<Instance> in = ParseInstance(
      u, "R(a ++ b). R(b ++ c). R(c ++ a). R(d ++ d).");
  ASSERT_TRUE(in.ok());
  Result<Database> db = Database::Open(u, std::move(*in));
  ASSERT_TRUE(db.ok());
  Result<PreparedProgram> p1 = Engine::Compile(u, std::move(*reach));
  Result<PreparedProgram> p2 = Engine::Compile(u, std::move(*loops));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());

  std::string ref1 = db->OpenSession().Run(*p1)->ToString(u);
  std::string ref2 = db->OpenSession().Run(*p2)->ToString(u);
  ASSERT_FALSE(ref1.empty());
  ASSERT_FALSE(ref2.empty());

  std::vector<std::string> outputs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const PreparedProgram& prog = (t % 2 == 0) ? *p1 : *p2;
      Result<Instance> out = db->OpenSession().Run(prog);
      outputs[t] = out.ok() ? out->ToString(u) : out.status().ToString();
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(outputs[t], t % 2 == 0 ? ref1 : ref2) << "thread " << t;
  }
}

TEST(DatabaseConcurrencyTest, SessionRejectsForeignUniverse) {
  Universe u1, u2;
  Result<Instance> in = ParseInstance(u1, "R(a).");
  ASSERT_TRUE(in.ok());
  Result<Database> db = Database::Open(u1, std::move(*in));
  ASSERT_TRUE(db.ok());
  Result<Program> p = ParseProgram(u2, "S($x) <- R($x).");
  ASSERT_TRUE(p.ok());
  Result<PreparedProgram> prog = Engine::Compile(u2, std::move(*p));
  ASSERT_TRUE(prog.ok());
  Result<Instance> out = db->OpenSession().Run(*prog);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// --- Epochs: ingest vs snapshots ---------------------------------------------

// A snapshot pinned at epoch k returns byte-identical results before,
// during, and after later Append/Commit/Compact — and matches a fresh
// Database::Open on exactly epoch k's facts.
TEST(EpochConcurrencyTest, SnapshotsPinTheirEpochAcrossAppendAndCompact) {
  Universe u;
  Result<Program> p = ParseProgram(
      u,
      "Reach($x, $y) <- R($x ++ $y).\n"
      "Reach($x, $z) <- Reach($x, $y), R($y ++ $z).");
  ASSERT_TRUE(p.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(*p));
  ASSERT_TRUE(prog.ok());
  Result<Instance> first = ParseInstance(u, "R(a ++ b). R(b ++ c).");
  Result<Instance> second = ParseInstance(u, "R(c ++ d).");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  Result<Database> db = Database::Open(u, *first);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->epoch(), 0u);
  Session at0 = db->Snapshot();
  Result<Instance> before = at0.Run(*prog);
  ASSERT_TRUE(before.ok());
  std::string at0_text = before->ToString(u);

  // Cold-open references for both epochs.
  Result<Database> cold0 = Database::Open(u, *first);
  ASSERT_TRUE(cold0.ok());
  EXPECT_EQ(cold0->Snapshot().Run(*prog)->ToString(u), at0_text);
  Instance merged = *first;
  merged.UnionWith(*second);
  Result<Database> cold1 = Database::Open(u, merged);
  ASSERT_TRUE(cold1.ok());
  std::string at1_text = cold1->Snapshot().Run(*prog)->ToString(u);
  ASSERT_NE(at0_text, at1_text);

  // Append publishes epoch 1; the pinned snapshot still reads epoch 0.
  Result<uint64_t> epoch = db->Append(*second);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(db->NumSegments(), 2u);
  EXPECT_EQ(at0.epoch(), 0u);
  EXPECT_EQ(at0.Run(*prog)->ToString(u), at0_text);
  Session at1 = db->Snapshot();
  EXPECT_EQ(at1.epoch(), 1u);
  EXPECT_EQ(at1.Run(*prog)->ToString(u), at1_text);

  // Compaction folds the stack without moving the epoch; both pinned
  // snapshots are unaffected, and new snapshots see the merged store.
  EXPECT_TRUE(*db->Compact());
  EXPECT_EQ(db->NumSegments(), 1u);
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(at0.NumSegments(), 1u);
  EXPECT_EQ(at1.NumSegments(), 2u);  // the pre-compaction stack, pinned
  EXPECT_EQ(at0.Run(*prog)->ToString(u), at0_text);
  EXPECT_EQ(at1.Run(*prog)->ToString(u), at1_text);
  EXPECT_EQ(db->Snapshot().Run(*prog)->ToString(u), at1_text);
  // Nothing left to fold.
  EXPECT_FALSE(*db->Compact());
}

// One writer thread commits batches while reader threads open snapshots
// and run; every reader must see some prefix epoch's exact results. The
// per-epoch references are computed from cold opens after the fact.
TEST(EpochConcurrencyTest, WriterRacesSnapshotReaders) {
  Universe u;
  Result<Program> p = ParseProgram(
      u,
      "Reach($x, $y) <- R($x ++ $y).\n"
      "Reach($x, $z) <- Reach($x, $y), R($y ++ $z).");
  ASSERT_TRUE(p.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(*p));
  ASSERT_TRUE(prog.ok());

  // A chain a0 -> a1 -> ... appended one edge per commit: every epoch has
  // a distinct Reach closure.
  constexpr size_t kCommits = 12;
  std::vector<Instance> batches;
  RelId r = *u.InternRel("R", 1);
  for (size_t i = 0; i <= kCommits; ++i) {
    Value from = Value::Atom(u.InternAtom("n" + std::to_string(i)));
    Value to = Value::Atom(u.InternAtom("n" + std::to_string(i + 1)));
    std::vector<Value> edge = {from, to};
    Instance batch;
    batch.Add(r, {u.InternPath(edge)});
    batches.push_back(std::move(batch));
  }

  Result<Database> db = Database::Open(u, batches[0]);
  ASSERT_TRUE(db.ok());

  struct Observation {
    uint64_t epoch;
    std::string text;
  };
  std::vector<std::vector<Observation>> seen(kThreads - 1);
  std::vector<std::string> errors(kThreads - 1);

  std::vector<std::thread> threads;
  // Writer: commit the remaining batches through a batching Writer,
  // compacting halfway to race segment retirement against the readers.
  threads.emplace_back([&] {
    Writer w = db->MakeWriter();
    for (size_t i = 1; i < batches.size(); ++i) {
      w.Stage(batches[i]);
      if (!w.Commit().ok()) return;
      if (i == batches.size() / 2) db->Compact();
    }
  });
  // Readers: snapshot, run twice, record (epoch, bytes). Assertions
  // happen on the main thread after joining.
  for (size_t t = 0; t + 1 < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 6; ++i) {
        Session snap = db->Snapshot();
        Result<Instance> out1 = snap.Run(*prog);
        Result<Instance> out2 = snap.Run(*prog);
        if (!out1.ok() || !out2.ok()) {
          errors[t] = (out1.ok() ? out2 : out1).status().ToString();
          return;
        }
        std::string text = out1->ToString(u);
        if (text != out2->ToString(u)) {
          errors[t] = "re-run of one snapshot differed";
          return;
        }
        seen[t].push_back({snap.epoch(), std::move(text)});
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Cold-open reference per epoch.
  std::vector<std::string> reference;
  Instance accumulated;
  for (size_t i = 0; i < batches.size(); ++i) {
    accumulated.UnionWith(batches[i]);
    Result<Database> cold = Database::Open(u, accumulated);
    ASSERT_TRUE(cold.ok());
    Result<Instance> out = cold->Snapshot().Run(*prog);
    ASSERT_TRUE(out.ok());
    reference.push_back(out->ToString(u));
  }

  for (size_t t = 0; t + 1 < kThreads; ++t) {
    ASSERT_TRUE(errors[t].empty()) << "reader " << t << ": " << errors[t];
    for (const Observation& o : seen[t]) {
      ASSERT_LT(o.epoch, reference.size()) << "reader " << t;
      EXPECT_EQ(o.text, reference[o.epoch])
          << "reader " << t << " at epoch " << o.epoch;
    }
  }
  EXPECT_EQ(db->epoch(), kCommits);
}

// Concurrent stats reads and stats-driven compiles stay safe while the
// epoch moves underneath them.
TEST(EpochConcurrencyTest, StatsAndCompileRaceIngest) {
  Universe u;
  Result<Program> p = ParseProgram(u, "Loop($x) <- R($x ++ $x).");
  ASSERT_TRUE(p.ok());
  Program program = *p;
  Result<Instance> in = ParseInstance(u, "R(a ++ a). R(a ++ b).");
  ASSERT_TRUE(in.ok());
  Result<Database> db = Database::Open(u, std::move(*in));
  ASSERT_TRUE(db.ok());

  RelId r = *u.FindRel("R");
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (size_t i = 0; i < 16; ++i) {
      Value x = Value::Atom(u.InternAtom("x" + std::to_string(i)));
      std::vector<Value> loop = {x, x};
      Instance batch;
      batch.Add(r, {u.InternPath(loop)});
      if (!db->Append(std::move(batch)).ok()) return;
      if (i % 5 == 4) db->Compact();
    }
  });
  for (size_t t = 1; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 8; ++i) {
        StoreStats stats = db->Stats();
        if (stats.NumRelations() == 0) {
          errors[t] = "Stats() saw no relations";
          return;
        }
        Result<PreparedProgram> planned = db->Compile(program);
        if (!planned.ok()) {
          errors[t] = planned.status().ToString();
          return;
        }
        Session snap = db->Snapshot();
        RunOptions opts;
        opts.collect_derived_stats = true;
        Result<Instance> out = snap.Run(*planned, opts);
        if (!out.ok()) {
          errors[t] = out.status().ToString();
          return;
        }
        // Within one snapshot, loops == facts whose path is x·x; the
        // count must match the pinned EDB regardless of racing appends.
        // (edb() materializes a copy: keep it alive past the loop.)
        Instance edb = snap.edb();
        size_t loops = 0;
        for (const Tuple& tup : edb.Tuples(r)) {
          std::span<const Value> path = u.GetPath(tup[0]);
          if (path.size() == 2 && path[0] == path[1]) ++loops;
        }
        if (out->NumFacts() != loops) {
          errors[t] = "derived loop count diverged from pinned EDB";
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
}

// The legacy entry point is thread-safe too now: each Run builds its own
// throwaway base, and the shared Universe interns with synchronization.
TEST(DatabaseConcurrencyTest, LegacyPreparedRunsAreThreadSafe) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 12;
  gw.edges = 24;
  gw.seed = 11;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  Result<Instance> reference = prog->Run(*in);
  ASSERT_TRUE(reference.ok());
  std::string reference_text = reference->ToString(u);

  std::vector<std::string> outputs(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<Instance> out = prog->Run(*in);
      outputs[t] = out.ok() ? out->ToString(u) : out.status().ToString();
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(outputs[t], reference_text) << "thread " << t;
  }
}

}  // namespace
}  // namespace seqdl
