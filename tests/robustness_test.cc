// Robustness sweeps: malformed inputs must produce clean Status errors
// (never crashes), transformation preconditions must be enforced, and the
// engine must behave sanely on degenerate instances.
#include <gtest/gtest.h>

#include "src/algebra/from_datalog.h"
#include "src/analysis/safety.h"
#include "src/analysis/stratify.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/fold_intermediates.h"
#include "src/transform/normal_form.h"
#include "src/transform/packing_elim.h"
#include "src/unify/unify.h"

namespace seqdl {
namespace {

// --- Parser rejects malformed programs with InvalidArgument ------------------

class BadProgramTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BadProgramTest, RejectedCleanly) {
  Universe u;
  Result<Program> p = ParseProgram(u, GetParam());
  ASSERT_FALSE(p.ok()) << GetParam();
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadProgramTest,
    ::testing::Values(
        "S($x",                        // unclosed predicate
        "S($x) <- R($x)",              // missing period
        "S($x) <- R($x),.",            // dangling comma
        "S($x) <- R($x), .",           // dangling comma with space
        "S($x) R($x).",                // missing arrow
        "S($x) <- R($x), $x.",         // bare expression literal
        "S($x) <- R($x), = $x.",       // equation without lhs
        "S($x) <- R($x), $x = .",      // equation without rhs
        "S(<$x) <- R($x).",            // unclosed pack
        "S($x>) <- R($x).",            // stray close angle
        "S($) <- R($x).",              // variable without name
        "S(@) <- R(@x).",              // atomic variable without name
        "S($x) <- R($x), !$x != a.",   // double-negated nonequality
        "S($x) :- R($x); T($x).",      // wrong separator
        "R(a). R(a, b).",              // arity conflict
        "S($x) <- R($x) R($x).",       // missing comma
        "\"unterminated",              // unterminated string
        "S($x) <- R($x), + $x = a.",   // lone plus
        "- S($x) <- R($x)."            // stray dash
        ));

// --- Validation failures ------------------------------------------------------

class UnsafeRuleTest : public ::testing::TestWithParam<const char*> {};

TEST_P(UnsafeRuleTest, Rejected) {
  Universe u;
  Result<Program> p = ParseProgram(u, GetParam());
  ASSERT_TRUE(p.ok()) << GetParam();
  EXPECT_FALSE(ValidateProgram(u, *p).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, UnsafeRuleTest,
    ::testing::Values(
        "S($y) <- R($x).",                    // head var unbound
        "S($x) <- !R($x).",                   // only negated binding
        "S($x) <- R($y), $x != $y.",          // nonequality doesn't bind
        "S($x) <- R($y), $x ++ a = a ++ $x.", // two-sided variable
        "S(@x) <- R($y), !T(@x ++ $y).",      // negated atom var unbound
        "A <- R($x), !T($z)."                 // negated-only variable
        ));

// --- Transformation preconditions ----------------------------------------------

TEST(PreconditionTest, AllTransformsRejectWhatTheyMust) {
  Universe u;
  Result<Program> recursive =
      ParseProgram(u, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  ASSERT_TRUE(recursive.ok());
  EXPECT_EQ(EliminatePackingNonrecursive(u, *recursive).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ToNormalForm(u, *recursive).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      FoldIntermediates(u, *recursive, *u.FindRel("S")).status().code(),
      StatusCode::kFailedPrecondition);
  EXPECT_EQ(DatalogToAlgebra(u, *recursive, *u.FindRel("S")).status().code(),
            StatusCode::kFailedPrecondition);

  Universe u2;
  Result<Program> wide_edb = ParseProgram(u2, "S($x) <- D($x, $y, $z).");
  ASSERT_TRUE(wide_edb.ok());
  EXPECT_EQ(EliminateArity(u2, *wide_edb).status().code(),
            StatusCode::kFailedPrecondition);

  Universe u3;
  Result<Program> with_neq = ParseProgram(u3, "S($x) <- R($x), $x != a.");
  ASSERT_TRUE(with_neq.ok());
  EXPECT_EQ(EliminatePositiveEquations(u3, *with_neq).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PreconditionTest, FoldRequiresExistingOutput) {
  Universe u;
  Result<Program> p = ParseProgram(u, "T($x) <- R($x).");
  ASSERT_TRUE(p.ok());
  RelId other = u.FreshRel("Other", 1);
  EXPECT_EQ(FoldIntermediates(u, *p, other).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Engine degenerate cases ----------------------------------------------------

TEST(DegenerateTest, EmptyProgramOnEmptyInstance) {
  Universe u;
  Program p;
  p.strata.emplace_back();
  Result<Instance> out = Eval(u, p, Instance{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Empty());
}

TEST(DegenerateTest, ProgramOnEmptyInstance) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  ASSERT_TRUE(p.ok());
  Result<Instance> out = Eval(u, *p, Instance{});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Empty());
}

TEST(DegenerateTest, PreexistingIdbFactsAreKept) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x).");
  ASSERT_TRUE(p.ok());
  Result<Instance> in = ParseInstance(u, "R(a). S(z).");
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, *p, *in);
  ASSERT_TRUE(out.ok());
  RelId s = *u.FindRel("S");
  EXPECT_EQ(out->Tuples(s).size(), 2u);
}

TEST(DegenerateTest, EmptyPathsEverywhere) {
  Universe u;
  Result<Program> p = ParseProgram(
      u, "S($x ++ $y) <- R($x), R($y), $x = $y.");
  ASSERT_TRUE(p.ok());
  Result<Instance> in = ParseInstance(u, "R(eps).");
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, *p, *in);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {kEmptyPath}));
}

TEST(DegenerateTest, ZeroBudgetsFailFast) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x).");
  ASSERT_TRUE(p.ok());
  Result<Instance> in = ParseInstance(u, "R(a).");
  ASSERT_TRUE(in.ok());
  EvalOptions opts;
  opts.max_facts = 0;
  Result<Instance> out = Eval(u, *p, *in, opts);
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

TEST(DegenerateTest, SelfEquationTautology) {
  Universe u;
  Result<Program> p = ParseProgram(u, "S($x) <- R($x), $x = $x.");
  ASSERT_TRUE(p.ok());
  Result<Instance> in = ParseInstance(u, "R(a ++ b).");
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, *p, *in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Tuples(*u.FindRel("S")).size(), 1u);
}

// --- Unifier robustness ----------------------------------------------------------

TEST(UnifierRobustnessTest, DivergentFamiliesAreReported) {
  Universe u;
  // $x·w = w·$x diverges for any nonempty w over a single letter.
  for (const char* w : {"a", "a ++ a", "a ++ b"}) {
    Result<PathExpr> we = ParsePathExpr(u, w);
    ASSERT_TRUE(we.ok());
    PathExpr x = VarExpr(u, u.InternVar(VarKind::kPath, "x"));
    PathExpr lhs = ConcatExpr(x, *we);
    PathExpr rhs = ConcatExpr(*we, x);
    Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
    EXPECT_FALSE(res.ok()) << w;
  }
}

TEST(UnifierRobustnessTest, DeeplyNestedPacksTerminate) {
  Universe u;
  PathExpr lhs = VarExpr(u, u.InternVar(VarKind::kPath, "z"));
  PathExpr rhs = ConstExpr(Value::Atom(u.InternAtom("a")));
  for (int i = 0; i < 12; ++i) {
    lhs = PackExpr(lhs);
    rhs = PackExpr(rhs);
  }
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->solutions.size(), 1u);
}

TEST(UnifierRobustnessTest, ClosureVariableCapIsEnforced) {
  Universe u;
  PathExpr lhs, rhs;
  for (int i = 0; i < 25; ++i) {
    lhs.items.push_back(ExprItem::PathVar(
        u.InternVar(VarKind::kPath, "v" + std::to_string(i))));
  }
  rhs = ConstExpr(Value::Atom(u.InternAtom("a")));
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

// --- Stratifier corner cases -----------------------------------------------------

TEST(StratifierRobustnessTest, AlreadyStratifiedIsStable) {
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "W(@x) <- R(@x), !B(@x).\n"
                                   "---\n"
                                   "S(@x) <- R(@x), !W(@x).\n");
  ASSERT_TRUE(p.ok());
  Result<Program> q = Restratify(*p);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->strata.size(), 2u);
  EXPECT_TRUE(ValidateProgram(u, *q).ok());
}

TEST(StratifierRobustnessTest, DeepNegationChain) {
  Universe u;
  std::string text = "P0($x) <- R($x).\n";
  for (int i = 1; i <= 6; ++i) {
    text += "P" + std::to_string(i) + "($x) <- R($x), !P" +
            std::to_string(i - 1) + "($x).\n";
  }
  Result<Program> flat = ParseProgram(u, text);
  ASSERT_TRUE(flat.ok());
  std::vector<Rule> rules;
  for (const Rule* r : flat->AllRules()) rules.push_back(*r);
  Result<Program> p = AutoStratify(rules);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->strata.size(), 7u);
  EXPECT_TRUE(ValidateProgram(u, *p).ok());
  // Alternating chain: P_i holds R's fact iff i is even.
  Result<Instance> in = ParseInstance(u, "R(a).");
  ASSERT_TRUE(in.ok());
  Result<Instance> out = Eval(u, *p, *in);
  ASSERT_TRUE(out.ok());
  for (int i = 0; i <= 6; ++i) {
    RelId rel = *u.FindRel("P" + std::to_string(i));
    EXPECT_EQ(out->Contains(rel, {u.PathOfChars("a")}), i % 2 == 0) << i;
  }
}

}  // namespace
}  // namespace seqdl
