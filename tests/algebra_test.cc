#include <gtest/gtest.h>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/algebra/to_datalog.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// --- Operator semantics --------------------------------------------------------

TEST(AlgebraOpsTest, RelAndArity) {
  Universe u;
  Instance in = MustInstance(u, "R(a ++ b). R(c).");
  AlgebraPtr e = AlgRel(*u.FindRel("R"));
  Result<EvaluatedRel> out = EvalAlgebra(u, *e, in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arity, 1u);
  EXPECT_EQ(out->tuples.size(), 2u);
}

TEST(AlgebraOpsTest, SelectWithPathExpressions) {
  Universe u;
  Instance in = MustInstance(u, "P(a ++ b, b). P(a ++ b, a ++ b). P(c, c).");
  // σ_{$1 = $2}: tuples whose components are equal.
  AlgebraPtr eq = AlgSelect(AlgRel(*u.FindRel("P")), ColExpr(u, 1),
                            ColExpr(u, 2));
  Result<EvaluatedRel> out = EvalAlgebra(u, *eq, in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuples.size(), 2u);

  // σ_{$1 = a·$2}: first = a concatenated with second.
  AlgebraPtr shifted =
      AlgSelect(AlgRel(*u.FindRel("P")), ColExpr(u, 1),
                ConcatExpr(ConstExpr(Value::Atom(u.InternAtom("a"))),
                           ColExpr(u, 2)));
  Result<EvaluatedRel> out2 = EvalAlgebra(u, *shifted, in);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->tuples.size(), 1u);  // (a·b, b)
}

TEST(AlgebraOpsTest, ProjectBuildsExpressions) {
  Universe u;
  Instance in = MustInstance(u, "R(a, b).");
  // π_{$2·$1, <$1>}.
  AlgebraPtr e = AlgProject(
      AlgRel(*u.FindRel("R")),
      {ConcatExpr(ColExpr(u, 2), ColExpr(u, 1)), PackExpr(ColExpr(u, 1))});
  Result<EvaluatedRel> out = EvalAlgebra(u, *e, in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arity, 2u);
  ASSERT_EQ(out->tuples.size(), 1u);
  const Tuple& t = *out->tuples.begin();
  EXPECT_EQ(u.FormatPath(t[0]), "b·a");
  EXPECT_EQ(u.FormatPath(t[1]), "<a>");
}

TEST(AlgebraOpsTest, UnionDiffProduct) {
  Universe u;
  Instance in = MustInstance(u, "R(a). R(b). S(b). S(c).");
  AlgebraPtr r = AlgRel(*u.FindRel("R"));
  AlgebraPtr s = AlgRel(*u.FindRel("S"));
  Result<EvaluatedRel> uni = EvalAlgebra(u, *AlgUnion(r, s), in);
  Result<EvaluatedRel> diff = EvalAlgebra(u, *AlgDiff(r, s), in);
  Result<EvaluatedRel> prod = EvalAlgebra(u, *AlgProduct(r, s), in);
  ASSERT_TRUE(uni.ok());
  ASSERT_TRUE(diff.ok());
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(uni->tuples.size(), 3u);
  EXPECT_EQ(diff->tuples.size(), 1u);  // {a}
  EXPECT_EQ(prod->tuples.size(), 4u);
  EXPECT_EQ(prod->arity, 2u);
}

TEST(AlgebraOpsTest, ArityMismatchRejected) {
  Universe u;
  Instance in = MustInstance(u, "R(a). P(a, b).");
  AlgebraPtr bad = AlgUnion(AlgRel(*u.FindRel("R")), AlgRel(*u.FindRel("P")));
  EXPECT_FALSE(EvalAlgebra(u, *bad, in).ok());
}

TEST(AlgebraOpsTest, UnpackKeepsOnlyPackedSingletons) {
  Universe u;
  Instance in = MustInstance(u, "R(<a ++ b>). R(a ++ b). R(<a> ++ b). R(<>).");
  AlgebraPtr e = AlgUnpack(AlgRel(*u.FindRel("R")), 1);
  Result<EvaluatedRel> out = EvalAlgebra(u, *e, in);
  ASSERT_TRUE(out.ok());
  // <a·b> -> a·b and <> -> eps qualify; the others do not.
  EXPECT_EQ(out->tuples.size(), 2u);
  EXPECT_TRUE(out->tuples.count({u.PathOfChars("ab")}));
  EXPECT_TRUE(out->tuples.count({kEmptyPath}));
}

TEST(AlgebraOpsTest, SubAppendsAllSubstrings) {
  Universe u;
  Instance in = MustInstance(u, "R(a ++ b).");
  AlgebraPtr e = AlgSub(AlgRel(*u.FindRel("R")), 1);
  Result<EvaluatedRel> out = EvalAlgebra(u, *e, in);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->arity, 2u);
  // Substrings of a·b: eps, a, b, a·b.
  EXPECT_EQ(out->tuples.size(), 4u);
}

TEST(AlgebraOpsTest, ConstRelation) {
  Universe u;
  AlgebraPtr e = AlgConst(1, {{u.PathOfChars("xy")}});
  Result<EvaluatedRel> out = EvalAlgebra(u, *e, Instance{});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuples.size(), 1u);
}

TEST(AlgebraOpsTest, FormatReadable) {
  Universe u;
  RelId r = *u.InternRel("R", 1);
  AlgebraPtr e =
      AlgProject(AlgSelect(AlgProduct(AlgRel(r), AlgRel(r)), ColExpr(u, 1),
                           ColExpr(u, 2)),
                 {ColExpr(u, 1)});
  EXPECT_EQ(FormatAlgebra(u, *e), "π_{$1}(σ_{$1=$2}((R × R)))");
}

// --- Theorem 7.1: Datalog -> algebra -------------------------------------------

// Checks that the algebra translation of (program, target) agrees with the
// engine on the given instances.
void ExpectAgree(const std::string& program_text, const std::string& target,
                 const std::vector<std::string>& instances) {
  Universe u;
  Program p = MustParse(u, program_text);
  RelId out_rel = *u.FindRel(target);
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, p, out_rel);
  ASSERT_TRUE(alg.ok()) << alg.status().ToString();
  for (const std::string& text : instances) {
    Instance in = MustInstance(u, text);
    Result<Instance> engine = EvalQuery(u, p, in, out_rel);
    Result<EvaluatedRel> algebra = EvalAlgebra(u, **alg, in);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(algebra.ok()) << algebra.status().ToString();
    EXPECT_EQ(engine->Tuples(out_rel), algebra->tuples) << text;
  }
}

TEST(FromDatalogTest, CopyRule) {
  ExpectAgree("S($x) <- R($x).", "S", {"R(a ++ b). R(eps).", "R(c)."});
}

TEST(FromDatalogTest, ExtractionWithConcatPattern) {
  ExpectAgree("S($x) <- R($x ++ a).", "S",
              {"R(b ++ a). R(a). R(a ++ b).", "R(eps)."});
}

TEST(FromDatalogTest, ExtractionWithSharedVariable) {
  ExpectAgree("S($x) <- R($x ++ $x).", "S",
              {"R(a ++ b ++ a ++ b). R(a ++ a). R(a ++ b). R(eps)."});
}

TEST(FromDatalogTest, ExtractionWithAtomVariable) {
  ExpectAgree("S(@x) <- R(@x ++ $y ++ @x).", "S",
              {"R(a ++ b ++ a). R(a ++ b ++ c). R(a ++ a).",
               "R(a). R(eps)."});
}

TEST(FromDatalogTest, ExtractionUnderPacking) {
  ExpectAgree("S($x) <- R($u ++ <$x> ++ $v).", "S",
              {"R(a ++ <b ++ c> ++ d). R(<a>). R(a ++ b).",
               "R(<a ++ <b>>)."});
}

TEST(FromDatalogTest, NestedPackingDepthTwo) {
  ExpectAgree("S($x) <- R(<<$x> ++ $y>).", "S",
              {"R(<<a ++ b> ++ c>). R(<a ++ b>). R(a)."});
}

TEST(FromDatalogTest, JoinAndProjection) {
  ExpectAgree("S($x) <- R($x ++ @y), Q(@y).", "S",
              {"R(a ++ b). R(c ++ d). Q(b).",
               "R(a ++ b). Q(b). Q(d)."});
}

TEST(FromDatalogTest, NegationAntijoin) {
  ExpectAgree("T($x) <- R($x ++ a).\n---\nS($x) <- R($x), !T($x).", "S",
              {"R(b ++ a). R(b). R(a).", "R(eps). R(a ++ a)."});
}

TEST(FromDatalogTest, EquationsEliminatedFirst) {
  ExpectAgree("S($x) <- R($x), a ++ $x = $x ++ a.", "S",
              {"R(a ++ a). R(a ++ b). R(eps). R(a)."});
}

TEST(FromDatalogTest, HeadBuildsExpressions) {
  ExpectAgree("S($x ++ $x ++ b) <- R($x).", "S", {"R(a). R(eps)."});
}

TEST(FromDatalogTest, HeadBuildsPacking) {
  ExpectAgree("S(<$x> ++ c) <- R($x).", "S", {"R(a ++ b). R(eps)."});
}

TEST(FromDatalogTest, MultipleRulesUnion) {
  ExpectAgree("S($x) <- R(a ++ $x).\nS($x) <- R(b ++ $x).", "S",
              {"R(a ++ c). R(b ++ d). R(c ++ e)."});
}

TEST(FromDatalogTest, FactsBecomeConstants) {
  ExpectAgree("S(a ++ b).\nS($x) <- R($x).", "S", {"R(c).", ""});
}

TEST(FromDatalogTest, BooleanQuery) {
  ExpectAgree("A <- R($x ++ a ++ $y).", "A",
              {"R(b ++ a ++ c).", "R(b ++ c)."});
}

TEST(FromDatalogTest, RecursionRejected) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x). S(a ++ $x) <- S($x).");
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, p, *u.FindRel("S"));
  ASSERT_FALSE(alg.ok());
  EXPECT_EQ(alg.status().code(), StatusCode::kFailedPrecondition);
}

// --- Converse: algebra -> Datalog ----------------------------------------------

void ExpectAlgebraToDatalogAgree(Universe& u, AlgebraPtr alg,
                                 const std::vector<std::string>& instances) {
  Result<AlgebraToDatalogResult> compiled = AlgebraToDatalog(u, *alg);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (const std::string& text : instances) {
    Instance in = MustInstance(u, text);
    Result<EvaluatedRel> direct = EvalAlgebra(u, *alg, in);
    Result<Instance> datalog =
        EvalQuery(u, compiled->program, in, compiled->output);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE(datalog.ok()) << datalog.status().ToString();
    EXPECT_EQ(direct->tuples, datalog->Tuples(compiled->output)) << text;
  }
}

TEST(ToDatalogTest, SelectProject) {
  Universe u;
  RelId r = *u.InternRel("P", 2);
  (void)r;
  AlgebraPtr alg = AlgProject(
      AlgSelect(AlgRel(*u.FindRel("P")), ColExpr(u, 1),
                ConcatExpr(ColExpr(u, 2), ColExpr(u, 2))),
      {ColExpr(u, 2)});
  ExpectAlgebraToDatalogAgree(u, alg,
                              {"P(a ++ a, a). P(a ++ b, b). P(b ++ b, b)."});
}

TEST(ToDatalogTest, DiffNeedsStratification) {
  Universe u;
  ASSERT_TRUE(u.InternRel("R", 1).ok());
  ASSERT_TRUE(u.InternRel("S", 1).ok());
  AlgebraPtr alg = AlgDiff(AlgRel(*u.FindRel("R")), AlgRel(*u.FindRel("S")));
  ExpectAlgebraToDatalogAgree(u, alg, {"R(a). R(b). S(b)."});
}

TEST(ToDatalogTest, UnionProductChain) {
  Universe u;
  ASSERT_TRUE(u.InternRel("R", 1).ok());
  ASSERT_TRUE(u.InternRel("S", 1).ok());
  AlgebraPtr alg = AlgProduct(
      AlgUnion(AlgRel(*u.FindRel("R")), AlgRel(*u.FindRel("S"))),
      AlgRel(*u.FindRel("R")));
  ExpectAlgebraToDatalogAgree(u, alg, {"R(a). S(b).", "R(a). R(b). S(c)."});
}

TEST(ToDatalogTest, UnpackAndSub) {
  Universe u;
  ASSERT_TRUE(u.InternRel("R", 1).ok());
  AlgebraPtr alg = AlgSub(AlgUnpack(AlgRel(*u.FindRel("R")), 1), 1);
  ExpectAlgebraToDatalogAgree(
      u, alg, {"R(<a ++ b>). R(a).", "R(<>). R(<a ++ b ++ c>)."});
}

TEST(ToDatalogTest, ConstRelation) {
  Universe u;
  AlgebraPtr alg = AlgConst(1, {{u.PathOfChars("ab")}});
  ExpectAlgebraToDatalogAgree(u, alg, {""});
}

// --- Round trip: Datalog -> algebra -> Datalog ----------------------------------

TEST(RoundTripTest, DatalogAlgebraDatalog) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x ++ a), Q($x).");
  RelId s = *u.FindRel("S");
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, p, s);
  ASSERT_TRUE(alg.ok());
  Result<AlgebraToDatalogResult> back = AlgebraToDatalog(u, **alg);
  ASSERT_TRUE(back.ok());
  for (const char* text :
       {"R(b ++ a). Q(b).", "R(b ++ a). R(c ++ a). Q(c). Q(d)."}) {
    Instance in = MustInstance(u, text);
    Result<Instance> o1 = EvalQuery(u, p, in, s);
    Result<Instance> o2 = EvalQuery(u, back->program, in, back->output);
    ASSERT_TRUE(o1.ok());
    ASSERT_TRUE(o2.ok());
    EXPECT_EQ(o1->Tuples(s), o2->Tuples(back->output)) << text;
  }
}

}  // namespace
}  // namespace seqdl
