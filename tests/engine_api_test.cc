// Tests for the compile-once/run-many engine API (engine.h): equivalence
// with the legacy one-shot Eval across the workload generators, index
// ablations, stats reporting, cancellation, and the indexed instance
// store itself.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// --- Compile-once/run-many ----------------------------------------------------

TEST(EngineTest, CompileOnceRunMany) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  RelId s = *u.FindRel("S");

  Instance in1 = MustInstance(u, "R(a ++ a). R(a ++ b).");
  Result<Instance> out1 = prog->Run(in1);
  ASSERT_TRUE(out1.ok());
  EXPECT_EQ(out1->Tuples(s).size(), 1u);
  EXPECT_TRUE(out1->Contains(s, {u.PathOfChars("aa")}));

  Instance in2 = MustInstance(u, "R(eps). R(b).");
  Result<Instance> out2 = prog->Run(in2);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->Tuples(s).size(), 1u);
  EXPECT_TRUE(out2->Contains(s, {kEmptyPath}));

  // Runs are independent: the second run saw nothing of the first.
  EXPECT_FALSE(out2->Contains(s, {u.PathOfChars("aa")}));

  // And re-running the first input reproduces the first output.
  Result<Instance> out3 = prog->Run(in1);
  ASSERT_TRUE(out3.ok());
  EXPECT_EQ(*out1, *out3);
}

TEST(EngineTest, RunQueryProjects) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x). S($x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a).");
  RelId s = *u.FindRel("S");
  Result<Instance> out = prog->RunQuery(in, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFacts(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("a")}));
}

TEST(EngineTest, CompileRejectsUnsafeRule) {
  Universe u;
  Program p = MustParse(u, "S($x, $y) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, CompileRejectsUnstratifiedNegation) {
  Universe u;
  Program p = MustParse(u, "P0($x) <- R($x), !Q0($x). Q0($x) <- P0($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

// --- Property: PreparedProgram::Run == legacy Eval on generator workloads -----

struct WorkloadCase {
  std::string name;
  std::string query_id;  // paper corpus id
  // Builds the input instance into `u`.
  std::function<Result<Instance>(Universe& u, uint64_t seed)> make_input;
};

std::vector<WorkloadCase> GeneratorWorkloads() {
  std::vector<WorkloadCase> cases;
  cases.push_back(
      {"reachability/graphs", "reach_ab",
       [](Universe& u, uint64_t seed) {
         GraphWorkload gw;
         gw.nodes = 9;
         gw.edges = 16;
         gw.seed = seed;
         return GraphToInstance(u, RandomGraph(gw), "R");
       }});
  cases.push_back(
      {"process-mining/event-logs", "process_mining",
       [](Universe& u, uint64_t seed) {
         EventLogWorkload ew;
         ew.count = 12;
         ew.len = 8;
         ew.seed = seed;
         return RandomEventLogs(u, ew);
       }});
  cases.push_back(
      {"nfa-acceptance/strings", "ex21_nfa",
       [](Universe& u, uint64_t seed) {
         NfaWorkload nw;
         nw.num_states = 4;
         nw.alphabet = 2;
         nw.seed = seed;
         Result<Instance> in = NfaToInstance(u, RandomNfa(nw));
         if (!in.ok()) return in;
         StringWorkload sw;
         sw.count = 8;
         sw.max_len = 5;
         sw.seed = seed + 100;
         Result<Instance> strings = RandomStrings(u, sw);
         if (!strings.ok()) return strings;
         in->UnionWith(std::move(*strings));
         return in;
       }});
  return cases;
}

TEST(EnginePropertyTest, PreparedRunMatchesLegacyEvalOnWorkloads) {
  for (const WorkloadCase& wc : GeneratorWorkloads()) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      for (bool seminaive : {true, false}) {
        Universe u;
        Result<ParsedQuery> q = ParsePaperQuery(u, wc.query_id);
        ASSERT_TRUE(q.ok()) << wc.name;
        Result<Instance> in = wc.make_input(u, seed);
        ASSERT_TRUE(in.ok()) << wc.name << " seed " << seed;

        EvalOptions legacy_opts;
        legacy_opts.seminaive = seminaive;
        legacy_opts.use_index = false;  // the seed engine's scan path
        Result<Instance> legacy = Eval(u, q->program, *in, legacy_opts);
        ASSERT_TRUE(legacy.ok())
            << wc.name << ": " << legacy.status().ToString();

        Result<PreparedProgram> prog = Engine::Compile(u, q->program);
        ASSERT_TRUE(prog.ok()) << wc.name;
        RunOptions run_opts;
        run_opts.seminaive = seminaive;
        Result<Instance> prepared = prog->Run(*in, run_opts);
        ASSERT_TRUE(prepared.ok())
            << wc.name << ": " << prepared.status().ToString();

        EXPECT_EQ(*legacy, *prepared)
            << wc.name << " seed " << seed << " seminaive " << seminaive;
      }
    }
  }
}

TEST(EnginePropertyTest, IndexOnAndOffAgree) {
  for (const WorkloadCase& wc : GeneratorWorkloads()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, wc.query_id);
      ASSERT_TRUE(q.ok()) << wc.name;
      Result<Instance> in = wc.make_input(u, seed);
      ASSERT_TRUE(in.ok());
      Result<PreparedProgram> prog = Engine::Compile(u, q->program);
      ASSERT_TRUE(prog.ok());
      RunOptions with, without;
      without.use_index = false;
      Result<Instance> o1 = prog->Run(*in, with);
      Result<Instance> o2 = prog->Run(*in, without);
      ASSERT_TRUE(o1.ok()) << wc.name;
      ASSERT_TRUE(o2.ok()) << wc.name;
      EXPECT_EQ(*o1, *o2) << wc.name << " seed " << seed;
    }
  }
}

// --- Stats --------------------------------------------------------------------

TEST(EngineTest, StatsReportPerStratumAndScanCounters) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  ASSERT_TRUE(q.ok());
  EventLogWorkload ew;
  ew.count = 10;
  ew.len = 8;
  ew.seed = 2;
  Result<Instance> in = RandomEventLogs(u, ew);
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  EvalStats stats;
  Result<Instance> out = prog->Run(*in, {}, &stats);
  ASSERT_TRUE(out.ok());

  EXPECT_EQ(stats.per_stratum.size(), prog->program().strata.size());
  size_t stratum_firings = 0, stratum_facts = 0;
  for (const StratumStats& s : stats.per_stratum) {
    stratum_firings += s.rule_firings;
    stratum_facts += s.derived_facts;
  }
  EXPECT_EQ(stratum_firings, stats.rule_firings);
  EXPECT_EQ(stratum_facts, stats.derived_facts);
  EXPECT_GT(stats.rule_firings, 0u);
  EXPECT_GT(stats.index_probes + stats.prefix_probes + stats.full_scans, 0u);
  EXPECT_GE(stats.compile_seconds, 0.0);
  EXPECT_GE(stats.run_seconds, 0.0);
  EXPECT_EQ(stats.compile_seconds, prog->compile_seconds());

  // With indexes disabled no probes are counted.
  EvalStats noidx;
  RunOptions without;
  without.use_index = false;
  ASSERT_TRUE(prog->Run(*in, without, &noidx).ok());
  EXPECT_EQ(noidx.index_probes, 0u);
  EXPECT_EQ(noidx.prefix_probes, 0u);
  EXPECT_GT(noidx.full_scans, 0u);
}

TEST(EngineTest, IndexProbesFireOnJoinWorkload) {
  // Reachability joins R on a bound first atom: the prefix index must
  // answer those scans.
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 16;
  gw.edges = 32;
  gw.seed = 5;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());
  EvalStats stats;
  ASSERT_TRUE(prog->Run(*in, {}, &stats).ok());
  EXPECT_GT(stats.prefix_probes, 0u);
}

TEST(EngineTest, StatsResetBetweenRuns) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a). R(b).");
  EvalStats stats;
  ASSERT_TRUE(prog->Run(in, {}, &stats).ok());
  size_t first = stats.derived_facts;
  ASSERT_TRUE(prog->Run(in, {}, &stats).ok());
  EXPECT_EQ(stats.derived_facts, first);  // reset, not accumulated
}

// --- Cancellation -------------------------------------------------------------

TEST(EngineTest, CancellationStopsRun) {
  Universe u;
  // Example 2.3: deliberately nonterminating.
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions opts;
  size_t polls = 0;
  opts.cancel = [&polls]() { return ++polls > 3; };
  Result<Instance> out = prog->Run(Instance{}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_GT(polls, 3u);
}

TEST(EngineTest, CancelNeverFiringLeavesRunUntouched) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions opts;
  opts.cancel = []() { return false; };
  Instance in = MustInstance(u, "R(a).");
  Result<Instance> out = prog->Run(in, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {u.PathOfChars("a")}));
}

// --- Budgets through the new API ----------------------------------------------

TEST(EngineTest, BudgetsEnforcedPerRun) {
  Universe u;
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions tight;
  tight.max_facts = 100;
  Result<Instance> out = prog->Run(Instance{}, tight);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);

  RunOptions tight_rounds;
  tight_rounds.max_iterations = 10;
  out = prog->Run(Instance{}, tight_rounds);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// --- IndexedInstance ----------------------------------------------------------

TEST(IndexedInstanceTest, ProbeAgreesWithScan) {
  Universe u;
  RelId r = *u.InternRel("R", 2);
  Instance base;
  base.Add(r, {u.PathOfChars("a"), u.PathOfChars("x")});
  base.Add(r, {u.PathOfChars("a"), u.PathOfChars("y")});
  base.Add(r, {u.PathOfChars("b"), u.PathOfChars("z")});
  IndexedInstance store(u, base);

  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 2u);
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("b")).size(), 1u);
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("c")).size(), 0u);
  EXPECT_EQ(store.Probe(r, 1, u.PathOfChars("z")).size(), 1u);

  // Incremental maintenance: new facts land in already-built indexes.
  EXPECT_TRUE(store.Add(r, {u.PathOfChars("a"), u.PathOfChars("w")}));
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 3u);
  // Duplicates are ignored.
  EXPECT_FALSE(store.Add(r, {u.PathOfChars("a"), u.PathOfChars("w")}));
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 3u);
}

TEST(IndexedInstanceTest, ProbeFirstBucketsByLeadingValue) {
  Universe u;
  RelId r = *u.InternRel("R", 1);
  Instance base;
  base.Add(r, {u.PathOfChars("ab")});
  base.Add(r, {u.PathOfChars("ac")});
  base.Add(r, {u.PathOfChars("ba")});
  base.Add(r, {kEmptyPath});  // empty path: in no first-value bucket
  IndexedInstance store(u, base);

  Value a = Value::Atom(u.InternAtom("a"));
  Value b = Value::Atom(u.InternAtom("b"));
  Value c = Value::Atom(u.InternAtom("c"));
  EXPECT_EQ(store.ProbeFirst(r, 0, a).size(), 2u);
  EXPECT_EQ(store.ProbeFirst(r, 0, b).size(), 1u);
  EXPECT_EQ(store.ProbeFirst(r, 0, c).size(), 0u);

  EXPECT_TRUE(store.Add(r, {u.PathOfChars("ad")}));
  EXPECT_EQ(store.ProbeFirst(r, 0, a).size(), 3u);
}

// --- Instance satellite: move union + shared empty set --------------------------

TEST(InstanceTest, MoveUnionSplicesTuples) {
  Universe u;
  Instance a = MustInstance(u, "R(a). R(b).");
  Instance b = MustInstance(u, "R(b). R(c). S(d).");
  EXPECT_EQ(a.UnionWith(std::move(b)), 2u);  // R(c) and S(d) are new
  EXPECT_EQ(a.NumFacts(), 4u);
  EXPECT_TRUE(a.Contains(*u.FindRel("S"), {u.PathOfChars("d")}));
  EXPECT_TRUE(b.Empty());  // NOLINT(bugprone-use-after-move): documented
}

TEST(InstanceTest, AbsentRelationsShareTheEmptySet) {
  Universe u;
  Instance i;
  RelId r = *u.InternRel("R", 1);
  RelId s = *u.InternRel("S", 1);
  EXPECT_EQ(&i.Tuples(r), &EmptyTupleSet());
  EXPECT_EQ(&i.Tuples(r), &i.Tuples(s));
}

}  // namespace
}  // namespace seqdl
