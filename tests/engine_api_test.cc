// Tests for the compile-once/run-many engine API (engine.h): equivalence
// with the legacy one-shot Eval across the workload generators, index
// ablations, stats reporting, cancellation, and the indexed instance
// store itself.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Program MustParse(Universe& u, const std::string& text) {
  Result<Program> p = ParseProgram(u, text);
  EXPECT_TRUE(p.ok()) << p.status().ToString() << "\n" << text;
  return std::move(p).value();
}

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> i = ParseInstance(u, text);
  EXPECT_TRUE(i.ok()) << i.status().ToString();
  return std::move(i).value();
}

// --- Compile-once/run-many ----------------------------------------------------

TEST(EngineTest, CompileOnceRunMany) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x), a ++ $x = $x ++ a.");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  RelId s = *u.FindRel("S");

  Instance in1 = MustInstance(u, "R(a ++ a). R(a ++ b).");
  Result<Instance> out1 = prog->Run(in1);
  ASSERT_TRUE(out1.ok());
  EXPECT_EQ(out1->Tuples(s).size(), 1u);
  EXPECT_TRUE(out1->Contains(s, {u.PathOfChars("aa")}));

  Instance in2 = MustInstance(u, "R(eps). R(b).");
  Result<Instance> out2 = prog->Run(in2);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->Tuples(s).size(), 1u);
  EXPECT_TRUE(out2->Contains(s, {kEmptyPath}));

  // Runs are independent: the second run saw nothing of the first.
  EXPECT_FALSE(out2->Contains(s, {u.PathOfChars("aa")}));

  // And re-running the first input reproduces the first output.
  Result<Instance> out3 = prog->Run(in1);
  ASSERT_TRUE(out3.ok());
  EXPECT_EQ(*out1, *out3);
}

TEST(EngineTest, RunQueryProjects) {
  Universe u;
  Program p = MustParse(u, "T($x) <- R($x). S($x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a).");
  RelId s = *u.FindRel("S");
  Result<Instance> out = prog->RunQuery(in, s);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumFacts(), 1u);
  EXPECT_TRUE(out->Contains(s, {u.PathOfChars("a")}));
}

TEST(EngineTest, CompileRejectsUnsafeRule) {
  Universe u;
  Program p = MustParse(u, "S($x, $y) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, CompileRejectsUnstratifiedNegation) {
  Universe u;
  Program p = MustParse(u, "P0($x) <- R($x), !Q0($x). Q0($x) <- P0($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kInvalidArgument);
}

// --- Property: PreparedProgram::Run == legacy Eval on generator workloads -----

struct WorkloadCase {
  std::string name;
  std::string query_id;  // paper corpus id
  // Builds the input instance into `u`.
  std::function<Result<Instance>(Universe& u, uint64_t seed)> make_input;
};

std::vector<WorkloadCase> GeneratorWorkloads() {
  std::vector<WorkloadCase> cases;
  cases.push_back(
      {"reachability/graphs", "reach_ab",
       [](Universe& u, uint64_t seed) {
         GraphWorkload gw;
         gw.nodes = 9;
         gw.edges = 16;
         gw.seed = seed;
         return GraphToInstance(u, RandomGraph(gw), "R");
       }});
  cases.push_back(
      {"process-mining/event-logs", "process_mining",
       [](Universe& u, uint64_t seed) {
         EventLogWorkload ew;
         ew.count = 12;
         ew.len = 8;
         ew.seed = seed;
         return RandomEventLogs(u, ew);
       }});
  cases.push_back(
      {"nfa-acceptance/strings", "ex21_nfa",
       [](Universe& u, uint64_t seed) {
         NfaWorkload nw;
         nw.num_states = 4;
         nw.alphabet = 2;
         nw.seed = seed;
         Result<Instance> in = NfaToInstance(u, RandomNfa(nw));
         if (!in.ok()) return in;
         StringWorkload sw;
         sw.count = 8;
         sw.max_len = 5;
         sw.seed = seed + 100;
         Result<Instance> strings = RandomStrings(u, sw);
         if (!strings.ok()) return strings;
         in->UnionWith(std::move(*strings));
         return in;
       }});
  return cases;
}

TEST(EnginePropertyTest, PreparedRunMatchesLegacyEvalOnWorkloads) {
  for (const WorkloadCase& wc : GeneratorWorkloads()) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      for (bool seminaive : {true, false}) {
        Universe u;
        Result<ParsedQuery> q = ParsePaperQuery(u, wc.query_id);
        ASSERT_TRUE(q.ok()) << wc.name;
        Result<Instance> in = wc.make_input(u, seed);
        ASSERT_TRUE(in.ok()) << wc.name << " seed " << seed;

        EvalOptions legacy_opts;
        legacy_opts.seminaive = seminaive;
        legacy_opts.use_index = false;  // the seed engine's scan path
        Result<Instance> legacy = Eval(u, q->program, *in, legacy_opts);
        ASSERT_TRUE(legacy.ok())
            << wc.name << ": " << legacy.status().ToString();

        Result<PreparedProgram> prog = Engine::Compile(u, q->program);
        ASSERT_TRUE(prog.ok()) << wc.name;
        RunOptions run_opts;
        run_opts.seminaive = seminaive;
        Result<Instance> prepared = prog->Run(*in, run_opts);
        ASSERT_TRUE(prepared.ok())
            << wc.name << ": " << prepared.status().ToString();

        EXPECT_EQ(*legacy, *prepared)
            << wc.name << " seed " << seed << " seminaive " << seminaive;
      }
    }
  }
}

TEST(EnginePropertyTest, IndexOnAndOffAgree) {
  for (const WorkloadCase& wc : GeneratorWorkloads()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, wc.query_id);
      ASSERT_TRUE(q.ok()) << wc.name;
      Result<Instance> in = wc.make_input(u, seed);
      ASSERT_TRUE(in.ok());
      Result<PreparedProgram> prog = Engine::Compile(u, q->program);
      ASSERT_TRUE(prog.ok());
      RunOptions with, without;
      without.use_index = false;
      Result<Instance> o1 = prog->Run(*in, with);
      Result<Instance> o2 = prog->Run(*in, without);
      ASSERT_TRUE(o1.ok()) << wc.name;
      ASSERT_TRUE(o2.ok()) << wc.name;
      EXPECT_EQ(*o1, *o2) << wc.name << " seed " << seed;
    }
  }
}

// --- Stats --------------------------------------------------------------------

TEST(EngineTest, StatsReportPerStratumAndScanCounters) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  ASSERT_TRUE(q.ok());
  EventLogWorkload ew;
  ew.count = 10;
  ew.len = 8;
  ew.seed = 2;
  Result<Instance> in = RandomEventLogs(u, ew);
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  EvalStats stats;
  Result<Instance> out = prog->Run(*in, {}, &stats);
  ASSERT_TRUE(out.ok());

  EXPECT_EQ(stats.per_stratum.size(), prog->program().strata.size());
  size_t stratum_firings = 0, stratum_facts = 0;
  for (const StratumStats& s : stats.per_stratum) {
    stratum_firings += s.rule_firings;
    stratum_facts += s.derived_facts;
  }
  EXPECT_EQ(stratum_firings, stats.rule_firings);
  EXPECT_EQ(stratum_facts, stats.derived_facts);
  EXPECT_GT(stats.rule_firings, 0u);
  EXPECT_GT(stats.index_probes + stats.prefix_probes + stats.full_scans, 0u);
  EXPECT_GE(stats.compile_seconds, 0.0);
  EXPECT_GE(stats.run_seconds, 0.0);
  EXPECT_EQ(stats.compile_seconds, prog->compile_seconds());

  // With indexes disabled no probes are counted.
  EvalStats noidx;
  RunOptions without;
  without.use_index = false;
  ASSERT_TRUE(prog->Run(*in, without, &noidx).ok());
  EXPECT_EQ(noidx.index_probes, 0u);
  EXPECT_EQ(noidx.prefix_probes, 0u);
  EXPECT_GT(noidx.full_scans, 0u);
}

TEST(EngineTest, SuffixProbesFireOnSuffixGroundPattern) {
  // `$x ++ b` has no ground argument and no ground prefix: before the
  // last-value index it was a full scan per probe.
  Universe u;
  Program p = MustParse(u,
                        "EndsB($x) <- S($x ++ b).\n"
                        "Chain($x) <- EndsB($x), S($x ++ b).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  Instance in = MustInstance(u, "S(a ++ b). S(a ++ c). S(b). S(c ++ b).");
  EvalStats stats;
  Result<Instance> out = prog->Run(in, {}, &stats);
  ASSERT_TRUE(out.ok());
  RelId ends = *u.FindRel("EndsB");
  EXPECT_EQ(out->Tuples(ends).size(), 3u);  // ab, b(x=eps), cb
  EXPECT_GT(stats.suffix_probes, 0u);

  // Ablation: suffix-indexed and full-scan runs agree.
  RunOptions no_index;
  no_index.use_index = false;
  EvalStats scan_stats;
  Result<Instance> scanned = prog->Run(in, no_index, &scan_stats);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(*out, *scanned);
  EXPECT_EQ(scan_stats.suffix_probes, 0u);
}

TEST(EngineTest, DeltaIndexProbesFireAboveThreshold) {
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 24;
  gw.edges = 48;
  gw.seed = 9;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());

  RunOptions always;
  always.delta_index_threshold = 0;  // index every delta
  EvalStats always_stats;
  Result<Instance> indexed = prog->Run(*in, always, &always_stats);
  ASSERT_TRUE(indexed.ok());
  EXPECT_GT(always_stats.delta_index_probes, 0u);
  EXPECT_LE(always_stats.delta_index_probes, always_stats.delta_scans);

  RunOptions never;
  never.delta_index_threshold = static_cast<size_t>(-1);
  EvalStats never_stats;
  Result<Instance> linear = prog->Run(*in, never, &never_stats);
  ASSERT_TRUE(linear.ok());
  EXPECT_EQ(never_stats.delta_index_probes, 0u);

  // Indexed and linear delta scans derive the same facts, and the default
  // threshold agrees too.
  EXPECT_EQ(*indexed, *linear);
  Result<Instance> default_run = prog->Run(*in);
  ASSERT_TRUE(default_run.ok());
  EXPECT_EQ(*indexed, *default_run);
}

TEST(EngineTest, DeltaIndexThresholdBoundaries) {
  // A chain a0 -> a1 -> ... -> a8 and backward transitive closure: the
  // recursive T scan runs keyed (first-value on the bound middle node),
  // and the first delta round holds exactly `edges` tuples — so the
  // indexed-or-linear decision at RunOptions::delta_index_threshold is
  // observable precisely at the boundary.
  constexpr size_t kEdges = 8;
  Universe u;
  Program p = MustParse(u,
                        "T(@x ++ @y) <- E(@x ++ @y).\n"
                        "T(@x ++ @z) <- E(@x ++ @y), T(@y ++ @z).\n");
  std::string text;
  for (size_t i = 0; i < kEdges; ++i) {
    text += "E(n" + std::to_string(i) + " ++ n" + std::to_string(i + 1) +
            ").\n";
  }
  Instance in = MustInstance(u, text);
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();

  auto run_with_threshold = [&](size_t threshold, EvalStats* stats) {
    RunOptions opts;
    opts.delta_index_threshold = threshold;
    Result<Instance> out = prog->Run(in, opts, stats);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return std::move(out).value();
  };

  // 0 = every non-empty delta is indexed; every keyed delta scan probes.
  EvalStats zero;
  Instance out_zero = run_with_threshold(0, &zero);
  EXPECT_GT(zero.delta_index_probes, 0u);
  EXPECT_EQ(zero.delta_index_probes, zero.delta_scans);

  // Exactly at the threshold: the first delta round holds kEdges tuples,
  // and a delta of exactly threshold size is indexed (size < threshold is
  // the linear-scan condition). Later rounds shrink below and scan
  // linearly, so exactly that one round probes — once per E tuple.
  EvalStats at;
  Instance out_at = run_with_threshold(kEdges, &at);
  EXPECT_EQ(at.delta_index_probes, kEdges);

  // One above: no delta ever reaches the threshold; all scans linear.
  EvalStats above;
  Instance out_above = run_with_threshold(kEdges + 1, &above);
  EXPECT_EQ(above.delta_index_probes, 0u);
  EXPECT_GT(above.delta_scans, 0u);

  // Huge: never index (the documented SIZE_MAX escape hatch).
  EvalStats huge;
  Instance out_huge = run_with_threshold(static_cast<size_t>(-1), &huge);
  EXPECT_EQ(huge.delta_index_probes, 0u);

  // Results are byte-identical at every boundary, and match the
  // no-index-at-all ablation.
  EXPECT_EQ(out_zero, out_at);
  EXPECT_EQ(out_zero, out_above);
  EXPECT_EQ(out_zero, out_huge);
  RunOptions no_index;
  no_index.use_index = false;
  Result<Instance> scanned = prog->Run(in, no_index);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(out_zero, *scanned);
}

TEST(EngineTest, IndexProbesFireOnJoinWorkload) {
  // Reachability joins R on a bound first atom: the prefix index must
  // answer those scans.
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  ASSERT_TRUE(q.ok());
  GraphWorkload gw;
  gw.nodes = 16;
  gw.edges = 32;
  gw.seed = 5;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  ASSERT_TRUE(in.ok());
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  ASSERT_TRUE(prog.ok());
  EvalStats stats;
  ASSERT_TRUE(prog->Run(*in, {}, &stats).ok());
  EXPECT_GT(stats.prefix_probes, 0u);
}

TEST(EngineTest, StatsResetBetweenRuns) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a). R(b).");
  EvalStats stats;
  ASSERT_TRUE(prog->Run(in, {}, &stats).ok());
  size_t first = stats.derived_facts;
  ASSERT_TRUE(prog->Run(in, {}, &stats).ok());
  EXPECT_EQ(stats.derived_facts, first);  // reset, not accumulated
}

// --- Cancellation -------------------------------------------------------------

TEST(EngineTest, CancellationStopsRun) {
  Universe u;
  // Example 2.3: deliberately nonterminating.
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions opts;
  size_t polls = 0;
  opts.cancel = [&polls]() { return ++polls > 3; };
  Result<Instance> out = prog->Run(Instance{}, opts);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
  EXPECT_GT(polls, 3u);
}

TEST(EngineTest, CancelNeverFiringLeavesRunUntouched) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions opts;
  opts.cancel = []() { return false; };
  Instance in = MustInstance(u, "R(a).");
  Result<Instance> out = prog->Run(in, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Contains(*u.FindRel("S"), {u.PathOfChars("a")}));
}

// --- Budgets through the new API ----------------------------------------------

TEST(EngineTest, BudgetsEnforcedPerRun) {
  Universe u;
  Program p = MustParse(u, "T(a). T(a ++ $x) <- T($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  RunOptions tight;
  tight.max_facts = 100;
  Result<Instance> out = prog->Run(Instance{}, tight);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);

  RunOptions tight_rounds;
  tight_rounds.max_iterations = 10;
  out = prog->Run(Instance{}, tight_rounds);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
}

// --- IndexedInstance ----------------------------------------------------------

TEST(IndexedInstanceTest, ProbeAgreesWithScan) {
  Universe u;
  RelId r = *u.InternRel("R", 2);
  Instance base;
  base.Add(r, {u.PathOfChars("a"), u.PathOfChars("x")});
  base.Add(r, {u.PathOfChars("a"), u.PathOfChars("y")});
  base.Add(r, {u.PathOfChars("b"), u.PathOfChars("z")});
  IndexedInstance store(u, base);

  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 2u);
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("b")).size(), 1u);
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("c")).size(), 0u);
  EXPECT_EQ(store.Probe(r, 1, u.PathOfChars("z")).size(), 1u);

  // Incremental maintenance: new facts land in already-built indexes.
  EXPECT_TRUE(store.Add(r, {u.PathOfChars("a"), u.PathOfChars("w")}));
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 3u);
  // Duplicates are ignored.
  EXPECT_FALSE(store.Add(r, {u.PathOfChars("a"), u.PathOfChars("w")}));
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("a")).size(), 3u);
}

TEST(IndexedInstanceTest, ProbeFirstBucketsByLeadingValue) {
  Universe u;
  RelId r = *u.InternRel("R", 1);
  Instance base;
  base.Add(r, {u.PathOfChars("ab")});
  base.Add(r, {u.PathOfChars("ac")});
  base.Add(r, {u.PathOfChars("ba")});
  base.Add(r, {kEmptyPath});  // empty path: in no first-value bucket
  IndexedInstance store(u, base);

  Value a = Value::Atom(u.InternAtom("a"));
  Value b = Value::Atom(u.InternAtom("b"));
  Value c = Value::Atom(u.InternAtom("c"));
  EXPECT_EQ(store.ProbeFirst(r, 0, a).size(), 2u);
  EXPECT_EQ(store.ProbeFirst(r, 0, b).size(), 1u);
  EXPECT_EQ(store.ProbeFirst(r, 0, c).size(), 0u);

  EXPECT_TRUE(store.Add(r, {u.PathOfChars("ad")}));
  EXPECT_EQ(store.ProbeFirst(r, 0, a).size(), 3u);
}

TEST(IndexedInstanceTest, ProbeLastBucketsByTrailingValue) {
  Universe u;
  RelId r = *u.InternRel("R", 1);
  Instance base;
  base.Add(r, {u.PathOfChars("ab")});
  base.Add(r, {u.PathOfChars("cb")});
  base.Add(r, {u.PathOfChars("ba")});
  base.Add(r, {u.PathOfChars("b")});
  base.Add(r, {kEmptyPath});  // empty path: in no last-value bucket
  IndexedInstance store(u, base);

  Value a = Value::Atom(u.InternAtom("a"));
  Value b = Value::Atom(u.InternAtom("b"));
  Value c = Value::Atom(u.InternAtom("c"));
  EXPECT_EQ(store.ProbeLast(r, 0, b).size(), 3u);  // ab, cb, b
  EXPECT_EQ(store.ProbeLast(r, 0, a).size(), 1u);  // ba
  EXPECT_EQ(store.ProbeLast(r, 0, c).size(), 0u);

  // Incremental maintenance mirrors the first-value index.
  EXPECT_TRUE(store.Add(r, {u.PathOfChars("db")}));
  EXPECT_EQ(store.ProbeLast(r, 0, b).size(), 4u);
}

TEST(BaseStoreTest, ProbesAgreeAcrossAllThreeFamilies) {
  Universe u;
  RelId r = *u.InternRel("R", 2);
  Instance base;
  base.Add(r, {u.PathOfChars("ab"), u.PathOfChars("x")});
  base.Add(r, {u.PathOfChars("ac"), u.PathOfChars("y")});
  base.Add(r, {u.PathOfChars("cb"), u.PathOfChars("x")});
  BaseStore store(u, std::move(base));

  Value a = Value::Atom(u.InternAtom("a"));
  Value b = Value::Atom(u.InternAtom("b"));
  EXPECT_EQ(store.Probe(r, 0, u.PathOfChars("ab")).size(), 1u);
  EXPECT_EQ(store.Probe(r, 1, u.PathOfChars("x")).size(), 2u);
  EXPECT_EQ(store.ProbeFirst(r, 0, a).size(), 2u);  // ab, ac
  EXPECT_EQ(store.ProbeLast(r, 0, b).size(), 2u);   // ab, cb
  // Absent relations and out-of-range columns return the empty bucket.
  EXPECT_EQ(store.Probe(r + 1, 0, kEmptyPath).size(), 0u);
  EXPECT_EQ(store.Probe(r, 7, kEmptyPath).size(), 0u);
  // One slot per column built (all three families build together).
  EXPECT_EQ(store.NumIndexedColumns(), 2u);
}

// --- Database/Session ---------------------------------------------------------

TEST(DatabaseTest, SessionRunReturnsDerivedOnly) {
  Universe u;
  Program p = MustParse(u,
                        "Reach($x, $y) <- R($x ++ $y).\n"
                        "Reach($x, $z) <- Reach($x, $y), R($y ++ $z).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a ++ b). R(b ++ c).");
  Instance in_copy = in;
  Result<Database> db = Database::Open(u, std::move(in));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->edb().NumFacts(), 2u);

  Session session = db->OpenSession();
  Result<Instance> derived = session.Run(*prog);
  ASSERT_TRUE(derived.ok());
  RelId r = *u.FindRel("R");
  RelId reach = *u.FindRel("Reach");
  // Derived facts only: the EDB relation is not in the result.
  EXPECT_TRUE(derived->Tuples(r).empty());
  // `$x ++ $y` enumerates every split of every reachable path.
  EXPECT_GT(derived->Tuples(reach).size(), 0u);

  // Same derived facts as the legacy input-plus-derived path.
  Result<Instance> full = prog->Run(in_copy);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->Project({reach}), derived->Project({reach}));

  // RunQuery projects.
  Result<Instance> projected = session.RunQuery(*prog, reach);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(*projected, derived->Project({reach}));
}

TEST(DatabaseTest, BaseIndexesBuildOncePerColumn) {
  Universe u;
  Program p = MustParse(u,
                        "Reach($x, $y) <- R($x ++ $y).\n"
                        "Reach($x, $z) <- Reach($x, $y), R($y ++ $z).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a ++ b). R(b ++ c). R(c ++ d).");
  Result<Database> db = Database::Open(u, std::move(in));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumIndexedColumns(), 0u);  // lazy: nothing probed yet

  Session session = db->OpenSession();
  ASSERT_TRUE(session.Run(*prog).ok());
  size_t after_first = db->NumIndexedColumns();
  EXPECT_GT(after_first, 0u);
  // Re-running probes the already-built indexes; nothing new is built.
  ASSERT_TRUE(session.Run(*prog).ok());
  EXPECT_EQ(db->NumIndexedColumns(), after_first);
}

TEST(DatabaseTest, EagerIndexesBuildAtOpen) {
  Universe u;
  Instance in = MustInstance(u, "R(a ++ b). S(c, d).");
  Database::OpenOptions opts;
  opts.eager_indexes = true;
  Result<Database> db = Database::Open(u, std::move(in), opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumIndexedColumns(), 3u);  // R/0, S/0, S/1
}

TEST(DatabaseTest, RunsDoNotMutateTheBase) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Instance in = MustInstance(u, "R(a). R(b).");
  Result<Database> db = Database::Open(u, std::move(in));
  ASSERT_TRUE(db.ok());
  Session session = db->OpenSession();
  for (int i = 0; i < 3; ++i) {
    Result<Instance> derived = session.Run(*prog);
    ASSERT_TRUE(derived.ok());
    EXPECT_EQ(derived->NumFacts(), 2u);
  }
  EXPECT_EQ(db->edb().NumFacts(), 2u);  // base untouched
}

// --- Versioned Database: epochs, Writer, Compact ------------------------------

TEST(EpochTest, AppendPublishesSegmentsAndBumpsEpoch) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a). R(b)."));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->epoch(), 0u);
  EXPECT_EQ(db->NumSegments(), 1u);
  EXPECT_EQ(db->NumFacts(), 2u);

  Result<uint64_t> e1 = db->Append(MustInstance(u, "R(c). S(d, d)."));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1u);
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->NumSegments(), 2u);
  EXPECT_EQ(db->NumFacts(), 4u);
  // edb() materializes the union of all segments.
  Instance edb = db->edb();
  EXPECT_EQ(edb.NumFacts(), 4u);
  EXPECT_TRUE(edb.Contains(*u.FindRel("R"), {u.PathOfChars("c")}));
}

TEST(EpochTest, AppendDedupesAgainstTheCurrentStack) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a). R(b)."));
  ASSERT_TRUE(db.ok());
  // Entirely duplicate: no segment published, no epoch bump.
  Result<uint64_t> e = db->Append(MustInstance(u, "R(a)."));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 0u);
  EXPECT_EQ(db->NumSegments(), 1u);
  // Partially duplicate: only the fresh fact lands in the new segment.
  e = db->Append(MustInstance(u, "R(a). R(c)."));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 1u);
  EXPECT_EQ(db->NumFacts(), 3u);
  // Multi-segment scans therefore enumerate each fact exactly once: a
  // run over `R($x)` derives one S fact per distinct R fact.
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Result<Instance> derived = db->Snapshot().Run(*prog);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->NumFacts(), 3u);
}

TEST(EpochTest, WriterBatchesIntoOneCommit) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a)."));
  ASSERT_TRUE(db.ok());
  Writer w = db->MakeWriter();
  RelId r = *u.FindRel("R");
  EXPECT_TRUE(w.Add(r, {u.PathOfChars("b")}));
  EXPECT_FALSE(w.Add(r, {u.PathOfChars("b")}));  // staged duplicate
  w.Stage(MustInstance(u, "R(c). R(d)."));
  EXPECT_EQ(w.NumStaged(), 3u);
  Result<uint64_t> epoch = w.Commit();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(db->NumSegments(), 2u);  // one batch = one segment
  EXPECT_EQ(db->NumFacts(), 4u);
  EXPECT_EQ(w.NumStaged(), 0u);  // staging area cleared by Commit
  // An empty commit publishes nothing.
  Result<uint64_t> again = w.Commit();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1u);
  EXPECT_EQ(db->NumSegments(), 2u);
}

// --- Writer / Compact error paths ---------------------------------------------

TEST(EpochTest, CommitOnClosedDatabaseFails) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a)."));
  ASSERT_TRUE(db.ok());
  Writer w = db->MakeWriter();
  w.Stage(MustInstance(u, "R(b)."));
  EXPECT_FALSE(db->closed());
  db->Close();
  EXPECT_TRUE(db->closed());

  // Writers fail fast; the staged facts never publish.
  Result<uint64_t> commit = w.Commit();
  ASSERT_FALSE(commit.ok());
  EXPECT_EQ(commit.status().code(), StatusCode::kFailedPrecondition);
  Result<uint64_t> append = db->Append(MustInstance(u, "R(c)."));
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->epoch(), 0u);
  EXPECT_EQ(db->NumFacts(), 1u);

  // Reads are unaffected: snapshots keep serving the final epoch.
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Result<Instance> derived = db->Snapshot().Run(*prog);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->NumFacts(), 1u);

  // Close is idempotent.
  db->Close();
  EXPECT_TRUE(db->closed());
}

TEST(EpochTest, DoubleCommitPublishesNothingTwice) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a)."));
  ASSERT_TRUE(db.ok());
  Writer w = db->MakeWriter();
  w.Stage(MustInstance(u, "R(b)."));
  Result<uint64_t> first = w.Commit();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  // The staging area was consumed: an immediate second Commit is an
  // empty batch — no new segment, no epoch bump, not an error.
  Result<uint64_t> second = w.Commit();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1u);
  EXPECT_EQ(db->NumSegments(), 2u);
  EXPECT_EQ(db->NumFacts(), 2u);
  // And a commit whose every staged fact is already present publishes
  // nothing either.
  w.Stage(MustInstance(u, "R(a). R(b)."));
  Result<uint64_t> dup = w.Commit();
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(*dup, 1u);
  EXPECT_EQ(db->NumSegments(), 2u);
}

TEST(EpochTest, CompactWithNothingToFold) {
  Universe u;
  // A single-segment stack (fresh open) has nothing to fold — even when
  // that one segment is empty.
  Result<Database> empty = Database::Open(u, Instance{});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty->Compact());
  EXPECT_EQ(empty->NumSegments(), 1u);
  EXPECT_EQ(empty->epoch(), 0u);

  Result<Database> db = Database::Open(u, MustInstance(u, "R(a)."));
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(*db->Compact());
  // After appends there is something to fold — once; the second Compact
  // sees one segment again. A closed database refuses to fold at all.
  ASSERT_TRUE(db->Append(MustInstance(u, "R(b).")).ok());
  EXPECT_TRUE(*db->Compact());
  EXPECT_FALSE(*db->Compact());
  ASSERT_TRUE(db->Append(MustInstance(u, "R(c).")).ok());
  db->Close();
  EXPECT_FALSE(*db->Compact());
  EXPECT_EQ(db->NumSegments(), 2u);
}

TEST(EpochTest, SnapshotIgnoresLaterAppends) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a)."));
  ASSERT_TRUE(db.ok());
  Session old = db->Snapshot();
  ASSERT_TRUE(db->Append(MustInstance(u, "R(b).")).ok());
  Result<Instance> old_out = old.Run(*prog);
  Result<Instance> new_out = db->Snapshot().Run(*prog);
  ASSERT_TRUE(old_out.ok());
  ASSERT_TRUE(new_out.ok());
  EXPECT_EQ(old_out->NumFacts(), 1u);  // pinned at epoch 0
  EXPECT_EQ(new_out->NumFacts(), 2u);
  EXPECT_EQ(old.NumFacts(), 1u);
  EXPECT_EQ(old.edb().NumFacts(), 1u);
}

TEST(EpochTest, AutoCompactionFoldsBySegmentCount) {
  Universe u;
  Database::OpenOptions opts;
  opts.auto_compact_segments = 2;
  Result<Database> db =
      Database::Open(u, MustInstance(u, "R(a)."), opts);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Append(MustInstance(u, "R(b).")).ok());
  EXPECT_EQ(db->NumSegments(), 2u);  // at the limit: no fold yet
  ASSERT_TRUE(db->Append(MustInstance(u, "R(c).")).ok());
  EXPECT_EQ(db->NumSegments(), 1u);  // 3 > 2 folded back to one
  EXPECT_EQ(db->epoch(), 2u);        // compaction never moves the epoch
  EXPECT_EQ(db->NumFacts(), 3u);
}

TEST(EpochTest, AutoCompactionFoldsByTailRatio) {
  Universe u;
  Database::OpenOptions opts;
  opts.auto_compact_tail_ratio = 0.4;
  Result<Database> db =
      Database::Open(u, MustInstance(u, "R(a). R(b). R(c). R(d)."), opts);
  ASSERT_TRUE(db.ok());
  // Tail 1/5 = 0.2 <= 0.4: stays stacked.
  ASSERT_TRUE(db->Append(MustInstance(u, "R(e).")).ok());
  EXPECT_EQ(db->NumSegments(), 2u);
  // Tail 5/9 > 0.4: folds.
  ASSERT_TRUE(db->Append(MustInstance(u, "R(f). R(g). R(h). R(i).")).ok());
  EXPECT_EQ(db->NumSegments(), 1u);
  EXPECT_EQ(db->NumFacts(), 9u);
}

TEST(EpochTest, StatsAreEpochAware) {
  Universe u;
  Result<Database> db = Database::Open(u, MustInstance(u, "R(a). R(b)."));
  ASSERT_TRUE(db.ok());
  RelId r = *u.FindRel("R");
  EXPECT_EQ(db->Stats().EstimateScan(r), 2.0);
  ASSERT_TRUE(db->Append(MustInstance(u, "R(c). R(d).")).ok());
  // Per-segment measurements merge: the new segment's facts count.
  EXPECT_EQ(db->Stats().EstimateScan(r), 4.0);
  // Compaction re-measures the merged store; totals are unchanged.
  ASSERT_TRUE(*db->Compact());
  EXPECT_EQ(db->Stats().EstimateScan(r), 4.0);
}

// --- Stats aging + drift -------------------------------------------------------

TEST(StatsAgingTest, AccumulatorForgetsUnderEpochDecay) {
  Universe u;
  RelId s = *u.InternRel("S", 1);
  Instance big;
  for (int i = 0; i < 16; ++i) {
    big.Add(s, {u.SingletonPath(Value::Atom(u.InternAtom(
                   "v" + std::to_string(i))))});
  }
  StatsAccumulator accum;
  accum.Record(ComputeInstanceStats(u, big));
  EXPECT_EQ(accum.Snapshot().EstimateScan(s), 16.0);
  // Pre-aging, ObserveMax pins the all-time peak: a smaller observation
  // cannot shrink the estimate...
  Instance small;
  small.Add(s, {u.PathOfChars("a")});
  accum.Record(ComputeInstanceStats(u, small));
  EXPECT_EQ(accum.Snapshot().EstimateScan(s), 16.0);
  // ...but epoch aging decays the peak until fresh observations win.
  for (int i = 0; i < 4; ++i) accum.Age(StatsAccumulator::kEpochDecay);
  EXPECT_EQ(accum.Snapshot().EstimateScan(s), 1.0);
  accum.Record(ComputeInstanceStats(u, small));
  EXPECT_EQ(accum.Snapshot().EstimateScan(s), 1.0);
  // Full decay drops the relation entirely.
  for (int i = 0; i < 8; ++i) accum.Age(StatsAccumulator::kEpochDecay);
  EXPECT_FALSE(accum.Snapshot().Knows(s));
}

TEST(StatsAgingTest, DatabaseDefersEpochDecayUntilRecompute) {
  Universe u;
  Program p = MustParse(u, "S($x) <- R($x).");
  Result<PreparedProgram> prog = Engine::Compile(u, std::move(p));
  ASSERT_TRUE(prog.ok());
  Result<Database> db =
      Database::Open(u, MustInstance(u, "R(a). R(b). R(c). R(d)."));
  ASSERT_TRUE(db.ok());
  RelId s = *u.FindRel("S");
  RunOptions opts;
  opts.collect_derived_stats = true;
  ASSERT_TRUE(db->Snapshot().Run(*prog, opts).ok());
  EXPECT_EQ(db->Stats().EstimateScan(s), 4.0);
  // Appends note epoch bumps but do not decay the remembered derived
  // measurements by themselves: until something re-derives there is no
  // fresh evidence the derived shape drifted (a maintained view serving
  // across appends must not erode its own planning statistics).
  ASSERT_TRUE(db->Append(MustInstance(u, "T(x).")).ok());
  ASSERT_TRUE(db->Append(MustInstance(u, "T(y).")).ok());
  EXPECT_EQ(db->Stats().EstimateScan(s), 4.0);
  // The next full run applies both deferred halvings: 4 * 0.5^2 = 1.
  // (No collect_derived_stats, so nothing is recorded back on top.)
  ASSERT_TRUE(db->Snapshot().Run(*prog).ok());
  EXPECT_EQ(db->Stats().EstimateScan(s), 1.0);
}

TEST(StatsDriftTest, MeasuresRelativeTupleChange) {
  Universe u;
  StoreStats before =
      ComputeInstanceStats(u, MustInstance(u, "R(a). R(b). R(c). R(d)."));
  EXPECT_EQ(StatsDrift(before, before), 0.0);
  StoreStats grown = ComputeInstanceStats(
      u, MustInstance(u, "R(a). R(b). R(c). R(d). R(e). R(f). R(g). R(h)."));
  EXPECT_DOUBLE_EQ(StatsDrift(before, grown), 0.5);
  EXPECT_DOUBLE_EQ(StatsDrift(grown, before), 0.5);  // symmetric
  // A relation appearing from nothing is full drift.
  StoreStats with_s = before;
  with_s.MergeFrom(ComputeInstanceStats(u, MustInstance(u, "S(a, b).")));
  EXPECT_EQ(StatsDrift(before, with_s), 1.0);
}

// --- Instance satellite: move union + shared empty set --------------------------

TEST(InstanceTest, MoveUnionSplicesTuples) {
  Universe u;
  Instance a = MustInstance(u, "R(a). R(b).");
  Instance b = MustInstance(u, "R(b). R(c). S(d).");
  EXPECT_EQ(a.UnionWith(std::move(b)), 2u);  // R(c) and S(d) are new
  EXPECT_EQ(a.NumFacts(), 4u);
  EXPECT_TRUE(a.Contains(*u.FindRel("S"), {u.PathOfChars("d")}));
  EXPECT_TRUE(b.Empty());  // NOLINT(bugprone-use-after-move): documented
}

TEST(InstanceTest, AbsentRelationsShareTheEmptySet) {
  Universe u;
  Instance i;
  RelId r = *u.InternRel("R", 1);
  RelId s = *u.InternRel("S", 1);
  EXPECT_EQ(&i.Tuples(r), &EmptyTupleSet());
  EXPECT_EQ(&i.Tuples(r), &i.Tuples(s));
}

}  // namespace
}  // namespace seqdl
