// Durability tests: segment/WAL/manifest formats, Database recovery,
// the kill-and-reopen crash differential, and snapshot pinning across
// a durable Compact().
//
// The crash differential forks a child that commits scripted random
// batches against a data directory (acking each durable epoch through
// an fsynced side file), SIGKILLs it at a random point, reopens the
// directory, and compares the recovered database byte-for-byte against
// an in-memory oracle that replays the same script up to the recovered
// epoch. Seed count follows SEQDL_DIFFTEST_ITERS like the other
// differentials.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/engine/database.h"
#include "src/engine/instance.h"
#include "src/storage/format.h"
#include "src/storage/manifest.h"
#include "src/storage/storage.h"
#include "src/storage/wal.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

Instance MustInstance(Universe& u, const std::string& text) {
  Result<Instance> r = ParseInstance(u, text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

/// Root for scratch directories. CI points TEST_TMPDIR at a real
/// filesystem so rename/fsync semantics are exercised for real.
std::string TestTempRoot() {
  const char* env = std::getenv("TEST_TMPDIR");
  if (env == nullptr || *env == '\0') env = std::getenv("TMPDIR");
  if (env == nullptr || *env == '\0') env = "/tmp";
  return env;
}

std::string MakeTempDir(const std::string& tag) {
  std::string tmpl = TestTempRoot() + "/seqdl_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << std::strerror(errno);
  return got == nullptr ? std::string() : std::string(got);
}

/// Removes every regular file in `dir`, then the directory itself.
/// The storage layer never creates subdirectories.
void RemoveTree(const std::string& dir) {
  if (dir.empty()) return;
  Result<std::vector<std::string>> names = storage::ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)::unlink((dir + "/" + name).c_str());
    }
  }
  (void)::rmdir(dir.c_str());
}

/// RAII scratch directory so failures don't leak tmp dirs across runs.
struct ScratchDir {
  explicit ScratchDir(const std::string& tag) : path(MakeTempDir(tag)) {}
  ~ScratchDir() { RemoveTree(path); }
  std::string path;
};

uint64_t Iterations() {
  const char* env = std::getenv("SEQDL_DIFFTEST_ITERS");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 200;
}

// --- Instance blocks and segment files --------------------------------------

TEST(StorageFormatTest, InstanceBlockRoundTrip) {
  Universe u;
  // Exercise every shape the encoder handles: multi-atom paths, the
  // empty path, packed values, arity-0 relations, arity-2 tuples.
  Instance in = MustInstance(
      u,
      "R(a ++ b ++ c). R(eps). S(<a ++ b> ++ c). A. E(a, b). E(b, <eps>).");
  std::string block;
  storage::EncodeInstanceBlock(u, in, &block);

  storage::ByteReader r(block, storage::kSdSegmentCorrupt);
  Result<Instance> out =
      storage::DecodeInstanceBlock(u, r, storage::kSdSegmentCorrupt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out->ToString(u), in.ToString(u));
  EXPECT_EQ(out->NumFacts(), in.NumFacts());
}

TEST(StorageFormatTest, InstanceBlockDecodesIntoFreshUniverse) {
  Universe u;
  Instance in = MustInstance(u, "R(a ++ b). S(<a> ++ c). A.");
  std::string block;
  storage::EncodeInstanceBlock(u, in, &block);

  // A fresh universe re-interns every symbol from the block's arena;
  // the rendered text (names, not ids) must survive the hop.
  Universe u2;
  storage::ByteReader r(block, storage::kSdSegmentCorrupt);
  Result<Instance> out =
      storage::DecodeInstanceBlock(u2, r, storage::kSdSegmentCorrupt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->ToString(u2), in.ToString(u));
}

TEST(StorageFormatTest, EmptyInstanceRoundTrips) {
  Universe u;
  Instance in;
  std::string block;
  storage::EncodeInstanceBlock(u, in, &block);
  storage::ByteReader r(block, storage::kSdSegmentCorrupt);
  Result<Instance> out =
      storage::DecodeInstanceBlock(u, r, storage::kSdSegmentCorrupt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->Empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(StorageFormatTest, SegmentFileRoundTripPreservesKind) {
  Universe u;
  ScratchDir dir("seg");
  Instance in = MustInstance(u, "E(a, b). E(b, c). R(a ++ b ++ a).");
  const std::string path = dir.path + "/seg-000001.sdlseg";

  Result<uint64_t> bytes = storage::WriteSegmentFile(
      path, u, in, SegmentKind::kTombstones);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  Result<uint64_t> on_disk = storage::FileSize(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*bytes, *on_disk);

  Result<storage::LoadedSegment> seg = storage::ReadSegmentFile(path, u);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->kind, SegmentKind::kTombstones);
  EXPECT_EQ(seg->facts.ToString(u), in.ToString(u));
}

TEST(StorageFormatTest, SegmentFileRejectsBitFlip) {
  Universe u;
  ScratchDir dir("segcorrupt");
  Instance in = MustInstance(u, "E(a, b). E(b, c).");
  const std::string path = dir.path + "/seg-000001.sdlseg";
  ASSERT_TRUE(
      storage::WriteSegmentFile(path, u, in, SegmentKind::kFacts).ok());

  Result<std::string> bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  ASSERT_TRUE(storage::WriteFileDurable(path, corrupted).ok());

  Result<storage::LoadedSegment> seg = storage::ReadSegmentFile(path, u);
  EXPECT_FALSE(seg.ok());
  EXPECT_NE(seg.status().message().find("SD404"), std::string::npos)
      << seg.status().ToString();
}

TEST(StorageFormatTest, SegmentFileRejectsTruncation) {
  Universe u;
  ScratchDir dir("segtrunc");
  Instance in = MustInstance(u, "E(a, b).");
  const std::string path = dir.path + "/seg-000001.sdlseg";
  ASSERT_TRUE(
      storage::WriteSegmentFile(path, u, in, SegmentKind::kFacts).ok());
  Result<std::string> bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(storage::WriteFileDurable(
                  path, std::string_view(*bytes).substr(0, bytes->size() - 3))
                  .ok());
  Result<storage::LoadedSegment> seg = storage::ReadSegmentFile(path, u);
  EXPECT_FALSE(seg.ok());
  EXPECT_NE(seg.status().message().find("SD404"), std::string::npos);
}

// --- WAL --------------------------------------------------------------------

TEST(StorageWalTest, AppendAndReplayRoundTrip) {
  Universe u;
  ScratchDir dir("wal");
  const std::string path = dir.path + "/wal-000001.log";
  Instance first = MustInstance(u, "E(a, b). E(b, c).");
  Instance second = MustInstance(u, "E(a, b).");
  {
    Result<storage::WalWriter> w = storage::WalWriter::Open(
        path, storage::SyncMode::kAlways, /*sync_interval_ms=*/100);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE(
        w->Append(storage::WalRecordType::kAppend, u, first).ok());
    ASSERT_TRUE(
        w->Append(storage::WalRecordType::kRetract, u, second).ok());
    EXPECT_GT(w->bytes(), 0u);
  }
  std::vector<storage::WalRecordType> types;
  std::vector<std::string> payloads;
  Result<storage::WalReplay> replay = storage::ReplayWal(
      path, u,
      [&](storage::WalRecordType type, Instance batch) {
        types.push_back(type);
        payloads.push_back(batch.ToString(u));
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 2u);
  EXPECT_FALSE(replay->truncated_tail);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], storage::WalRecordType::kAppend);
  EXPECT_EQ(types[1], storage::WalRecordType::kRetract);
  EXPECT_EQ(payloads[0], first.ToString(u));
  EXPECT_EQ(payloads[1], second.ToString(u));
}

TEST(StorageWalTest, TornTailIsTruncatedAndPrefixSurvives) {
  Universe u;
  ScratchDir dir("waltear");
  const std::string path = dir.path + "/wal-000001.log";
  Instance batch = MustInstance(u, "E(a, b).");
  {
    Result<storage::WalWriter> w = storage::WalWriter::Open(
        path, storage::SyncMode::kNever, 0);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w->Append(storage::WalRecordType::kAppend, u, batch).ok());
    ASSERT_TRUE(w->Append(storage::WalRecordType::kAppend, u, batch).ok());
  }
  Result<uint64_t> clean_size = storage::FileSize(path);
  ASSERT_TRUE(clean_size.ok());

  // Simulate a torn write: a frame header that promises more payload
  // than the file holds.
  {
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(fd, 0);
    std::string tear;
    storage::PutU32(&tear, 1024);  // payload length never written
    storage::PutU32(&tear, 0xdeadbeef);
    tear += "torn";
    ASSERT_EQ(::write(fd, tear.data(), tear.size()),
              static_cast<ssize_t>(tear.size()));
    ::close(fd);
  }

  uint64_t records = 0;
  Result<storage::WalReplay> replay = storage::ReplayWal(
      path, u,
      [&](storage::WalRecordType, Instance) {
        ++records;
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(records, 2u);
  EXPECT_TRUE(replay->truncated_tail);
  EXPECT_EQ(replay->valid_bytes, *clean_size);

  // The tail is physically gone: a second replay is clean.
  Result<uint64_t> truncated_size = storage::FileSize(path);
  ASSERT_TRUE(truncated_size.ok());
  EXPECT_EQ(*truncated_size, *clean_size);
  Result<storage::WalReplay> again = storage::ReplayWal(
      path, u, [](storage::WalRecordType, Instance) { return Status::OK(); });
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records, 2u);
  EXPECT_FALSE(again->truncated_tail);
}

TEST(StorageWalTest, CrcValidGarbageIsRealCorruption) {
  Universe u;
  ScratchDir dir("walbad");
  const std::string path = dir.path + "/wal-000001.log";
  // A frame whose CRC checks out but whose payload is not a record:
  // that is corruption (SD402), not a torn tail to shrug off.
  std::string payload = "\x07not-a-record";
  std::string frame;
  storage::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  storage::PutU32(&frame, storage::Crc32(payload.data(), payload.size()));
  frame += payload;
  ASSERT_TRUE(storage::WriteFileDurable(path, frame).ok());

  Result<storage::WalReplay> replay = storage::ReplayWal(
      path, u, [](storage::WalRecordType, Instance) { return Status::OK(); });
  EXPECT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("SD402"), std::string::npos)
      << replay.status().ToString();
}

TEST(StorageWalTest, MissingFileIsEmptyReplay) {
  Universe u;
  ScratchDir dir("walnone");
  Result<storage::WalReplay> replay = storage::ReplayWal(
      dir.path + "/wal-000042.log", u,
      [](storage::WalRecordType, Instance) { return Status::OK(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records, 0u);
  EXPECT_FALSE(replay->truncated_tail);
}

// --- Manifest ---------------------------------------------------------------

TEST(StorageManifestTest, WritePublishReadRoundTrip) {
  ScratchDir dir("man");
  storage::Manifest m;
  m.generation = 7;
  m.epoch = 42;
  m.shrink_floor = 3;
  m.next_file_id = 9;
  m.wal_file = "wal-000007.log";
  m.segments.push_back(
      {"seg-000001.sdlseg", SegmentKind::kFacts, 0, 100, 4096});
  m.segments.push_back(
      {"seg-000002.sdlseg", SegmentKind::kTombstones, 17, 5, 512});

  ASSERT_TRUE(storage::WriteManifest(dir.path, m).ok());
  ASSERT_TRUE(storage::PublishCurrent(dir.path, m.generation).ok());

  Result<storage::Manifest> got = storage::ReadCurrent(dir.path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->generation, 7u);
  EXPECT_EQ(got->epoch, 42u);
  EXPECT_EQ(got->shrink_floor, 3u);
  EXPECT_EQ(got->next_file_id, 9u);
  EXPECT_EQ(got->wal_file, "wal-000007.log");
  ASSERT_EQ(got->segments.size(), 2u);
  EXPECT_EQ(got->segments[0].file, "seg-000001.sdlseg");
  EXPECT_EQ(got->segments[0].kind, SegmentKind::kFacts);
  EXPECT_EQ(got->segments[0].facts, 100u);
  EXPECT_EQ(got->segments[1].kind, SegmentKind::kTombstones);
  EXPECT_EQ(got->segments[1].stamp, 17u);
  EXPECT_EQ(got->segments[1].bytes, 512u);
}

TEST(StorageManifestTest, FreshDirectoryIsNotFound) {
  ScratchDir dir("manfresh");
  Result<storage::Manifest> got = storage::ReadCurrent(dir.path);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(StorageManifestTest, CorruptManifestRejected) {
  ScratchDir dir("manbad");
  storage::Manifest m;
  m.generation = 1;
  m.wal_file = "wal-000001.log";
  ASSERT_TRUE(storage::WriteManifest(dir.path, m).ok());
  const std::string path = dir.path + "/" + storage::ManifestFileName(1);
  Result<std::string> bytes = storage::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x01;
  ASSERT_TRUE(storage::WriteFileDurable(path, corrupted).ok());
  Result<storage::Manifest> got = storage::ReadManifest(path);
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("SD403"), std::string::npos)
      << got.status().ToString();
}

// --- Database-level recovery ------------------------------------------------

Database::OpenOptions DurableOpts(const std::string& dir) {
  Database::OpenOptions opts;
  opts.data_dir = dir;
  opts.sync_mode = storage::SyncMode::kAlways;
  return opts;
}

TEST(StorageDatabaseTest, CloseAndReopenServesSameFacts) {
  ScratchDir dir("reopen");
  std::string rendered;
  uint64_t epoch = 0;
  size_t facts = 0;
  {
    Universe u;
    Result<Database> db = Database::Open(
        u, MustInstance(u, "E(a, b). E(b, c). R(a ++ b)."), DurableOpts(dir.path));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Append(MustInstance(u, "E(c, d).")).ok());
    ASSERT_TRUE(db->Retract(MustInstance(u, "E(b, c).")).ok());
    rendered = db->edb().ToString(u);
    epoch = db->epoch();
    facts = db->NumFacts();
    db->Close();
  }
  EXPECT_TRUE(Database::DataDirInitialized(dir.path));
  Universe u2;
  Result<Database> db = Database::Open(u2, DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->edb().ToString(u2), rendered);
  EXPECT_EQ(db->epoch(), epoch);
  EXPECT_EQ(db->NumFacts(), facts);
}

TEST(StorageDatabaseTest, WalTailReplaysWhenNeverClosed) {
  ScratchDir dir("waltail");
  std::string rendered;
  uint64_t epoch = 0;
  {
    Universe u;
    Result<Database> db = Database::Open(
        u, MustInstance(u, "E(a, b)."), DurableOpts(dir.path));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Append(MustInstance(u, "E(b, c). S(<a ++ b>).")).ok());
    ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, b).")).ok());
    rendered = db->edb().ToString(u);
    epoch = db->epoch();
    // No Close(): the commits exist only as WAL records past the
    // initial checkpoint. Recovery must replay them.
  }
  Universe u2;
  Result<Database> db = Database::Open(u2, DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->edb().ToString(u2), rendered);
  EXPECT_EQ(db->epoch(), epoch);
  EXPECT_EQ(db->NumTombstones(), 1u);
}

TEST(StorageDatabaseTest, DurableCompactSurvivesReopen) {
  ScratchDir dir("compact");
  std::string rendered;
  {
    Universe u;
    Result<Database> db = Database::Open(
        u, MustInstance(u, "E(a, b). E(b, c)."), DurableOpts(dir.path));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(db->Append(MustInstance(u, "E(c, d).")).ok());
    ASSERT_TRUE(db->Retract(MustInstance(u, "E(a, b).")).ok());
    Result<bool> folded = db->Compact();
    ASSERT_TRUE(folded.ok()) << folded.status().ToString();
    EXPECT_TRUE(*folded);
    EXPECT_EQ(db->NumSegments(), 1u);
    EXPECT_EQ(db->NumTombstones(), 0u);
    rendered = db->edb().ToString(u);
    db->Close();
  }
  Universe u2;
  Result<Database> db = Database::Open(u2, DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->NumSegments(), 1u);
  EXPECT_EQ(db->NumTombstones(), 0u);
  EXPECT_EQ(db->edb().ToString(u2), rendered);
}

TEST(StorageDatabaseTest, SeedingAnInitializedDirFails) {
  ScratchDir dir("conflict");
  {
    Universe u;
    Result<Database> db = Database::Open(
        u, MustInstance(u, "E(a, b)."), DurableOpts(dir.path));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db->Close();
  }
  Universe u2;
  Result<Database> db = Database::Open(
      u2, MustInstance(u2, "E(x, y)."), DurableOpts(dir.path));
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kIoError);
  EXPECT_NE(db.status().message().find("SD405"), std::string::npos)
      << db.status().ToString();

  // An *empty* seed is the recovery spelling, not a conflict.
  Result<Database> again =
      Database::Open(u2, Instance(), DurableOpts(dir.path));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->NumFacts(), 1u);
}

TEST(StorageDatabaseTest, OpenWithoutSeedRequiresDataDir) {
  Universe u;
  Database::OpenOptions opts;  // data_dir empty
  Result<Database> db = Database::Open(u, opts);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST(StorageDatabaseTest, StorageInfoTracksDiskAndWal) {
  ScratchDir dir("info");
  Universe u;
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b)."), DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  storage::StorageInfo info = db->storage_info();
  EXPECT_GE(info.manifest_generation, 1u);
  EXPECT_GT(info.on_disk_bytes, 0u);
  EXPECT_EQ(info.wal_bytes, 0u);
  EXPECT_EQ(info.sealed_segments, 1u);

  ASSERT_TRUE(db->Append(MustInstance(u, "E(b, c).")).ok());
  info = db->storage_info();
  EXPECT_GT(info.wal_bytes, 0u);

  // An in-memory database reports zeroed storage counters.
  Universe u2;
  Result<Database> mem = Database::Open(u2, MustInstance(u2, "E(a, b)."));
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->storage_info().manifest_generation, 0u);
  EXPECT_EQ(mem->storage_info().on_disk_bytes, 0u);
}

TEST(StorageDatabaseTest, WalThresholdTriggersCheckpoint) {
  ScratchDir dir("threshold");
  Universe u;
  Database::OpenOptions opts = DurableOpts(dir.path);
  opts.checkpoint_wal_bytes = 1;  // every commit rotates the log
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b)."), opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  uint64_t gen0 = db->storage_info().manifest_generation;
  ASSERT_TRUE(db->Append(MustInstance(u, "E(b, c).")).ok());
  storage::StorageInfo info = db->storage_info();
  EXPECT_GT(info.manifest_generation, gen0);
  EXPECT_EQ(info.wal_bytes, 0u);  // rotated away by the checkpoint
  db->Close();

  Universe u2;
  Result<Database> back = Database::Open(u2, DurableOpts(dir.path));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumFacts(), 2u);
}

TEST(StorageDatabaseTest, QueriesRunAfterRecovery) {
  ScratchDir dir("query");
  constexpr char kReach[] =
      "R($x, $y) <- E($x, $y).\n"
      "R($x, $z) <- R($x, $y), E($y, $z).\n";
  std::string want;
  {
    Universe u;
    Result<Database> db = Database::Open(
        u, MustInstance(u, "E(a, b). E(b, c). E(c, d)."),
        DurableOpts(dir.path));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Result<Program> p = ParseProgram(u, kReach);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    Result<PreparedProgram> prog = db->Compile(std::move(*p));
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    Result<Instance> out = db->Snapshot().Run(*prog);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    want = out->ToString(u);
    db->Close();
  }
  Universe u2;
  Result<Database> db = Database::Open(u2, DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  Result<Program> p = ParseProgram(u2, kReach);
  ASSERT_TRUE(p.ok());
  Result<PreparedProgram> prog = db->Compile(std::move(*p));
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  Result<Instance> out = db->Snapshot().Run(*prog);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->ToString(u2), want);
}

// --- Crash-recovery differential --------------------------------------------

struct CrashOp {
  enum Kind { kAppend, kRetract, kCompact } kind;
  std::string text;  // instance literal; empty for kCompact
};

/// The scripted op stream. Child and oracle call this with the same
/// seed, so both see the identical sequence. Facts draw from a small
/// atom pool so retractions hit often and appends dedupe often — both
/// paths (effective and no-op commits) get exercised.
std::vector<CrashOp> MakeCrashOps(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  auto atom = [&] { return "a" + std::to_string(rng() % 12); };
  std::vector<CrashOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t roll = rng() % 10;
    if (roll < 6) {
      std::string text;
      size_t batch = 1 + rng() % 3;
      for (size_t j = 0; j < batch; ++j) {
        switch (rng() % 3) {
          case 0:
            text += "E(" + atom() + ", " + atom() + "). ";
            break;
          case 1:
            text += "P(" + atom() + " ++ " + atom() + "). ";
            break;
          default:
            text += "Q(<" + atom() + " ++ " + atom() + "> ++ " + atom() +
                    "). ";
            break;
        }
      }
      ops.push_back({CrashOp::kAppend, text});
    } else if (roll < 9) {
      ops.push_back({CrashOp::kRetract,
                     "E(" + atom() + ", " + atom() + ")."});
    } else {
      ops.push_back({CrashOp::kCompact, ""});
    }
  }
  return ops;
}

/// Applies one scripted op to `db`. Returns false on error (the child
/// turns that into a nonzero exit; the oracle asserts).
bool ApplyCrashOp(Universe& u, Database& db, const CrashOp& op) {
  switch (op.kind) {
    case CrashOp::kAppend: {
      Result<Instance> batch = ParseInstance(u, op.text);
      if (!batch.ok()) return false;
      return db.Append(std::move(*batch)).ok();
    }
    case CrashOp::kRetract: {
      Result<Instance> batch = ParseInstance(u, op.text);
      if (!batch.ok()) return false;
      return db.Retract(std::move(*batch)).ok();
    }
    case CrashOp::kCompact:
      return db.Compact().ok();
  }
  return false;
}

/// Child body: commit the script against `dir`, acking each durable
/// epoch into `ack_path` (pwrite + fsync, so the parent's read after
/// SIGKILL only ever sees epochs the WAL already holds).
void CrashChild(const std::string& dir, const std::string& ack_path,
                const std::vector<CrashOp>& ops, uint64_t seed) {
  Universe u;
  Database::OpenOptions opts = DurableOpts(dir);
  // Small rotation threshold so kills land on every side of a
  // checkpoint, not only in the WAL-tail window.
  opts.checkpoint_wal_bytes = (seed % 3 == 0) ? 256 : (64ull << 20);
  Result<Database> db = Database::Open(u, Instance(), opts);
  if (!db.ok()) _exit(2);
  int ack_fd = ::open(ack_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (ack_fd < 0) _exit(3);
  for (const CrashOp& op : ops) {
    if (!ApplyCrashOp(u, *db, op)) _exit(4);
    uint64_t epoch = db->epoch();
    if (::pwrite(ack_fd, &epoch, sizeof(epoch), 0) !=
        static_cast<ssize_t>(sizeof(epoch))) {
      _exit(5);
    }
    if (::fsync(ack_fd) != 0) _exit(6);
  }
  ::close(ack_fd);
  _exit(0);
}

uint64_t ReadAckedEpoch(const std::string& ack_path) {
  uint64_t epoch = 0;
  int fd = ::open(ack_path.c_str(), O_RDONLY);
  if (fd < 0) return 0;
  ssize_t n = ::pread(fd, &epoch, sizeof(epoch), 0);
  ::close(fd);
  return n == static_cast<ssize_t>(sizeof(epoch)) ? epoch : 0;
}

TEST(StorageCrashRecoveryTest, KillAndReopenMatchesOracle) {
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork-heavy differential is an ASan/plain-build test";
#endif
#endif
  const uint64_t iterations = Iterations();
  constexpr size_t kOpsPerSeed = 64;
  for (uint64_t seed = 1; seed <= iterations; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScratchDir dir("crash");
    const std::string ack_path = dir.path + "/acked-epoch";
    std::vector<CrashOp> ops = MakeCrashOps(seed, kOpsPerSeed);

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << std::strerror(errno);
    if (pid == 0) {
      CrashChild(dir.path, ack_path, ops, seed);  // never returns
    }
    // Kill at a seeded-random point; some kills land before the first
    // commit, some after the child finished the whole script.
    std::mt19937_64 krng(seed ^ 0xc2b2ae3d27d4eb4full);
    ::usleep(static_cast<useconds_t>(krng() % 25000));
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid) << std::strerror(errno);
    if (WIFEXITED(wstatus)) {
      // Child finished (or bailed) before the kill landed: a nonzero
      // exit is a child-side setup failure, not a recovery bug.
      ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child failed before kill";
    }

    const uint64_t acked = ReadAckedEpoch(ack_path);
    if (!Database::DataDirInitialized(dir.path)) {
      // Killed before the seeding checkpoint published CURRENT; then
      // nothing may have been acked either.
      EXPECT_EQ(acked, 0u);
      continue;
    }

    Universe u;
    Result<Database> recovered =
        Database::Open(u, DurableOpts(dir.path));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Durability: every acked epoch was WAL-fsynced pre-publish.
    EXPECT_GE(recovered->epoch(), acked);

    // Oracle: replay the same script in memory up to the recovered
    // epoch. No-op commits don't move the epoch, so "epoch caught up"
    // identifies the committed prefix exactly (modulo trailing no-ops,
    // which don't change the fact set either).
    Result<Database> oracle = Database::Open(u, Instance());
    ASSERT_TRUE(oracle.ok());
    size_t next_op = 0;
    while (oracle->epoch() < recovered->epoch() && next_op < ops.size()) {
      ASSERT_TRUE(ApplyCrashOp(u, *oracle, ops[next_op]))
          << "oracle replay failed at op " << next_op;
      ++next_op;
    }
    ASSERT_EQ(oracle->epoch(), recovered->epoch())
        << "recovered epoch unreachable by script replay";

    EXPECT_EQ(recovered->edb().ToString(u), oracle->edb().ToString(u));
    EXPECT_EQ(recovered->NumFacts(), oracle->NumFacts());

    // Physical layout (segment/tombstone counts) is NOT a function of
    // the epoch — a scripted Compact folds tombstones without bumping
    // it, so the oracle may stop short of one the child ran. Compaction
    // normalizes both sides; contents must be unchanged and the
    // recovered side must still fold durably.
    Result<bool> rfold = recovered->Compact();
    ASSERT_TRUE(rfold.ok()) << rfold.status().ToString();
    Result<bool> ofold = oracle->Compact();
    ASSERT_TRUE(ofold.ok());
    EXPECT_EQ(recovered->edb().ToString(u), oracle->edb().ToString(u));
    EXPECT_EQ(recovered->NumTombstones(), 0u);
  }
}

// --- Snapshot pinning across durable compaction (TSan target) ---------------

TEST(StorageConcurrencyTest, PinnedSnapshotSurvivesDurableCompact) {
  ScratchDir dir("pin");
  Universe u;
  Result<Database> db = Database::Open(
      u, MustInstance(u, "E(a, b). E(b, c). E(c, d)."), DurableOpts(dir.path));
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  Session pinned = db->Snapshot();
  const uint64_t pinned_epoch = pinned.epoch();
  const std::string pinned_view = pinned.edb().ToString(u);
  const size_t pinned_facts = pinned.NumFacts();

  // Readers hammer the pinned session while the writer appends,
  // retracts, and compacts — each compact rewrites the manifest and
  // deletes the files the pinned segments were loaded from. The pins
  // are in-memory shared_ptrs; no read may ever touch the dead files.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EXPECT_EQ(pinned.NumFacts(), pinned_facts);
        EXPECT_EQ(pinned.epoch(), pinned_epoch);
        EXPECT_EQ(pinned.edb().ToString(u), pinned_view);
      }
    });
  }
  for (int round = 0; round < 8; ++round) {
    std::string fact =
        "E(x" + std::to_string(round) + ", y" + std::to_string(round) + ").";
    ASSERT_TRUE(db->Append(MustInstance(u, fact)).ok());
    ASSERT_TRUE(db->Retract(MustInstance(u, fact)).ok());
    Result<bool> folded = db->Compact();
    ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(pinned.edb().ToString(u), pinned_view);
  EXPECT_EQ(db->storage_info().sealed_segments, db->NumSegments());
}

}  // namespace
}  // namespace seqdl
