// Sequence analysis in the style of the paper's genomics motivation:
// given a database of DNA reads and a set of motifs, mark motif
// occurrences with packing (Example 2.2's technique), count whether a
// motif family occurs in at least three distinct contexts, and extract
// the flanking regions of each occurrence.
#include <cstdio>

#include "src/analysis/features.h"
#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/packing_elim.h"

int main() {
  seqdl::Universe u;

  seqdl::Result<seqdl::Program> program = seqdl::ParseProgram(u, R"(
    % Mark every occurrence of a motif inside a read (Example 2.2 style):
    % the motif is bracketed with packing so distinct occurrences stay
    % distinct values.
    Marked($u ++ <$m> ++ $v) <- Read($u ++ $m ++ $v), Motif($m).

    % The flanking context of each occurrence (5' flank, motif, 3' flank).
    Flank5($u) <- Marked($u ++ <$m> ++ $v).
    Flank3($v) <- Marked($u ++ <$m> ++ $v).

    % Does some motif occur in at least three different marked contexts?
    Enriched <- Marked($x), Marked($y), Marked($z),
                $x != $y, $x != $z, $y != $z.
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n",
              seqdl::FormatProgram(u, *program).c_str());

  seqdl::Result<seqdl::Instance> reads = seqdl::ParseInstance(u, R"(
    Read(a ++ c ++ g ++ t ++ a ++ c ++ g).
    Read(t ++ t ++ a ++ c ++ g ++ g).
    Read(g ++ g ++ g).
    Motif(a ++ c ++ g).
  )");
  if (!reads.ok()) {
    std::fprintf(stderr, "%s\n", reads.status().ToString().c_str());
    return 1;
  }

  seqdl::Result<seqdl::Instance> out = seqdl::Eval(u, *program, *reads);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("marked occurrences:\n%s\n",
              out->Project({*u.FindRel("Marked")}).ToString(u).c_str());
  std::printf("5' flanks:\n%s\n",
              out->Project({*u.FindRel("Flank5")}).ToString(u).c_str());
  std::printf("enriched (>= 3 distinct occurrences): %s\n\n",
              out->Contains(*u.FindRel("Enriched"), {}) ? "yes" : "no");

  // The same pipeline without packing, via Lemma 4.13: flat relations
  // only, same flat answers.
  seqdl::Result<seqdl::Program> flat =
      seqdl::EliminatePackingNonrecursive(u, *program);
  if (!flat.ok()) {
    std::fprintf(stderr, "%s\n", flat.status().ToString().c_str());
    return 1;
  }
  std::printf("packing-free rewriting has %zu rules (features %s)\n",
              flat->NumRules(),
              seqdl::DetectFeatures(*flat).ToString().c_str());
  seqdl::Result<seqdl::Instance> out2 = seqdl::Eval(u, *flat, *reads);
  if (!out2.ok()) {
    std::fprintf(stderr, "%s\n", out2.status().ToString().c_str());
    return 1;
  }
  std::printf("flat rewriting agrees on Enriched: %s\n",
              out2->Contains(*u.FindRel("Enriched"), {}) ==
                      out->Contains(*u.FindRel("Enriched"), {})
                  ? "yes"
                  : "NO");
  return 0;
}
