// Process mining over event logs (the paper's first motivating
// application): find all logs in which every occurrence of 'co'
// (complete order) is eventually followed by 'rp' (receive payment).
//
// Demonstrates: equations for sequence pattern matching, stratified
// negation for the "for every occurrence" quantification, and the
// workload generators.
#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

int main() {
  seqdl::Universe u;

  // The corpus carries the paper-derived program:
  //   HasRp($v) <- R($u ++ co ++ $v), $v = $s ++ rp ++ $t.
  //   Bad($x)   <- R($x), $x = $u ++ co ++ $v, !HasRp($v).
  //   Good($x)  <- R($x), !Bad($x).
  seqdl::Result<seqdl::ParsedQuery> query =
      seqdl::ParsePaperQuery(u, "process_mining");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n",
              seqdl::FormatProgram(u, query->program).c_str());

  // A hand-written event log plus random ones.
  seqdl::Result<seqdl::Instance> logs = seqdl::ParseInstance(u, R"(
    R(browse ++ co ++ pack ++ ship ++ rp).
    R(browse ++ co ++ pack ++ ship).
    R(rp ++ co).
    R(co ++ rp ++ co ++ rp).
  )");
  if (!logs.ok()) {
    std::fprintf(stderr, "%s\n", logs.status().ToString().c_str());
    return 1;
  }
  seqdl::EventLogWorkload w;
  w.count = 6;
  w.len = 7;
  w.seed = 11;
  seqdl::Result<seqdl::Instance> random = seqdl::RandomEventLogs(u, w);
  if (!random.ok()) {
    std::fprintf(stderr, "%s\n", random.status().ToString().c_str());
    return 1;
  }
  logs->UnionWith(*random);

  seqdl::Result<seqdl::Instance> out =
      seqdl::Eval(u, query->program, *logs);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  seqdl::RelId r = *u.FindRel("R");
  std::printf("%-55s %s\n", "event log", "compliant?");
  for (const seqdl::Tuple& t : out->Tuples(r)) {
    std::printf("%-55s %s\n", u.FormatPath(t[0]).c_str(),
                out->Contains(query->output, t) ? "yes" : "NO");
  }
  return 0;
}
