// The JSON restructuring example from the paper's introduction: a Sales
// object mapping items to per-year volumes, modeled as a set of length-3
// paths item·year·value, regrouped by year instead of item — "simply
// swapping the first two elements of every sequence". Also shows packing
// used to build a nested (non-flat) grouped representation, and a
// deep-equality check between two objects.
#include <cstdio>

#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"

int main() {
  seqdl::Universe u;

  seqdl::Result<seqdl::Instance> sales = seqdl::ParseInstance(u, R"(
    Sales(widget ++ y2020 ++ 100).
    Sales(widget ++ y2021 ++ 120).
    Sales(gadget ++ y2020 ++ 7).
    Sales(gadget ++ y2022 ++ 15).
  )");
  if (!sales.ok()) {
    std::fprintf(stderr, "%s\n", sales.status().ToString().c_str());
    return 1;
  }

  // Regroup by year; additionally build a nested view year·<item·value>
  // using packing, and compare the original object against a reference
  // object with deep equality (two objects are deep-equal iff their sets of
  // paths coincide).
  seqdl::Result<seqdl::Program> program = seqdl::ParseProgram(u, R"(
    ByYear(@year ++ @item ++ @value) <- Sales(@item ++ @year ++ @value).
    Nested(@year ++ <@item ++ @value>) <- Sales(@item ++ @year ++ @value).
    ---
    Diff <- Sales($x), !Reference($x).
    Diff <- Reference($x), !Sales($x).
    ---
    DeepEqual <- !Diff.
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n",
              seqdl::FormatProgram(u, *program).c_str());

  // A reference object that differs in one leaf.
  seqdl::Result<seqdl::Instance> reference = seqdl::ParseInstance(u, R"(
    Reference(widget ++ y2020 ++ 100).
    Reference(widget ++ y2021 ++ 120).
    Reference(gadget ++ y2020 ++ 7).
    Reference(gadget ++ y2022 ++ 99).
  )");
  sales->UnionWith(*reference);

  seqdl::Result<seqdl::Instance> out = seqdl::Eval(u, *program, *sales);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("grouped by year:\n%s\n",
              out->Project({*u.FindRel("ByYear")}).ToString(u).c_str());
  std::printf("nested view (packing):\n%s\n",
              out->Project({*u.FindRel("Nested")}).ToString(u).c_str());
  std::printf("Sales deep-equal to Reference: %s\n",
              out->Contains(*u.FindRel("DeepEqual"), {}) ? "yes" : "no");
  return 0;
}
