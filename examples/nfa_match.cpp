// Example 2.1: regular-language matching in Sequence Datalog. An NFA is
// stored as classical relations (N initial states, D transitions, F final
// states); the recursive program computes which strings from R the
// automaton accepts. The result is cross-checked against a direct C++
// simulator.
#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/workload/generators.h"

int main() {
  seqdl::Universe u;
  seqdl::Result<seqdl::ParsedQuery> query =
      seqdl::ParsePaperQuery(u, "ex21_nfa");
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("program (Example 2.1):\n%s\n",
              seqdl::FormatProgram(u, query->program).c_str());

  // An NFA for the language (a|b)*ab: q0 --a/b--> q0, q0 --a--> q1,
  // q1 --b--> q2 (accepting).
  seqdl::Nfa nfa;
  nfa.num_states = 3;
  nfa.alphabet = 2;
  nfa.initial = {true, false, false};
  nfa.accepting = {false, false, true};
  nfa.delta.assign(3, std::vector<std::vector<uint32_t>>(2));
  nfa.delta[0][0] = {0, 1};  // a
  nfa.delta[0][1] = {0};     // b
  nfa.delta[1][1] = {2};     // b
  seqdl::Result<seqdl::Instance> in = seqdl::NfaToInstance(u, nfa);
  if (!in.ok()) {
    std::fprintf(stderr, "%s\n", in.status().ToString().c_str());
    return 1;
  }

  seqdl::StringWorkload w;
  w.count = 10;
  w.min_len = 1;
  w.max_len = 6;
  w.seed = 23;
  seqdl::Result<seqdl::Instance> strings = seqdl::RandomStrings(u, w);
  in->UnionWith(*strings);

  seqdl::Result<seqdl::Instance> out = seqdl::Eval(u, query->program, *in);
  if (!out.ok()) {
    std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
    return 1;
  }

  std::printf("language: (a|b)*ab\n");
  std::printf("%-16s %-10s %-10s\n", "string", "datalog", "simulator");
  seqdl::RelId r = *u.FindRel("R");
  for (const seqdl::Tuple& t : out->Tuples(r)) {
    std::vector<uint32_t> word;
    for (seqdl::Value v : u.GetPath(t[0])) {
      word.push_back(static_cast<uint32_t>(u.AtomName(v.atom())[0] - 'a'));
    }
    bool datalog = out->Contains(query->output, t);
    bool direct = nfa.Accepts(word);
    std::printf("%-16s %-10s %-10s%s\n", u.FormatPath(t[0]).c_str(),
                datalog ? "accept" : "reject",
                direct ? "accept" : "reject",
                datalog == direct ? "" : "   MISMATCH");
  }
  return 0;
}
