// Fragment explorer: reads a Sequence Datalog program (from a file given
// as argv[1], or a built-in demo), reports which of the paper's six
// features it uses, where its fragment sits in the Figure 1 Hasse diagram,
// and applies the applicable redundancy transformations (Theorems 4.2,
// 4.7, 4.15/Lemma 4.13).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/analysis/dependency_graph.h"
#include "src/analysis/features.h"
#include "src/analysis/safety.h"
#include "src/fragments/fragments.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/transform/arity_elim.h"
#include "src/transform/equation_elim.h"
#include "src/transform/packing_elim.h"

namespace {

constexpr const char* kDemo =
    "T($u ++ <$s> ++ $v) <- R($u ++ $s ++ $v), S($s).\n"
    "A <- T($x), T($y), T($z), $x != $y, $x != $z, $y != $z.\n";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  seqdl::Universe u;
  seqdl::Result<seqdl::Program> program = seqdl::ParseProgram(u, source);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n", seqdl::FormatProgram(u, *program).c_str());

  seqdl::Status valid = seqdl::ValidateProgram(u, *program);
  std::printf("validation: %s\n", valid.ToString().c_str());
  if (!valid.ok()) return 1;

  seqdl::FeatureSet features = seqdl::DetectFeatures(*program);
  std::printf("features used: %s\n", features.ToString().c_str());

  // Locate the fragment's equivalence class in Figure 1.
  for (const seqdl::FragmentClass& cls : seqdl::CoreEquivalenceClasses()) {
    if (seqdl::Equivalent(features, cls.Rep())) {
      std::printf("expressiveness class (Figure 1): %s\n",
                  cls.Label().c_str());
      break;
    }
  }

  // Apply the redundancy results that the paper guarantees.
  seqdl::Program current = *program;
  if (features.Contains(seqdl::Feature::kPacking) &&
      !features.Contains(seqdl::Feature::kRecursion)) {
    seqdl::Result<seqdl::Program> q =
        seqdl::EliminatePackingNonrecursive(u, current);
    if (q.ok()) {
      std::printf("\nafter packing elimination (Lemma 4.13, %zu rules):\n%s",
                  q->NumRules(), seqdl::FormatProgram(u, *q).c_str());
      current = *q;
    } else {
      std::printf("packing elimination failed: %s\n",
                  q.status().ToString().c_str());
    }
  }
  seqdl::FeatureSet now = seqdl::DetectFeatures(current);
  if (now.Contains(seqdl::Feature::kEquations) &&
      now.Contains(seqdl::Feature::kIntermediate)) {
    seqdl::Result<seqdl::Program> q =
        seqdl::EliminateEquations(u, current);
    if (q.ok()) {
      std::printf("\nafter equation elimination (Theorem 4.7, %zu rules)\n",
                  q->NumRules());
      current = *q;
    }
  }
  now = seqdl::DetectFeatures(current);
  if (now.Contains(seqdl::Feature::kArity)) {
    seqdl::Result<seqdl::Program> q = seqdl::EliminateArity(u, current);
    if (q.ok()) {
      std::printf("\nafter arity elimination (Theorem 4.2, %zu rules)\n",
                  q->NumRules());
      current = *q;
    } else {
      std::printf("\narity elimination not applicable: %s\n",
                  q.status().ToString().c_str());
    }
  }
  std::printf("\nfinal features: %s\n",
              seqdl::DetectFeatures(current).ToString().c_str());
  return 0;
}
