// Quickstart: parse a Sequence Datalog program, compile it once, and run
// it against several instances.
//
//   $ ./build/quickstart
//
// The program is Example 3.1 from the paper: all paths from R that consist
// exclusively of a's, expressed with a single equation (fragment {E}).
#include <cstdio>

#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"

int main() {
  seqdl::Universe u;

  // 1. Parse a program. Concatenation is `++` (or `·`), atomic variables
  //    are @x, path variables are $x, rules end with a period.
  seqdl::Result<seqdl::Program> program = seqdl::ParseProgram(u, R"(
    S($x) <- R($x), a ++ $x = $x ++ a.
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n", seqdl::FormatProgram(u, *program).c_str());

  // 2. Compile once: validation (safety, stratification) and rule planning
  //    happen here, not on every evaluation.
  seqdl::Result<seqdl::PreparedProgram> prepared =
      seqdl::Engine::Compile(u, std::move(*program));
  if (!prepared.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  // 3. Run against any number of instances. Budgets in RunOptions guard
  //    against nonterminating programs.
  seqdl::RelId s = *u.FindRel("S");
  for (const char* instance_text : {
           "R(a ++ a ++ a). R(a ++ b ++ a). R(a). R(eps).",
           "R(a ++ a). R(b).",
       }) {
    seqdl::Result<seqdl::Instance> input =
        seqdl::ParseInstance(u, instance_text);
    if (!input.ok()) {
      std::fprintf(stderr, "instance error: %s\n",
                   input.status().ToString().c_str());
      return 1;
    }
    seqdl::EvalStats stats;
    seqdl::Result<seqdl::Instance> output =
        prepared->Run(*input, {}, &stats);
    if (!output.ok()) {
      std::fprintf(stderr, "eval error: %s\n",
                   output.status().ToString().c_str());
      return 1;
    }
    // 4. Project onto the query's output relation and print.
    std::printf("input: %s\nS = the paths consisting exclusively of a's:\n%s",
                instance_text, output->Project({s}).ToString(u).c_str());
    std::printf("(%zu facts derived; compile %.3f ms, run %.3f ms)\n\n",
                stats.derived_facts, stats.compile_seconds * 1e3,
                stats.run_seconds * 1e3);
  }
  return 0;
}
