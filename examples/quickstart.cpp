// Quickstart: parse a Sequence Datalog program, evaluate it on an
// instance, and print the result.
//
//   $ ./build/examples/quickstart
//
// The program is Example 3.1 from the paper: all paths from R that consist
// exclusively of a's, expressed with a single equation (fragment {E}).
#include <cstdio>

#include "src/engine/eval.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"

int main() {
  seqdl::Universe u;

  // 1. Parse a program. Concatenation is `++` (or `·`), atomic variables
  //    are @x, path variables are $x, rules end with a period.
  seqdl::Result<seqdl::Program> program = seqdl::ParseProgram(u, R"(
    S($x) <- R($x), a ++ $x = $x ++ a.
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("program:\n%s\n", seqdl::FormatProgram(u, *program).c_str());

  // 2. Parse an input instance (a set of ground facts).
  seqdl::Result<seqdl::Instance> input = seqdl::ParseInstance(u, R"(
    R(a ++ a ++ a).
    R(a ++ b ++ a).
    R(a).
    R(eps).
  )");
  if (!input.ok()) {
    std::fprintf(stderr, "instance error: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }

  // 3. Evaluate. Budgets guard against nonterminating programs
  //    (see EvalOptions).
  seqdl::Result<seqdl::Instance> output =
      seqdl::Eval(u, *program, *input);
  if (!output.ok()) {
    std::fprintf(stderr, "eval error: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }

  // 4. Project onto the query's output relation and print.
  seqdl::RelId s = *u.FindRel("S");
  std::printf("S = the paths consisting exclusively of a's:\n%s",
              output->Project({s}).ToString(u).c_str());
  return 0;
}
