// Durability costs, measured: WAL commit throughput under each fsync
// policy, cold recovery (`Database::Open(dir)`) versus parsing and
// re-ingesting the same facts, and query latency on a recovered
// database versus a never-persisted one. Prints comparison tables and
// then runs the google-benchmark timers; `--json` instead emits one
// machine-readable document (for the nightly difftest workflow's
// regression record) and skips the benchmark harness.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/instance.h"
#include "src/storage/format.h"
#include "src/storage/storage.h"
#include "src/storage/wal.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string MakeTempDir(const char* tag) {
  const char* root = std::getenv("TMPDIR");
  if (root == nullptr || *root == '\0') root = "/tmp";
  std::string tmpl = std::string(root) + "/seqdl_bench_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  if (got == nullptr) {
    std::fprintf(stderr, "mkdtemp %s failed: %s\n", tmpl.c_str(),
                 std::strerror(errno));
    std::abort();
  }
  return got;
}

void RemoveTree(const std::string& dir) {
  Result<std::vector<std::string>> names = storage::ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)::unlink((dir + "/" + name).c_str());
    }
  }
  (void)::rmdir(dir.c_str());
}

/// `facts` edge facts over a long cycle, plus a path-valued relation so
/// the segment encoder's path table sees nested structure, not just
/// atoms.
Instance MakeFacts(Universe& u, size_t facts) {
  Instance out;
  RelId e = *u.InternRel("E", 2);
  RelId p = *u.InternRel("P", 1);
  size_t nodes = facts;
  for (size_t i = 0; i < facts; ++i) {
    std::vector<Value> from = {
        Value::Atom(u.InternAtom("n" + std::to_string(i)))};
    std::vector<Value> to = {
        Value::Atom(u.InternAtom("n" + std::to_string((i + 1) % nodes)))};
    if (i % 8 == 0) {
      std::vector<Value> path = {from[0], to[0]};
      out.Add(p, Tuple{u.InternPath(path)});
    } else {
      out.Add(e, Tuple{u.InternPath(from), u.InternPath(to)});
    }
  }
  return out;
}

/// One commit batch of `batch` fresh facts, disjoint per round so every
/// append is effective (dedupe never empties it).
Instance MakeBatch(Universe& u, size_t round, size_t batch) {
  Instance out;
  RelId e = *u.InternRel("E", 2);
  for (size_t i = 0; i < batch; ++i) {
    std::string stem = "b" + std::to_string(round) + "_" + std::to_string(i);
    std::vector<Value> src = {Value::Atom(u.InternAtom(stem + "s"))};
    std::vector<Value> dst = {Value::Atom(u.InternAtom(stem + "t"))};
    out.Add(e, Tuple{u.InternPath(src), u.InternPath(dst)});
  }
  return out;
}

struct WalPolicyResult {
  const char* policy;
  size_t commits;
  double ms;
  double commits_per_sec;
};

/// Commit throughput through the full Database path (log + publish),
/// one data directory per policy.
WalPolicyResult MeasureWalPolicy(storage::SyncMode mode, const char* name,
                                 size_t commits, size_t batch) {
  std::string dir = MakeTempDir("wal");
  Universe u;
  Database::OpenOptions opts;
  opts.data_dir = dir;
  opts.sync_mode = mode;
  opts.sync_interval_ms = 10;
  Result<Database> db = Database::Open(u, Instance(), opts);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < commits; ++i) {
    if (!db->Append(MakeBatch(u, i, batch)).ok()) std::abort();
  }
  double ms = MsSince(start);
  db->Close();
  RemoveTree(dir);
  return {name, commits, ms, commits / (ms / 1000.0)};
}

struct RecoveryResult {
  size_t facts;
  double cold_open_ms;
  double reingest_ms;
  double speedup;
  double query_recovered_ms;
  double query_memory_ms;
  uint64_t on_disk_bytes;
};

RecoveryResult MeasureRecovery(size_t facts) {
  std::string dir = MakeTempDir("open");
  RecoveryResult r{};
  r.facts = facts;
  std::string rendered;
  {
    Universe u;
    Database::OpenOptions opts;
    opts.data_dir = dir;
    Result<Database> db = Database::Open(u, MakeFacts(u, facts), opts);
    if (!db.ok()) std::abort();
    rendered = db->edb().ToString(u);
    r.on_disk_bytes = db->storage_info().on_disk_bytes;
    db->Close();
  }

  constexpr const char* kHop = "H($x, $z) <- E($x, $y), E($y, $z).\n";
  auto query_ms = [&](Database& db, Universe& u) {
    Result<Program> p = ParseProgram(u, kHop);
    if (!p.ok()) std::abort();
    Result<PreparedProgram> prog = db.Compile(std::move(*p));
    if (!prog.ok()) std::abort();
    auto start = std::chrono::steady_clock::now();
    Result<Instance> out = db.Snapshot().Run(*prog);
    if (!out.ok()) std::abort();
    return MsSince(start);
  };

  {
    // Cold recovery: mmap'd segments decoded straight into the store.
    Universe u;
    Database::OpenOptions opts;
    opts.data_dir = dir;
    auto start = std::chrono::steady_clock::now();
    Result<Database> db = Database::Open(u, opts);
    if (!db.ok()) std::abort();
    r.cold_open_ms = MsSince(start);
    r.query_recovered_ms = query_ms(*db, u);
  }
  {
    // The pre-durability restart path: render to text, parse, re-ingest.
    Universe u;
    auto start = std::chrono::steady_clock::now();
    Result<Instance> parsed = ParseInstance(u, rendered);
    if (!parsed.ok()) std::abort();
    Result<Database> db = Database::Open(u, std::move(*parsed));
    if (!db.ok()) std::abort();
    r.reingest_ms = MsSince(start);
    r.query_memory_ms = query_ms(*db, u);
  }
  r.speedup = r.reingest_ms / r.cold_open_ms;
  RemoveTree(dir);
  return r;
}

constexpr size_t kWalCommits = 200;
constexpr size_t kWalBatch = 8;

void PrintTables(bool json) {
  std::vector<WalPolicyResult> wal;
  wal.push_back(MeasureWalPolicy(storage::SyncMode::kAlways, "always",
                                 kWalCommits, kWalBatch));
  wal.push_back(MeasureWalPolicy(storage::SyncMode::kInterval, "interval",
                                 kWalCommits, kWalBatch));
  wal.push_back(MeasureWalPolicy(storage::SyncMode::kNever, "never",
                                 kWalCommits, kWalBatch));
  std::vector<RecoveryResult> rec;
  rec.push_back(MeasureRecovery(10'000));
  rec.push_back(MeasureRecovery(50'000));

  if (json) {
    std::printf("{\n  \"wal_policies\": [\n");
    for (size_t i = 0; i < wal.size(); ++i) {
      std::printf(
          "    {\"policy\": \"%s\", \"commits\": %zu, \"ms\": %.3f, "
          "\"commits_per_sec\": %.1f}%s\n",
          wal[i].policy, wal[i].commits, wal[i].ms, wal[i].commits_per_sec,
          i + 1 < wal.size() ? "," : "");
    }
    std::printf("  ],\n  \"recovery\": [\n");
    for (size_t i = 0; i < rec.size(); ++i) {
      std::printf(
          "    {\"facts\": %zu, \"cold_open_ms\": %.3f, "
          "\"reingest_ms\": %.3f, \"speedup\": %.2f, "
          "\"query_recovered_ms\": %.3f, \"query_memory_ms\": %.3f, "
          "\"on_disk_bytes\": %llu}%s\n",
          rec[i].facts, rec[i].cold_open_ms, rec[i].reingest_ms,
          rec[i].speedup, rec[i].query_recovered_ms, rec[i].query_memory_ms,
          static_cast<unsigned long long>(rec[i].on_disk_bytes),
          i + 1 < rec.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return;
  }

  std::printf("=== WAL commit throughput by fsync policy ===\n");
  std::printf("%-10s %-9s %-10s %s\n", "policy", "commits", "total(ms)",
              "commits/s");
  for (const WalPolicyResult& w : wal) {
    std::printf("%-10s %-9zu %-10.2f %.0f\n", w.policy, w.commits, w.ms,
                w.commits_per_sec);
  }
  std::printf("\n=== Cold Open(dir) vs parse-and-re-ingest ===\n");
  std::printf("%-9s %-10s %-12s %-9s %-13s %-11s %s\n", "facts", "open(ms)",
              "reingest(ms)", "speedup", "query-rec(ms)", "query-mem(ms)",
              "disk(KB)");
  for (const RecoveryResult& x : rec) {
    std::printf("%-9zu %-10.2f %-12.2f %-9.2fx %-13.2f %-11.2f %llu\n",
                x.facts, x.cold_open_ms, x.reingest_ms, x.speedup,
                x.query_recovered_ms, x.query_memory_ms,
                static_cast<unsigned long long>(x.on_disk_bytes / 1024));
  }
  std::printf("\n");
}

void BM_WalCommit(benchmark::State& state) {
  storage::SyncMode mode = static_cast<storage::SyncMode>(state.range(0));
  std::string dir = MakeTempDir("bm_wal");
  Universe u;
  Database::OpenOptions opts;
  opts.data_dir = dir;
  opts.sync_mode = mode;
  opts.sync_interval_ms = 10;
  Result<Database> db = Database::Open(u, Instance(), opts);
  if (!db.ok()) std::abort();
  size_t round = 0;
  for (auto _ : state) {
    if (!db->Append(MakeBatch(u, round++, kWalBatch)).ok()) std::abort();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  db->Close();
  RemoveTree(dir);
}
BENCHMARK(BM_WalCommit)
    ->Arg(static_cast<int>(storage::SyncMode::kAlways))
    ->Arg(static_cast<int>(storage::SyncMode::kInterval))
    ->Arg(static_cast<int>(storage::SyncMode::kNever));

void BM_ColdOpen(benchmark::State& state) {
  size_t facts = static_cast<size_t>(state.range(0));
  std::string dir = MakeTempDir("bm_open");
  {
    Universe u;
    Database::OpenOptions opts;
    opts.data_dir = dir;
    Result<Database> db = Database::Open(u, MakeFacts(u, facts), opts);
    if (!db.ok()) std::abort();
    db->Close();
  }
  for (auto _ : state) {
    Universe u;
    Database::OpenOptions opts;
    opts.data_dir = dir;
    Result<Database> db = Database::Open(u, opts);
    if (!db.ok()) std::abort();
    benchmark::DoNotOptimize(db->NumFacts());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(facts));
  RemoveTree(dir);
}
BENCHMARK(BM_ColdOpen)->Arg(10'000)->Arg(50'000);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  seqdl::PrintTables(json);
  if (json) return 0;  // machine-readable mode: tables only, no harness
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
