// Load generator for the TCP front end (src/server/): loopback
// round-trip throughput of the wire protocol against a live server.
//
//   * BM_EpochRoundTrip       — the protocol floor: a body-less request
//     and a fixed-size reply; pure framing + dispatch + socket cost.
//   * BM_SmallQueryRoundTrip  — `run` of a tiny program over a small
//     pre-indexed EDB, steady state: after the first evaluation at an
//     epoch, identical queries are answered from the service's
//     epoch-keyed result cache (deterministic evaluation over an
//     immutable snapshot makes the rendered output a pure function of
//     program x epoch), so this measures what a production point-query
//     workload pays per round trip. The acceptance target is >= 100k
//     aggregate round-trips/s at 8 client threads.
//   * BM_SmallQueryUncached   — the same query with the result cache
//     disabled: every round trip pays the full snapshot pin + fixpoint
//     + render, the cold/analytical cost.
//   * BM_RunVsInProcess       — the same query through DatabaseService
//     without sockets, to separate engine cost from wire cost.
//   * BM_AppendRoundTrip      — small ingest batches: epoch publishes
//     per second over the wire (single client; appends serialize on the
//     database's writer lock by design).
//   * BM_DeltaAppendQuery /
//     BM_FullAppendQuery      — an append followed by a re-serve of a
//     recursive query over a 128-node chain. With maintained views
//     (the default) the append delta-refreshes the materialized view
//     and the re-serve replays it; with the cache disabled every
//     re-serve pays the whole fixpoint again. The acceptance bar:
//     delta >= 5x the full re-run.
//   * BM_CachedQueryUnderGenerativeLoad — admission control as an
//     isolation mechanism: one adversarial client hammers a generative
//     (non-terminating) program at a server running
//     --admission=budget while the other 7 threads serve cached point
//     queries. Every adversarial run fails fast at the enforced caps
//     (kResourceExhausted) instead of monopolizing a worker, so the
//     cached-query items/s should stay within the same order of
//     magnitude as BM_SmallQueryRoundTrip/threads:8 — compare the two
//     counters. With --admission=off the same workload would pin
//     workers until the 5M-fact global cap.
//
// Threaded benches share one server and open one connection per client
// thread (the client is not thread-safe; connections are cheap). The
// aggregate items/s counter is what the ISSUE acceptance reads.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/engine/database.h"
#include "src/engine/instance.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

constexpr char kPointQuery[] = "S($x) <- R($x).\n";

/// A small EDB: 64 single-atom facts — representative of a point query
/// against an already-indexed store, not of a heavy analytical run.
std::string SmallEdb() {
  std::string out;
  for (int i = 0; i < 64; ++i) {
    out += "R(v" + std::to_string(i) + ").\n";
  }
  return out;
}

/// Universe + service + server with matched lifetimes for the uncached
/// bench (leaked on purpose: benchmark threads may outlive main's
/// scope).
struct TestUncachedServer {
  std::unique_ptr<Universe> u;
  std::unique_ptr<DatabaseService> service;
  std::unique_ptr<Server> server;
};

/// One shared server for every benchmark thread; per-thread clients.
struct BenchServer {
  std::unique_ptr<Universe> u;
  std::unique_ptr<DatabaseService> service;
  std::unique_ptr<Server> server;

  static BenchServer* Get() {
    static BenchServer* instance = [] {
      auto* s = new BenchServer();
      s->u = std::make_unique<Universe>();
      Result<Instance> edb = ParseInstance(*s->u, SmallEdb());
      if (!edb.ok()) std::abort();
      Result<Database> db = Database::Open(*s->u, std::move(*edb));
      if (!db.ok()) std::abort();
      s->service =
          std::make_unique<DatabaseService>(*s->u, std::move(*db));
      ServerOptions opts;
      opts.threads = 16;  // never the bottleneck for <= 8 client threads
      Result<std::unique_ptr<Server>> server =
          Server::Start(*s->service, opts);
      if (!server.ok()) std::abort();
      s->server = std::move(*server);
      // Warm the program cache: steady-state round trips measure the
      // cached-plan path, not compilation.
      Result<Client> warm = Client::Connect("127.0.0.1", s->server->port());
      if (!warm.ok() || !warm->Compile(kPointQuery).ok()) std::abort();
      return s;
    }();
    return instance;
  }
};

void BM_EpochRoundTrip(benchmark::State& state) {
  BenchServer* bs = BenchServer::Get();
  Result<Client> client = Client::Connect("127.0.0.1", bs->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<protocol::DbInfo> info = client->Epoch();
    if (!info.ok()) {
      state.SkipWithError(info.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(info);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EpochRoundTrip)->Threads(1)->Threads(8)->UseRealTime();

void BM_SmallQueryRoundTrip(benchmark::State& state) {
  BenchServer* bs = BenchServer::Get();
  Result<Client> client = Client::Connect("127.0.0.1", bs->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    // collect_derived_stats off: the hot query path, no measurement
    // pass, no accumulator contention.
    Result<protocol::RunReply> run =
        client->Run(kPointQuery, "", "", /*collect_derived_stats=*/false);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SmallQueryRoundTrip)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_SmallQueryUncached(benchmark::State& state) {
  // A private server with the result cache off: every request is a full
  // evaluation. Static so the 1- and 8-thread variants share it (the
  // fixture must outlive every benchmark thread).
  static TestUncachedServer* us = [] {
    auto* s = new TestUncachedServer();
    s->u = std::make_unique<Universe>();
    Result<Instance> edb = ParseInstance(*s->u, SmallEdb());
    if (!edb.ok()) std::abort();
    Result<Database> db = Database::Open(*s->u, std::move(*edb));
    if (!db.ok()) std::abort();
    ServiceOptions sopts;
    sopts.result_cache_entries = 0;
    s->service = std::make_unique<DatabaseService>(*s->u, std::move(*db),
                                                   std::move(sopts));
    ServerOptions opts;
    opts.threads = 16;
    Result<std::unique_ptr<Server>> server = Server::Start(*s->service, opts);
    if (!server.ok()) std::abort();
    s->server = std::move(*server);
    return s;
  }();
  Result<Client> client = Client::Connect("127.0.0.1", us->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<protocol::RunReply> run =
        client->Run(kPointQuery, "", "", /*collect_derived_stats=*/false);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SmallQueryUncached)->Threads(1)->Threads(8)->UseRealTime();

void BM_RunVsInProcess(benchmark::State& state) {
  BenchServer* bs = BenchServer::Get();
  protocol::RunRequest req;
  req.program = kPointQuery;
  req.collect_derived_stats = false;
  for (auto _ : state) {
    Result<protocol::RunReply> run = bs->service->Run(req);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RunVsInProcess)->Threads(1)->Threads(8)->UseRealTime();

void BM_AppendRoundTrip(benchmark::State& state) {
  // A private server: appends mutate the epoch counter, and racing the
  // query benches would skew both.
  Universe u;
  Result<Instance> edb = ParseInstance(u, SmallEdb());
  if (!edb.ok()) {
    state.SkipWithError("edb setup failed");
    return;
  }
  Database::OpenOptions dbopts;
  dbopts.auto_compact_segments = 8;  // keep the stack shallow, LSM-style
  Result<Database> db = Database::Open(u, std::move(*edb), dbopts);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  DatabaseService service(u, std::move(*db));
  Result<std::unique_ptr<Server>> server = Server::Start(service, {});
  if (!server.ok()) {
    state.SkipWithError(server.status().ToString().c_str());
    return;
  }
  Result<Client> client = Client::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  size_t next = 1000;
  for (auto _ : state) {
    // Each batch is one fresh fact: an epoch bump per round trip.
    Result<protocol::AppendReply> reply =
        client->Append("R(w" + std::to_string(next++) + ").");
    if (!reply.ok()) {
      state.SkipWithError(reply.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(reply);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AppendRoundTrip);

constexpr char kReachQuery[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

/// A 128-node chain: the reachability fixpoint derives ~n^2/2 tuples,
/// making a full re-run expensive while a single appended edge only
/// derives the fresh source's reachable set.
std::string ChainEdb() {
  std::string out;
  for (int i = 0; i + 1 < 128; ++i) {
    out += "E(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
           ").\n";
  }
  return out;
}

// One append + one re-serve per iteration. `maintained` toggles the
// service between the maintained-view cache (append delta-refreshes the
// view, the run replays it) and the uncached evaluate-every-time path.
void RunDeltaAppendServer(benchmark::State& state, bool maintained) {
  Universe u;
  Result<Instance> edb = ParseInstance(u, ChainEdb());
  if (!edb.ok()) {
    state.SkipWithError("edb setup failed");
    return;
  }
  Database::OpenOptions dbopts;
  dbopts.auto_compact_segments = 8;
  Result<Database> db = Database::Open(u, std::move(*edb), dbopts);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  ServiceOptions sopts;
  if (!maintained) sopts.result_cache_entries = 0;
  DatabaseService service(u, std::move(*db), std::move(sopts));
  Result<std::unique_ptr<Server>> server = Server::Start(service, {});
  if (!server.ok()) {
    state.SkipWithError(server.status().ToString().c_str());
    return;
  }
  Result<Client> client = Client::Connect("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  // Warm-up: compile the program and materialize the view (or build the
  // indexes) before the timed loop.
  if (!client->Run(kReachQuery, "", "", false).ok()) {
    state.SkipWithError("warm-up run failed");
    return;
  }
  size_t next = 0;
  for (auto _ : state) {
    Result<protocol::AppendReply> append =
        client->Append("E(z" + std::to_string(next++) + ", v0).");
    if (!append.ok()) {
      state.SkipWithError(append.status().ToString().c_str());
      return;
    }
    Result<protocol::RunReply> run =
        client->Run(kReachQuery, "", "", /*collect_derived_stats=*/false);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_DeltaAppendQuery(benchmark::State& state) {
  RunDeltaAppendServer(state, /*maintained=*/true);
}
BENCHMARK(BM_DeltaAppendQuery);

constexpr char kGenerativeQuery[] =
    "G($x) <- seed($x).\nG($x ++ $x) <- G($x).\n";

void BM_CachedQueryUnderGenerativeLoad(benchmark::State& state) {
  // A private server under --admission=budget with tight caps: the
  // adversary's doubling fixpoint dies at the path-length cap within a
  // few rounds. Static so every benchmark thread shares it.
  static TestUncachedServer* gs = [] {
    auto* s = new TestUncachedServer();
    s->u = std::make_unique<Universe>();
    Result<Instance> edb = ParseInstance(*s->u, SmallEdb() + "seed(a).\n");
    if (!edb.ok()) std::abort();
    Result<Database> db = Database::Open(*s->u, std::move(*edb));
    if (!db.ok()) std::abort();
    ServiceOptions sopts;
    sopts.admission = AdmissionPolicy::kBudget;
    sopts.generative_budget.max_facts = 512;
    sopts.generative_budget.max_iterations = 64;
    sopts.generative_budget.max_path_length = 256;
    s->service = std::make_unique<DatabaseService>(*s->u, std::move(*db),
                                                   std::move(sopts));
    ServerOptions opts;
    opts.threads = 16;
    Result<std::unique_ptr<Server>> server = Server::Start(*s->service, opts);
    if (!server.ok()) std::abort();
    s->server = std::move(*server);
    Result<Client> warm = Client::Connect("127.0.0.1", s->server->port());
    if (!warm.ok() || !warm->Compile(kPointQuery).ok()) std::abort();
    return s;
  }();
  Result<Client> client = Client::Connect("127.0.0.1", gs->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  const bool adversary = state.threads() > 1 && state.thread_index() == 0;
  for (auto _ : state) {
    if (adversary) {
      // Must come back kResourceExhausted quickly — budget enforcement
      // is the whole point. A success here means the policy is off.
      Result<protocol::RunReply> run =
          client->Run(kGenerativeQuery, "", "", false);
      if (run.ok()) {
        state.SkipWithError("generative run unexpectedly succeeded");
        return;
      }
    } else {
      Result<protocol::RunReply> run =
          client->Run(kPointQuery, "", "", /*collect_derived_stats=*/false);
      if (!run.ok()) {
        state.SkipWithError(run.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(run->rendered);
    }
  }
  // Only the cached-query threads count: items/s is the throughput the
  // well-behaved clients kept while the adversary hammered the server.
  if (!adversary) {
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  }
}
BENCHMARK(BM_CachedQueryUnderGenerativeLoad)->Threads(8)->UseRealTime();

void BM_FullAppendQuery(benchmark::State& state) {
  RunDeltaAppendServer(state, /*maintained=*/false);
}
BENCHMARK(BM_FullAppendQuery);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::fprintf(stderr,
               "-- items_per_second on BM_SmallQueryRoundTrip/threads:8 is "
               "the aggregate round-trips/s acceptance number\n");
  return 0;
}
