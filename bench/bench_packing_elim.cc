// Lemmas 4.10-4.13: the nonrecursive packing-elimination pipeline itself —
// purification (associative unification), packing-structure splitting, and
// head rewriting — benchmarked on programs of growing packing complexity.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/analysis/packing_structure.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/packing_elim.h"

namespace seqdl {
namespace {

// A pipeline of `depth` strata, each wrapping the previous stratum's
// output one packing level deeper, then unwrapping at the end.
std::string NestedPipelineProgram(size_t depth) {
  std::string text = "T0(<$x>) <- R($x).\n";
  for (size_t d = 1; d < depth; ++d) {
    text += "T" + std::to_string(d) + "(<$x>) <- T" + std::to_string(d - 1) +
            "($x).\n";
  }
  std::string inner = "$x";
  for (size_t d = 0; d < depth; ++d) inner = "<" + inner + ">";
  text += "S($x) <- T" + std::to_string(depth - 1) + "(" + inner + ").\n";
  return text;
}

void PrintPipelineGrowth() {
  std::printf("=== Lemmas 4.10-4.13: nonrecursive packing elimination ===\n");
  std::printf("%-8s %-14s %-16s\n", "depth", "input rules", "output rules");
  for (size_t depth : {1u, 2u, 3u, 4u}) {
    Universe u;
    Result<Program> p = ParseProgram(u, NestedPipelineProgram(depth));
    if (!p.ok()) std::abort();
    Result<Program> q = EliminatePackingNonrecursive(u, *p);
    if (!q.ok()) {
      std::printf("%-8zu error: %s\n", depth, q.status().ToString().c_str());
      continue;
    }
    std::printf("%-8zu %-14zu %-16zu\n", depth, p->NumRules(), q->NumRules());
  }
  std::printf("\n");
}

void BM_EliminateNestedPipeline(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  std::string text = NestedPipelineProgram(depth);
  for (auto _ : state) {
    Universe u;
    Result<Program> p = ParseProgram(u, text);
    Result<Program> q = EliminatePackingNonrecursive(u, *p);
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_EliminateNestedPipeline)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

// Packing-structure computation on expressions of growing width.
void BM_DeltaAndComponents(benchmark::State& state) {
  size_t width = static_cast<size_t>(state.range(0));
  Universe u;
  std::string text = "@a";
  for (size_t i = 0; i < width; ++i) {
    text += " ++ <$x" + std::to_string(i) + " ++ <a>>";
  }
  Result<PathExpr> e = ParsePathExpr(u, text);
  if (!e.ok()) std::abort();
  for (auto _ : state) {
    PackingStructure ps = Delta(*e);
    std::vector<PathExpr> comps = Components(*e);
    benchmark::DoNotOptimize(ps);
    benchmark::DoNotOptimize(comps);
  }
}
BENCHMARK(BM_DeltaAndComponents)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The purification-heavy shape: equations binding impure variables.
void BM_EliminateWithPurification(benchmark::State& state) {
  size_t eqs = static_cast<size_t>(state.range(0));
  std::string head_expr;
  std::string body = "R($y0)";
  std::string text;
  for (size_t i = 0; i < eqs; ++i) {
    std::string xi = "$z" + std::to_string(i);
    text += "T" + std::to_string(i) + "(<$y0> ++ $y0) <- R($y0).\n";
  }
  text += "S($y0) <- R($y0)";
  for (size_t i = 0; i < eqs; ++i) {
    text += ", T" + std::to_string(i) + "($w" + std::to_string(i) +
            "), $w" + std::to_string(i) + " = <$y0> ++ $y0";
  }
  text += ".\n";
  for (auto _ : state) {
    Universe u;
    Result<Program> p = ParseProgram(u, text);
    if (!p.ok()) state.SkipWithError(p.status().ToString().c_str());
    Result<Program> q = EliminatePackingNonrecursive(u, *p);
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_EliminateWithPurification)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintPipelineGrowth();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
