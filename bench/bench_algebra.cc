// Theorem 7.1: nonrecursive Sequence Datalog vs its sequence relational
// algebra translation. Prints an agreement table, then benchmarks both
// evaluation paths (note: the mechanical Form-1 translation builds
// candidate universes via SUB/UNPACK, so the algebra plan is expected to
// be slower — the theorem is about expressiveness, not efficiency).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/algebra/algebra.h"
#include "src/algebra/from_datalog.h"
#include "src/algebra/to_datalog.h"
#include "src/engine/eval.h"
#include "src/syntax/parser.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

constexpr const char* kProgram = "S($x) <- R($x ++ @y), Q(@y).";

Instance MakeData(Universe& u, size_t count, size_t len) {
  StringWorkload rw;
  rw.count = count;
  rw.min_len = 1;
  rw.max_len = len;
  rw.seed = 13;
  rw.rel = "R";
  StringWorkload qw;
  qw.count = 2;
  qw.min_len = 1;
  qw.max_len = 1;
  qw.seed = 14;
  qw.rel = "Q";
  Result<Instance> in = RandomStrings(u, rw);
  Result<Instance> qs = RandomStrings(u, qw);
  if (!in.ok() || !qs.ok()) std::abort();
  in->UnionWith(*qs);
  return std::move(in).value();
}

void PrintAgreement() {
  std::printf("=== Theorem 7.1: Datalog vs sequence relational algebra ===\n");
  std::printf("program: %s\n", kProgram);
  std::printf("%-8s %-8s %-12s %-12s %-8s\n", "facts", "maxlen",
              "datalog out", "algebra out", "agree");
  for (size_t count : {4u, 8u}) {
    for (size_t len : {3u, 5u}) {
      Universe u;
      Result<Program> p = ParseProgram(u, kProgram);
      RelId s = *u.FindRel("S");
      Result<AlgebraPtr> alg = DatalogToAlgebra(u, *p, s);
      if (!alg.ok()) std::abort();
      Instance in = MakeData(u, count, len);
      Result<Instance> engine = EvalQuery(u, *p, in, s);
      Result<EvaluatedRel> direct = EvalAlgebra(u, **alg, in);
      if (!engine.ok() || !direct.ok()) continue;
      std::printf("%-8zu %-8zu %-12zu %-12zu %-8s\n", in.NumFacts(), len,
                  engine->Tuples(s).size(), direct->tuples.size(),
                  engine->Tuples(s) == direct->tuples ? "yes" : "NO");
    }
  }
  std::printf("\n");
}

void BM_DatalogEval(benchmark::State& state) {
  size_t count = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, kProgram);
  RelId s = *u.FindRel("S");
  Instance in = MakeData(u, count, 4);
  for (auto _ : state) {
    Result<Instance> out = EvalQuery(u, *p, in, s);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DatalogEval)->Arg(4)->Arg(8)->Arg(16);

void BM_AlgebraEval(benchmark::State& state) {
  size_t count = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, kProgram);
  RelId s = *u.FindRel("S");
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, *p, s);
  Instance in = MakeData(u, count, 4);
  for (auto _ : state) {
    Result<EvaluatedRel> out = EvalAlgebra(u, **alg, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AlgebraEval)->Arg(4)->Arg(8)->Arg(16);

void BM_Translation(benchmark::State& state) {
  for (auto _ : state) {
    Universe u;
    Result<Program> p = ParseProgram(u, kProgram);
    Result<AlgebraPtr> alg = DatalogToAlgebra(u, *p, *u.FindRel("S"));
    if (!alg.ok()) state.SkipWithError(alg.status().ToString().c_str());
    benchmark::DoNotOptimize(alg);
  }
}
BENCHMARK(BM_Translation);

void BM_AlgebraToDatalogRoundTrip(benchmark::State& state) {
  Universe u;
  Result<Program> p = ParseProgram(u, kProgram);
  RelId s = *u.FindRel("S");
  Result<AlgebraPtr> alg = DatalogToAlgebra(u, *p, s);
  if (!alg.ok()) std::abort();
  for (auto _ : state) {
    Result<AlgebraToDatalogResult> back = AlgebraToDatalog(u, **alg);
    if (!back.ok()) state.SkipWithError(back.status().ToString().c_str());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_AlgebraToDatalogRoundTrip);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
