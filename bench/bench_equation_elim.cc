// Example 4.6 / Lemma 4.5 / Theorem 4.7: equation elimination. Compares the
// marked-pair query (negated equations in a recursive stratum) against its
// equation-free rewriting, and the only-a's query against its Example 4.4
// rewriting.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/transform/equation_elim.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Instance MakeStrings(Universe& u, size_t count, size_t len, size_t alphabet) {
  StringWorkload w;
  w.count = count;
  w.min_len = len;
  w.max_len = len;
  w.alphabet = alphabet;
  w.seed = 17;
  Result<Instance> in = RandomStrings(u, w);
  if (!in.ok()) std::abort();
  return std::move(in).value();
}

void PrintSummary() {
  std::printf("=== Lemma 4.5 / Theorem 4.7: equation elimination ===\n");
  for (const char* id : {"ex31_only_as_e", "ex46_marked"}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, id);
    if (!q.ok()) std::abort();
    Result<Program> without = EliminateEquations(u, q->program);
    if (!without.ok()) {
      std::printf("%s: %s\n", id, without.status().ToString().c_str());
      continue;
    }
    Instance in = MakeStrings(u, 8, 6, 2);
    Result<Instance> o1 = EvalQuery(u, q->program, in, q->output);
    Result<Instance> o2 = EvalQuery(u, *without, in, q->output);
    std::printf("%-18s rules %zu -> %zu, outputs agree: %s\n", id,
                q->program.NumRules(), without->NumRules(),
                (o1.ok() && o2.ok() && *o1 == *o2) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_MarkedPairsWithEquations(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex46_marked");
  Instance in = MakeStrings(u, 8, len, 2);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MarkedPairsWithEquations)->Arg(4)->Arg(6)->Arg(8);

void BM_MarkedPairsEquationFree(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex46_marked");
  Result<Program> without = EliminateEquations(u, q->program);
  Instance in = MakeStrings(u, 8, len, 2);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *without, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MarkedPairsEquationFree)->Arg(4)->Arg(6)->Arg(8);

void BM_OnlyAsWithEquation(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex31_only_as_e");
  Instance in = MakeStrings(u, 16, len, 1);  // all-a strings
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OnlyAsWithEquation)->Arg(8)->Arg(32)->Arg(128);

void BM_OnlyAsPaperRewriting(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex44_only_as_noeq");
  Instance in = MakeStrings(u, 16, len, 1);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_OnlyAsPaperRewriting)->Arg(8)->Arg(32)->Arg(128);

void BM_EliminationItself(benchmark::State& state) {
  for (auto _ : state) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "ex46_marked");
    Result<Program> without = EliminateEquations(u, q->program);
    if (!without.ok()) {
      state.SkipWithError(without.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(without);
  }
}
BENCHMARK(BM_EliminationItself);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
