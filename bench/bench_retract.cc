// Retraction maintenance: a reachability view kept current through
// tombstone epochs by counting DRed (delete/re-derive) versus re-running
// the full fixpoint after every retraction. Prints a comparison table
// (with a byte-identity check against the cold run — the differential
// harness's invariant, verified here on the bench workload too), then
// benchmarks one retract/re-append maintenance cycle both ways.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/view/view.h"

namespace seqdl {
namespace {

// Transitive closure over edges encoded as length-2 paths (the graph
// workload's encoding, same as the corpus reach_ab query).
constexpr const char* kReach =
    "T(@x ++ @y) <- E(@x ++ @y).\n"
    "T(@x ++ @z) <- T(@x ++ @y), E(@y ++ @z).\n";

struct RetractWorkload {
  Result<Program> program;
  Instance base;
  /// Rotating victim batches: round r retracts victims[r % size] and
  /// re-appends it afterwards, so the database cycles through identical
  /// states and every round does the same amount of work.
  std::vector<Instance> victims;

  /// `nodes` nodes partitioned into disjoint 32-node chains. Retracting
  /// an edge severs one chain's closure and nothing else — the regime
  /// incremental maintenance is for: DRed's deletion cascade and
  /// re-derivation stay local to one component while the full fixpoint
  /// rebuilds every component from scratch. (A single well-connected
  /// graph is DRed's worst case instead: one retraction invalidates a
  /// constant fraction of the closure, and over-delete + rescue can
  /// cost more than the fixpoint it replaces.)
  RetractWorkload(Universe& u, size_t nodes, size_t batches)
      : program(ParseProgram(u, kReach)) {
    if (!program.ok()) return;
    constexpr size_t kChainLen = 32;
    RelId e = *u.FindRel("E");
    auto edge = [&](size_t from, size_t to) {
      std::vector<Value> path = {
          Value::Atom(u.InternAtom("n" + std::to_string(from))),
          Value::Atom(u.InternAtom("n" + std::to_string(to)))};
      return Tuple{u.InternPath(path)};
    };
    size_t chains = nodes / kChainLen;
    victims.assign(batches, Instance{});
    for (size_t c = 0; c < chains; ++c) {
      for (size_t i = 0; i + 1 < kChainLen; ++i) {
        size_t from = c * kChainLen + i;
        Tuple t = edge(from, from + 1);
        // Each batch severs one chain at its midpoint; rotating the
        // chain across batches keeps successive rounds independent.
        if (i == kChainLen / 2 && c < batches) {
          victims[c].Add(e, t);
        }
        base.Add(e, std::move(t));
      }
    }
  }
};

void PrintRetractMaintenance() {
  std::printf("=== Retraction: DRed refresh vs full recompute ===\n");
  std::printf("%-8s %-9s %-12s %-12s %-10s %s\n", "nodes", "retracts",
              "full(ms)", "dred(ms)", "speedup", "identical");
  for (size_t nodes : {2048u, 4096u}) {
    constexpr size_t kRounds = 8;
    Universe u;
    RetractWorkload w(u, nodes, kRounds);
    if (!w.program.ok() || w.victims.empty()) std::abort();
    Result<PreparedProgram> prog = Engine::Compile(u, *w.program);
    if (!prog.ok()) std::abort();

    // Two databases fed the identical retract/re-append stream: one
    // maintains a view through the tombstone epochs, the other re-runs
    // the fixpoint at each one.
    Result<Database> incr = Database::Open(u, w.base);
    Result<Database> full = Database::Open(u, w.base);
    if (!incr.ok() || !full.ok()) std::abort();
    if (!incr->views().Refresh("bench", *prog).ok()) std::abort();
    if (!full->Snapshot().Run(*prog).ok()) std::abort();  // index build

    double dred_ms = 0, full_ms = 0;
    bool identical = true;
    for (size_t r = 0; r < kRounds; ++r) {
      const Instance& batch = w.victims[r % w.victims.size()];
      if (!incr->Retract(batch).ok() || !full->Retract(batch).ok()) {
        std::abort();
      }

      auto t0 = std::chrono::steady_clock::now();
      auto view = incr->views().Refresh("bench", *prog);
      auto t1 = std::chrono::steady_clock::now();
      Result<Instance> rerun = full->Snapshot().Run(*prog);
      auto t2 = std::chrono::steady_clock::now();
      if (!view.ok() || !rerun.ok()) std::abort();

      dred_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      full_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      identical &= (*view)->idb().ToString(u) == rerun->ToString(u);

      // Restore the pre-retraction state (untimed) and fold the
      // tombstones so the stacks stay comparable across rounds.
      if (!incr->Append(batch).ok() || !full->Append(batch).ok()) {
        std::abort();
      }
      if (!incr->views().Refresh("bench", *prog).ok()) std::abort();
      incr->Compact();
      full->Compact();
      if (incr->NumTombstones() != 0) std::abort();
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", full_ms / dred_ms);
    std::printf("%-8zu %-9zu %-12.3f %-12.3f %-10s %s\n", nodes, kRounds,
                full_ms, dred_ms, speedup,
                identical ? "yes" : "NO — MISMATCH");
  }
  std::printf("\n");
}

// One iteration = one full retract/re-append maintenance cycle: publish
// the tombstone epoch, bring the result current (DRed refresh or full
// rerun), flip the batch back, bring it current again, compact. Both
// variants perform identical writes; only the maintenance path differs.
void RunRetractCycle(benchmark::State& state, bool maintained) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  RetractWorkload w(u, nodes, /*batches=*/8);
  if (!w.program.ok() || w.victims.empty()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, *w.program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Result<Database> db = Database::Open(u, w.base);
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  if (maintained) {
    if (!db->views().Refresh("bench", *prog).ok()) {
      state.SkipWithError("cold materialization failed");
      return;
    }
  } else {
    if (!db->Snapshot().Run(*prog).ok()) {
      state.SkipWithError("initial run failed");
      return;
    }
  }

  size_t round = 0;
  auto serve = [&]() -> bool {
    if (maintained) return db->views().Refresh("bench", *prog).ok();
    return db->Snapshot().Run(*prog).ok();
  };
  for (auto _ : state) {
    const Instance& batch = w.victims[round++ % w.victims.size()];
    bool ok = db->Retract(batch).ok() && serve() &&
              db->Append(batch).ok() && serve();
    db->Compact();
    if (!ok) {
      state.SkipWithError("maintenance cycle failed");
      return;
    }
  }
}

void BM_RetractDRedRefresh(benchmark::State& state) {
  RunRetractCycle(state, /*maintained=*/true);
}
BENCHMARK(BM_RetractDRedRefresh)->Arg(256)->Arg(1024);

void BM_RetractFullRecompute(benchmark::State& state) {
  RunRetractCycle(state, /*maintained=*/false);
}
BENCHMARK(BM_RetractFullRecompute)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRetractMaintenance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
