// Benchmarks the Theorem 6.1 decision procedure (the if-direction of which
// is Figure 3 in the paper) over all pairs of fragments, and prints the
// full 16x16 subsumption matrix of the core fragments.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/fragments/fragments.h"

namespace seqdl {
namespace {

void PrintSubsumptionMatrix() {
  std::printf("=== Theorem 6.1: subsumption matrix of the 16 core "
              "fragments ===\n");
  std::vector<FeatureSet> fragments = AllCoreFragments();
  std::printf("%-12s", "F1 \\ F2");
  for (FeatureSet f2 : fragments) std::printf("%-10s", f2.ToString().c_str());
  std::printf("\n");
  for (FeatureSet f1 : fragments) {
    std::printf("%-12s", f1.ToString().c_str());
    for (FeatureSet f2 : fragments) {
      std::printf("%-10s", Subsumes(f1, f2) ? "<=" : ".");
    }
    std::printf("\n");
  }
  size_t pairs = 0, subsumed = 0;
  for (FeatureSet f1 : AllFragments()) {
    for (FeatureSet f2 : AllFragments()) {
      ++pairs;
      subsumed += Subsumes(f1, f2) ? 1 : 0;
    }
  }
  std::printf("\nall 64x64 fragment pairs: %zu, of which %zu subsumptions\n\n",
              pairs, subsumed);
}

void BM_SubsumesAllPairs(benchmark::State& state) {
  std::vector<FeatureSet> fragments = AllFragments();
  for (auto _ : state) {
    size_t count = 0;
    for (FeatureSet f1 : fragments) {
      for (FeatureSet f2 : fragments) {
        count += Subsumes(f1, f2) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 * 64);
}
BENCHMARK(BM_SubsumesAllPairs);

void BM_EquivalentAllPairs(benchmark::State& state) {
  std::vector<FeatureSet> fragments = AllCoreFragments();
  for (auto _ : state) {
    size_t count = 0;
    for (FeatureSet f1 : fragments) {
      for (FeatureSet f2 : fragments) {
        count += Equivalent(f1, f2) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EquivalentAllPairs);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintSubsumptionMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
