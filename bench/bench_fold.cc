// Theorem 4.16: folding intermediate predicates away using equations.
// Measures the rule blow-up and the runtime effect of folding on chains of
// intermediate predicates.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/engine/eval.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/fold_intermediates.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

// A chain T0 <- R, T1 <- T0, ..., S <- T_{k-1} with 2 rules per level.
std::string ChainProgram(size_t levels) {
  std::string text =
      "T0($x) <- R(a ++ $x).\n"
      "T0($x) <- R(b ++ $x).\n";
  for (size_t i = 1; i < levels; ++i) {
    std::string prev = "T" + std::to_string(i - 1);
    std::string cur = "T" + std::to_string(i);
    text += cur + "($x) <- " + prev + "($x ++ a).\n";
    text += cur + "($x) <- " + prev + "($x ++ b).\n";
  }
  text += "S($x) <- T" + std::to_string(levels - 1) + "($x).\n";
  return text;
}

void PrintFoldGrowth() {
  std::printf("=== Theorem 4.16: folding away intermediate predicates ===\n");
  std::printf("%-8s %-14s %-14s %-14s\n", "levels", "input rules",
              "folded rules", "agree");
  for (size_t levels : {1u, 2u, 3u, 4u, 5u}) {
    Universe u;
    Result<Program> p = ParseProgram(u, ChainProgram(levels));
    if (!p.ok()) std::abort();
    Result<Program> q = FoldIntermediates(u, *p, *u.FindRel("S"));
    if (!q.ok()) {
      std::printf("%-8zu error: %s\n", levels,
                  q.status().ToString().c_str());
      continue;
    }
    StringWorkload w;
    w.count = 6;
    w.min_len = levels + 1;
    w.max_len = levels + 3;
    w.seed = 3;
    Result<Instance> in = RandomStrings(u, w);
    RelId s = *u.FindRel("S");
    Result<Instance> o1 = EvalQuery(u, *p, *in, s);
    Result<Instance> o2 = EvalQuery(u, *q, *in, s);
    std::printf("%-8zu %-14zu %-14zu %-14s\n", levels, p->NumRules(),
                q->NumRules(),
                (o1.ok() && o2.ok() && *o1 == *o2) ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_EvalChained(benchmark::State& state) {
  size_t levels = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, ChainProgram(levels));
  StringWorkload w;
  w.count = 10;
  w.min_len = levels + 1;
  w.max_len = levels + 4;
  w.seed = 3;
  Result<Instance> in = RandomStrings(u, w);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *p, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EvalChained)->Arg(1)->Arg(3)->Arg(5);

void BM_EvalFolded(benchmark::State& state) {
  size_t levels = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, ChainProgram(levels));
  Result<Program> q = FoldIntermediates(u, *p, *u.FindRel("S"));
  StringWorkload w;
  w.count = 10;
  w.min_len = levels + 1;
  w.max_len = levels + 4;
  w.seed = 3;
  Result<Instance> in = RandomStrings(u, w);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *q, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EvalFolded)->Arg(1)->Arg(3)->Arg(5);

void BM_FoldingItself(benchmark::State& state) {
  size_t levels = static_cast<size_t>(state.range(0));
  std::string text = ChainProgram(levels);
  for (auto _ : state) {
    Universe u;
    Result<Program> p = ParseProgram(u, text);
    Result<Program> q = FoldIntermediates(u, *p, *u.FindRel("S"));
    if (!q.ok()) state.SkipWithError(q.status().ToString().c_str());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_FoldingItself)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintFoldGrowth();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
