// Lemma 5.1 / Proposition 5.2 / Theorem 5.3: without recursion, output path
// lengths are linear in input path lengths; the recursive squaring query
// produces quadratic outputs. Prints the measured output-length series for
// both, which is the paper's separation argument made concrete.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

size_t MaxOutputLength(Universe& u, const Instance& out, RelId rel) {
  size_t n = 0;
  for (const Tuple& t : out.Tuples(rel)) {
    for (PathId p : t) n = std::max(n, u.PathLength(p));
  }
  return n;
}

void PrintSeries() {
  std::printf("=== Lemma 5.1 vs Theorem 5.3: output length growth ===\n");
  std::printf("%-6s %-26s %-22s\n", "n",
              "nonrecursive (json_sales)", "recursive (squaring)");
  for (size_t n : {1u, 2u, 4u, 8u, 12u, 16u}) {
    // Nonrecursive: json_sales on a length-n fact (3 columns folded into a
    // single path here: we use a single length-n path per EDB column).
    size_t nonrec_len = 0;
    {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
      if (!q.ok()) std::abort();
      Instance in;
      std::string s(n, 'x');
      in.Add(*u.FindRel("R"), {u.PathOfChars(s)});
      Result<Instance> out = EvalQuery(u, q->program, in, q->output);
      if (out.ok()) nonrec_len = MaxOutputLength(u, *out, q->output);
    }
    // Recursive squaring on a^n.
    size_t rec_len = 0;
    {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, "squaring");
      if (!q.ok()) std::abort();
      Instance in;
      in.Add(*u.FindRel("R"), {u.PathOfChars(std::string(n, 'a'))});
      Result<Instance> out = EvalQuery(u, q->program, in, q->output);
      if (out.ok()) rec_len = MaxOutputLength(u, *out, q->output);
    }
    std::printf("%-6zu %-26zu %-22zu\n", n, nonrec_len, rec_len);
  }
  std::printf("(nonrecursive output length is bounded by a·n + b; "
              "squaring output is exactly n^2)\n\n");
}

void BM_SquaringGrowth(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "squaring");
  Instance in;
  in.Add(*u.FindRel("R"), {u.PathOfChars(std::string(n, 'a'))});
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
  state.counters["output_len"] = static_cast<double>(n * n);
}
BENCHMARK(BM_SquaringGrowth)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_NonrecursiveBounded(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  Instance in;
  in.Add(*u.FindRel("R"), {u.PathOfChars(std::string(n, 'x'))});
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_NonrecursiveBounded)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
