// Example 2.1: NFA acceptance in Sequence Datalog, benchmarked against a
// direct C++ NFA simulator baseline, sweeping string length and automaton
// size. Prints an acceptance-agreement table first.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Instance MakeStrings(Universe& u, size_t count, size_t len, uint64_t seed) {
  StringWorkload w;
  w.count = count;
  w.min_len = len;
  w.max_len = len;
  w.alphabet = 2;
  w.seed = seed;
  Result<Instance> in = RandomStrings(u, w);
  if (!in.ok()) std::abort();
  return std::move(in).value();
}

void PrintAgreementTable() {
  std::printf("=== Example 2.1: NFA acceptance, Datalog vs direct simulator "
              "===\n");
  std::printf("%-8s %-8s %-10s %-10s %-8s\n", "states", "strlen", "accepted",
              "rejected", "agree");
  for (size_t states : {2u, 4u, 8u}) {
    for (size_t len : {4u, 16u, 64u}) {
      Universe u;
      Result<ParsedQuery> q = ParsePaperQuery(u, "ex21_nfa");
      if (!q.ok()) std::abort();
      NfaWorkload nw;
      nw.num_states = states;
      nw.seed = states * 31 + len;
      Nfa nfa = RandomNfa(nw);
      Result<Instance> in = NfaToInstance(u, nfa);
      if (!in.ok()) std::abort();
      in->UnionWith(MakeStrings(u, 20, len, len + states));
      Result<Instance> out = Eval(u, q->program, *in);
      if (!out.ok()) {
        std::printf("eval error: %s\n", out.status().ToString().c_str());
        continue;
      }
      RelId r = *u.FindRel("R");
      size_t accepted = 0, rejected = 0, agree = 0, total = 0;
      for (const Tuple& t : out->Tuples(r)) {
        std::vector<uint32_t> word;
        for (Value v : u.GetPath(t[0])) {
          word.push_back(
              static_cast<uint32_t>(u.AtomName(v.atom())[0] - 'a'));
        }
        bool datalog = out->Contains(q->output, t);
        bool direct = nfa.Accepts(word);
        ++total;
        agree += datalog == direct ? 1 : 0;
        (datalog ? accepted : rejected) += 1;
      }
      std::printf("%-8zu %-8zu %-10zu %-10zu %zu/%zu\n", states, len,
                  accepted, rejected, agree, total);
    }
  }
  std::printf("\n");
}

void BM_NfaDatalog(benchmark::State& state) {
  size_t states = static_cast<size_t>(state.range(0));
  size_t len = static_cast<size_t>(state.range(1));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex21_nfa");
  NfaWorkload nw;
  nw.num_states = states;
  nw.seed = 7;
  Nfa nfa = RandomNfa(nw);
  Result<Instance> in = NfaToInstance(u, nfa);
  in->UnionWith(MakeStrings(u, 10, len, 3));
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_NfaDatalog)
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({4, 8})
    ->Args({4, 32})
    ->Args({8, 8});

void BM_NfaDirect(benchmark::State& state) {
  size_t states = static_cast<size_t>(state.range(0));
  size_t len = static_cast<size_t>(state.range(1));
  Universe u;
  NfaWorkload nw;
  nw.num_states = states;
  nw.seed = 7;
  Nfa nfa = RandomNfa(nw);
  Instance strings = MakeStrings(u, 10, len, 3);
  RelId r = *u.FindRel("R");
  std::vector<std::vector<uint32_t>> words;
  for (const Tuple& t : strings.Tuples(r)) {
    std::vector<uint32_t> word;
    for (Value v : u.GetPath(t[0])) {
      word.push_back(static_cast<uint32_t>(u.AtomName(v.atom())[0] - 'a'));
    }
    words.push_back(std::move(word));
  }
  for (auto _ : state) {
    size_t accepted = 0;
    for (const auto& w : words) accepted += nfa.Accepts(w) ? 1 : 0;
    benchmark::DoNotOptimize(accepted);
  }
}
BENCHMARK(BM_NfaDirect)
    ->Args({2, 8})
    ->Args({2, 32})
    ->Args({4, 8})
    ->Args({4, 32})
    ->Args({8, 8});

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintAgreementTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
