// Engine ablations: naive vs semi-naive fixpoint iteration on recursive
// workloads (reachability over random graphs, NFA acceptance), sweeping
// instance size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

void PrintRoundCounts() {
  std::printf("=== Engine ablation: naive vs semi-naive ===\n");
  std::printf("%-8s %-8s %-16s %-16s\n", "nodes", "edges", "rounds(semi)",
              "rounds(naive)");
  for (size_t nodes : {8u, 16u, 32u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
    if (!q.ok()) std::abort();
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    EvalStats semi, naive;
    EvalOptions naive_opts;
    naive_opts.seminaive = false;
    Result<Instance> o1 = Eval(u, q->program, *in, {}, &semi);
    Result<Instance> o2 = Eval(u, q->program, *in, naive_opts, &naive);
    if (!o1.ok() || !o2.ok()) continue;
    std::printf("%-8zu %-8zu %-16zu %-16zu  (firings %zu vs %zu)\n", nodes,
                gw.edges, semi.rounds, naive.rounds, semi.rule_firings,
                naive.rule_firings);
  }
  std::printf("\n");
}

void RunReachability(benchmark::State& state, bool seminaive) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  EvalOptions opts;
  opts.seminaive = seminaive;
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ReachSeminaive(benchmark::State& state) {
  RunReachability(state, true);
}
BENCHMARK(BM_ReachSeminaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ReachNaive(benchmark::State& state) {
  RunReachability(state, false);
}
BENCHMARK(BM_ReachNaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_StratifiedNegationPipeline(benchmark::State& state) {
  size_t logs = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  EventLogWorkload ew;
  ew.count = logs;
  ew.len = 10;
  ew.seed = 4;
  Result<Instance> in = RandomEventLogs(u, ew);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StratifiedNegationPipeline)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRoundCounts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
