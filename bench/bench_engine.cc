// Engine ablations on recursive workloads (reachability over random
// graphs, stratified-negation pipelines), sweeping instance size:
//
//   * naive vs semi-naive fixpoint iteration;
//   * one-shot Eval (re-validate + re-plan per call) vs prepared
//     Engine::Compile + PreparedProgram::Run vs Session runs over a
//     long-lived Database (EDB indexed once, excluded from per-query time);
//   * indexed scans (per-(relation, column) hash probes) vs full scans;
//   * selectivity-aware vs legacy first-ground-argument planning on a
//     skewed join (one near-constant column, one high-cardinality key);
//   * concurrent throughput: N threads sharing one pre-indexed Database,
//     outputs checked byte-identical against a sequential run;
//   * the ingest path: Append throughput into a versioned Database, and
//     query latency over a 16-segment stack vs the same facts after
//     Compact() vs a cold Database::Open on the merged EDB;
//   * incremental view maintenance: re-serving a query after a small
//     append via ViewManager's semi-naive delta refresh vs re-running
//     the full fixpoint (the ISSUE acceptance bar: >= 5x at the larger
//     size).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/view/view.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

void PrintRoundCounts() {
  std::printf("=== Engine ablation: naive vs semi-naive ===\n");
  std::printf("%-8s %-8s %-16s %-16s\n", "nodes", "edges", "rounds(semi)",
              "rounds(naive)");
  for (size_t nodes : {8u, 16u, 32u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
    if (!q.ok()) std::abort();
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    EvalStats semi, naive;
    EvalOptions naive_opts;
    naive_opts.seminaive = false;
    Result<Instance> o1 = Eval(u, q->program, *in, {}, &semi);
    Result<Instance> o2 = Eval(u, q->program, *in, naive_opts, &naive);
    if (!o1.ok() || !o2.ok()) continue;
    std::printf("%-8zu %-8zu %-16zu %-16zu  (firings %zu vs %zu)\n", nodes,
                gw.edges, semi.rounds, naive.rounds, semi.rule_firings,
                naive.rule_firings);
  }
  std::printf("\n");
}

void PrintIndexCounts() {
  std::printf("=== Engine ablation: indexed vs full scans ===\n");
  std::printf("%-8s %-14s %-14s %-12s %-14s\n", "nodes", "index probes",
              "prefix probes", "full scans", "scans(noidx)");
  for (size_t nodes : {16u, 32u, 64u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
    if (!q.ok()) std::abort();
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    if (!in.ok()) std::abort();
    Result<PreparedProgram> prog = Engine::Compile(u, q->program);
    if (!prog.ok()) std::abort();
    EvalStats indexed, scanned;
    RunOptions no_index;
    no_index.use_index = false;
    Result<Instance> o1 = prog->Run(*in, {}, &indexed);
    Result<Instance> o2 = prog->Run(*in, no_index, &scanned);
    if (!o1.ok() || !o2.ok()) continue;
    std::printf("%-8zu %-14zu %-14zu %-12zu %-14zu\n", nodes,
                indexed.index_probes, indexed.prefix_probes,
                indexed.full_scans, scanned.full_scans);
  }
  std::printf("\n");
}

// The skewed-selectivity workload: R(tag, id) where every tuple shares
// one tag (column 0 is a single huge bucket) while ids are unique
// (column 1 has singleton buckets), and P holds the tag·id paths the
// rule destructures. The legacy planner keys R on its first ground
// argument — the near-constant tag, turning every probe into a scan of
// the whole relation — while the selectivity-aware planner measures the
// buckets and keys on the id column.
struct SkewedWorkload {
  Program program;
  Instance input;
};

bool MakeSkewedWorkload(Universe& u, size_t n, SkewedWorkload* w) {
  Result<Program> p =
      ParseProgram(u, "S(@i) <- P(@t ++ @i), R(@t, @i).\n");
  if (!p.ok()) return false;
  w->program = std::move(*p);
  RelId p_rel = *u.FindRel("P");
  RelId r_rel = *u.FindRel("R");
  Value tag = Value::Atom(u.InternAtom("t"));
  for (size_t k = 0; k < n; ++k) {
    Value id = Value::Atom(u.InternAtom("i" + std::to_string(k)));
    std::vector<Value> pair = {tag, id};
    w->input.Add(p_rel, {u.InternPath(pair)});
    w->input.Add(r_rel, {u.SingletonPath(tag), u.SingletonPath(id)});
  }
  return true;
}

void PrintSelectivityPlanning() {
  std::printf("=== Planner: selectivity-aware vs first-ground-argument ===\n");
  std::printf("%-8s %-14s %-14s %-10s %-10s\n", "tuples", "legacy(ms)",
              "selective(ms)", "speedup", "identical");
  for (size_t n : {256u, 1024u}) {
    Universe u;
    SkewedWorkload w;
    if (!MakeSkewedWorkload(u, n, &w)) std::abort();
    Result<Database> db = Database::Open(u, w.input);
    if (!db.ok()) std::abort();
    // Legacy heuristic vs Database::Stats()-fed compile of the same rule.
    Result<PreparedProgram> legacy = Engine::Compile(u, w.program);
    Result<PreparedProgram> selective = db->Compile(w.program);
    if (!legacy.ok() || !selective.ok()) std::abort();
    Session session = db->OpenSession();
    auto time_ms = [&](const PreparedProgram& prog, std::string* out) {
      Result<Instance> warm = session.Run(prog);  // index build excluded
      if (!warm.ok()) std::abort();
      *out = warm->ToString(u);
      constexpr int kReps = 5;
      auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        if (!session.Run(prog).ok()) std::abort();
      }
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count() /
             kReps;
    };
    std::string legacy_out, selective_out;
    double legacy_ms = time_ms(*legacy, &legacy_out);
    double selective_ms = time_ms(*selective, &selective_out);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  legacy_ms / selective_ms);
    std::printf("%-8zu %-14.3f %-14.3f %-10s %s\n", n, legacy_ms,
                selective_ms, speedup,
                legacy_out == selective_out ? "yes" : "NO — MISMATCH");
  }
  std::printf("\n");
}

// Concurrent throughput over one shared Database: N threads each run M
// queries through their own Session against the same pre-indexed EDB.
// Verifies every thread's output is byte-identical to a sequential run,
// and reports per-query wall time (EDB index build excluded — it happened
// once, at warm-up).
void PrintConcurrentThroughput() {
  std::printf("=== Database/Session: concurrent throughput ===\n");
  constexpr size_t kNodes = 64;
  constexpr size_t kQueriesPerThread = 4;
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  if (!q.ok()) std::abort();
  GraphWorkload gw;
  gw.nodes = kNodes;
  gw.edges = kNodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!in.ok()) std::abort();
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) std::abort();
  Result<Database> db = Database::Open(u, std::move(*in));
  if (!db.ok()) std::abort();

  // Warm-up builds the lazy base indexes once and fixes the reference.
  Result<Instance> ref = db->OpenSession().Run(*prog);
  if (!ref.ok()) std::abort();
  std::string reference = ref->ToString(u);

  std::printf("%-8s %-10s %-14s %-14s %-10s\n", "threads", "queries",
              "total(ms)", "per-query(ms)", "identical");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::string> outputs(threads * kQueriesPerThread);
    std::vector<std::thread> pool;
    auto start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        Session session = db->OpenSession();
        for (size_t r = 0; r < kQueriesPerThread; ++r) {
          Result<Instance> out = session.Run(*prog);
          outputs[t * kQueriesPerThread + r] =
              out.ok() ? out->ToString(u) : out.status().ToString();
        }
      });
    }
    for (std::thread& th : pool) th.join();
    double total_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    bool identical = true;
    for (const std::string& o : outputs) identical &= (o == reference);
    size_t queries = threads * kQueriesPerThread;
    std::printf("%-8zu %-10zu %-14.2f %-14.2f %s\n", threads, queries,
                total_ms, total_ms / static_cast<double>(queries),
                identical ? "yes" : "NO — MISMATCH");
  }
  std::printf("\n");
}

// Ingest path: the versioned Database's append throughput, and how query
// latency over a deep segment stack compares with the same facts after
// Compact() and with a cold Database::Open on the merged EDB (the
// acceptance bar: post-compaction within ~10% of cold open).
struct IngestWorkload {
  Result<ParsedQuery> query;
  std::vector<Instance> batches;  // batches[0] seeds Open, the rest Append

  explicit IngestWorkload(Universe& u, size_t nodes, size_t num_batches)
      : query(ParsePaperQuery(u, "reach_ab")) {
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = 33;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    if (!in.ok()) return;
    batches.resize(num_batches);
    size_t i = 0;
    for (RelId rel : in->Relations()) {
      for (const Tuple& t : in->Tuples(rel)) {
        batches[i++ % num_batches].Add(rel, t);
      }
    }
  }

  Instance Merged() const {
    Instance all;
    for (const Instance& b : batches) all.UnionWith(b);
    return all;
  }
};

void PrintIngestBench() {
  std::printf("=== Versioned ingest: append throughput + compaction ===\n");
  std::printf("%-8s %-9s %-12s %-13s %-13s %-11s %-10s\n", "nodes",
              "batches", "append(ms)", "stacked(ms)", "compacted(ms)",
              "cold(ms)", "cmp/cold");
  for (size_t nodes : {32u, 64u}) {
    constexpr size_t kBatches = 16;
    Universe u;
    IngestWorkload w(u, nodes, kBatches);
    if (!w.query.ok() || w.batches.empty()) std::abort();
    Result<PreparedProgram> prog = Engine::Compile(u, w.query->program);
    if (!prog.ok()) std::abort();

    Result<Database> db = Database::Open(u, w.batches[0]);
    if (!db.ok()) std::abort();
    auto append_start = std::chrono::steady_clock::now();
    for (size_t i = 1; i < w.batches.size(); ++i) {
      if (!db->Append(w.batches[i]).ok()) std::abort();
    }
    double append_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - append_start)
                           .count();

    auto time_warm = [&](const Database& target) {
      Session session = target.Snapshot();
      if (!session.Run(*prog).ok()) std::abort();  // index build excluded
      constexpr int kReps = 5;
      auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < kReps; ++rep) {
        if (!session.Run(*prog).ok()) std::abort();
      }
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count() /
             kReps;
    };

    double stacked_ms = time_warm(*db);  // 16 segments deep
    if (!*db->Compact()) std::abort();
    double compacted_ms = time_warm(*db);  // folded to one segment
    Result<Database> cold = Database::Open(u, w.Merged());
    if (!cold.ok()) std::abort();
    double cold_ms = time_warm(*cold);

    std::printf("%-8zu %-9zu %-12.3f %-13.3f %-13.3f %-11.3f %.2fx\n",
                nodes, kBatches, append_ms, stacked_ms, compacted_ms,
                cold_ms, compacted_ms / cold_ms);
  }
  std::printf("\n");
}

// Incremental maintenance workload: reachability over a random graph,
// then a stream of tiny appends (one fresh-source edge each, well under
// 1% of the EDB). A maintained view delta-evaluates just the appended
// edge against its stored IDB — deriving only the fresh source's
// reachable set — while the baseline re-runs the whole fixpoint.
struct DeltaWorkload {
  Result<Program> program;
  Instance base;
  std::vector<Instance> appends;

  DeltaWorkload(Universe& u, size_t nodes, size_t num_appends)
      : program(ParseProgram(u,
                             "R($x, $y) <- E($x, $y).\n"
                             "R($x, $z) <- R($x, $y), E($y, $z).\n")) {
    if (!program.ok()) return;
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = 47;
    Graph g = RandomGraph(gw);
    RelId e = *u.FindRel("E");  // arity 2, declared by the program
    auto node = [&u](uint32_t n) {
      return u.SingletonPath(Value::Atom(u.InternAtom("n" + std::to_string(n))));
    };
    for (const auto& [from, to] : g.edges) {
      base.Add(e, {node(from), node(to)});
    }
    if (g.edges.empty()) return;
    // Each append wires a fresh node into an existing source, so the
    // delta derives that node's reachable set and nothing else.
    PathId target = node(g.edges.front().first);
    for (size_t k = 0; k < num_appends; ++k) {
      Value fresh = Value::Atom(u.InternAtom("zq" + std::to_string(k)));
      Instance a;
      a.Add(e, {u.SingletonPath(fresh), target});
      appends.push_back(std::move(a));
    }
  }
};

void PrintDeltaMaintenance() {
  std::printf("=== Maintained views: delta refresh vs full fixpoint ===\n");
  std::printf("%-8s %-9s %-12s %-12s %-10s %s\n", "nodes", "appends",
              "full(ms)", "delta(ms)", "speedup", "identical");
  for (size_t nodes : {64u, 256u}) {
    constexpr size_t kAppends = 16;
    Universe u;
    DeltaWorkload w(u, nodes, kAppends);
    if (!w.program.ok() || w.appends.empty()) std::abort();
    Result<PreparedProgram> prog = Engine::Compile(u, *w.program);
    if (!prog.ok()) std::abort();

    // Two databases fed the identical append stream: one re-serves from
    // a maintained view, the other re-runs the fixpoint every time.
    Result<Database> incr = Database::Open(u, w.base);
    Result<Database> full = Database::Open(u, w.base);
    if (!incr.ok() || !full.ok()) std::abort();
    if (!incr->views().Refresh("bench", *prog).ok()) std::abort();
    if (!full->Snapshot().Run(*prog).ok()) std::abort();  // index build

    double delta_ms = 0, full_ms = 0;
    bool identical = true;
    for (const Instance& a : w.appends) {
      if (!incr->Append(a).ok() || !full->Append(a).ok()) std::abort();

      auto t0 = std::chrono::steady_clock::now();
      auto view = incr->views().Refresh("bench", *prog);
      auto t1 = std::chrono::steady_clock::now();
      Result<Instance> rerun = full->Snapshot().Run(*prog);
      auto t2 = std::chrono::steady_clock::now();
      if (!view.ok() || !rerun.ok()) std::abort();

      delta_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      full_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      identical &= (*view)->idb().ToString(u) == rerun->ToString(u);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", full_ms / delta_ms);
    std::printf("%-8zu %-9zu %-12.3f %-12.3f %-10s %s\n", nodes, kAppends,
                full_ms, delta_ms, speedup,
                identical ? "yes" : "NO — MISMATCH");
  }
  std::printf("\n");
}

// The same comparison for the BENCH json. One iteration = one append
// plus one re-serve; every kAppends iterations the database is rebuilt
// (outside the timer) so the segment stack stays comparable.
void RunDeltaAppend(benchmark::State& state, bool maintained) {
  size_t nodes = static_cast<size_t>(state.range(0));
  constexpr size_t kAppends = 32;
  Universe u;
  DeltaWorkload w(u, nodes, kAppends);
  if (!w.program.ok() || w.appends.empty()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, *w.program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  std::optional<Database> db;
  size_t next = kAppends;  // forces a build before the first iteration
  for (auto _ : state) {
    if (next == kAppends) {
      state.PauseTiming();
      Result<Database> fresh = Database::Open(u, w.base);
      if (!fresh.ok()) {
        state.SkipWithError(fresh.status().ToString().c_str());
        return;
      }
      db.emplace(std::move(*fresh));
      bool warmed = maintained
                        ? db->views().Refresh("bench", *prog).ok()
                        : db->Snapshot().Run(*prog).ok();
      if (!warmed) {
        state.SkipWithError("warm-up failed");
        return;
      }
      next = 0;
      state.ResumeTiming();
    }
    if (!db->Append(w.appends[next++]).ok()) {
      state.SkipWithError("append failed");
      return;
    }
    if (maintained) {
      auto view = db->views().Refresh("bench", *prog);
      if (!view.ok()) {
        state.SkipWithError(view.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(view);
    } else {
      Result<Instance> out = db->Snapshot().Run(*prog);
      if (!out.ok()) {
        state.SkipWithError(out.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_DeltaAppendQuery(benchmark::State& state) {
  RunDeltaAppend(state, /*maintained=*/true);
}
BENCHMARK(BM_DeltaAppendQuery)->Arg(64)->Arg(256);

void BM_FullAppendQuery(benchmark::State& state) {
  RunDeltaAppend(state, /*maintained=*/false);
}
BENCHMARK(BM_FullAppendQuery)->Arg(64)->Arg(256);

// Append throughput for the BENCH json: one iteration ingests the whole
// batched workload into a fresh Database (Open + 15 Appends).
void BM_IngestAppend(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  constexpr size_t kBatches = 16;
  Universe u;
  IngestWorkload w(u, nodes, kBatches);
  if (!w.query.ok() || w.batches.empty()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  size_t total_facts = w.Merged().NumFacts();
  for (auto _ : state) {
    Result<Database> db = Database::Open(u, w.batches[0]);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    for (size_t i = 1; i < w.batches.size(); ++i) {
      if (!db->Append(w.batches[i]).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total_facts));
}
BENCHMARK(BM_IngestAppend)->Arg(32)->Arg(64);

// Post-compaction query latency vs a cold open on the merged EDB — the
// two must track each other (compaction's whole point).
void RunIngestQuery(benchmark::State& state, bool compacted) {
  size_t nodes = static_cast<size_t>(state.range(0));
  constexpr size_t kBatches = 16;
  Universe u;
  IngestWorkload w(u, nodes, kBatches);
  if (!w.query.ok() || w.batches.empty()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, w.query->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Result<Database> db = Database::Open(
      u, compacted ? w.batches[0] : w.Merged());
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  if (compacted) {
    for (size_t i = 1; i < w.batches.size(); ++i) {
      if (!db->Append(w.batches[i]).ok()) {
        state.SkipWithError("append failed");
        return;
      }
    }
    db->Compact();
  }
  Session session = db->Snapshot();
  if (!session.Run(*prog).ok()) {  // build the lazy indexes once
    state.SkipWithError("warm-up run failed");
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = session.Run(*prog);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_IngestedCompactedQuery(benchmark::State& state) {
  RunIngestQuery(state, /*compacted=*/true);
}
BENCHMARK(BM_IngestedCompactedQuery)->Arg(32)->Arg(64);

void BM_ColdOpenMergedQuery(benchmark::State& state) {
  RunIngestQuery(state, /*compacted=*/false);
}
BENCHMARK(BM_ColdOpenMergedQuery)->Arg(32)->Arg(64);

// One-shot legacy path: validation + stratification + planning on every
// call, exactly what pre-Engine call sites paid.
void BM_ReachEvalOneShot(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  EvalOptions opts;
  opts.use_index = false;  // the seed engine had no indexes
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReachEvalOneShot)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void RunPrepared(benchmark::State& state, bool use_index) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  RunOptions opts;
  opts.use_index = use_index;
  for (auto _ : state) {
    Result<Instance> out = prog->Run(*in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ReachPreparedIndexed(benchmark::State& state) {
  RunPrepared(state, true);
}
BENCHMARK(BM_ReachPreparedIndexed)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Session runs over a long-lived Database: the EDB is indexed once at
// setup, so per-query time excludes index build (compare against
// BM_ReachPreparedIndexed, which pays a fresh base per run).
void BM_ReachSessionRun(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Result<Database> db = Database::Open(u, std::move(*in));
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  Session session = db->OpenSession();
  // Build the lazy base indexes outside the timed loop.
  if (!session.Run(*prog).ok()) {
    state.SkipWithError("warm-up run failed");
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = session.Run(*prog);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReachSessionRun)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ReachPreparedNoIndex(benchmark::State& state) {
  RunPrepared(state, false);
}
BENCHMARK(BM_ReachPreparedNoIndex)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void RunReachability(benchmark::State& state, bool seminaive) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  EvalOptions opts;
  opts.seminaive = seminaive;
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ReachSeminaive(benchmark::State& state) {
  RunReachability(state, true);
}
BENCHMARK(BM_ReachSeminaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ReachNaive(benchmark::State& state) {
  RunReachability(state, false);
}
BENCHMARK(BM_ReachNaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void RunSkewedJoin(benchmark::State& state, bool selectivity) {
  size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  SkewedWorkload w;
  if (!MakeSkewedWorkload(u, n, &w)) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<Database> db = Database::Open(u, std::move(w.input));
  if (!db.ok()) {
    state.SkipWithError(db.status().ToString().c_str());
    return;
  }
  Result<PreparedProgram> prog = selectivity
                                     ? db->Compile(std::move(w.program))
                                     : Engine::Compile(u, std::move(w.program));
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  Session session = db->OpenSession();
  if (!session.Run(*prog).ok()) {  // build the lazy base indexes once
    state.SkipWithError("warm-up run failed");
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = session.Run(*prog);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_SkewedJoinLegacyPlan(benchmark::State& state) {
  RunSkewedJoin(state, false);
}
BENCHMARK(BM_SkewedJoinLegacyPlan)->Arg(256)->Arg(1024);

void BM_SkewedJoinSelectivityPlan(benchmark::State& state) {
  RunSkewedJoin(state, true);
}
BENCHMARK(BM_SkewedJoinSelectivityPlan)->Arg(256)->Arg(1024);

void BM_StratifiedNegationPipeline(benchmark::State& state) {
  size_t logs = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  EventLogWorkload ew;
  ew.count = logs;
  ew.len = 10;
  ew.seed = 4;
  Result<Instance> in = RandomEventLogs(u, ew);
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = prog->Run(*in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StratifiedNegationPipeline)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRoundCounts();
  seqdl::PrintIndexCounts();
  seqdl::PrintSelectivityPlanning();
  seqdl::PrintConcurrentThroughput();
  seqdl::PrintIngestBench();
  seqdl::PrintDeltaMaintenance();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
