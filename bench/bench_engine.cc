// Engine ablations on recursive workloads (reachability over random
// graphs, stratified-negation pipelines), sweeping instance size:
//
//   * naive vs semi-naive fixpoint iteration;
//   * one-shot Eval (re-validate + re-plan per call) vs prepared
//     Engine::Compile + PreparedProgram::Run;
//   * indexed scans (per-(relation, column) hash probes) vs full scans.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/engine.h"
#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

void PrintRoundCounts() {
  std::printf("=== Engine ablation: naive vs semi-naive ===\n");
  std::printf("%-8s %-8s %-16s %-16s\n", "nodes", "edges", "rounds(semi)",
              "rounds(naive)");
  for (size_t nodes : {8u, 16u, 32u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
    if (!q.ok()) std::abort();
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    EvalStats semi, naive;
    EvalOptions naive_opts;
    naive_opts.seminaive = false;
    Result<Instance> o1 = Eval(u, q->program, *in, {}, &semi);
    Result<Instance> o2 = Eval(u, q->program, *in, naive_opts, &naive);
    if (!o1.ok() || !o2.ok()) continue;
    std::printf("%-8zu %-8zu %-16zu %-16zu  (firings %zu vs %zu)\n", nodes,
                gw.edges, semi.rounds, naive.rounds, semi.rule_firings,
                naive.rule_firings);
  }
  std::printf("\n");
}

void PrintIndexCounts() {
  std::printf("=== Engine ablation: indexed vs full scans ===\n");
  std::printf("%-8s %-14s %-14s %-12s %-14s\n", "nodes", "index probes",
              "prefix probes", "full scans", "scans(noidx)");
  for (size_t nodes : {16u, 32u, 64u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
    if (!q.ok()) std::abort();
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
    if (!in.ok()) std::abort();
    Result<PreparedProgram> prog = Engine::Compile(u, q->program);
    if (!prog.ok()) std::abort();
    EvalStats indexed, scanned;
    RunOptions no_index;
    no_index.use_index = false;
    Result<Instance> o1 = prog->Run(*in, {}, &indexed);
    Result<Instance> o2 = prog->Run(*in, no_index, &scanned);
    if (!o1.ok() || !o2.ok()) continue;
    std::printf("%-8zu %-14zu %-14zu %-12zu %-14zu\n", nodes,
                indexed.index_probes, indexed.prefix_probes,
                indexed.full_scans, scanned.full_scans);
  }
  std::printf("\n");
}

// One-shot legacy path: validation + stratification + planning on every
// call, exactly what pre-Engine call sites paid.
void BM_ReachEvalOneShot(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  EvalOptions opts;
  opts.use_index = false;  // the seed engine had no indexes
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReachEvalOneShot)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void RunPrepared(benchmark::State& state, bool use_index) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  RunOptions opts;
  opts.use_index = use_index;
  for (auto _ : state) {
    Result<Instance> out = prog->Run(*in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ReachPreparedIndexed(benchmark::State& state) {
  RunPrepared(state, true);
}
BENCHMARK(BM_ReachPreparedIndexed)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ReachPreparedNoIndex(benchmark::State& state) {
  RunPrepared(state, false);
}
BENCHMARK(BM_ReachPreparedNoIndex)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void RunReachability(benchmark::State& state, bool seminaive) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "reach_ab");
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 21;
  Result<Instance> in = GraphToInstance(u, RandomGraph(gw), "R");
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  EvalOptions opts;
  opts.seminaive = seminaive;
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, *in, opts);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}

void BM_ReachSeminaive(benchmark::State& state) {
  RunReachability(state, true);
}
BENCHMARK(BM_ReachSeminaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ReachNaive(benchmark::State& state) {
  RunReachability(state, false);
}
BENCHMARK(BM_ReachNaive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_StratifiedNegationPipeline(benchmark::State& state) {
  size_t logs = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "process_mining");
  EventLogWorkload ew;
  ew.count = logs;
  ew.len = 10;
  ew.seed = 4;
  Result<Instance> in = RandomEventLogs(u, ew);
  if (!q.ok() || !in.ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  Result<PreparedProgram> prog = Engine::Compile(u, q->program);
  if (!prog.ok()) {
    state.SkipWithError(prog.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = prog->Run(*in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StratifiedNegationPipeline)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRoundCounts();
  seqdl::PrintIndexCounts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
