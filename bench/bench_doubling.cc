// Theorem 4.15: the doubling encoding. Benchmarks the double/undouble
// round-trip programs and the full delimiter-based packing simulation for
// a recursive program.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/syntax/parser.h"
#include "src/transform/doubling.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

void PrintRoundTrip() {
  std::printf("=== Theorem 4.15: doubling encoding ===\n");
  std::printf("%-8s %-14s %-18s\n", "strlen", "doubled len", "round trip ok");
  for (size_t len : {2u, 8u, 32u}) {
    Universe u;
    RelId r = *u.InternRel("R", 1);
    RelId rd = u.FreshRel("Rdbl", 1);
    RelId back = u.FreshRel("Back", 1);
    Program p;
    p.strata.emplace_back();
    p.strata.back().rules = DoubleRelationRules(u, r, rd);
    p.strata.emplace_back();
    p.strata.back().rules = UndoubleRelationRules(u, rd, back);
    StringWorkload w;
    w.count = 4;
    w.min_len = len;
    w.max_len = len;
    w.seed = 9;
    Result<Instance> in = RandomStrings(u, w);
    Result<Instance> out = Eval(u, p, *in);
    if (!out.ok()) {
      std::printf("%-8zu error: %s\n", len, out.status().ToString().c_str());
      continue;
    }
    bool ok = out->Tuples(back) == out->Tuples(r);
    size_t dlen = 0;
    for (const Tuple& t : out->Tuples(rd)) {
      dlen = std::max(dlen, u.PathLength(t[0]));
    }
    std::printf("%-8zu %-14zu %-18s\n", len, dlen, ok ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_DoubleUndoubleRoundTrip(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  RelId r = *u.InternRel("R", 1);
  RelId rd = u.FreshRel("Rdbl", 1);
  RelId back = u.FreshRel("Back", 1);
  Program p;
  p.strata.emplace_back();
  p.strata.back().rules = DoubleRelationRules(u, r, rd);
  p.strata.emplace_back();
  p.strata.back().rules = UndoubleRelationRules(u, rd, back);
  StringWorkload w;
  w.count = 4;
  w.min_len = len;
  w.max_len = len;
  w.seed = 9;
  Result<Instance> in = RandomStrings(u, w);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, p, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DoubleUndoubleRoundTrip)->Arg(4)->Arg(16)->Arg(64);

void BM_RecursivePackingSimulated(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "T(<$x>) <- R($x).\n"
                                   "T(<$x>) <- T(<$x ++ @a>).\n"
                                   "S($x) <- T(<$x>).\n");
  if (!p.ok()) std::abort();
  Result<Program> sim = EliminatePackingViaDoubling(u, *p, *u.FindRel("S"));
  if (!sim.ok()) std::abort();
  StringWorkload w;
  w.count = 4;
  w.min_len = len;
  w.max_len = len;
  w.seed = 2;
  Result<Instance> in = RandomStrings(u, w);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *sim, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RecursivePackingSimulated)->Arg(2)->Arg(4)->Arg(8);

void BM_RecursivePackingOriginal(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u,
                                   "T(<$x>) <- R($x).\n"
                                   "T(<$x>) <- T(<$x ++ @a>).\n"
                                   "S($x) <- T(<$x>).\n");
  if (!p.ok()) std::abort();
  StringWorkload w;
  w.count = 4;
  w.min_len = len;
  w.max_len = len;
  w.seed = 2;
  Result<Instance> in = RandomStrings(u, w);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *p, *in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RecursivePackingOriginal)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRoundTrip();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
