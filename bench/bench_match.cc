// Path-expression matching throughput: the engine's core primitive
// (enumerate all valuations with ν(e) = p), across pattern shapes — ground,
// k path-variable splits, shared variables, and packing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/match.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

void PrintMatchCounts() {
  std::printf("=== Matching: valuation counts per pattern shape ===\n");
  Universe u;
  struct Row {
    const char* pattern;
    const char* path;
  };
  for (const Row& row : {
           Row{"$x ++ $y", "a ++ b ++ a ++ b"},
           Row{"$x ++ $y ++ $z", "a ++ b ++ a ++ b"},
           Row{"$x ++ $x", "a ++ b ++ a ++ b"},
           Row{"$u ++ a ++ $v", "a ++ b ++ a ++ b"},
           Row{"$u ++ <$s> ++ $v", "a ++ <b ++ a> ++ b"},
       }) {
    Result<PathExpr> e = ParsePathExpr(u, row.pattern);
    Result<PathExpr> pe = ParsePathExpr(u, row.path);
    Result<PathId> p = EvalGroundExpr(u, *pe);
    size_t count = 0;
    Valuation v;
    MatchExpr(u, *e, *p, v, [&count](Valuation&) {
      ++count;
      return true;
    });
    std::printf("%-22s against %-22s -> %zu matches\n", row.pattern,
                row.path, count);
  }
  std::printf("\n");
}

void RunMatch(benchmark::State& state, const std::string& pattern,
              size_t path_len) {
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, pattern);
  if (!e.ok()) std::abort();
  std::string s;
  for (size_t i = 0; i < path_len; ++i) s += (i % 2 == 0 ? 'a' : 'b');
  PathId p = u.PathOfChars(s);
  for (auto _ : state) {
    size_t count = 0;
    Valuation v;
    MatchExpr(u, *e, p, v, [&count](Valuation&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}

void BM_MatchTwoVars(benchmark::State& state) {
  RunMatch(state, "$x ++ $y", static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_MatchTwoVars)->Arg(8)->Arg(32)->Arg(128);

void BM_MatchThreeVars(benchmark::State& state) {
  RunMatch(state, "$x ++ $y ++ $z", static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_MatchThreeVars)->Arg(8)->Arg(32)->Arg(128);

void BM_MatchSharedVar(benchmark::State& state) {
  RunMatch(state, "$x ++ $x", static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_MatchSharedVar)->Arg(8)->Arg(32)->Arg(128);

void BM_MatchAnchoredInfix(benchmark::State& state) {
  RunMatch(state, "$u ++ a ++ b ++ $v", static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_MatchAnchoredInfix)->Arg(8)->Arg(32)->Arg(128);

void BM_MatchPacked(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Universe u;
  Result<PathExpr> e = ParsePathExpr(u, "$u ++ <$s> ++ $v");
  std::string s(n, 'a');
  PathId inner = u.PathOfChars(s);
  PathId p = u.Concat(
      u.Append(u.PathOfChars(s), Value::Packed(inner)), u.PathOfChars(s));
  for (auto _ : state) {
    size_t count = 0;
    Valuation v;
    MatchExpr(u, *e, p, v, [&count](Valuation&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MatchPacked)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintMatchCounts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
