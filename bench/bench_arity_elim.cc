// Example 4.3 / Theorem 4.2: the reversal query with a binary intermediate
// predicate vs its arity-eliminated unary encoding (the Lemma 4.1 pairing),
// sweeping input string length. Measures the cost of the encoding.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/transform/arity_elim.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Instance MakeStrings(Universe& u, size_t count, size_t len) {
  StringWorkload w;
  w.count = count;
  w.min_len = len;
  w.max_len = len;
  w.alphabet = 3;
  w.seed = 5;
  Result<Instance> in = RandomStrings(u, w);
  if (!in.ok()) std::abort();
  return std::move(in).value();
}

void PrintComparison() {
  std::printf("=== Example 4.3 / Theorem 4.2: arity elimination "
              "(reversal query) ===\n");
  std::printf("%-8s %-14s %-14s %-16s\n", "strlen", "facts(binary)",
              "facts(unary)", "outputs agree");
  for (size_t len : {4u, 8u, 16u}) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "ex43_reverse");
    Result<Program> unary = EliminateArity(u, q->program);
    if (!unary.ok()) std::abort();
    Instance in = MakeStrings(u, 5, len);
    EvalStats s1, s2;
    Result<Instance> o1 = Eval(u, q->program, in, {}, &s1);
    Result<Instance> o2 = Eval(u, *unary, in, {}, &s2);
    if (!o1.ok() || !o2.ok()) continue;
    bool agree = o1->Tuples(q->output) == o2->Tuples(q->output);
    std::printf("%-8zu %-14zu %-14zu %-16s\n", len, s1.derived_facts,
                s2.derived_facts, agree ? "yes" : "NO");
  }
  std::printf("\n");
}

void BM_ReversalBinary(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex43_reverse");
  Instance in = MakeStrings(u, 5, len);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReversalBinary)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ReversalUnaryEncoded(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex43_reverse");
  Result<Program> unary = EliminateArity(u, q->program);
  Instance in = MakeStrings(u, 5, len);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *unary, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReversalUnaryEncoded)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ReversalPaperHandEncoding(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex43_reverse_noarity");
  Instance in = MakeStrings(u, 5, len);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReversalPaperHandEncoding)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
