// Example 2.2 / Example 4.14: the three-occurrences query with packing,
// against its mechanically derived 28-rule packing-free rewriting — the
// ablation for the "packing is convenient but redundant" result.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/queries/queries.h"
#include "src/transform/packing_elim.h"
#include "src/workload/baselines.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

Instance MakeWorkload(Universe& u, size_t hay_count, size_t hay_len,
                      uint64_t seed) {
  StringWorkload rw;
  rw.count = hay_count;
  rw.min_len = hay_len;
  rw.max_len = hay_len;
  rw.seed = seed;
  rw.rel = "R";
  StringWorkload sw;
  sw.count = 2;
  sw.min_len = 2;
  sw.max_len = 2;
  sw.seed = seed + 99;
  sw.rel = "S";
  Result<Instance> in = RandomStrings(u, rw);
  Result<Instance> needles = RandomStrings(u, sw);
  if (!in.ok() || !needles.ok()) std::abort();
  in->UnionWith(*needles);
  return std::move(in).value();
}

void PrintRewriteSummary() {
  std::printf("=== Example 2.2 / 4.14: packing query and its packing-free "
              "rewriting ===\n");
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex22_three_occurrences");
  if (!q.ok()) std::abort();
  Result<Program> rewritten = EliminatePackingNonrecursive(u, q->program);
  if (!rewritten.ok()) {
    std::printf("rewrite error: %s\n", rewritten.status().ToString().c_str());
    return;
  }
  std::printf("original rules:   %zu\n", q->program.NumRules());
  std::printf("rewritten rules:  %zu (paper Example 4.14: 28)\n",
              rewritten->NumRules());

  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "haystacks", "length",
              "marked", "original", "rewritten");
  for (size_t len : {4u, 8u, 12u}) {
    Universe u2;
    Result<ParsedQuery> q2 = ParsePaperQuery(u2, "ex22_three_occurrences");
    Result<Program> r2 = EliminatePackingNonrecursive(u2, q2->program);
    Instance in = MakeWorkload(u2, 3, len, len);
    Result<Instance> o1 = Eval(u2, q2->program, in);
    Result<Instance> o2 = Eval(u2, *r2, in);
    if (!o1.ok() || !o2.ok()) continue;
    // Count marked occurrences with the baseline for context.
    std::set<std::string> hay, needles;
    RelId r_rel = *u2.FindRel("R"), s_rel = *u2.FindRel("S");
    for (const Tuple& t : in.Tuples(r_rel)) {
      std::string s;
      for (Value v : u2.GetPath(t[0])) s += u2.AtomName(v.atom());
      hay.insert(s);
    }
    for (const Tuple& t : in.Tuples(s_rel)) {
      std::string s;
      for (Value v : u2.GetPath(t[0])) s += u2.AtomName(v.atom());
      needles.insert(s);
    }
    size_t marked = CountMarkedOccurrences(hay, needles);
    RelId a = *u2.FindRel("A");
    std::printf("%-10zu %-10zu %-12zu %-12s %-10s\n", hay.size(), len, marked,
                o1->Contains(a, {}) ? "true" : "false",
                o2->Contains(a, {}) ? "true" : "false");
  }
  std::printf("\n");
}

void BM_Example22WithPacking(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex22_three_occurrences");
  Instance in = MakeWorkload(u, 3, len, 11);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, q->program, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example22WithPacking)->Arg(4)->Arg(8)->Arg(12);

void BM_Example22PackingFree(benchmark::State& state) {
  size_t len = static_cast<size_t>(state.range(0));
  Universe u;
  Result<ParsedQuery> q = ParsePaperQuery(u, "ex22_three_occurrences");
  Result<Program> rewritten = EliminatePackingNonrecursive(u, q->program);
  Instance in = MakeWorkload(u, 3, len, 11);
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *rewritten, in);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Example22PackingFree)->Arg(4)->Arg(8)->Arg(12);

void BM_PackingEliminationItself(benchmark::State& state) {
  for (auto _ : state) {
    Universe u;
    Result<ParsedQuery> q = ParsePaperQuery(u, "ex22_three_occurrences");
    Result<Program> rewritten = EliminatePackingNonrecursive(u, q->program);
    if (!rewritten.ok()) {
      state.SkipWithError(rewritten.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(rewritten);
  }
}
BENCHMARK(BM_PackingEliminationItself);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintRewriteSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
