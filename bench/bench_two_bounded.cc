// Lemma 5.4: simulating {E,N,R} Sequence Datalog by classical Datalog on
// two-bounded instances. Prints an agreement table (transitive closure on
// random graphs), then benchmarks direct vs simulated evaluation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/engine/eval.h"
#include "src/syntax/parser.h"
#include "src/term/universe.h"
#include "src/transform/two_bounded.h"
#include "src/workload/generators.h"

namespace seqdl {
namespace {

constexpr const char* kTransitiveClosure =
    "S(@x ++ @y) <- R(@x ++ @y).\n"
    "S(@x ++ @z) <- S(@x ++ @y), R(@y ++ @z).\n";

void PrintAgreement() {
  std::printf("=== Lemma 5.4: two-bounded simulation by classical Datalog "
              "===\n");
  std::printf("%-8s %-8s %-14s %-14s %-8s\n", "nodes", "edges",
              "direct |S|", "classic |S2|", "agree");
  for (size_t nodes : {4u, 8u, 16u}) {
    Universe u;
    Result<Program> p = ParseProgram(u, kTransitiveClosure);
    if (!p.ok()) std::abort();
    ClassicalEncoding enc;
    Result<Program> pc = SimulateTwoBounded(u, *p, &enc);
    if (!pc.ok()) {
      std::printf("error: %s\n", pc.status().ToString().c_str());
      return;
    }
    GraphWorkload gw;
    gw.nodes = nodes;
    gw.edges = nodes * 2;
    gw.seed = nodes;
    Result<Instance> i = GraphToInstance(u, RandomGraph(gw), "R");
    Result<Instance> ic = EncodeTwoBounded(u, *i, &enc);
    Result<Instance> direct = Eval(u, *p, *i);
    Result<Instance> classical = Eval(u, *pc, *ic);
    if (!direct.ok() || !classical.ok()) continue;
    RelId s = *u.FindRel("S");
    auto [s1, s2] = enc.rels.at(s);
    (void)s1;
    std::printf("%-8zu %-8zu %-14zu %-14zu %-8s\n", nodes, gw.edges,
                direct->Tuples(s).size(), classical->Tuples(s2).size(),
                direct->Tuples(s).size() == classical->Tuples(s2).size()
                    ? "yes"
                    : "NO");
  }
  std::printf("\n");
}

void BM_DirectSequenceDatalog(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, kTransitiveClosure);
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 5;
  Result<Instance> i = GraphToInstance(u, RandomGraph(gw), "R");
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *p, *i);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DirectSequenceDatalog)->Arg(8)->Arg(16)->Arg(32);

void BM_ClassicalSimulation(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  Universe u;
  Result<Program> p = ParseProgram(u, kTransitiveClosure);
  ClassicalEncoding enc;
  Result<Program> pc = SimulateTwoBounded(u, *p, &enc);
  if (!pc.ok()) std::abort();
  GraphWorkload gw;
  gw.nodes = nodes;
  gw.edges = nodes * 2;
  gw.seed = 5;
  Result<Instance> i = GraphToInstance(u, RandomGraph(gw), "R");
  Result<Instance> ic = EncodeTwoBounded(u, *i, &enc);
  if (!ic.ok()) std::abort();
  for (auto _ : state) {
    Result<Instance> out = Eval(u, *pc, *ic);
    if (!out.ok()) state.SkipWithError(out.status().ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ClassicalSimulation)->Arg(8)->Arg(16)->Arg(32);

void BM_SimulationItself(benchmark::State& state) {
  for (auto _ : state) {
    Universe u;
    Result<Program> p = ParseProgram(u, kTransitiveClosure);
    ClassicalEncoding enc;
    Result<Program> pc = SimulateTwoBounded(u, *p, &enc);
    if (!pc.ok()) state.SkipWithError(pc.status().ToString().c_str());
    benchmark::DoNotOptimize(pc);
  }
}
BENCHMARK(BM_SimulationItself);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
