// Reproduces Figure 1: the Hasse diagram of the sixteen {E,I,N,R}
// fragments, which collapse into eleven equivalence classes under the
// Theorem 6.1 subsumption relation. Prints the diagram, then benchmarks
// the classification machinery.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/fragments/fragments.h"

namespace seqdl {
namespace {

void PrintFigure1() {
  std::printf("=== Figure 1: equivalence classes of Sequence Datalog "
              "fragments ===\n");
  std::vector<FragmentClass> classes = CoreEquivalenceClasses();
  std::printf("fragments over {E,I,N,R}: %d\n", 16);
  std::printf("equivalence classes:      %zu (paper: 11)\n", classes.size());
  HasseDiagram d = BuildHasseDiagram();
  std::printf("%s", RenderHasse(d).c_str());
  std::printf("\nGraphviz:\n%s\n", HasseToDot(d).c_str());
}

void BM_EquivalenceClasses(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreEquivalenceClasses());
  }
}
BENCHMARK(BM_EquivalenceClasses);

void BM_BuildHasseDiagram(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildHasseDiagram());
  }
}
BENCHMARK(BM_BuildHasseDiagram);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
