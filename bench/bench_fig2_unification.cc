// Reproduces Figure 2 / Example 4.8: the extended pig-pug search for the
// equation $x·<@y·$z>·@w = $u·$v·$u, which has exactly four successful
// branches whose substitutions form a complete set of symbolic solutions.
// Then benchmarks associative unification on scaling equation families.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/syntax/parser.h"
#include "src/syntax/printer.h"
#include "src/term/universe.h"
#include "src/unify/unify.h"

namespace seqdl {
namespace {

PathExpr MustExpr(Universe& u, const std::string& text) {
  Result<PathExpr> e = ParsePathExpr(u, text);
  if (!e.ok()) std::abort();
  return std::move(e).value();
}

void PrintFigure2() {
  std::printf("=== Figure 2: associative unification of "
              "$x·<@y·$z>·@w = $u·$v·$u ===\n");
  Universe u;
  PathExpr lhs = MustExpr(u, "$x ++ <@y ++ $z> ++ @w");
  PathExpr rhs = MustExpr(u, "$u ++ $v ++ $u");
  std::printf("one-sided nonlinear: %s (termination guaranteed)\n",
              IsOneSidedNonlinear(lhs, rhs) ? "yes" : "no");
  UnifyOptions opts;
  opts.allow_empty = false;  // the classical setting of the figure
  Result<UnifyResult> res = UnifyExprs(u, lhs, rhs, opts);
  if (!res.ok()) {
    std::printf("error: %s\n", res.status().ToString().c_str());
    return;
  }
  std::printf("rewrite nodes explored:  %zu\n", res->nodes_explored);
  std::printf("successful branches:     %zu (paper: 4)\n",
              res->successful_branches);
  std::printf("complete set of symbolic solutions:\n");
  for (const ExprSubst& rho : res->solutions) {
    std::printf("  %s\n", FormatSubst(u, rho).c_str());
  }
  std::printf("\n");
}

// Scaling family: $x1·...·$xk = a^n (number of solutions C(n+k-1, k-1)).
void BM_UnifySplits(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  Universe u;
  PathExpr lhs, rhs;
  for (size_t i = 0; i < k; ++i) {
    lhs.items.push_back(ExprItem::PathVar(
        u.InternVar(VarKind::kPath, "x" + std::to_string(i))));
  }
  for (size_t i = 0; i < n; ++i) {
    rhs.items.push_back(ExprItem::Const(Value::Atom(u.InternAtom("a"))));
  }
  size_t solutions = 0;
  for (auto _ : state) {
    Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    solutions = res->solutions.size();
    benchmark::DoNotOptimize(res);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}
BENCHMARK(BM_UnifySplits)
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 4})
    ->Args({3, 8})
    ->Args({4, 6});

// The Figure 2 equation itself.
void BM_UnifyFigure2(benchmark::State& state) {
  Universe u;
  PathExpr lhs = MustExpr(u, "$x ++ <@y ++ $z> ++ @w");
  PathExpr rhs = MustExpr(u, "$u ++ $v ++ $u");
  UnifyOptions opts;
  opts.allow_empty = state.range(0) != 0;
  for (auto _ : state) {
    Result<UnifyResult> res = UnifyExprs(u, lhs, rhs, opts);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_UnifyFigure2)->Arg(0)->Arg(1);

// Purification-shaped equations (Lemma 4.10): fresh linear side vs a
// single impure variable, with growing packing depth.
void BM_UnifyPackShapes(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  Universe u;
  PathExpr lhs = MustExpr(u, "$v0");
  for (size_t d = 0; d < depth; ++d) {
    PathExpr inner = lhs;
    lhs = PathExpr();
    lhs.items.push_back(ExprItem::PathVar(
        u.InternVar(VarKind::kPath, "w" + std::to_string(d))));
    lhs.items.push_back(ExprItem::Pack(inner));
  }
  PathExpr rhs = MustExpr(u, "$x");
  for (auto _ : state) {
    Result<UnifyResult> res = UnifyExprs(u, lhs, rhs);
    if (!res.ok()) state.SkipWithError(res.status().ToString().c_str());
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_UnifyPackShapes)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  seqdl::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
