// Scatter-gather throughput of the cluster coordinator (src/cluster/)
// over 1 / 2 / 4 loopback shards, same total EDB at every size.
//
//   * BM_TransparentJoin/N  — a keyed two-way join, classified
//     distribution-transparent by the locality pass: every shard
//     evaluates the unmodified program over its partition in parallel
//     and the coordinator unions the rendered answers. This is the
//     shape that should scale: the join work is split N ways while the
//     coordinator only pays merge + render. Acceptance: items/s at
//     /4 >= 2x items/s at /1.
//   * BM_ResidualReach/N    — transitive closure, classified residual:
//     the coordinator gathers the program's EDB relations from every
//     shard and runs the fixpoint itself. Shards contribute only
//     storage, so this does NOT scale with N — it is the documented
//     cost of the always-correct fallback, and the contrast against
//     BM_TransparentJoin is the point of measuring it.
//   * BM_SingleNodeJoin     — the same join against one DatabaseService
//     over a direct client connection (no coordinator): what the /1
//     cluster number gives up to the extra hop.
//   * BM_ShardSliceJoin     — the same join sent directly to one shard
//     of the 4-shard cluster: the per-shard work slice. The ratio
//     BM_SingleNodeJoin / BM_ShardSliceJoin is how evenly the
//     partitioner divided the join, independent of host core count.
//   * BM_ScatterInfo/N      — a body-less scatter round trip: the
//     coordination floor (thread spawn + N wire round trips + merge).
//
// Every cache is off — coordinator result cache, shard result caches,
// maintained views — so each iteration pays a full evaluation; that is
// the quantity that can scale with shard count. Run with
// --benchmark_format=json for machine-readable output (the `--json`
// mode referenced by docs/cluster.md).
//
// Reading the acceptance number (transparent join at 4 shards >= 2x the
// 1-shard throughput): the loopback shards share the host, so the
// wall-clock BM_TransparentJoin/4 only beats /1 when the host has >= 4
// cores to run the four shard evaluations concurrently. On a 1-core CI
// runner the scatter serializes and /4 degenerates to the sum of the
// slices; there, read BM_SingleNodeJoin vs BM_ShardSliceJoin instead —
// the work-per-shard division that multi-core hosts turn into
// wall-clock speedup.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/coordinator.h"
#include "src/engine/database.h"
#include "src/engine/instance.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/service.h"
#include "src/term/universe.h"

namespace seqdl {
namespace {

constexpr char kKeyedJoin[] = "T($x) <- E($x, $y), F($x, $z).\n";
constexpr char kReach[] =
    "R($x, $y) <- E($x, $y).\n"
    "R($x, $z) <- R($x, $y), E($y, $z).\n";

/// Join workload: 256 keys, 6 E-facts and 6 F-facts per key. The join
/// touches 36 pairs per key before dedup to T($x), so evaluation cost is
/// proportional to the number of keys a node holds — exactly the axis
/// sharding divides.
std::string JoinEdb() {
  std::string out;
  for (int k = 0; k < 256; ++k) {
    const std::string key = "k" + std::to_string(k);
    for (int i = 0; i < 6; ++i) {
      out += "E(" + key + ", a" + std::to_string(i) + ").\n";
      out += "F(" + key + ", b" + std::to_string(i) + ").\n";
    }
  }
  return out;
}

/// Reach workload: a 96-node chain; the closure is ~4.6k tuples. Edge
/// facts scatter across shards, so every rule application crosses shard
/// boundaries and the program is residual.
std::string ChainEdb() {
  std::string out;
  for (int i = 0; i + 1 < 96; ++i) {
    out += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
           ").\n";
  }
  return out;
}

struct Shard {
  std::unique_ptr<Universe> u;
  std::unique_ptr<DatabaseService> service;
  std::unique_ptr<Server> server;
};

/// N loopback shards + a coordinator, EDB routed through the
/// coordinator's partitioner. Leaked on purpose: fixtures are shared
/// across benchmark repetitions.
struct BenchCluster {
  std::vector<std::unique_ptr<Shard>> shards;
  std::unique_ptr<Universe> u;
  std::unique_ptr<Coordinator> coord;

  static BenchCluster* Make(size_t n, const std::string& edb) {
    auto* c = new BenchCluster();
    std::vector<ShardAddress> addrs;
    for (size_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->u = std::make_unique<Universe>();
      Result<Database> db = Database::Open(*shard->u, Instance());
      if (!db.ok()) std::abort();
      ServiceOptions sopts;
      sopts.result_cache_entries = 0;  // full evaluation per request
      shard->service = std::make_unique<DatabaseService>(
          *shard->u, std::move(*db), std::move(sopts));
      ServerOptions opts;
      opts.threads = 2;
      Result<std::unique_ptr<Server>> server =
          Server::Start(*shard->service, opts);
      if (!server.ok()) std::abort();
      shard->server = std::move(*server);
      addrs.push_back({"127.0.0.1", shard->server->port()});
      c->shards.push_back(std::move(shard));
    }
    c->u = std::make_unique<Universe>();
    CoordinatorOptions copts;
    copts.result_cache_entries = 0;  // measure scatter-gather, not cache
    c->coord = std::make_unique<Coordinator>(*c->u, std::move(addrs),
                                             std::move(copts));
    protocol::AppendRequest req;
    req.facts = edb;
    Result<protocol::AppendReply> seeded = c->coord->Append(req);
    if (!seeded.ok()) std::abort();
    return c;
  }
};

BenchCluster* JoinCluster(size_t n) {
  static BenchCluster* c1 = BenchCluster::Make(1, JoinEdb());
  static BenchCluster* c2 = BenchCluster::Make(2, JoinEdb());
  static BenchCluster* c4 = BenchCluster::Make(4, JoinEdb());
  return n == 1 ? c1 : n == 2 ? c2 : c4;
}

BenchCluster* ReachCluster(size_t n) {
  static BenchCluster* c1 = BenchCluster::Make(1, ChainEdb());
  static BenchCluster* c2 = BenchCluster::Make(2, ChainEdb());
  static BenchCluster* c4 = BenchCluster::Make(4, ChainEdb());
  return n == 1 ? c1 : n == 2 ? c2 : c4;
}

void RunCoordinator(benchmark::State& state, BenchCluster* c,
                    const char* program) {
  protocol::RunRequest req;
  req.program = program;
  req.collect_derived_stats = false;
  for (auto _ : state) {
    Result<protocol::RunReply> run = c->coord->Run(req);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_TransparentJoin(benchmark::State& state) {
  RunCoordinator(state, JoinCluster(static_cast<size_t>(state.range(0))),
                 kKeyedJoin);
}
BENCHMARK(BM_TransparentJoin)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ResidualReach(benchmark::State& state) {
  RunCoordinator(state, ReachCluster(static_cast<size_t>(state.range(0))),
                 kReach);
}
BENCHMARK(BM_ResidualReach)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ScatterInfo(benchmark::State& state) {
  BenchCluster* c = JoinCluster(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Result<protocol::DbInfo> info = c->coord->Info();
    if (!info.ok()) {
      state.SkipWithError(info.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(info);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScatterInfo)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_ShardSliceJoin(benchmark::State& state) {
  BenchCluster* c = JoinCluster(4);
  Result<Client> client =
      Client::Connect("127.0.0.1", c->shards[0]->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<protocol::RunReply> run =
        client->Run(kKeyedJoin, "", "", false);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardSliceJoin)->UseRealTime();

void BM_SingleNodeJoin(benchmark::State& state) {
  static Shard* s = [] {
    auto* shard = new Shard();
    shard->u = std::make_unique<Universe>();
    Result<Instance> edb = ParseInstance(*shard->u, JoinEdb());
    if (!edb.ok()) std::abort();
    Result<Database> db = Database::Open(*shard->u, std::move(*edb));
    if (!db.ok()) std::abort();
    ServiceOptions sopts;
    sopts.result_cache_entries = 0;
    shard->service = std::make_unique<DatabaseService>(
        *shard->u, std::move(*db), std::move(sopts));
    Result<std::unique_ptr<Server>> server =
        Server::Start(*shard->service, {});
    if (!server.ok()) std::abort();
    shard->server = std::move(*server);
    return shard;
  }();
  Result<Client> client = Client::Connect("127.0.0.1", s->server->port());
  if (!client.ok()) {
    state.SkipWithError(client.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<protocol::RunReply> run =
        client->Run(kKeyedJoin, "", "", /*collect_derived_stats=*/false);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(run->rendered);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleNodeJoin)->UseRealTime();

}  // namespace
}  // namespace seqdl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::fprintf(stderr,
               "-- acceptance: BM_TransparentJoin/4 items_per_second >= 2x "
               "BM_TransparentJoin/1 (hosts with >= 4 cores); on fewer "
               "cores read BM_SingleNodeJoin vs BM_ShardSliceJoin\n");
  return 0;
}
