#include "src/storage/storage.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

#include "src/storage/format.h"

namespace seqdl {
namespace storage {

namespace {

std::string SegFileName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06" PRIu64 ".sdlseg", id);
  return buf;
}

std::string WalFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".log", generation);
  return buf;
}

}  // namespace

Result<std::unique_ptr<StorageEngine>> StorageEngine::Open(
    Universe& u, StorageOptions opts) {
  SEQDL_RETURN_IF_ERROR(EnsureDir(opts.dir));
  auto engine = std::unique_ptr<StorageEngine>(new StorageEngine(opts));

  Result<Manifest> current = ReadCurrent(opts.dir);
  if (current.ok()) {
    SEQDL_RETURN_IF_ERROR(engine->RecoverFrom(u, std::move(current).value()));
  } else if (current.status().code() != StatusCode::kNotFound) {
    return current.status();
  }
  // Fresh directory: generation 0, no files; the caller's initial
  // Checkpoint publishes generation 1.

  SEQDL_RETURN_IF_ERROR(engine->SweepOrphans());
  engine->RefreshInfo();
  return engine;
}

Status StorageEngine::RecoverFrom(Universe& u, Manifest m) {
  for (const ManifestSegment& seg : m.segments) {
    SEQDL_ASSIGN_OR_RETURN(LoadedSegment loaded,
                           ReadSegmentFile(SegPath(seg.file), u));
    if (loaded.kind != seg.kind) {
      return StorageError(kSdManifestCorrupt,
                          SegPath(seg.file) +
                              ": segment kind disagrees with the manifest");
    }
    if (loaded.facts.NumFacts() != seg.facts) {
      return StorageError(kSdManifestCorrupt,
                          SegPath(seg.file) +
                              ": fact count disagrees with the manifest");
    }
    SealedSegment out;
    out.facts = std::move(loaded.facts);
    out.kind = loaded.kind;
    out.stamp = seg.stamp;
    sealed_.push_back(std::move(out));
  }
  recovered_ = true;
  recovered_epoch_ = m.epoch;
  recovered_shrink_floor_ = m.shrink_floor;
  manifest_ = std::move(m);
  return Status::OK();
}

Status StorageEngine::SweepOrphans() const {
  std::set<std::string> live = {"CURRENT"};
  if (manifest_.generation > 0) {
    live.insert(ManifestFileName(manifest_.generation));
    live.insert(manifest_.wal_file);
    for (const ManifestSegment& seg : manifest_.segments) {
      live.insert(seg.file);
    }
  }
  SEQDL_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                         ListDir(opts_.dir));
  for (const std::string& name : entries) {
    if (live.count(name) > 0) continue;
    // Only sweep names this engine generates; leave foreign files alone.
    bool ours = name.rfind("seg-", 0) == 0 || name.rfind("wal-", 0) == 0 ||
                name.rfind("MANIFEST-", 0) == 0 ||
                (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0);
    if (!ours) continue;
    SEQDL_RETURN_IF_ERROR(RemoveFile(opts_.dir + "/" + name));
  }
  return Status::OK();
}

Result<WalReplay> StorageEngine::ReplayTail(
    Universe& u,
    const std::function<Status(WalRecordType, Instance)>& apply) {
  WalReplay replay;
  if (manifest_.generation > 0) {
    std::string wal_path = opts_.dir + "/" + manifest_.wal_file;
    SEQDL_ASSIGN_OR_RETURN(replay, ReplayWal(wal_path, u, apply));
    SEQDL_ASSIGN_OR_RETURN(
        WalWriter w,
        WalWriter::Open(wal_path, opts_.sync_mode, opts_.sync_interval_ms));
    wal_.emplace(std::move(w));
  }
  RefreshInfo();
  return replay;
}

Status StorageEngine::LogCommit(WalRecordType type, const Universe& u,
                                const Instance& batch) {
  if (!wal_.has_value()) {
    return Status::Internal(
        "storage: LogCommit before the WAL was opened (missing initial "
        "checkpoint or ReplayTail)");
  }
  SEQDL_RETURN_IF_ERROR(wal_->Append(type, u, batch));
  std::lock_guard<std::mutex> lock(info_mu_);
  info_.wal_bytes = wal_->bytes();
  return Status::OK();
}

bool StorageEngine::WantsCheckpoint() const {
  return wal_.has_value() && wal_->bytes() >= opts_.checkpoint_wal_bytes;
}

Status StorageEngine::Checkpoint(const Universe& u, uint64_t epoch,
                                 uint64_t shrink_floor,
                                 const std::vector<CheckpointSegment>& stack,
                                 bool rewrite) {
  // A shrinking stack only happens via compaction; treat it as a full
  // rewrite even if the caller forgot to say so.
  size_t reuse = rewrite ? 0 : manifest_.segments.size();
  if (reuse > stack.size()) {
    reuse = 0;
    rewrite = true;
  }

  Manifest next;
  next.generation = manifest_.generation + 1;
  next.epoch = epoch;
  next.shrink_floor = shrink_floor;
  next.next_file_id = manifest_.next_file_id;
  next.wal_file = WalFileName(next.generation);
  next.segments.assign(manifest_.segments.begin(),
                       manifest_.segments.begin() +
                           static_cast<ptrdiff_t>(reuse));

  // 1. Seal the segments above the reused prefix. Failure here leaves
  //    only unreferenced files behind (swept at the next Open).
  std::vector<std::string> fresh_files;
  auto discard_fresh = [&]() {
    for (const std::string& f : fresh_files) {
      (void)RemoveFile(SegPath(f));  // best effort
    }
  };
  for (size_t i = reuse; i < stack.size(); ++i) {
    std::string file = SegFileName(next.next_file_id++);
    Result<uint64_t> size =
        WriteSegmentFile(SegPath(file), u, *stack[i].facts, stack[i].kind);
    if (!size.ok()) {
      discard_fresh();
      return size.status();
    }
    fresh_files.push_back(file);
    ManifestSegment seg;
    seg.file = std::move(file);
    seg.kind = stack[i].kind;
    seg.stamp = stack[i].stamp;
    seg.facts = stack[i].facts->NumFacts();
    seg.bytes = *size;
    next.segments.push_back(std::move(seg));
  }

  // 2. Write the new manifest and create its (empty) WAL before the
  //    CURRENT flip: once CURRENT names the generation, every file it
  //    references must exist.
  Status st = WriteManifest(opts_.dir, next);
  if (st.ok()) {
    Result<WalWriter> w = WalWriter::Open(opts_.dir + "/" + next.wal_file,
                                          opts_.sync_mode,
                                          opts_.sync_interval_ms);
    if (!w.ok()) {
      st = w.status();
    } else {
      st = w->Sync();
      if (st.ok()) {
        // 3. Commit point.
        st = PublishCurrent(opts_.dir, next.generation);
      }
      if (st.ok()) {
        // 4. The old generation is obsolete; deletions are best effort
        //    (a crash here leaves orphans for the next Open's sweep).
        if (manifest_.generation > 0) {
          (void)RemoveFile(opts_.dir + "/" +
                           ManifestFileName(manifest_.generation));
          (void)RemoveFile(opts_.dir + "/" + manifest_.wal_file);
        }
        std::set<std::string> kept;
        for (const ManifestSegment& seg : next.segments) kept.insert(seg.file);
        for (const ManifestSegment& seg : manifest_.segments) {
          if (kept.count(seg.file) == 0) (void)RemoveFile(SegPath(seg.file));
        }
        manifest_ = std::move(next);
        wal_.emplace(std::move(w).value());
        RefreshInfo();
        return Status::OK();
      }
    }
  }
  // Failure before the CURRENT flip: unpublish everything we created.
  (void)RemoveFile(opts_.dir + "/" + ManifestFileName(next.generation));
  (void)RemoveFile(opts_.dir + "/" + next.wal_file);
  discard_fresh();
  return st;
}

StorageInfo StorageEngine::info() const {
  std::lock_guard<std::mutex> lock(info_mu_);
  return info_;
}

void StorageEngine::RefreshInfo() {
  StorageInfo info;
  info.manifest_generation = manifest_.generation;
  info.sealed_segments = manifest_.segments.size();
  for (const ManifestSegment& seg : manifest_.segments) {
    info.on_disk_bytes += seg.bytes;
  }
  info.wal_bytes = wal_.has_value() ? wal_->bytes() : 0;
  std::lock_guard<std::mutex> lock(info_mu_);
  info_ = info;
}

}  // namespace storage
}  // namespace seqdl
