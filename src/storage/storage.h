// StorageEngine: the durability side of a Database. It owns the data
// directory — sealed segment files, the commit WAL, and the manifest —
// and exposes exactly the four operations the engine layer needs:
//
//   Open        recover the sealed segment stack named by CURRENT
//               (or initialize a fresh directory),
//   ReplayTail  re-apply the WAL records past the last checkpoint,
//   LogCommit   make one effective commit batch durable pre-publish,
//   Checkpoint  seal the in-memory stack to files and rotate the WAL
//               under a new manifest generation.
//
// Invariant maintained across all four: the sealed files plus the WAL
// records always reconstruct the published in-memory stack exactly —
// segment files mirror a bottom prefix of the stack 1:1, and each WAL
// record is one effective (post-dedupe) commit above that prefix. The
// commit point of a checkpoint is the atomic rename of CURRENT; a
// crash on either side of it recovers a consistent generation, and
// files the crash orphaned are swept at the next Open.
//
// Thread safety: mutation (LogCommit/Checkpoint) is serialized by the
// caller under the Database writer mutex. info() is safe from any
// thread (server stats workers race the writer).
#ifndef SEQDL_STORAGE_STORAGE_H_
#define SEQDL_STORAGE_STORAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/storage/manifest.h"
#include "src/storage/wal.h"
#include "src/term/universe.h"

namespace seqdl {
namespace storage {

struct StorageOptions {
  std::string dir;
  SyncMode sync_mode = SyncMode::kAlways;
  uint32_t sync_interval_ms = 100;
  /// Checkpoint (seal + WAL rotation) once the log grows past this.
  uint64_t checkpoint_wal_bytes = 64ull << 20;
};

/// Point-in-time durability counters for DbInfo / kStats replies.
struct StorageInfo {
  uint64_t manifest_generation = 0;
  /// Sealed segment files + current manifest, excluding the WAL.
  uint64_t on_disk_bytes = 0;
  uint64_t wal_bytes = 0;
  uint64_t sealed_segments = 0;
};

/// One recovered segment, bottom-of-stack first.
struct SealedSegment {
  Instance facts;
  SegmentKind kind = SegmentKind::kFacts;
  uint64_t stamp = 0;
};

/// One in-memory segment as handed to Checkpoint.
struct CheckpointSegment {
  const Instance* facts = nullptr;
  SegmentKind kind = SegmentKind::kFacts;
  uint64_t stamp = 0;
};

class StorageEngine {
 public:
  /// Opens `opts.dir`, creating it if needed. If the directory holds a
  /// CURRENT pointer, loads the manifest and decodes every sealed
  /// segment into `sealed()` (re-interning through `u`); otherwise the
  /// engine is fresh and the caller must run an initial Checkpoint
  /// before committing. Crash-window orphan files are deleted.
  static Result<std::unique_ptr<StorageEngine>> Open(Universe& u,
                                                     StorageOptions opts);

  /// True when Open found an initialized directory.
  bool recovered() const { return recovered_; }
  /// Epoch / shrink floor as of the recovered manifest (0 when fresh).
  uint64_t recovered_epoch() const { return recovered_epoch_; }
  uint64_t recovered_shrink_floor() const { return recovered_shrink_floor_; }

  /// Recovered segments; the caller moves these into its stack.
  std::vector<SealedSegment>& sealed() { return sealed_; }

  /// Replays the WAL tail past the checkpoint through `apply`, then
  /// opens the log for appending. Must be called exactly once on a
  /// recovered engine, after the sealed segments are installed.
  Result<WalReplay> ReplayTail(
      Universe& u,
      const std::function<Status(WalRecordType, Instance)>& apply);

  /// Appends one effective commit batch to the WAL under the caller's
  /// writer lock. On OK under SyncMode::kAlways the batch is durable.
  Status LogCommit(WalRecordType type, const Universe& u,
                   const Instance& batch);

  /// True once the WAL has outgrown the checkpoint threshold.
  bool WantsCheckpoint() const;

  /// Seals the given stack under a new manifest generation and rotates
  /// the WAL. With `rewrite` false, the first `sealed_segments` of
  /// `stack` are assumed unchanged and their files are reused; with
  /// `rewrite` true (compaction) every segment is written anew and all
  /// previous files become obsolete. On error nothing is published:
  /// CURRENT still names the old generation.
  Status Checkpoint(const Universe& u, uint64_t epoch, uint64_t shrink_floor,
                    const std::vector<CheckpointSegment>& stack, bool rewrite);

  /// Thread-safe snapshot of the durability counters.
  StorageInfo info() const;

  const std::string& dir() const { return opts_.dir; }

 private:
  explicit StorageEngine(StorageOptions opts) : opts_(std::move(opts)) {}

  Status RecoverFrom(Universe& u, Manifest m);
  Status SweepOrphans() const;
  std::string SegPath(const std::string& file) const {
    return opts_.dir + "/" + file;
  }
  void RefreshInfo();

  StorageOptions opts_;
  bool recovered_ = false;
  uint64_t recovered_epoch_ = 0;
  uint64_t recovered_shrink_floor_ = 0;
  std::vector<SealedSegment> sealed_;

  /// Live file set (mirrors the current manifest).
  Manifest manifest_;
  std::optional<WalWriter> wal_;

  mutable std::mutex info_mu_;
  StorageInfo info_;
};

}  // namespace storage
}  // namespace seqdl

#endif  // SEQDL_STORAGE_STORAGE_H_
