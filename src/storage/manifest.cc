#include "src/storage/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/storage/format.h"

namespace seqdl {
namespace storage {

namespace {

constexpr char kManifestMagic[8] = {'S', 'D', 'L', 'M', 'A', 'N', '1', '\n'};

}  // namespace

std::string ManifestFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%06" PRIu64, generation);
  return buf;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  std::string out;
  out.append(kManifestMagic, sizeof(kManifestMagic));
  PutVarint(&out, m.generation);
  PutVarint(&out, m.epoch);
  PutVarint(&out, m.shrink_floor);
  PutVarint(&out, m.next_file_id);
  PutLenBytes(&out, m.wal_file);
  PutVarint(&out, m.segments.size());
  for (const ManifestSegment& seg : m.segments) {
    PutLenBytes(&out, seg.file);
    PutU8(&out, static_cast<uint8_t>(seg.kind));
    PutVarint(&out, seg.stamp);
    PutVarint(&out, seg.facts);
    PutVarint(&out, seg.bytes);
  }
  PutU32(&out, Crc32(out.data(), out.size()));
  return WriteFileDurable(dir + "/" + ManifestFileName(m.generation), out);
}

Status PublishCurrent(const std::string& dir, uint64_t generation) {
  return WriteFileDurable(dir + "/CURRENT", ManifestFileName(generation) + "\n");
}

Result<Manifest> ReadCurrent(const std::string& dir) {
  Result<std::string> current = ReadFileBytes(dir + "/CURRENT");
  if (!current.ok()) return current.status();  // kNotFound: fresh directory
  std::string name = std::move(current).value();
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  if (name.empty() || name.find('/') != std::string::npos) {
    return StorageError(kSdManifestCorrupt,
                        dir + "/CURRENT: malformed manifest name");
  }
  return ReadManifest(dir + "/" + name);
}

Result<Manifest> ReadManifest(const std::string& path) {
  Result<std::string> contents = ReadFileBytes(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return StorageError(kSdManifestCorrupt,
                          path + ": CURRENT names a missing manifest");
    }
    return contents.status();
  }
  const std::string& data = *contents;
  if (data.size() < sizeof(kManifestMagic) + 4 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return StorageError(kSdManifestCorrupt, path + ": not a seqdl manifest");
  }
  {
    ByteReader crc_reader(std::string_view(data).substr(data.size() - 4),
                          kSdManifestCorrupt);
    SEQDL_ASSIGN_OR_RETURN(uint32_t stored, crc_reader.U32());
    if (stored != Crc32(data.data(), data.size() - 4)) {
      return StorageError(kSdManifestCorrupt, path + ": CRC mismatch");
    }
  }

  ByteReader r(std::string_view(data).substr(sizeof(kManifestMagic),
                                             data.size() -
                                                 sizeof(kManifestMagic) - 4),
               kSdManifestCorrupt);
  Manifest m;
  SEQDL_ASSIGN_OR_RETURN(m.generation, r.Varint());
  SEQDL_ASSIGN_OR_RETURN(m.epoch, r.Varint());
  SEQDL_ASSIGN_OR_RETURN(m.shrink_floor, r.Varint());
  SEQDL_ASSIGN_OR_RETURN(m.next_file_id, r.Varint());
  SEQDL_ASSIGN_OR_RETURN(std::string_view wal, r.LenBytes());
  m.wal_file = std::string(wal);
  SEQDL_ASSIGN_OR_RETURN(uint64_t nsegs, r.Varint());
  if (nsegs > r.remaining()) {
    return StorageError(kSdManifestCorrupt,
                        path + ": segment table larger than the file");
  }
  m.segments.reserve(nsegs);
  for (uint64_t i = 0; i < nsegs; ++i) {
    ManifestSegment seg;
    SEQDL_ASSIGN_OR_RETURN(std::string_view file, r.LenBytes());
    seg.file = std::string(file);
    SEQDL_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
    if (kind > static_cast<uint8_t>(SegmentKind::kTombstones)) {
      return StorageError(kSdManifestCorrupt,
                          path + ": unknown segment kind");
    }
    seg.kind = static_cast<SegmentKind>(kind);
    SEQDL_ASSIGN_OR_RETURN(seg.stamp, r.Varint());
    SEQDL_ASSIGN_OR_RETURN(seg.facts, r.Varint());
    SEQDL_ASSIGN_OR_RETURN(seg.bytes, r.Varint());
    if (seg.file.empty() || seg.file.find('/') != std::string::npos) {
      return StorageError(kSdManifestCorrupt,
                          path + ": malformed segment file name");
    }
    m.segments.push_back(std::move(seg));
  }
  if (!r.AtEnd()) {
    return StorageError(kSdManifestCorrupt, path + ": trailing bytes");
  }
  return m;
}

}  // namespace storage
}  // namespace seqdl
