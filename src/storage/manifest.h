// The manifest: the single source of truth for which files make up the
// database. A data directory contains:
//
//   CURRENT            name of the live MANIFEST-<gen> file
//   MANIFEST-<gen>     full snapshot of the live file set (immutable)
//   seg-<n>.sdlseg     sealed segment files (immutable)
//   wal-<gen>.log      the commit log for this generation
//
// Each checkpoint writes a complete new MANIFEST-<gen+1>, creates a
// fresh WAL for the generation, and then flips CURRENT with an atomic
// rename. A crash at any point leaves either the old or the new
// generation fully intact — CURRENT is the commit point. Files not
// referenced by the current manifest are orphans from a crash window
// and are deleted at the next Open.
//
// Manifest file layout (magic "SDLMAN1\n", then varints, u32 CRC of
// everything above at the end):
//
//   generation  epoch  shrink_floor  next_file_id
//   wal_file:len+bytes
//   segment_count x { file:len+bytes, kind:u8, stamp:varint,
//                     facts:varint, bytes:varint }
#ifndef SEQDL_STORAGE_MANIFEST_H_
#define SEQDL_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/index.h"

namespace seqdl {
namespace storage {

/// One sealed segment as named by the manifest, bottom-of-stack first.
struct ManifestSegment {
  std::string file;
  SegmentKind kind = SegmentKind::kFacts;
  /// The epoch stamp the in-memory stack records for this segment
  /// (SegmentSet::segment_epochs) — drives delta maintenance on reopen.
  uint64_t stamp = 0;
  uint64_t facts = 0;
  /// File size, so DbInfo can report on-disk bytes without stat calls.
  uint64_t bytes = 0;
};

struct Manifest {
  uint64_t generation = 0;
  /// Epoch as of the checkpoint; WAL replay advances past it.
  uint64_t epoch = 0;
  uint64_t shrink_floor = 0;
  /// Next unused id for seg-<n>.sdlseg naming.
  uint64_t next_file_id = 0;
  std::string wal_file;
  std::vector<ManifestSegment> segments;
};

/// "MANIFEST-000007" for generation 7.
std::string ManifestFileName(uint64_t generation);

/// Serializes `m` durably to `dir/ManifestFileName(m.generation)`.
Status WriteManifest(const std::string& dir, const Manifest& m);

/// Points CURRENT at generation `gen` (temp file + rename + dir fsync).
/// This is the commit point of a checkpoint.
Status PublishCurrent(const std::string& dir, uint64_t generation);

/// Loads the manifest CURRENT points at. kNotFound when the directory
/// has no CURRENT (a fresh, uninitialized directory).
Result<Manifest> ReadCurrent(const std::string& dir);

/// Loads and validates one manifest file.
Result<Manifest> ReadManifest(const std::string& path);

}  // namespace storage
}  // namespace seqdl

#endif  // SEQDL_STORAGE_MANIFEST_H_
