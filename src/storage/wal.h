// Write-ahead log: the durability point of a commit. Every effective
// (post-dedupe) append or retract batch is encoded as one CRC-framed
// record and written to the log *before* the in-memory segment stack
// publishes it. Recovery loads the sealed segments named by the
// manifest and replays the WAL tail through the normal commit path.
//
// Record layout (little-endian):
//
//   len     u32 payload length in bytes
//   crc     u32 CRC32 of the payload
//   payload u8 record type (WalRecordType) + instance block
//           (storage/format.h: EncodeInstanceBlock)
//
// The log is append-only and single-writer (the Database writer mutex
// serializes commits). Replay follows the LevelDB torn-tail policy: a
// short or CRC-failing record marks the write that was in flight when
// the process died — everything before it is kept, the file is
// truncated there, and replay succeeds. A record whose CRC validates
// but whose payload does not decode is real corruption and fails with
// [SD402].
#ifndef SEQDL_STORAGE_WAL_H_
#define SEQDL_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {
namespace storage {

/// When a commit's WAL write is pushed to stable media.
enum class SyncMode : uint8_t {
  /// fdatasync before every commit acknowledges. Survives power loss.
  kAlways = 0,
  /// fdatasync at most once per `sync_interval_ms`. Bounded loss window;
  /// group commit amortizes the flush across bursts.
  kInterval = 1,
  /// Never fsync (the OS flushes on its own schedule). Survives process
  /// crashes (the page cache persists) but not power loss.
  kNever = 2,
};

enum class WalRecordType : uint8_t {
  kAppend = 1,
  kRetract = 2,
};

/// Appends CRC-framed commit records to one log file. Move-only;
/// callers (StorageEngine) serialize access under the writer mutex.
class WalWriter {
 public:
  /// Opens (creating if absent) `path` for appending.
  static Result<WalWriter> Open(const std::string& path, SyncMode mode,
                                uint32_t sync_interval_ms);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Writes one record and applies the sync policy. On return with OK
  /// under kAlways, the record is on stable media.
  Status Append(WalRecordType type, const Universe& u, const Instance& batch);

  /// Forces an fdatasync of everything written so far (used at
  /// checkpoint boundaries regardless of policy).
  Status Sync();

  /// Bytes written to this log so far (including recovered bytes when
  /// the file pre-existed). Drives the checkpoint threshold.
  uint64_t bytes() const { return written_; }

  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, SyncMode mode, uint32_t interval_ms,
            uint64_t existing_bytes);

  int fd_ = -1;
  std::string path_;
  SyncMode mode_ = SyncMode::kAlways;
  uint32_t sync_interval_ms_ = 100;
  uint64_t written_ = 0;
  uint64_t synced_ = 0;
  /// steady_clock::now() at the last sync, in milliseconds; only
  /// consulted under kInterval.
  uint64_t last_sync_ms_ = 0;
};

/// Outcome of scanning a WAL file.
struct WalReplay {
  /// Records successfully decoded and applied.
  uint64_t records = 0;
  /// File prefix length holding those records; the tail beyond it (if
  /// any) was a torn write and has been truncated away.
  uint64_t valid_bytes = 0;
  bool truncated_tail = false;
};

/// Scans `path`, decoding each record and invoking `apply`. A missing
/// file is an empty replay. A torn tail is truncated (the file is
/// rewritten to `valid_bytes`). `apply` failures abort the replay.
Result<WalReplay> ReplayWal(
    const std::string& path, Universe& u,
    const std::function<Status(WalRecordType, Instance)>& apply);

}  // namespace storage
}  // namespace seqdl

#endif  // SEQDL_STORAGE_WAL_H_
