// On-disk encoding primitives for the storage engine: CRC32 framing,
// little-endian scalar codecs, the *instance block* (a symbolic,
// Universe-independent serialization of an Instance), and the sealed
// segment file format.
//
// Everything on disk is symbolic. PathIds, AtomIds and RelIds are
// Universe-relative — two processes interning the same data in different
// orders assign different ids — so a segment stores atom *names* (one
// arena-packed blob plus a length table), a path table in topological
// order (a packed value may only reference an earlier table entry), and
// per-relation tuple tables of path-table offsets. Decoding re-interns
// through the target Universe: equal contents load to equal ids no
// matter which process wrote the file.
//
// Segment file layout (all integers little-endian; varint = LEB128):
//
//   magic   "SDLSEG1\n"                     8 bytes
//   kind    u8 (SegmentKind: 0 facts, 1 tombstones)
//   facts   u64 (fact count, validated against the decoded block)
//   len     u64 (instance block length in bytes)
//   block   instance block (see EncodeInstanceBlock)
//   crc     u32 CRC32 of everything above
//
// Instance block layout:
//
//   atom_count:varint  arena_len:varint  arena:bytes
//   atom_count x name_len:varint              (arena-packed names)
//   path_count:varint                         (excludes the empty path)
//   path_count x { nvalues:varint, nvalues x value:varint }
//     value encoding: atom      -> local_atom_index << 1
//                     packed<p> -> (local_path_index << 1) | 1
//     where local_path_index 0 is the implicit empty path and every
//     reference points at an *earlier* table entry (topological order).
//   rel_count:varint
//   rel_count x { name_len:varint, name:bytes, arity:varint,
//                 tuple_count:varint,
//                 tuple_count x arity x local_path_index:varint }
//
// Sealed files are immutable: they are written once to a temp name,
// fsynced, renamed into place, and never modified. Readers memory-map
// them and decode in place. Writers in this file return Status with a
// stable "[SD4xx]" diagnostic code appended to the message (see
// analysis/diagnostics.h for the catalog).
#ifndef SEQDL_STORAGE_FORMAT_H_
#define SEQDL_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/engine/index.h"
#include "src/engine/instance.h"
#include "src/term/universe.h"

namespace seqdl {
namespace storage {

// --- Diagnostics ------------------------------------------------------------

/// Stable SD-codes of the storage layer (catalog: analysis/diagnostics.h).
inline constexpr const char* kSdStorageIo = "SD401";
inline constexpr const char* kSdWalCorrupt = "SD402";
inline constexpr const char* kSdManifestCorrupt = "SD403";
inline constexpr const char* kSdSegmentCorrupt = "SD404";
inline constexpr const char* kSdDataDirConflict = "SD405";

/// kIoError carrying a stable diagnostic code: "msg [SDxxx]". The
/// structured-diagnostics layer (DiagnosticFromStatus) recovers the code
/// so CLI and server log render storage failures like analyzer findings.
Status StorageError(const char* sd_code, std::string msg);
/// As above with ": strerror(errno)" appended (call right after the
/// failing syscall).
Status StorageErrnoError(const char* sd_code, std::string msg);

// --- Scalar codecs ----------------------------------------------------------

uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutVarint(std::string* out, uint64_t v);
/// Varint length + raw bytes.
void PutLenBytes(std::string* out, std::string_view s);

/// Bounds-checked sequential reader over an in-memory byte range (a
/// mapped file or a loaded WAL record). Every accessor fails with a
/// kIoError [SD404]-style status on truncation instead of reading past
/// the end.
class ByteReader {
 public:
  ByteReader(std::string_view data, const char* sd_code)
      : data_(data), sd_code_(sd_code) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<uint64_t> Varint();
  Result<std::string_view> LenBytes();
  /// Raw `n` bytes.
  Result<std::string_view> Bytes(size_t n);

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated(const char* what) const;

  std::string_view data_;
  const char* sd_code_;
  size_t pos_ = 0;
};

// --- Instance blocks --------------------------------------------------------

/// Appends the symbolic encoding of `inst` to `out`. Deterministic:
/// relations in RelId order are re-sorted by name, tuples sorted by
/// their encoded offsets, so equal instances produce equal bytes within
/// one Universe (byte-stability across processes additionally needs the
/// same insertion order, which the WAL replay path guarantees).
void EncodeInstanceBlock(const Universe& u, const Instance& inst,
                         std::string* out);

/// Decodes one instance block, re-interning every atom, path and
/// relation through `u`. `sd_code` names the failure domain for error
/// statuses (segment vs WAL corruption).
Result<Instance> DecodeInstanceBlock(Universe& u, ByteReader& r,
                                     const char* sd_code);

// --- Sealed segment files ---------------------------------------------------

struct LoadedSegment {
  Instance facts;
  SegmentKind kind = SegmentKind::kFacts;
};

/// Serializes (inst, kind) to `path` durably: temp file, fsync, rename,
/// fsync of the containing directory. Returns the file size in bytes.
Result<uint64_t> WriteSegmentFile(const std::string& path, const Universe& u,
                                  const Instance& inst, SegmentKind kind);

/// Memory-maps and decodes a sealed segment file, validating magic,
/// CRC and fact count. The mapping only lives for the duration of the
/// decode — the returned Instance owns its (re-interned) data.
Result<LoadedSegment> ReadSegmentFile(const std::string& path, Universe& u);

// --- Files and directories --------------------------------------------------

/// Read-only mmap of a whole file; unmapped on destruction. Move-only.
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view data() const {
    return std::string_view(static_cast<const char*>(addr_), size_);
  }

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}
  void* addr_ = nullptr;
  size_t size_ = 0;
};

/// Reads a whole file into a string. kNotFound if it does not exist.
Result<std::string> ReadFileBytes(const std::string& path);

/// Writes `contents` durably: "<path>.tmp", fsync, rename to `path`,
/// fsync of the parent directory. The publish point is the rename.
Status WriteFileDurable(const std::string& path, std::string_view contents);

/// fsync on the directory itself (required after create/rename/unlink
/// for the entry to survive a power cut; a no-op on filesystems that
/// do not support it).
Status SyncDir(const std::string& dir);

/// mkdir -p for one level; ok if the directory already exists.
Status EnsureDir(const std::string& dir);

Result<bool> FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);
Status RemoveFile(const std::string& path);
/// Plain entry names (no dot entries), unsorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace storage
}  // namespace seqdl

#endif  // SEQDL_STORAGE_FORMAT_H_
