#include "src/storage/format.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace seqdl {
namespace storage {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'D', 'L', 'S', 'E', 'G', '1', '\n'};
/// Fixed-size prefix of a segment file: magic, kind, fact count, block
/// length. The CRC footer adds 4 more bytes.
constexpr size_t kSegmentHeaderBytes = 8 + 1 + 8 + 8;

std::string ErrnoSuffix() {
  return std::string(": ") + std::strerror(errno);
}

}  // namespace

Status StorageError(const char* sd_code, std::string msg) {
  msg += " [";
  msg += sd_code;
  msg += "]";
  return Status::IoError(std::move(msg));
}

Status StorageErrnoError(const char* sd_code, std::string msg) {
  msg += ErrnoSuffix();
  return StorageError(sd_code, std::move(msg));
}

// --- CRC32 (reflected, polynomial 0xEDB88320; matches zlib's crc32) ---------

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- Scalar codecs ----------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutLenBytes(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s.data(), s.size());
}

Status ByteReader::Truncated(const char* what) const {
  return StorageError(sd_code_, std::string("truncated record: expected ") +
                                    what + " at offset " +
                                    std::to_string(pos_));
}

Result<uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::Varint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (remaining() < 1) return Truncated("varint");
    auto byte = static_cast<unsigned char>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
  }
  return StorageError(sd_code_, "malformed varint (over 64 bits) at offset " +
                                    std::to_string(pos_));
}

Result<std::string_view> ByteReader::LenBytes() {
  SEQDL_ASSIGN_OR_RETURN(uint64_t len, Varint());
  return Bytes(len);
}

Result<std::string_view> ByteReader::Bytes(size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

// --- Instance blocks --------------------------------------------------------

namespace {

/// Builds the symbolic tables of one block: atoms by first use, paths in
/// topological order (sub-paths of packed values first).
class BlockEncoder {
 public:
  explicit BlockEncoder(const Universe& u) : u_(u) {}

  uint64_t EnsureAtom(AtomId a) {
    auto [it, fresh] = atom_idx_.try_emplace(a, atom_idx_.size());
    if (fresh) {
      const std::string& name = u_.AtomName(a);
      arena_.append(name);
      atom_lens_.push_back(name.size());
    }
    return it->second;
  }

  /// Local path-table index of `p`; 0 is the implicit empty path.
  uint64_t EnsurePath(PathId p) {
    auto it = path_idx_.find(p);
    if (it != path_idx_.end()) return it->second;
    std::string encoded;
    std::span<const Value> values = u_.GetPath(p);
    PutVarint(&encoded, values.size());
    for (Value v : values) {
      if (v.is_atom()) {
        PutVarint(&encoded, EnsureAtom(v.atom()) << 1);
      } else {
        // Recurse first so the referenced path lands earlier in the
        // table (topological order; depth = packing nesting).
        uint64_t sub = EnsurePath(v.packed_path());
        PutVarint(&encoded, (sub << 1) | 1);
      }
    }
    uint64_t idx = 1 + path_count_;  // 0 is the empty path
    path_idx_.emplace(p, idx);
    ++path_count_;
    paths_buf_.append(encoded);
    return idx;
  }

  void Finish(const Instance& inst, std::string* out) {
    // Relations sorted by name so equal instances encode to equal bytes
    // regardless of RelId assignment order.
    std::vector<RelId> rels = inst.Relations();
    std::sort(rels.begin(), rels.end(), [this](RelId a, RelId b) {
      return u_.RelName(a) < u_.RelName(b);
    });

    // Encode tuples (registering their paths) before emitting the
    // tables: the atom/path sections precede the relation section.
    std::string rel_buf;
    PutVarint(&rel_buf, rels.size());
    for (RelId rel : rels) {
      const TupleSet& tuples = inst.Tuples(rel);
      std::vector<std::vector<uint64_t>> encoded;
      encoded.reserve(tuples.size());
      for (const Tuple& t : tuples) {
        std::vector<uint64_t> row;
        row.reserve(t.size());
        for (PathId p : t) {
          row.push_back(p == kEmptyPath ? 0 : EnsurePath(p));
        }
        encoded.push_back(std::move(row));
      }
      std::sort(encoded.begin(), encoded.end());
      PutLenBytes(&rel_buf, u_.RelName(rel));
      PutVarint(&rel_buf, u_.RelArity(rel));
      PutVarint(&rel_buf, encoded.size());
      for (const std::vector<uint64_t>& row : encoded) {
        for (uint64_t idx : row) PutVarint(&rel_buf, idx);
      }
    }

    PutVarint(out, atom_lens_.size());
    PutLenBytes(out, arena_);
    for (uint64_t len : atom_lens_) PutVarint(out, len);
    PutVarint(out, path_count_);
    out->append(paths_buf_);
    out->append(rel_buf);
  }

 private:
  const Universe& u_;
  std::unordered_map<AtomId, uint64_t> atom_idx_;
  std::unordered_map<PathId, uint64_t> path_idx_;
  std::string arena_;
  std::vector<uint64_t> atom_lens_;
  std::string paths_buf_;
  uint64_t path_count_ = 0;
};

}  // namespace

void EncodeInstanceBlock(const Universe& u, const Instance& inst,
                         std::string* out) {
  BlockEncoder enc(u);
  enc.Finish(inst, out);
}

Result<Instance> DecodeInstanceBlock(Universe& u, ByteReader& r,
                                     const char* sd_code) {
  // Atom table: arena blob + per-name lengths, re-interned through `u`.
  SEQDL_ASSIGN_OR_RETURN(uint64_t atom_count, r.Varint());
  SEQDL_ASSIGN_OR_RETURN(std::string_view arena, r.LenBytes());
  if (atom_count > arena.size() + 1) {
    return StorageError(sd_code, "atom table larger than its arena");
  }
  std::vector<AtomId> atoms;
  atoms.reserve(atom_count);
  size_t arena_pos = 0;
  for (uint64_t i = 0; i < atom_count; ++i) {
    SEQDL_ASSIGN_OR_RETURN(uint64_t len, r.Varint());
    if (len > arena.size() - arena_pos) {
      return StorageError(sd_code, "atom name overruns the arena");
    }
    atoms.push_back(u.InternAtom(arena.substr(arena_pos, len)));
    arena_pos += len;
  }
  if (arena_pos != arena.size()) {
    return StorageError(sd_code, "atom arena has trailing bytes");
  }

  // Path table, topological: every packed reference points backwards.
  SEQDL_ASSIGN_OR_RETURN(uint64_t path_count, r.Varint());
  if (path_count > r.remaining()) {
    return StorageError(sd_code, "path table larger than the block");
  }
  std::vector<PathId> paths;
  paths.reserve(path_count + 1);
  paths.push_back(kEmptyPath);
  std::vector<Value> values;
  for (uint64_t i = 0; i < path_count; ++i) {
    SEQDL_ASSIGN_OR_RETURN(uint64_t nvalues, r.Varint());
    if (nvalues > r.remaining()) {
      return StorageError(sd_code, "path longer than the block");
    }
    values.clear();
    values.reserve(nvalues);
    for (uint64_t k = 0; k < nvalues; ++k) {
      SEQDL_ASSIGN_OR_RETURN(uint64_t code, r.Varint());
      uint64_t idx = code >> 1;
      if ((code & 1) == 0) {
        if (idx >= atoms.size()) {
          return StorageError(sd_code, "atom reference out of range");
        }
        values.push_back(Value::Atom(atoms[idx]));
      } else {
        if (idx >= paths.size()) {
          return StorageError(sd_code,
                              "packed path reference not topological");
        }
        values.push_back(Value::Packed(paths[idx]));
      }
    }
    paths.push_back(u.InternPath(values));
  }

  // Relations: name + arity re-interned, tuples as path-table offsets.
  SEQDL_ASSIGN_OR_RETURN(uint64_t rel_count, r.Varint());
  if (rel_count > r.remaining() + 1) {
    return StorageError(sd_code, "relation table larger than the block");
  }
  Instance out;
  for (uint64_t i = 0; i < rel_count; ++i) {
    SEQDL_ASSIGN_OR_RETURN(std::string_view name, r.LenBytes());
    SEQDL_ASSIGN_OR_RETURN(uint64_t arity, r.Varint());
    if (arity > 1u << 16) {
      return StorageError(sd_code, "implausible relation arity");
    }
    Result<RelId> rel = u.InternRel(name, static_cast<uint32_t>(arity));
    if (!rel.ok()) {
      // Arity clash with an already-interned relation: surface as
      // corruption of the file, not as the Universe's error.
      return StorageError(sd_code, "relation '" + std::string(name) +
                                       "': " + rel.status().message());
    }
    SEQDL_ASSIGN_OR_RETURN(uint64_t tuple_count, r.Varint());
    if (arity > 0 && tuple_count > r.remaining()) {
      return StorageError(sd_code, "tuple table larger than the block");
    }
    for (uint64_t t = 0; t < tuple_count; ++t) {
      Tuple tuple;
      tuple.reserve(arity);
      for (uint64_t c = 0; c < arity; ++c) {
        SEQDL_ASSIGN_OR_RETURN(uint64_t idx, r.Varint());
        if (idx >= paths.size()) {
          return StorageError(sd_code, "tuple path reference out of range");
        }
        tuple.push_back(paths[idx]);
      }
      out.Add(*rel, std::move(tuple));
    }
  }
  return out;
}

// --- Sealed segment files ---------------------------------------------------

Result<uint64_t> WriteSegmentFile(const std::string& path, const Universe& u,
                                  const Instance& inst, SegmentKind kind) {
  std::string block;
  EncodeInstanceBlock(u, inst, &block);

  std::string file;
  file.reserve(kSegmentHeaderBytes + block.size() + 4);
  file.append(kSegmentMagic, sizeof(kSegmentMagic));
  PutU8(&file, static_cast<uint8_t>(kind));
  PutU64(&file, inst.NumFacts());
  PutU64(&file, block.size());
  file.append(block);
  PutU32(&file, Crc32(file.data(), file.size()));

  SEQDL_RETURN_IF_ERROR(WriteFileDurable(path, file));
  return static_cast<uint64_t>(file.size());
}

Result<LoadedSegment> ReadSegmentFile(const std::string& path, Universe& u) {
  SEQDL_ASSIGN_OR_RETURN(MappedFile map, MappedFile::Open(path));
  std::string_view data = map.data();
  if (data.size() < kSegmentHeaderBytes + 4 ||
      std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return StorageError(kSdSegmentCorrupt,
                        path + ": not a seqdl segment file");
  }
  uint32_t stored_crc =
      Crc32(data.data() + (data.size() - 4), 0);  // placeholder, replaced below
  {
    ByteReader crc_reader(data.substr(data.size() - 4), kSdSegmentCorrupt);
    SEQDL_ASSIGN_OR_RETURN(stored_crc, crc_reader.U32());
  }
  uint32_t actual_crc = Crc32(data.data(), data.size() - 4);
  if (stored_crc != actual_crc) {
    return StorageError(kSdSegmentCorrupt, path + ": CRC mismatch");
  }

  ByteReader r(data.substr(0, data.size() - 4), kSdSegmentCorrupt);
  SEQDL_ASSIGN_OR_RETURN(std::string_view magic, r.Bytes(8));
  (void)magic;
  SEQDL_ASSIGN_OR_RETURN(uint8_t kind_byte, r.U8());
  if (kind_byte > static_cast<uint8_t>(SegmentKind::kTombstones)) {
    return StorageError(kSdSegmentCorrupt, path + ": unknown segment kind");
  }
  SEQDL_ASSIGN_OR_RETURN(uint64_t fact_count, r.U64());
  SEQDL_ASSIGN_OR_RETURN(uint64_t block_len, r.U64());
  if (block_len != r.remaining()) {
    return StorageError(kSdSegmentCorrupt, path + ": block length mismatch");
  }
  SEQDL_ASSIGN_OR_RETURN(Instance facts,
                         DecodeInstanceBlock(u, r, kSdSegmentCorrupt));
  if (facts.NumFacts() != fact_count) {
    return StorageError(kSdSegmentCorrupt, path + ": fact count mismatch");
  }
  LoadedSegment seg;
  seg.facts = std::move(facts);
  seg.kind = static_cast<SegmentKind>(kind_byte);
  return seg;
}

// --- Files and directories --------------------------------------------------

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return StorageErrnoError(kSdStorageIo, "open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status err = StorageErrnoError(kSdStorageIo, "stat " + path);
    ::close(fd);
    return err;
  }
  auto size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    // mmap rejects zero-length mappings; an empty segment file is
    // corrupt anyway (the header alone is 25 bytes).
    return StorageError(kSdSegmentCorrupt, path + ": empty file");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return StorageErrnoError(kSdStorageIo, "mmap " + path);
  }
  return MappedFile(addr, size);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(path + ": no such file");
    }
    return StorageErrnoError(kSdStorageIo, "open " + path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status err = StorageErrnoError(kSdStorageIo, "read " + path);
      ::close(fd);
      return err;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {

std::string DirName(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAllAndSync(int fd, std::string_view contents,
                       const std::string& path) {
  size_t off = 0;
  while (off < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return StorageErrnoError(kSdStorageIo, "write " + path);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    return StorageErrnoError(kSdStorageIo, "fsync " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return StorageErrnoError(kSdStorageIo, "create " + tmp);
  }
  Status written = WriteAllAndSync(fd, contents, tmp);
  ::close(fd);
  if (!written.ok()) {
    ::unlink(tmp.c_str());
    return written;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status err = StorageErrnoError(kSdStorageIo,
                                   "rename " + tmp + " -> " + path);
    ::unlink(tmp.c_str());
    return err;
  }
  return SyncDir(DirName(path));
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return StorageErrnoError(kSdStorageIo, "open dir " + dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  // Some filesystems refuse fsync on directories; the rename itself is
  // still ordered on everything we target, so treat EINVAL as success.
  if (rc != 0 && errno != EINVAL) {
    return StorageErrnoError(kSdStorageIo, "fsync dir " + dir);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return StorageErrnoError(kSdStorageIo, "mkdir " + dir);
}

Result<bool> FileExists(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) == 0) return true;
  if (errno == ENOENT) return false;
  return StorageErrnoError(kSdStorageIo, "stat " + path);
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    return StorageErrnoError(kSdStorageIo, "stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return StorageErrnoError(kSdStorageIo, "unlink " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return StorageErrnoError(kSdStorageIo, "opendir " + dir);
  }
  std::vector<std::string> out;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(std::move(name));
  }
  ::closedir(d);
  return out;
}

}  // namespace storage
}  // namespace seqdl
