#include "src/storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/storage/format.h"

namespace seqdl {
namespace storage {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status WriteAll(int fd, const std::string& buf, const std::string& path) {
  size_t off = 0;
  while (off < buf.size()) {
    ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return StorageErrnoError(kSdStorageIo, "write " + path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path, SyncMode mode,
                                  uint32_t sync_interval_ms) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return StorageErrnoError(kSdStorageIo, "open wal " + path);
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    Status err = StorageErrnoError(kSdStorageIo, "seek wal " + path);
    ::close(fd);
    return err;
  }
  return WalWriter(fd, path, mode, sync_interval_ms,
                   static_cast<uint64_t>(end));
}

WalWriter::WalWriter(int fd, std::string path, SyncMode mode,
                     uint32_t interval_ms, uint64_t existing_bytes)
    : fd_(fd),
      path_(std::move(path)),
      mode_(mode),
      sync_interval_ms_(interval_ms),
      written_(existing_bytes),
      synced_(existing_bytes),
      last_sync_ms_(NowMs()) {}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      mode_(other.mode_),
      sync_interval_ms_(other.sync_interval_ms_),
      written_(other.written_),
      synced_(other.synced_),
      last_sync_ms_(other.last_sync_ms_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    mode_ = other.mode_;
    sync_interval_ms_ = other.sync_interval_ms_;
    written_ = other.written_;
    synced_ = other.synced_;
    last_sync_ms_ = other.last_sync_ms_;
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(WalRecordType type, const Universe& u,
                         const Instance& batch) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(type));
  EncodeInstanceBlock(u, batch, &payload);

  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);

  SEQDL_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  written_ += frame.size();

  switch (mode_) {
    case SyncMode::kAlways:
      return Sync();
    case SyncMode::kInterval: {
      uint64_t now = NowMs();
      if (now - last_sync_ms_ >= sync_interval_ms_) {
        return Sync();
      }
      return Status::OK();
    }
    case SyncMode::kNever:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  // Group commit: everything written since the last flush rides one
  // fdatasync. A no-op when the log is already clean.
  if (synced_ == written_) {
    last_sync_ms_ = NowMs();
    return Status::OK();
  }
  if (::fdatasync(fd_) != 0) {
    return StorageErrnoError(kSdStorageIo, "fdatasync " + path_);
  }
  synced_ = written_;
  last_sync_ms_ = NowMs();
  return Status::OK();
}

Result<WalReplay> ReplayWal(
    const std::string& path, Universe& u,
    const std::function<Status(WalRecordType, Instance)>& apply) {
  Result<std::string> contents = ReadFileBytes(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return WalReplay{};  // no log yet: nothing to replay
    }
    return contents.status();
  }
  const std::string& data = *contents;

  WalReplay out;
  size_t pos = 0;
  while (pos < data.size()) {
    // Frame header: a short or checksum-failing frame is the torn tail
    // of the write in flight at crash time — stop and truncate there.
    if (data.size() - pos < 8) break;
    ByteReader header(std::string_view(data).substr(pos, 8), kSdWalCorrupt);
    uint32_t len = header.U32().value();
    uint32_t crc = header.U32().value();
    if (data.size() - pos - 8 < len) break;
    std::string_view payload = std::string_view(data).substr(pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) break;

    // The frame is intact: a payload that does not decode is genuine
    // corruption, not a torn write.
    ByteReader r(payload, kSdWalCorrupt);
    SEQDL_ASSIGN_OR_RETURN(uint8_t type_byte, r.U8());
    if (type_byte != static_cast<uint8_t>(WalRecordType::kAppend) &&
        type_byte != static_cast<uint8_t>(WalRecordType::kRetract)) {
      return StorageError(kSdWalCorrupt,
                          path + ": unknown record type at offset " +
                              std::to_string(pos));
    }
    SEQDL_ASSIGN_OR_RETURN(Instance batch,
                           DecodeInstanceBlock(u, r, kSdWalCorrupt));
    if (!r.AtEnd()) {
      return StorageError(kSdWalCorrupt,
                          path + ": trailing bytes in record at offset " +
                              std::to_string(pos));
    }
    SEQDL_RETURN_IF_ERROR(
        apply(static_cast<WalRecordType>(type_byte), std::move(batch)));
    pos += 8 + len;
    ++out.records;
  }

  out.valid_bytes = pos;
  if (pos < data.size()) {
    out.truncated_tail = true;
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return StorageErrnoError(kSdStorageIo, "truncate " + path);
    }
  }
  return out;
}

}  // namespace storage
}  // namespace seqdl
