// The two-bounded simulation of Lemma 5.4: a Sequence Datalog program in
// the fragment {E, N, R} (one IDB relation, no arity, no packing) whose
// results on *two-bounded* instances (only paths of length one or two) are
// again two-bounded can be simulated by a classical Datalog program over
// the encoded schema Γc, which has relations R1 (unary) and R2 (binary)
// for every R ∈ Γ:
//
//     Ic(R1) = { a    | a ∈ I(R) }
//     Ic(R2) = { (a,b)| a·b ∈ I(R) }
//
// The construction eliminates path variables (each becomes ϵ, one atomic
// variable, or two), then residuates the remaining equations away, drops
// predicates of impossible lengths, and splits every predicate into its
// R1/R2 versions. This is the tool behind Theorem 5.5 (I is primitive in
// the presence of N): it reduces Sequence Datalog inexpressibility on
// two-bounded instances to classical results.
#ifndef SEQDL_TRANSFORM_TWO_BOUNDED_H_
#define SEQDL_TRANSFORM_TWO_BOUNDED_H_

#include <map>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// The R -> (R1, R2) relation mapping of the encoding.
struct ClassicalEncoding {
  std::map<RelId, std::pair<RelId, RelId>> rels;
};

/// OK iff every fact path has length one or two (and is flat).
Status CheckTwoBounded(const Universe& u, const Instance& i);

/// Encodes a two-bounded instance over Γc, creating (or reusing) R1/R2
/// relation names recorded in `*enc`.
Result<Instance> EncodeTwoBounded(Universe& u, const Instance& i,
                                  ClassicalEncoding* enc);

/// Lemma 5.4: simulates `p` (fragment {E,N,R}: unary predicates, no
/// packing) by a classical program over Γc. Relations are mapped via
/// `*enc` (extended as needed). Atomic nonequalities may remain in rule
/// bodies; everything else is classical.
Result<Program> SimulateTwoBounded(Universe& u, const Program& p,
                                   ClassicalEncoding* enc);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_TWO_BOUNDED_H_
