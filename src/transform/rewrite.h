// Shared utilities for the program transformations of Section 4.
#ifndef SEQDL_TRANSFORM_REWRITE_H_
#define SEQDL_TRANSFORM_REWRITE_H_

#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Renames relation occurrences (heads and bodies) according to `mapping`;
/// relations not in the map are unchanged.
Rule RenameRels(const Rule& r, const std::map<RelId, RelId>& mapping);
Stratum RenameRels(const Stratum& s, const std::map<RelId, RelId>& mapping);

/// Renames every variable of `r` to a fresh one (alpha-renaming), so the
/// rule can be inlined into another without capture.
Rule FreshenVars(Universe& u, const Rule& r);

/// The variables of the body of `r`, in order of first occurrence.
std::vector<VarId> BodyVars(const Rule& r);

/// Variable expressions for a list of variables.
std::vector<PathExpr> VarExprs(const Universe& u,
                               const std::vector<VarId>& vars);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_REWRITE_H_
