// Packing elimination for nonrecursive programs (paper §4.3, Lemmas
// 4.10–4.13): on flat input instances, every nonrecursive program can be
// rewritten without the packing feature.
//
// Pipeline, per IDB relation in dependency order:
//   1. Rewrite calls to already-processed relations into their
//      packing-structure variants, introducing equations (Lemma 4.13).
//   2. Drop rules whose positive flat predicates mention packing (they can
//      never match a flat fact).
//   3. Purify: eliminate impure variables by solving half-pure equations
//      with associative unification, keeping only valid solutions
//      (Lemma 4.10).
//   4. Rewrite negated predicates through the packing-structure registry;
//      drop negated literals whose structure matches no variant.
//   5. Split pure equations with packing into component equations; split
//      rules on negated equations with packing (Lemma 4.12).
//   6. Rewrite heads: a rule with head structure vector psv defines the
//      psv-variant of its relation, whose columns are the packing-free
//      components (Lemma 4.13). The all-star variant keeps the original
//      relation name, so query outputs are unaffected.
//
// The result computes the same flat facts for every original relation name
// on every flat input instance.
#ifndef SEQDL_TRANSFORM_PACKING_ELIM_H_
#define SEQDL_TRANSFORM_PACKING_ELIM_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct PackingElimOptions {
  /// Guard against rule blow-up.
  size_t max_rules = 100000;
  /// Guard for the purification work-list.
  size_t max_steps = 100000;
  /// Node budget for each associative-unification call.
  size_t max_unify_nodes = 1'000'000;
};

/// Rewrites the nonrecursive program `p` into an equivalent (on flat
/// instances) program that does not use packing.
Result<Program> EliminatePackingNonrecursive(
    Universe& u, const Program& p, const PackingElimOptions& opts = {});

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_PACKING_ELIM_H_
