// Folding away intermediate predicates (paper Theorem 4.16): in the
// absence of negation (on IDB relations) and recursion, intermediate
// predicates are redundant in the presence of equations. Each IDB subgoal
// P(e1, ..., en) in a rule of the output relation is unfolded against every
// rule P(h1, ..., hn) <- C (variables renamed apart), producing
//     head <- (body \ {P(...)}) ∪ C ∪ {e1 = h1, ..., en = hn}.
// Repeated to a fixpoint, the result defines the output relation alone.
#ifndef SEQDL_TRANSFORM_FOLD_INTERMEDIATES_H_
#define SEQDL_TRANSFORM_FOLD_INTERMEDIATES_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct FoldOptions {
  /// Guard against exponential blow-up.
  size_t max_rules = 100000;
};

/// Produces a program whose only IDB relation is `output`. Requires the
/// program to be nonrecursive and free of negated IDB predicates
/// (negated equations and negated EDB predicates are allowed — a slight
/// relaxation of the theorem's statement that does not affect soundness).
Result<Program> FoldIntermediates(Universe& u, const Program& p, RelId output,
                                  const FoldOptions& opts = {});

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_FOLD_INTERMEDIATES_H_
