// Arity elimination (paper §4.1, Theorem 4.2).
//
// Using the pairing encoding of Lemma 4.1 — for distinct atomic values a, b,
//     (s1, s2) = (s1', s2')   iff
//     s1·a·s2·a·s1·b·s2 = s1'·a·s2'·a·s1'·b·s2'
// — every IDB predicate of arity n >= 2 is replaced by a unary predicate
// whose single component encodes the n-tuple (folding the last two
// components repeatedly). The encoding is injective for arbitrary paths,
// even when a and b occur in the data.
#ifndef SEQDL_TRANSFORM_ARITY_ELIM_H_
#define SEQDL_TRANSFORM_ARITY_ELIM_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// The pairing expression e1·a·e2·a·e1·b·e2 of Lemma 4.1.
PathExpr PairEncode(const PathExpr& e1, const PathExpr& e2, Value a, Value b);

/// Rewrites `p` so that no IDB predicate has arity greater than one.
/// Requires every EDB relation to have arity <= 1 (the input instance
/// cannot be re-encoded by a program transformation); otherwise
/// kFailedPrecondition.
Result<Program> EliminateArity(Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_ARITY_ELIM_H_
