#include "src/transform/two_bounded.h"

#include <deque>
#include <optional>
#include <vector>

#include "src/syntax/printer.h"
#include "src/transform/simplify.h"

namespace seqdl {

Status CheckTwoBounded(const Universe& u, const Instance& i) {
  for (RelId rel : i.Relations()) {
    for (const Tuple& t : i.Tuples(rel)) {
      for (PathId p : t) {
        size_t len = u.PathLength(p);
        if (len < 1 || len > 2 || !u.IsFlatPath(p)) {
          return Status::FailedPrecondition(
              "instance is not two-bounded: " + u.RelName(rel) + "(" +
              u.FormatPath(p) + ")");
        }
      }
    }
  }
  return Status::OK();
}

namespace {

std::pair<RelId, RelId> EncodedRels(Universe& u, RelId rel,
                                    ClassicalEncoding* enc) {
  auto it = enc->rels.find(rel);
  if (it != enc->rels.end()) return it->second;
  RelId r1 = u.FreshRel(u.RelName(rel) + "_c1", 1);
  RelId r2 = u.FreshRel(u.RelName(rel) + "_c2", 2);
  enc->rels[rel] = {r1, r2};
  return {r1, r2};
}

// Collects all path variables appearing in *predicates* of the rule.
std::vector<VarId> PredicatePathVars(const Universe& u, const Rule& r) {
  std::vector<VarId> vars;
  for (const PathExpr& e : r.head.args) CollectVars(e, &vars);
  for (const Literal& l : r.body) {
    if (l.is_predicate()) {
      for (const PathExpr& e : l.pred.args) CollectVars(e, &vars);
    }
  }
  std::vector<VarId> out;
  for (VarId v : vars) {
    if (u.VarKindOf(v) == VarKind::kPath) out.push_back(v);
  }
  return out;
}

bool HasPathVar(const Universe& u, const PathExpr& e) {
  for (VarId v : VarSet(e)) {
    if (u.VarKindOf(v) == VarKind::kPath) return true;
  }
  return false;
}

}  // namespace

Result<Instance> EncodeTwoBounded(Universe& u, const Instance& i,
                                  ClassicalEncoding* enc) {
  SEQDL_RETURN_IF_ERROR(CheckTwoBounded(u, i));
  Instance out;
  for (RelId rel : i.Relations()) {
    if (u.RelArity(rel) != 1) {
      return Status::FailedPrecondition(
          "EncodeTwoBounded: relation " + u.RelName(rel) + " is not unary");
    }
    auto [r1, r2] = EncodedRels(u, rel, enc);
    for (const Tuple& t : i.Tuples(rel)) {
      std::span<const Value> p = u.GetPath(t[0]);
      if (p.size() == 1) {
        out.Add(r1, {t[0]});
      } else {
        out.Add(r2, {u.SingletonPath(p[0]), u.SingletonPath(p[1])});
      }
    }
  }
  return out;
}

Result<Program> SimulateTwoBounded(Universe& u, const Program& p,
                                   ClassicalEncoding* enc) {
  // Preconditions: fragment {E, N, R} — unary predicates, no packing.
  for (const Rule* r : p.AllRules()) {
    if (RuleHasPacking(*r)) {
      return Status::FailedPrecondition(
          "SimulateTwoBounded: program uses packing");
    }
    if (r->head.args.size() > 1) {
      return Status::FailedPrecondition(
          "SimulateTwoBounded: program uses arity");
    }
    for (const Literal& l : r->body) {
      if (l.is_predicate() && l.pred.args.size() > 1) {
        return Status::FailedPrecondition(
            "SimulateTwoBounded: program uses arity");
      }
    }
  }

  Program out;
  for (const Stratum& s : p.strata) {
    // Step 1: eliminate path variables from predicates — each becomes
    // ϵ, a fresh atomic variable, or two fresh atomic variables.
    std::deque<Rule> work(s.rules.begin(), s.rules.end());
    std::deque<Rule> no_pred_pathvars;
    while (!work.empty()) {
      Rule r = std::move(work.front());
      work.pop_front();
      std::vector<VarId> pvars = PredicatePathVars(u, r);
      if (pvars.empty()) {
        no_pred_pathvars.push_back(std::move(r));
        continue;
      }
      VarId v = pvars.front();
      // ϵ
      {
        ExprSubst subst;
        subst[v] = PathExpr();
        work.push_back(SubstituteRule(r, subst));
      }
      // one atomic variable
      {
        ExprSubst subst;
        subst[v] = VarExpr(u, u.FreshVar(VarKind::kAtomic, u.VarName(v)));
        work.push_back(SubstituteRule(r, subst));
      }
      // two atomic variables
      {
        ExprSubst subst;
        subst[v] =
            ConcatExpr(VarExpr(u, u.FreshVar(VarKind::kAtomic, u.VarName(v))),
                       VarExpr(u, u.FreshVar(VarKind::kAtomic, u.VarName(v))));
        work.push_back(SubstituteRule(r, subst));
      }
    }

    // Step 2: residuate path variables out of the equations. By safety,
    // some positive equation has a path-variable-free side.
    std::deque<Rule> eq_work(no_pred_pathvars.begin(), no_pred_pathvars.end());
    std::deque<Rule> no_pathvars;
    while (!eq_work.empty()) {
      Rule r = std::move(eq_work.front());
      eq_work.pop_front();
      // Find a positive equation with a path variable whose other side has
      // no path variables.
      size_t idx = r.body.size();
      bool lhs_free = false;
      for (size_t i = 0; i < r.body.size(); ++i) {
        const Literal& l = r.body[i];
        if (!l.is_equation() || l.negated) continue;
        bool lp = HasPathVar(u, l.lhs), rp = HasPathVar(u, l.rhs);
        if (!lp && !rp) continue;
        if (!lp || !rp) {
          idx = i;
          lhs_free = !lp;
          break;
        }
      }
      if (idx == r.body.size()) {
        // No such equation; if path variables remain anywhere the rule was
        // unsafe (ValidateProgram would have rejected it), so it is safe to
        // check and keep.
        bool any = false;
        for (const Literal& l : r.body) {
          if (l.is_equation()) {
            any |= HasPathVar(u, l.lhs) || HasPathVar(u, l.rhs);
          }
        }
        if (any) {
          return Status::InvalidArgument(
              "SimulateTwoBounded: unresolved path variable in rule " +
              FormatRule(u, r));
        }
        no_pathvars.push_back(std::move(r));
        continue;
      }
      const Literal eq = r.body[idx];
      const PathExpr& free_side = lhs_free ? eq.lhs : eq.rhs;   // a1···an
      const PathExpr& var_side = lhs_free ? eq.rhs : eq.lhs;    // b1···bm·$x·e
      size_t n = free_side.items.size();
      // Find the first path variable in var_side; m = its offset.
      size_t m = 0;
      while (m < var_side.items.size() &&
             var_side.items[m].kind != ExprItem::Kind::kPathVar) {
        ++m;
      }
      VarId x = var_side.items[m].var;
      if (m > n) continue;  // unsatisfiable: drop the rule
      // Replace $x by a_{m+1}···a_i for m <= i <= n (n - m + 1 versions).
      for (size_t i = m; i <= n; ++i) {
        ExprSubst subst;
        PathExpr seg;
        seg.items.assign(
            free_side.items.begin() + static_cast<ptrdiff_t>(m),
            free_side.items.begin() + static_cast<ptrdiff_t>(i));
        subst[x] = std::move(seg);
        eq_work.push_back(SubstituteRule(r, subst));
      }
    }

    // Step 3: all equations are over atomic variables/values. Positive
    // equations of unequal length are unsatisfiable; equal-length ones are
    // handled by copy propagation in SimplifyRule. Negated equations of
    // unequal length are vacuously true; equal-length ones become a
    // disjunction of per-position nonequalities (one rule per position).
    std::deque<Rule> neq_work(no_pathvars.begin(), no_pathvars.end());
    std::vector<Rule> classical;
    while (!neq_work.empty()) {
      Rule r = std::move(neq_work.front());
      neq_work.pop_front();
      size_t idx = r.body.size();
      for (size_t i = 0; i < r.body.size(); ++i) {
        const Literal& l = r.body[i];
        if (l.is_equation() && l.lhs.items.size() != l.rhs.items.size()) {
          idx = i;
          break;
        }
        if (l.is_equation() && l.negated && l.lhs.items.size() > 1) {
          idx = i;
          break;
        }
        if (l.is_equation() && !l.negated && l.lhs.items.size() > 1) {
          idx = i;
          break;
        }
      }
      if (idx == r.body.size()) {
        classical.push_back(std::move(r));
        continue;
      }
      const Literal eq = r.body[idx];
      Rule base;
      base.head = r.head;
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (i != idx) base.body.push_back(r.body[i]);
      }
      size_t ln = eq.lhs.items.size(), rn = eq.rhs.items.size();
      if (ln != rn) {
        if (eq.negated) {
          neq_work.push_back(std::move(base));  // literal is true
        }
        // positive unequal-length equation: rule dropped
        continue;
      }
      if (!eq.negated) {
        for (size_t i = 0; i < ln; ++i) {
          base.body.push_back(Literal::Eq(PathExpr({eq.lhs.items[i]}),
                                          PathExpr({eq.rhs.items[i]}),
                                          /*negated=*/false));
        }
        neq_work.push_back(std::move(base));
      } else {
        for (size_t i = 0; i < ln; ++i) {
          Rule split = base;
          split.body.push_back(Literal::Eq(PathExpr({eq.lhs.items[i]}),
                                           PathExpr({eq.rhs.items[i]}),
                                           /*negated=*/true));
          neq_work.push_back(std::move(split));
        }
      }
    }

    // Steps 4 + 5: drop predicates of impossible lengths and split into
    // R1/R2; simplify (substituting positive atomic equations away).
    Stratum ns;
    for (const Rule& r : classical) {
      std::optional<Rule> simplified = SimplifyRule(u, r);
      if (!simplified.has_value()) continue;
      Rule& sr = *simplified;
      Rule nr;
      bool dead = false;
      auto convert = [&](const Predicate& pred) -> std::optional<Predicate> {
        if (pred.args.empty()) return pred;  // arity-0 predicates untouched
        size_t len = pred.args[0].items.size();
        if (len < 1 || len > 2) return std::nullopt;
        auto [r1, r2] = EncodedRels(u, pred.rel, enc);
        Predicate np;
        if (len == 1) {
          np.rel = r1;
          np.args.push_back(pred.args[0]);
        } else {
          np.rel = r2;
          np.args.push_back(PathExpr({pred.args[0].items[0]}));
          np.args.push_back(PathExpr({pred.args[0].items[1]}));
        }
        return np;
      };
      std::optional<Predicate> head = convert(sr.head);
      if (!head.has_value()) continue;  // head of impossible length
      nr.head = *head;
      for (const Literal& l : sr.body) {
        if (!l.is_predicate()) {
          nr.body.push_back(l);
          continue;
        }
        std::optional<Predicate> np = convert(l.pred);
        if (!np.has_value()) {
          if (l.negated) continue;  // vacuously true
          dead = true;              // positive predicate can never hold
          break;
        }
        nr.body.push_back(Literal::Pred(std::move(*np), l.negated));
      }
      if (!dead) ns.rules.push_back(std::move(nr));
    }
    // Deduplicate alpha-equivalent rules.
    Program tmp;
    tmp.strata.push_back(std::move(ns));
    tmp = SimplifyProgram(u, tmp);
    out.strata.push_back(std::move(tmp.strata[0]));
  }
  return out;
}

}  // namespace seqdl
