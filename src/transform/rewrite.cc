#include "src/transform/rewrite.h"

namespace seqdl {

Rule RenameRels(const Rule& r, const std::map<RelId, RelId>& mapping) {
  Rule out = r;
  auto rename = [&mapping](RelId rel) {
    auto it = mapping.find(rel);
    return it == mapping.end() ? rel : it->second;
  };
  out.head.rel = rename(out.head.rel);
  for (Literal& l : out.body) {
    if (l.is_predicate()) l.pred.rel = rename(l.pred.rel);
  }
  return out;
}

Stratum RenameRels(const Stratum& s, const std::map<RelId, RelId>& mapping) {
  Stratum out;
  for (const Rule& r : s.rules) out.rules.push_back(RenameRels(r, mapping));
  return out;
}

Rule FreshenVars(Universe& u, const Rule& r) {
  std::vector<VarId> vars;
  CollectVars(r, &vars);
  ExprSubst subst;
  for (VarId v : vars) {
    VarId fresh = u.FreshVar(u.VarKindOf(v), u.VarName(v));
    subst[v] = VarExpr(u, fresh);
  }
  return SubstituteRule(r, subst);
}

std::vector<VarId> BodyVars(const Rule& r) {
  std::vector<VarId> vars;
  for (const Literal& l : r.body) CollectVars(l, &vars);
  return vars;
}

std::vector<PathExpr> VarExprs(const Universe& u,
                               const std::vector<VarId>& vars) {
  std::vector<PathExpr> out;
  out.reserve(vars.size());
  for (VarId v : vars) out.push_back(VarExpr(u, v));
  return out;
}

}  // namespace seqdl
