// The boolean-query observation of §5.1.1: in the absence of intermediate
// predicates, recursion is redundant for boolean (arity-0 output) queries.
// If the single IDB relation is nullary, no recursive rule can fire before
// some nonrecursive rule has fired — and once any rule fires the boolean
// answer is already true. Hence dropping the recursive rules preserves the
// query.
#ifndef SEQDL_TRANSFORM_BOOLEAN_QUERIES_H_
#define SEQDL_TRANSFORM_BOOLEAN_QUERIES_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Drops every recursive rule (a rule whose body mentions the program's
/// single IDB relation positively or negatively). Requires the program to
/// have exactly one IDB relation, of arity 0.
Result<Program> StripRecursionFromBooleanQuery(Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_BOOLEAN_QUERIES_H_
