#include "src/transform/fold_intermediates.h"

#include <deque>
#include <map>

#include "src/analysis/dependency_graph.h"
#include "src/syntax/printer.h"
#include "src/transform/rewrite.h"

namespace seqdl {

Result<Program> FoldIntermediates(Universe& u, const Program& p, RelId output,
                                  const FoldOptions& opts) {
  std::set<RelId> idb = IdbRels(p);
  if (!idb.count(output)) {
    return Status::InvalidArgument("FoldIntermediates: " + u.RelName(output) +
                                   " is not an IDB relation of the program");
  }
  if (HasCycle(BuildDependencyGraph(p))) {
    return Status::FailedPrecondition(
        "FoldIntermediates: program is recursive");
  }
  for (const Rule* r : p.AllRules()) {
    for (const Literal& l : r->body) {
      if (l.is_predicate() && l.negated && idb.count(l.pred.rel)) {
        return Status::FailedPrecondition(
            "FoldIntermediates: negated IDB predicate in rule " +
            FormatRule(u, *r));
      }
    }
  }

  std::map<RelId, std::vector<Rule>> defs;
  for (const Rule* r : p.AllRules()) defs[r->head.rel].push_back(*r);

  std::deque<Rule> work(defs[output].begin(), defs[output].end());
  std::vector<Rule> done;
  while (!work.empty()) {
    Rule r = std::move(work.front());
    work.pop_front();

    // Find the first positive IDB subgoal.
    size_t target = r.body.size();
    for (size_t i = 0; i < r.body.size(); ++i) {
      const Literal& l = r.body[i];
      if (l.is_predicate() && !l.negated && idb.count(l.pred.rel)) {
        target = i;
        break;
      }
    }
    if (target == r.body.size()) {
      done.push_back(std::move(r));
      continue;
    }

    const Predicate call = r.body[target].pred;
    for (const Rule& def : defs[call.rel]) {
      Rule fresh = FreshenVars(u, def);
      Rule folded;
      folded.head = r.head;
      for (size_t i = 0; i < r.body.size(); ++i) {
        if (i != target) folded.body.push_back(r.body[i]);
      }
      for (const Literal& l : fresh.body) folded.body.push_back(l);
      for (size_t i = 0; i < call.args.size(); ++i) {
        folded.body.push_back(
            Literal::Eq(call.args[i], fresh.head.args[i], /*negated=*/false));
      }
      work.push_back(std::move(folded));
      if (work.size() + done.size() > opts.max_rules) {
        return Status::ResourceExhausted(
            "FoldIntermediates: rule blow-up exceeded max_rules");
      }
    }
  }

  Program out;
  out.strata.emplace_back();
  out.strata.back().rules = std::move(done);
  return out;
}

}  // namespace seqdl
