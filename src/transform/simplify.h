// Rule simplification: copy propagation for variable equations, removal of
// trivially true/false literals, and deduplication of alpha-equivalent
// rules. Used to keep transformation outputs small (and to reproduce the
// paper's rule counts, e.g. the 28 rules of Example 4.14).
#ifndef SEQDL_TRANSFORM_SIMPLIFY_H_
#define SEQDL_TRANSFORM_SIMPLIFY_H_

#include <optional>

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Simplifies one rule:
///  * positive equations $v = e with $v not occurring in e are substituted
///    away; @v = t likewise when t is a single atomic item;
///  * equations with identical sides are dropped; ground equations are
///    evaluated (a false one kills the rule);
///  * duplicate literals are dropped.
/// Returns nullopt if the rule is unsatisfiable.
std::optional<Rule> SimplifyRule(Universe& u, const Rule& r);

/// Canonical form of a rule under variable renaming and body reordering
/// (used to detect alpha-equivalent duplicates).
std::string AlphaCanonicalKey(const Universe& u, const Rule& r);

/// SimplifyRule on every rule plus alpha-equivalent deduplication within
/// each stratum.
Program SimplifyProgram(Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_SIMPLIFY_H_
