#include "src/transform/equation_elim.h"

#include <algorithm>
#include <set>

#include "src/syntax/printer.h"
#include "src/transform/rewrite.h"

namespace seqdl {

namespace {

bool HasNegatedEquation(const Rule& r) {
  for (const Literal& l : r.body) {
    if (l.is_equation() && l.negated) return true;
  }
  return false;
}

bool HasPositiveEquation(const Rule& r) {
  for (const Literal& l : r.body) {
    if (l.is_equation() && !l.negated) return true;
  }
  return false;
}

// Computes the safety schedule of the positive equations of `r`: the order
// in which the engine would process them, with, for each, the side whose
// variables are bound *before* the equation is processed (the "bound
// side"). Returns false if the rule is unsafe.
struct ScheduledEq {
  size_t body_idx;
  bool lhs_is_bound_side;
};

bool ScheduleEquations(const Rule& r, std::vector<ScheduledEq>* out) {
  std::set<VarId> bound;
  for (const Literal& l : r.body) {
    if (l.is_predicate() && !l.negated) {
      std::vector<VarId> vars;
      CollectVars(l, &vars);
      bound.insert(vars.begin(), vars.end());
    }
  }
  std::vector<size_t> pending;
  for (size_t i = 0; i < r.body.size(); ++i) {
    if (r.body[i].is_equation() && !r.body[i].negated) pending.push_back(i);
  }
  auto all_bound = [&bound](const PathExpr& e) {
    for (VarId v : VarSet(e)) {
      if (!bound.count(v)) return false;
    }
    return true;
  };
  while (!pending.empty()) {
    bool progressed = false;
    for (size_t k = 0; k < pending.size(); ++k) {
      const Literal& l = r.body[pending[k]];
      bool lhs_ok = all_bound(l.lhs);
      bool rhs_ok = all_bound(l.rhs);
      if (lhs_ok || rhs_ok) {
        out->push_back({pending[k], lhs_ok});
        for (VarId v : VarSet(l.lhs)) bound.insert(v);
        for (VarId v : VarSet(l.rhs)) bound.insert(v);
        pending.erase(pending.begin() + static_cast<ptrdiff_t>(k));
        progressed = true;
        break;
      }
    }
    if (!progressed) return false;
  }
  return true;
}

// Removes the positive equations of one rule, producing the rule itself (if
// it has none) or an auxiliary chain (Example 4.4). Output rules belong to
// the same stratum as `r`.
Status EliminatePositiveFromRule(Universe& u, const Rule& r,
                                 std::vector<Rule>* out) {
  if (!HasPositiveEquation(r)) {
    out->push_back(r);
    return Status::OK();
  }
  std::vector<ScheduledEq> schedule;
  if (!ScheduleEquations(r, &schedule)) {
    return Status::InvalidArgument("unsafe rule in equation elimination: " +
                                   FormatRule(u, r));
  }
  // Process the *last* scheduled equation: everything before it in the
  // schedule is self-contained, so the auxiliary rule (which receives the
  // rest of the positive body) stays safe.
  const ScheduledEq& last = schedule.back();
  const Literal& eq = r.body[last.body_idx];
  const PathExpr& bound_side = last.lhs_is_bound_side ? eq.lhs : eq.rhs;
  const PathExpr& other_side = last.lhs_is_bound_side ? eq.rhs : eq.lhs;

  // Auxiliary body: all positive literals except the processed equation.
  // Negated literals stay in the main rule (their variables are bound there
  // through the auxiliary predicate).
  Rule aux;
  std::vector<Literal> negs;
  for (size_t i = 0; i < r.body.size(); ++i) {
    const Literal& l = r.body[i];
    if (i == last.body_idx) continue;
    if (l.negated) {
      negs.push_back(l);
    } else {
      aux.body.push_back(l);
    }
  }
  std::vector<VarId> vs;
  for (const Literal& l : aux.body) CollectVars(l, &vs);

  RelId t = u.FreshRel(u.RelName(r.head.rel) + "_eq",
                       static_cast<uint32_t>(1 + vs.size()));
  aux.head.rel = t;
  aux.head.args.push_back(bound_side);
  for (PathExpr& e : VarExprs(u, vs)) aux.head.args.push_back(std::move(e));

  Rule main;
  main.head = r.head;
  Predicate call;
  call.rel = t;
  call.args.push_back(other_side);
  for (PathExpr& e : VarExprs(u, vs)) call.args.push_back(std::move(e));
  main.body.push_back(Literal::Pred(std::move(call)));
  for (Literal& l : negs) main.body.push_back(std::move(l));

  // The auxiliary rule carries the remaining positive equations; recurse.
  SEQDL_RETURN_IF_ERROR(EliminatePositiveFromRule(u, aux, out));
  out->push_back(std::move(main));
  return Status::OK();
}

}  // namespace

Result<Program> EliminateNegatedEquations(Universe& u, const Program& p) {
  Program out;
  for (const Stratum& delta : p.strata) {
    bool any = false;
    for (const Rule& r : delta.rules) any |= HasNegatedEquation(r);
    if (!any) {
      out.strata.push_back(delta);
      continue;
    }

    // Renaming ρ: heads of ∆ to fresh names; body-only relations unchanged.
    std::map<RelId, RelId> rho;
    for (const Rule& r : delta.rules) {
      if (!rho.count(r.head.rel)) {
        rho[r.head.rel] =
            u.FreshRel(u.RelName(r.head.rel) + "_pre",
                       static_cast<uint32_t>(r.head.args.size()));
      }
    }

    Stratum pre;    // ∆'
    Stratum fixed;  // ∆ with negated equations replaced by ¬T(...)
    for (const Rule& r : delta.rules) {
      if (!HasNegatedEquation(r)) {
        pre.rules.push_back(RenameRels(r, rho));
        fixed.rules.push_back(r);
        continue;
      }
      // Split the body: B (everything else) and the negated equations.
      Rule b_only;
      b_only.head = r.head;
      std::vector<Literal> neg_eqs;
      for (const Literal& l : r.body) {
        if (l.is_equation() && l.negated) {
          neg_eqs.push_back(l);
        } else {
          b_only.body.push_back(l);
        }
      }
      // ρ(H) <- ρ(B).
      pre.rules.push_back(RenameRels(b_only, rho));

      // T(v1, ..., vm) <- ρ(B) ∧ ei = ei', one rule per negated equation.
      std::vector<VarId> vs;
      for (const Literal& l : b_only.body) CollectVars(l, &vs);
      RelId t = u.FreshRel(u.RelName(r.head.rel) + "_viol",
                           static_cast<uint32_t>(vs.size()));
      for (const Literal& ne : neg_eqs) {
        Rule viol;
        viol.head.rel = t;
        viol.head.args = VarExprs(u, vs);
        Rule renamed_b = RenameRels(b_only, rho);
        viol.body = renamed_b.body;
        viol.body.push_back(Literal::Eq(ne.lhs, ne.rhs, /*negated=*/false));
        pre.rules.push_back(std::move(viol));
      }

      // In ∆: H <- B ∧ ¬T(v1, ..., vm).
      Rule replaced = b_only;
      Predicate tcall;
      tcall.rel = t;
      tcall.args = VarExprs(u, vs);
      replaced.body.push_back(Literal::Pred(std::move(tcall), /*neg=*/true));
      fixed.rules.push_back(std::move(replaced));
    }
    out.strata.push_back(std::move(pre));
    out.strata.push_back(std::move(fixed));
  }
  return out;
}

Result<Program> EliminatePositiveEquations(Universe& u, const Program& p) {
  for (const Rule* r : p.AllRules()) {
    if (HasNegatedEquation(*r)) {
      return Status::FailedPrecondition(
          "EliminatePositiveEquations: program still has negated equations; "
          "run EliminateNegatedEquations first");
    }
  }
  Program out;
  for (const Stratum& s : p.strata) {
    Stratum ns;
    for (const Rule& r : s.rules) {
      SEQDL_RETURN_IF_ERROR(EliminatePositiveFromRule(u, r, &ns.rules));
    }
    out.strata.push_back(std::move(ns));
  }
  return out;
}

Result<Program> EliminateEquations(Universe& u, const Program& p) {
  SEQDL_ASSIGN_OR_RETURN(Program q, EliminateNegatedEquations(u, p));
  return EliminatePositiveEquations(u, q);
}

}  // namespace seqdl
