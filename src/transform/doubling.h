// The doubling encoding of Theorem 4.15, used to eliminate packing in the
// presence of recursion. A path k1·k2·...·kn is *doubled* into
// k1·k1·k2·k2·...·kn·kn; packing is then simulated with single-occurrence
// delimiter atoms (which cannot be confused with data, because data atoms
// always appear doubled):
//
//     <w>  ~~>  lb · D(w) · rb
//
// The full pipeline (EliminatePackingViaDoubling) is:
//   1. a first stratum doubles every EDB relation (the printed rules of
//      Theorem 4.15, which avoid negation by using arity instead);
//   2. the program is rewritten to operate on doubled relations, with packs
//      replaced by delimiters;
//   3. a final stratum undoubles the output relation.
//
// Caveat (documented in DESIGN.md): step 2 follows the J-Logic flat-flat
// construction, whose full correctness proof is outside this paper;
// correctness here is established by differential testing. The delimiter
// atoms are fresh with respect to the *program*; input instances must not
// use them.
#ifndef SEQDL_TRANSFORM_DOUBLING_H_
#define SEQDL_TRANSFORM_DOUBLING_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// The three doubling rules for a unary relation `from` into `to`
/// (Theorem 4.15): T(ϵ,$x) <- R($x);  T($x·@y·@y,$z) <- T($x,@y·$z);
/// R'($x) <- T($x,ϵ).
std::vector<Rule> DoubleRelationRules(Universe& u, RelId from, RelId to);

/// The three undoubling rules (inverse direction).
std::vector<Rule> UndoubleRelationRules(Universe& u, RelId from, RelId to);

/// Doubles a ground path (k1·...·kn -> k1·k1·...·kn·kn); packed values are
/// encoded with the given delimiter atoms.
PathId DoublePath(Universe& u, PathId p, Value lb, Value rb);

/// Rewrites `p` (whose EDB relations must have arity <= 1 and whose output
/// relation `output` must have arity <= 1) into a packing-free program that
/// computes the same flat facts for `output` on flat instances.
Result<Program> EliminatePackingViaDoubling(Universe& u, const Program& p,
                                            RelId output);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_DOUBLING_H_
