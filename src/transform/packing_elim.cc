#include "src/transform/packing_elim.h"

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "src/analysis/dependency_graph.h"
#include "src/analysis/packing_structure.h"
#include "src/analysis/purity.h"
#include "src/syntax/printer.h"
#include "src/transform/rewrite.h"
#include "src/transform/simplify.h"
#include "src/unify/unify.h"

namespace seqdl {

namespace {

using PsVec = std::vector<PackingStructure>;

struct Variant {
  PsVec structures;
  RelId rel;
};

// Registry of packing-structure variants per (original) relation.
using Registry = std::map<RelId, std::vector<Variant>>;

bool AllStar(const PsVec& psv) {
  for (const PackingStructure& ps : psv) {
    if (!ps.IsStar()) return false;
  }
  return true;
}

const Variant* FindVariant(const Registry& reg, RelId rel, const PsVec& psv) {
  auto it = reg.find(rel);
  if (it == reg.end()) return nullptr;
  for (const Variant& v : it->second) {
    if (v.structures == psv) return &v;
  }
  return nullptr;
}

class PackingEliminator {
 public:
  PackingEliminator(Universe& u, const PackingElimOptions& opts)
      : u_(u), opts_(opts) {}

  Result<Program> Run(const Program& p) {
    if (HasCycle(BuildDependencyGraph(p))) {
      return Status::FailedPrecondition(
          "EliminatePackingNonrecursive: program is recursive; use the "
          "doubling encoding (Theorem 4.15) instead");
    }

    // Gather definitions and compute a dependency-first order of the IDB
    // relations.
    std::map<RelId, std::vector<Rule>> defs;
    for (const Rule* r : p.AllRules()) defs[r->head.rel].push_back(*r);
    original_idb_ = IdbRels(p);
    SEQDL_ASSIGN_OR_RETURN(std::vector<RelId> order, TopoOrder(p));

    // EDB relations are flat and have only the all-star variant.
    for (RelId r : EdbRels(p)) {
      flat_rels_.insert(r);
      registry_[r].push_back(
          Variant{PsVec(u_.RelArity(r), PackingStructure{}), r});
    }

    Program out;
    for (RelId rel : order) {
      SEQDL_ASSIGN_OR_RETURN(Stratum s, ProcessRelation(rel, defs[rel]));
      out.strata.push_back(std::move(s));
    }
    // Sanity: nothing may still use packing.
    for (const Rule* r : out.AllRules()) {
      if (RuleHasPacking(*r)) {
        return Status::Internal("packing survived elimination in rule: " +
                                FormatRule(u_, *r));
      }
    }
    return out;
  }

 private:
  Result<std::vector<RelId>> TopoOrder(const Program& p) {
    // Edges head -> body (dependencies); emit dependencies first.
    DependencyGraph g = BuildDependencyGraph(p);
    std::map<RelId, int> state;  // 0 unvisited, 1 in progress, 2 done
    std::vector<RelId> order;
    Status status = Status::OK();
    std::function<void(RelId)> visit = [&](RelId r) {
      if (!status.ok() || state[r] == 2) return;
      if (state[r] == 1) {
        status = Status::Internal("cycle in supposedly acyclic program");
        return;
      }
      state[r] = 1;
      auto it = g.edges.find(r);
      if (it != g.edges.end()) {
        for (RelId dep : it->second) visit(dep);
      }
      state[r] = 2;
      order.push_back(r);
    };
    for (const auto& [rel, _] : g.edges) visit(rel);
    if (!status.ok()) return status;
    return order;
  }

  Result<Stratum> ProcessRelation(RelId rel, const std::vector<Rule>& rules) {
    // --- Step 1: expand calls to processed relations. ---
    std::vector<Rule> work;
    for (const Rule& r : rules) {
      Rule acc;
      acc.head = r.head;
      SEQDL_RETURN_IF_ERROR(ExpandCalls(r, 0, &acc, &work));
    }

    // --- Step 2: drop rules with packing in positive flat predicates. ---
    std::vector<Rule> kept;
    for (Rule& r : work) {
      bool dead = false;
      for (const Literal& l : r.body) {
        if (l.is_predicate() && !l.negated && flat_rels_.count(l.pred.rel)) {
          for (const PathExpr& e : l.pred.args) dead |= e.HasPacking();
        }
      }
      if (!dead) kept.push_back(std::move(r));
    }

    // --- Step 3: purification (Lemma 4.10). ---
    std::deque<Rule> purify(kept.begin(), kept.end());
    std::vector<Rule> pure;
    size_t steps = 0;
    while (!purify.empty()) {
      if (++steps > opts_.max_steps) {
        return Status::ResourceExhausted(
            "packing elimination: purification exceeded max_steps");
      }
      Rule r = std::move(purify.front());
      purify.pop_front();
      PurityInfo info = AnalyzePurity(r, flat_rels_);
      size_t half_pure_idx = r.body.size();
      for (const auto& [idx, cls] : info.equation_class) {
        if (cls == EquationPurity::kHalfPure) {
          half_pure_idx = idx;
          break;
        }
      }
      if (half_pure_idx == r.body.size()) {
        pure.push_back(std::move(r));
        continue;
      }
      SEQDL_RETURN_IF_ERROR(
          SolveHalfPure(r, half_pure_idx, info, &purify));
      if (purify.size() + pure.size() > opts_.max_rules) {
        return Status::ResourceExhausted(
            "packing elimination: purification exceeded max_rules");
      }
    }

    // Defensive check: after purification every variable must be pure
    // (paper §4.3.3: a safe rule with an impure variable has a half-pure
    // equation, so the loop above cannot get stuck).
    for (const Rule& r : pure) {
      PurityInfo info = AnalyzePurity(r, flat_rels_);
      if (!info.RuleAllPure(r)) {
        return Status::Internal(
            "purification left an impure variable in rule: " +
            FormatRule(u_, r));
      }
    }

    // --- Step 4: rewrite negated predicates through the registry. ---
    std::vector<Rule> neg_done;
    for (const Rule& r : pure) {
      Rule nr;
      nr.head = r.head;
      for (const Literal& l : r.body) {
        if (l.is_predicate() && l.negated) {
          PsVec psv;
          for (const PathExpr& e : l.pred.args) psv.push_back(Delta(e));
          const Variant* v = FindVariant(registry_, l.pred.rel, psv);
          if (v == nullptr) continue;  // no variant: literal is true
          Predicate np;
          np.rel = v->rel;
          for (const PathExpr& e : l.pred.args) {
            for (PathExpr& c : Components(e)) np.args.push_back(std::move(c));
          }
          nr.body.push_back(Literal::Pred(std::move(np), /*negated=*/true));
        } else {
          nr.body.push_back(l);
        }
      }
      neg_done.push_back(std::move(nr));
    }

    // --- Step 5: packing-structure splitting of equations (Lemma 4.12). ---
    std::deque<Rule> split(neg_done.begin(), neg_done.end());
    std::vector<Rule> no_packing_eqs;
    while (!split.empty()) {
      if (++steps > opts_.max_steps) {
        return Status::ResourceExhausted(
            "packing elimination: splitting exceeded max_steps");
      }
      Rule r = std::move(split.front());
      split.pop_front();
      size_t idx = r.body.size();
      for (size_t i = 0; i < r.body.size(); ++i) {
        const Literal& l = r.body[i];
        if (l.is_equation() && (l.lhs.HasPacking() || l.rhs.HasPacking())) {
          idx = i;
          break;
        }
      }
      if (idx == r.body.size()) {
        no_packing_eqs.push_back(std::move(r));
        continue;
      }
      const Literal eq = r.body[idx];
      PackingStructure dl = Delta(eq.lhs), dr = Delta(eq.rhs);
      if (!eq.negated) {
        if (dl != dr) continue;  // unsatisfiable on flat data: drop rule
        std::vector<PathExpr> lc = Components(eq.lhs);
        std::vector<PathExpr> rc = Components(eq.rhs);
        Rule nr;
        nr.head = r.head;
        for (size_t i = 0; i < r.body.size(); ++i) {
          if (i != idx) nr.body.push_back(r.body[i]);
        }
        for (size_t i = 0; i < lc.size(); ++i) {
          nr.body.push_back(Literal::Eq(lc[i], rc[i], /*negated=*/false));
        }
        split.push_back(std::move(nr));
      } else {
        if (dl != dr) {
          // Always true on flat data: drop the literal.
          Rule nr;
          nr.head = r.head;
          for (size_t i = 0; i < r.body.size(); ++i) {
            if (i != idx) nr.body.push_back(r.body[i]);
          }
          split.push_back(std::move(nr));
        } else {
          // Split the rule: the paths differ iff some component differs.
          std::vector<PathExpr> lc = Components(eq.lhs);
          std::vector<PathExpr> rc = Components(eq.rhs);
          for (size_t c = 0; c < lc.size(); ++c) {
            Rule nr;
            nr.head = r.head;
            for (size_t i = 0; i < r.body.size(); ++i) {
              if (i != idx) nr.body.push_back(r.body[i]);
            }
            nr.body.push_back(Literal::Eq(lc[c], rc[c], /*negated=*/true));
            split.push_back(std::move(nr));
          }
        }
      }
      if (split.size() + no_packing_eqs.size() > opts_.max_rules) {
        return Status::ResourceExhausted(
            "packing elimination: splitting exceeded max_rules");
      }
    }

    // Copy-propagation is only safe now: every remaining equation is
    // packing-free, so simplification cannot push packing into predicates
    // over flat relations.
    std::vector<Rule> simplified;
    for (const Rule& r : no_packing_eqs) {
      std::optional<Rule> s = SimplifyRule(u_, r);
      if (s.has_value()) simplified.push_back(std::move(*s));
    }

    // --- Step 6: head rewriting. ---
    Stratum out;
    for (const Rule& r : simplified) {
      PsVec psv;
      for (const PathExpr& e : r.head.args) psv.push_back(Delta(e));
      const Variant* v = FindVariant(registry_, rel, psv);
      RelId vrel;
      if (v != nullptr) {
        vrel = v->rel;
      } else if (AllStar(psv)) {
        vrel = rel;  // the all-star variant keeps the original name
        registry_[rel].push_back(Variant{psv, vrel});
        flat_rels_.insert(vrel);
      } else {
        size_t arity = 0;
        for (const PackingStructure& ps : psv) arity += ps.NumStars();
        vrel = u_.FreshRel(u_.RelName(rel) + "_ps",
                           static_cast<uint32_t>(arity));
        registry_[rel].push_back(Variant{psv, vrel});
        flat_rels_.insert(vrel);
      }
      Rule nr;
      nr.head.rel = vrel;
      for (const PathExpr& e : r.head.args) {
        for (PathExpr& c : Components(e)) nr.head.args.push_back(std::move(c));
      }
      nr.body = r.body;
      std::optional<Rule> s = SimplifyRule(u_, nr);
      if (s.has_value()) out.rules.push_back(std::move(*s));
    }

    // Alpha-equivalent deduplication.
    Program tmp;
    tmp.strata.push_back(std::move(out));
    tmp = SimplifyProgram(u_, tmp);
    return std::move(tmp.strata[0]);
  }

  // Step 1 helper: expands positive calls to already-processed IDB
  // relations into their variants, one body literal at a time.
  Status ExpandCalls(const Rule& r, size_t lit_idx, Rule* acc,
                     std::vector<Rule>* out) {
    if (lit_idx == r.body.size()) {
      out->push_back(*acc);
      if (out->size() > opts_.max_rules) {
        return Status::ResourceExhausted(
            "packing elimination: call expansion exceeded max_rules");
      }
      return Status::OK();
    }
    const Literal& l = r.body[lit_idx];
    bool is_processed_idb_call = l.is_predicate() && !l.negated &&
                                 original_idb_.count(l.pred.rel) > 0 &&
                                 registry_.count(l.pred.rel) > 0;
    if (!is_processed_idb_call) {
      // Calls to unprocessed IDB relations cannot occur (dependency order);
      // EDB calls and negated literals pass through.
      acc->body.push_back(l);
      SEQDL_RETURN_IF_ERROR(ExpandCalls(r, lit_idx + 1, acc, out));
      acc->body.pop_back();
      return Status::OK();
    }
    // If the relation has no variants, it is empty: the rule is dead.
    for (const Variant& v : registry_.at(l.pred.rel)) {
      Predicate call;
      call.rel = v.rel;
      std::vector<Literal> eqs;
      for (size_t i = 0; i < l.pred.args.size(); ++i) {
        size_t m = v.structures[i].NumStars();
        std::vector<PathExpr> fresh;
        for (size_t k = 0; k < m; ++k) {
          fresh.push_back(VarExpr(u_, u_.FreshVar(VarKind::kPath, "e")));
          call.args.push_back(fresh.back());
        }
        Result<PathExpr> shape = FromComponents(v.structures[i], fresh);
        if (!shape.ok()) return shape.status();
        eqs.push_back(Literal::Eq(l.pred.args[i], std::move(*shape),
                                  /*negated=*/false));
      }
      size_t pushed = 1 + eqs.size();
      acc->body.push_back(Literal::Pred(std::move(call)));
      for (Literal& e : eqs) acc->body.push_back(std::move(e));
      SEQDL_RETURN_IF_ERROR(ExpandCalls(r, lit_idx + 1, acc, out));
      for (size_t k = 0; k < pushed; ++k) acc->body.pop_back();
    }
    return Status::OK();
  }

  // Step 3 helper: applies Lemma 4.10 to the half-pure equation at
  // `eq_idx`, appending the resulting rules to the work list.
  Status SolveHalfPure(const Rule& r, size_t eq_idx, const PurityInfo& info,
                       std::deque<Rule>* out) {
    const Literal& eq = r.body[eq_idx];
    bool lhs_pure = info.AllVarsPure(eq.lhs);
    const PathExpr& pure_side = lhs_pure ? eq.lhs : eq.rhs;
    const PathExpr& impure_side = lhs_pure ? eq.rhs : eq.lhs;

    // Replace each variable *occurrence* of the pure side with a fresh
    // variable, collecting the bridging equations u_i = v_i.
    std::vector<Literal> bridges;
    PathExpr linear = LinearizeOccurrences(pure_side, &bridges);

    // Solve the (one-sided nonlinear) equation linear = impure_side.
    UnifyOptions uopts;
    uopts.max_nodes = opts_.max_unify_nodes;
    uopts.allow_empty = true;
    SEQDL_ASSIGN_OR_RETURN(UnifyResult unified,
                           UnifyExprs(u_, linear, impure_side, uopts));

    // r'' = r with the equation replaced by the bridges.
    Rule rpp;
    rpp.head = r.head;
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i != eq_idx) rpp.body.push_back(r.body[i]);
    }
    for (const Literal& b : bridges) rpp.body.push_back(b);

    PurityInfo rpp_info = AnalyzePurity(rpp, flat_rels_);
    for (const ExprSubst& rho : unified.solutions) {
      bool valid = true;
      for (const auto& [var, image] : rho) {
        if (rpp_info.IsPure(var) && image.HasPacking()) {
          valid = false;
          break;
        }
      }
      if (valid) out->push_back(SubstituteRule(rpp, rho));
    }
    return Status::OK();
  }

  // Replaces every variable occurrence in `e` by a fresh variable of the
  // same kind, recording u_i = v_i equations.
  PathExpr LinearizeOccurrences(const PathExpr& e,
                                std::vector<Literal>* bridges) {
    PathExpr out;
    for (const ExprItem& it : e.items) {
      if (it.is_var()) {
        VarKind kind = it.kind == ExprItem::Kind::kAtomVar ? VarKind::kAtomic
                                                           : VarKind::kPath;
        VarId fresh = u_.FreshVar(kind, u_.VarName(it.var));
        bridges->push_back(Literal::Eq(VarExpr(u_, it.var),
                                       VarExpr(u_, fresh), /*negated=*/false));
        out.items.push_back(kind == VarKind::kAtomic
                                ? ExprItem::AtomVar(fresh)
                                : ExprItem::PathVar(fresh));
      } else if (it.kind == ExprItem::Kind::kPack) {
        out.items.push_back(ExprItem::Pack(LinearizeOccurrences(*it.pack,
                                                                bridges)));
      } else {
        out.items.push_back(it);
      }
    }
    return out;
  }

  Universe& u_;
  PackingElimOptions opts_;
  std::set<RelId> original_idb_;
  std::set<RelId> flat_rels_;
  Registry registry_;
};

}  // namespace

Result<Program> EliminatePackingNonrecursive(Universe& u, const Program& p,
                                             const PackingElimOptions& opts) {
  PackingEliminator pe(u, opts);
  return pe.Run(p);
}

}  // namespace seqdl
