// The six-form normal form of Lemma 7.2, used as the bridge between
// nonrecursive Sequence Datalog and the sequence relational algebra
// (Theorem 7.1). Every rule of the output program has one of the forms:
//
//   1. R1(v1,...,vn)        <- R2(e1,...,em);          (extraction)
//   2. R1(v1,...,vn, e)     <- R2(v1,...,vn);          (generalized proj.)
//   3. R1(v1,...,vn)        <- R2(x1,...,xk), R3(y...);(join)
//   4. R1(v1,...,vn)        <- R2(v1,...,vn), ¬R3(v'); (antijoin)
//   5. R1(v'1,...,v'm)      <- R2(v1,...,vn);          (projection)
//   6. R(p1,...,pk)         <- .                       (constant)
//
// with the side conditions of the paper (v's distinct; path variables only
// in forms 2-6; in form 3 the head variables come from the body; in forms
// 4-5 the primed variables are taken from the v's).
#ifndef SEQDL_TRANSFORM_NORMAL_FORM_H_
#define SEQDL_TRANSFORM_NORMAL_FORM_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Rewrites a nonrecursive, equation-free program into normal form
/// (computing the same query; paper Lemma 7.2).
Result<Program> ToNormalForm(Universe& u, const Program& p);

/// Returns 1..6 if the rule matches a normal form, else an error.
Result<int> NormalFormOf(const Universe& u, const Rule& r);

/// OK iff every rule of `p` is in one of the six normal forms.
Status ValidateNormalForm(const Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_NORMAL_FORM_H_
