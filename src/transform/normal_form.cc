#include "src/transform/normal_form.h"

#include <map>

#include "src/analysis/dependency_graph.h"
#include "src/syntax/printer.h"
#include "src/transform/rewrite.h"

namespace seqdl {

namespace {

// True iff the predicate's arguments are distinct single-variable items.
bool ArgsAreDistinctVars(const Predicate& p, bool path_only) {
  std::set<VarId> seen;
  for (const PathExpr& e : p.args) {
    if (e.items.size() != 1 || !e.items[0].is_var()) return false;
    if (path_only && e.items[0].kind != ExprItem::Kind::kPathVar) return false;
    if (!seen.insert(e.items[0].var).second) return false;
  }
  return true;
}

std::vector<VarId> ArgVars(const Predicate& p) {
  std::vector<VarId> out;
  for (const PathExpr& e : p.args) out.push_back(e.items[0].var);
  return out;
}

// Normalizes a single rule; the produced rules are appended to *out.
class RuleNormalizer {
 public:
  RuleNormalizer(Universe& u, std::vector<Rule>* out) : u_(u), out_(out) {}

  Status Run(const Rule& r) {
    // Ground facts are already form 6.
    if (r.body.empty()) {
      for (const PathExpr& e : r.head.args) {
        if (!e.IsGround()) {
          return Status::InvalidArgument("fact with variables: " +
                                         FormatRule(u_, r));
        }
      }
      out_->push_back(r);
      return Status::OK();
    }

    // Replacement of atomic variables by fresh path variables (applied to
    // the main rule; the form-1 extraction rules keep the originals).
    ExprSubst devar;
    {
      std::vector<VarId> vars;
      CollectVars(r, &vars);
      for (VarId v : vars) {
        if (u_.VarKindOf(v) == VarKind::kAtomic) {
          devar[v] = VarExpr(u_, u_.FreshVar(VarKind::kPath, u_.VarName(v)));
        }
      }
    }

    // --- Step 1.1: extract each positive atom through a form-1 rule. ---
    std::vector<Predicate> positive_calls;  // calls in the main rule
    std::vector<Literal> negated;           // remaining negated literals
    for (const Literal& l : r.body) {
      if (l.negated) {
        negated.push_back(SubstituteLiteral(l, devar));
        continue;
      }
      std::vector<VarId> vars;
      CollectVars(l, &vars);
      if (!vars.empty()) {
        Rule extract;  // H(vars) <- P(e1, ..., em): form 1
        extract.head.rel = u_.FreshRel("H", static_cast<uint32_t>(vars.size()));
        extract.head.args = VarExprs(u_, vars);
        extract.body.push_back(l);
        out_->push_back(std::move(extract));

        Predicate call;
        call.rel = out_->back().head.rel;
        for (VarId v : vars) {
          call.args.push_back(SubstituteExpr(VarExpr(u_, v), devar));
        }
        positive_calls.push_back(std::move(call));
      } else {
        // Variable-free atom: H' <- P(...); H(a) <- H'.
        Rule check;  // form 1 with n = 0
        check.head.rel = u_.FreshRel("H0", 0);
        check.body.push_back(l);
        RelId h0 = check.head.rel;
        out_->push_back(std::move(check));

        Rule lift;  // form 2 with n = 0
        lift.head.rel = u_.FreshRel("H", 1);
        lift.head.args.push_back(ConstExpr(Value::Atom(u_.InternAtom("a"))));
        Predicate body0;
        body0.rel = h0;
        lift.body.push_back(Literal::Pred(std::move(body0)));
        RelId h = lift.head.rel;
        out_->push_back(std::move(lift));

        Predicate call;
        call.rel = h;
        call.args.push_back(
            VarExpr(u_, u_.FreshVar(VarKind::kPath, "v")));
        positive_calls.push_back(std::move(call));
      }
    }

    // --- Step 1.2: ensure at least one positive atom, then join pairwise.
    if (positive_calls.empty()) {
      Rule fact;  // form 6
      fact.head.rel = u_.FreshRel("One", 1);
      fact.head.args.push_back(ConstExpr(Value::Atom(u_.InternAtom("a"))));
      RelId one = fact.head.rel;
      out_->push_back(std::move(fact));
      Predicate call;
      call.rel = one;
      call.args.push_back(VarExpr(u_, u_.FreshVar(VarKind::kPath, "v")));
      positive_calls.push_back(std::move(call));
    }
    while (positive_calls.size() > 1) {
      Predicate a = positive_calls.back();
      positive_calls.pop_back();
      Predicate b = positive_calls.back();
      positive_calls.pop_back();
      std::vector<VarId> joined = ArgVars(a);
      for (VarId v : ArgVars(b)) {
        if (std::find(joined.begin(), joined.end(), v) == joined.end()) {
          joined.push_back(v);
        }
      }
      Rule join;  // form 3
      join.head.rel = u_.FreshRel("J", static_cast<uint32_t>(joined.size()));
      join.head.args = VarExprs(u_, joined);
      join.body.push_back(Literal::Pred(a));
      join.body.push_back(Literal::Pred(b));
      Predicate call = join.head;
      out_->push_back(std::move(join));
      positive_calls.push_back(std::move(call));
    }
    Predicate current = positive_calls[0];
    std::vector<VarId> vs = ArgVars(current);

    // --- Steps 2 & 3: one antijoin chain per negated literal, then join
    // the HN's back together.
    if (!negated.empty()) {
      std::vector<Predicate> hn_calls;
      for (const Literal& neg : negated) {
        SEQDL_ASSIGN_OR_RETURN(Predicate hn,
                               EmitAntijoin(current, vs, neg));
        hn_calls.push_back(std::move(hn));
      }
      while (hn_calls.size() > 1) {
        Predicate a = hn_calls.back();
        hn_calls.pop_back();
        Predicate b = hn_calls.back();
        hn_calls.pop_back();
        Rule join;  // form 3 (same variable list on both sides)
        join.head.rel = u_.FreshRel("HN", static_cast<uint32_t>(vs.size()));
        join.head.args = VarExprs(u_, vs);
        join.body.push_back(Literal::Pred(a));
        join.body.push_back(Literal::Pred(b));
        Predicate call = join.head;
        out_->push_back(std::move(join));
        hn_calls.push_back(std::move(call));
      }
      current = hn_calls[0];
    }

    // --- Step 4: build the head expressions through a form-2 chain. ---
    Predicate head = r.head;
    for (PathExpr& e : head.args) e = SubstituteExpr(e, devar);
    EmitExprChain(current, vs, head.args, head.rel);
    return Status::OK();
  }

 private:
  // Steps 3.1 + 3.2 for one negated predicate ¬N(e1, ..., em); returns the
  // HN(vs) call for the main rule.
  Result<Predicate> EmitAntijoin(const Predicate& current,
                                 const std::vector<VarId>& vs,
                                 const Literal& neg) {
    if (!neg.is_predicate()) {
      return Status::FailedPrecondition(
          "ToNormalForm requires an equation-free program");
    }
    // Chain N1..Nm accumulating the negated expressions as fresh columns.
    Predicate feed = current;
    std::vector<VarId> primes;
    for (const PathExpr& e : neg.pred.args) {
      std::vector<VarId> cols = ArgVars(feed);
      Rule step;  // form 2
      step.head.rel = u_.FreshRel("N", static_cast<uint32_t>(cols.size() + 1));
      step.head.args = VarExprs(u_, cols);
      step.head.args.push_back(e);
      step.body.push_back(Literal::Pred(feed));
      feed = step.head;
      out_->push_back(std::move(step));
      // The freshly added column gets a prime variable name when read back.
      VarId prime = u_.FreshVar(VarKind::kPath, "n");
      primes.push_back(prime);
      feed.args.back() = VarExpr(u_, prime);
    }
    // FN(vs, primes) <- Nm(vs, primes), ¬N(primes): form 4.
    Rule fn;
    fn.head.rel =
        u_.FreshRel("FN", static_cast<uint32_t>(vs.size() + primes.size()));
    fn.head.args = feed.args;
    fn.body.push_back(Literal::Pred(feed));
    Predicate ncall;
    ncall.rel = neg.pred.rel;
    ncall.args = VarExprs(u_, primes);
    fn.body.push_back(Literal::Pred(std::move(ncall), /*negated=*/true));
    Predicate fn_call = fn.head;
    out_->push_back(std::move(fn));

    // HN(vs) <- FN(vs, primes): form 5.
    Rule hn;
    hn.head.rel = u_.FreshRel("HN", static_cast<uint32_t>(vs.size()));
    hn.head.args = VarExprs(u_, vs);
    hn.body.push_back(Literal::Pred(fn_call));
    Predicate hn_call = hn.head;
    out_->push_back(std::move(hn));
    return hn_call;
  }

  // Step 4: T1(vs, e1) <- H(vs); Ti(...); T(v'1, ..., v'm) <- Tm(...).
  void EmitExprChain(const Predicate& current, const std::vector<VarId>& vs,
                     const std::vector<PathExpr>& exprs, RelId target) {
    Predicate feed = current;
    std::vector<VarId> primes;
    for (const PathExpr& e : exprs) {
      std::vector<VarId> cols = ArgVars(feed);
      Rule step;  // form 2
      step.head.rel = u_.FreshRel("T", static_cast<uint32_t>(cols.size() + 1));
      step.head.args = VarExprs(u_, cols);
      step.head.args.push_back(e);
      step.body.push_back(Literal::Pred(feed));
      feed = step.head;
      out_->push_back(std::move(step));
      VarId prime = u_.FreshVar(VarKind::kPath, "t");
      primes.push_back(prime);
      feed.args.back() = VarExpr(u_, prime);
    }
    Rule fin;  // form 5
    fin.head.rel = target;
    fin.head.args = VarExprs(u_, primes);
    fin.body.push_back(Literal::Pred(feed));
    out_->push_back(std::move(fin));
    (void)vs;
  }

  Universe& u_;
  std::vector<Rule>* out_;
};

}  // namespace

Result<Program> ToNormalForm(Universe& u, const Program& p) {
  if (HasCycle(BuildDependencyGraph(p))) {
    return Status::FailedPrecondition("ToNormalForm: program is recursive");
  }
  for (const Rule* r : p.AllRules()) {
    for (const Literal& l : r->body) {
      if (l.is_equation()) {
        return Status::FailedPrecondition(
            "ToNormalForm: program uses equations; eliminate them first "
            "(Theorem 4.7)");
      }
    }
  }
  Program out;
  for (const Stratum& s : p.strata) {
    Stratum ns;
    RuleNormalizer norm(u, &ns.rules);
    for (const Rule& r : s.rules) {
      SEQDL_RETURN_IF_ERROR(norm.Run(r));
    }
    out.strata.push_back(std::move(ns));
  }
  return out;
}

Result<int> NormalFormOf(const Universe& u, const Rule& r) {
  auto error = [&](const std::string& why) {
    return Status::InvalidArgument("rule not in normal form (" + why +
                                   "): " + FormatRule(u, r));
  };

  // Form 6: ground fact.
  if (r.body.empty()) {
    for (const PathExpr& e : r.head.args) {
      if (!e.IsGround()) return error("fact with variables");
    }
    return 6;
  }

  size_t positives = 0, negatives = 0;
  for (const Literal& l : r.body) {
    if (l.is_equation()) return error("equation in body");
    if (l.negated) {
      ++negatives;
    } else {
      ++positives;
    }
  }

  if (positives == 2 && negatives == 0) {  // candidate form 3
    const Predicate& b1 = r.body[0].pred;
    const Predicate& b2 = r.body[1].pred;
    if (!ArgsAreDistinctVars(b1, /*path_only=*/true) ||
        !ArgsAreDistinctVars(b2, /*path_only=*/true)) {
      return error("form 3 requires distinct path variables in bodies");
    }
    if (!ArgsAreDistinctVars(r.head, /*path_only=*/true)) {
      return error("form 3 requires distinct path variables in head");
    }
    std::set<VarId> body_vars;
    for (VarId v : ArgVars(b1)) body_vars.insert(v);
    for (VarId v : ArgVars(b2)) body_vars.insert(v);
    for (VarId v : ArgVars(r.head)) {
      if (!body_vars.count(v)) return error("form 3 head variable not in body");
    }
    return 3;
  }

  if (positives == 1 && negatives == 1) {  // candidate form 4
    const Literal& pos = r.body[0].negated ? r.body[1] : r.body[0];
    const Literal& neg = r.body[0].negated ? r.body[0] : r.body[1];
    if (!ArgsAreDistinctVars(pos.pred, /*path_only=*/true) ||
        !ArgsAreDistinctVars(neg.pred, /*path_only=*/true) ||
        !ArgsAreDistinctVars(r.head, /*path_only=*/true)) {
      return error("form 4 requires distinct path variables");
    }
    if (ArgVars(r.head) != ArgVars(pos.pred)) {
      return error("form 4 head must repeat the positive body");
    }
    std::set<VarId> vset;
    for (VarId v : ArgVars(pos.pred)) vset.insert(v);
    for (VarId v : ArgVars(neg.pred)) {
      if (!vset.count(v)) return error("form 4 negated variable not in body");
    }
    return 4;
  }

  if (positives == 1 && negatives == 0) {
    const Predicate& body = r.body[0].pred;
    // When the body arguments are distinct path variables, prefer the more
    // specific forms 2 and 5 (cheaper to translate than form 1).
    if (ArgsAreDistinctVars(body, /*path_only=*/true)) {
      std::vector<VarId> bv = ArgVars(body);
      std::set<VarId> bset(bv.begin(), bv.end());
      // Form 2: head = body vars in order plus one expression.
      if (r.head.args.size() == bv.size() + 1) {
        bool prefix = true;
        for (size_t i = 0; i < bv.size(); ++i) {
          const PathExpr& e = r.head.args[i];
          prefix &= e.items.size() == 1 && e.items[0].is_var() &&
                    e.items[0].var == bv[i];
        }
        bool last_ok = true;
        for (VarId v : VarSet(r.head.args.back())) {
          last_ok &= bset.count(v) > 0;
        }
        if (prefix && last_ok) return 2;
      }
      // Form 5: head = distinct path variables from the body.
      if (ArgsAreDistinctVars(r.head, /*path_only=*/true)) {
        bool all_in = true;
        for (VarId v : ArgVars(r.head)) all_in &= bset.count(v) > 0;
        if (all_in) return 5;
      }
    }
    // Form 1: head of distinct variables, arbitrary body expressions.
    if (ArgsAreDistinctVars(r.head, /*path_only=*/false)) {
      std::vector<VarId> bvars;
      for (const PathExpr& e : body.args) CollectVars(e, &bvars);
      std::set<VarId> bset(bvars.begin(), bvars.end());
      bool all_in = true;
      for (VarId v : ArgVars(r.head)) all_in &= bset.count(v) > 0;
      if (all_in) return 1;
    }
    return error("single-positive-body rule matches no form");
  }

  return error("unsupported body shape");
}

Status ValidateNormalForm(const Universe& u, const Program& p) {
  for (const Rule* r : p.AllRules()) {
    SEQDL_ASSIGN_OR_RETURN(int form, NormalFormOf(u, *r));
    (void)form;
  }
  return Status::OK();
}

}  // namespace seqdl
