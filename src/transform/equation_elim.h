// Equation elimination (paper §4.2, Lemma 4.5 / Theorem 4.7).
//
// Positive equations are removed with the auxiliary-predicate trick of
// Example 4.4: a rule H <- B ∧ e1 = e2 becomes
//     T(e1, v1, ..., vn) <- B.        (v's = variables of B)
//     H <- T(e2, v1, ..., vn), [negated literals of the original rule].
//
// Negated equations cannot be handled that way inside recursive strata
// (stratification would break); they are removed by the stratum-duplication
// construction of Lemma 4.5: a fresh stratum ∆' preceding ∆ recomputes ∆'s
// head relations under renamed names, materializes the *violating* tuples
// in a fresh relation T, and the original rule tests ¬T.
//
// The output uses intermediate predicates and arity; compose with
// EliminateArity to realize Theorem 4.7 (E redundant in the presence of I).
#ifndef SEQDL_TRANSFORM_EQUATION_ELIM_H_
#define SEQDL_TRANSFORM_EQUATION_ELIM_H_

#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Removes all negated equations (positive equations may be introduced).
Result<Program> EliminateNegatedEquations(Universe& u, const Program& p);

/// Removes all positive equations. Requires the program to have no negated
/// equations (run EliminateNegatedEquations first).
Result<Program> EliminatePositiveEquations(Universe& u, const Program& p);

/// Removes all equations (negated first, then positive).
Result<Program> EliminateEquations(Universe& u, const Program& p);

}  // namespace seqdl

#endif  // SEQDL_TRANSFORM_EQUATION_ELIM_H_
