#include "src/transform/simplify.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "src/syntax/printer.h"

namespace seqdl {

namespace {

// Attempts one copy-propagation step; returns true if the rule changed.
// Only equations that remain sound to inline are touched:
//   $v = e with $v not in e  ->  substitute $v := e everywhere;
//   @v = @w / @v = a         ->  substitute;
//   @v = e with |e| != 1     ->  handled by the ground/shape checks below.
bool PropagateOnce(Universe& u, Rule* r) {
  for (size_t i = 0; i < r->body.size(); ++i) {
    const Literal& l = r->body[i];
    if (!l.is_equation() || l.negated) continue;
    for (bool flip : {false, true}) {
      const PathExpr& var_side = flip ? l.rhs : l.lhs;
      const PathExpr& expr_side = flip ? l.lhs : l.rhs;
      if (!var_side.IsSingleVar()) continue;
      VarId v = var_side.items[0].var;
      if (VarSet(expr_side).count(v)) continue;  // occurs check
      if (u.VarKindOf(v) == VarKind::kAtomic) {
        // An atomic variable can only absorb a single atomic item.
        if (expr_side.items.size() != 1) continue;
        const ExprItem& it = expr_side.items[0];
        if (it.kind != ExprItem::Kind::kConst &&
            it.kind != ExprItem::Kind::kAtomVar) {
          continue;
        }
      }
      ExprSubst subst;
      subst[v] = expr_side;
      Rule replaced;
      replaced.head = r->head;
      for (PathExpr& e : replaced.head.args) e = SubstituteExpr(e, subst);
      for (size_t j = 0; j < r->body.size(); ++j) {
        if (j == i) continue;
        replaced.body.push_back(SubstituteLiteral(r->body[j], subst));
      }
      // Re-substitute the head (already done) and keep going.
      replaced.head.args.clear();
      replaced.head.rel = r->head.rel;
      for (const PathExpr& e : r->head.args) {
        replaced.head.args.push_back(SubstituteExpr(e, subst));
      }
      *r = std::move(replaced);
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<Rule> SimplifyRule(Universe& u, const Rule& r) {
  Rule out = r;
  bool changed = true;
  while (changed) {
    changed = false;

    // Evaluate ground equations and drop trivial ones.
    std::vector<Literal> kept;
    for (const Literal& l : out.body) {
      if (l.is_equation()) {
        if (l.lhs == l.rhs) {
          if (l.negated) return std::nullopt;  // e != e: never satisfiable
          changed = true;
          continue;  // e = e: drop
        }
        if (l.lhs.IsGround() && l.rhs.IsGround()) {
          Result<PathId> a = EvalGroundExpr(u, l.lhs);
          Result<PathId> b = EvalGroundExpr(u, l.rhs);
          if (a.ok() && b.ok()) {
            bool holds = l.negated ? (*a != *b) : (*a == *b);
            if (!holds) return std::nullopt;
            changed = true;
            continue;  // literal is true: drop
          }
        }
      }
      kept.push_back(l);
    }
    out.body = std::move(kept);

    changed |= PropagateOnce(u, &out);
  }

  // Drop exact duplicate literals (preserving order of first occurrence).
  std::vector<Literal> dedup;
  for (const Literal& l : out.body) {
    bool seen = false;
    for (const Literal& d : dedup) seen |= (d == l);
    if (!seen) dedup.push_back(l);
  }
  out.body = std::move(dedup);
  return out;
}

namespace {

void AppendCanonExpr(const Universe& u, const PathExpr& e,
                     std::map<VarId, int>* ids, std::string* out) {
  for (const ExprItem& it : e.items) {
    switch (it.kind) {
      case ExprItem::Kind::kConst:
        out->append("c").append(u.AtomName(it.atom.atom()));
        break;
      case ExprItem::Kind::kAtomVar:
      case ExprItem::Kind::kPathVar: {
        auto [pos, inserted] =
            ids->emplace(it.var, static_cast<int>(ids->size()));
        out->append(it.kind == ExprItem::Kind::kAtomVar ? "@" : "$");
        out->append(std::to_string(pos->second));
        (void)inserted;
        break;
      }
      case ExprItem::Kind::kPack:
        out->append("[");
        AppendCanonExpr(u, *it.pack, ids, out);
        out->append("]");
        break;
    }
    out->append(".");
  }
}

std::string CanonLiteral(const Universe& u, const Literal& l,
                         std::map<VarId, int>* ids) {
  std::string out = l.negated ? "!" : "";
  if (l.is_predicate()) {
    out += "P" + u.RelName(l.pred.rel) + "(";
    for (const PathExpr& e : l.pred.args) {
      AppendCanonExpr(u, e, ids, &out);
      out += ",";
    }
    out += ")";
  } else {
    out += "E";
    AppendCanonExpr(u, l.lhs, ids, &out);
    out += "=";
    AppendCanonExpr(u, l.rhs, ids, &out);
  }
  return out;
}

}  // namespace

std::string AlphaCanonicalKey(const Universe& u, const Rule& r) {
  // Sort body literals by a naming-independent shape key first, then assign
  // canonical variable numbers by traversal order. (A best-effort canonical
  // form: literals with identical shapes may still admit orderings that a
  // perfect graph canonizer would merge; for transformation outputs this is
  // more than enough.)
  std::vector<size_t> order(r.body.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto shape = [&](const Literal& l) {
    std::map<VarId, int> local;
    return CanonLiteral(u, l, &local);
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return shape(r.body[a]) < shape(r.body[b]);
  });

  std::map<VarId, int> ids;
  std::string key = "H" + u.RelName(r.head.rel) + "(";
  for (const PathExpr& e : r.head.args) {
    AppendCanonExpr(u, e, &ids, &key);
    key += ",";
  }
  key += ")<-";
  for (size_t i : order) {
    key += CanonLiteral(u, r.body[i], &ids);
    key += ";";
  }
  return key;
}

Program SimplifyProgram(Universe& u, const Program& p) {
  Program out;
  for (const Stratum& s : p.strata) {
    Stratum ns;
    std::unordered_set<std::string> seen;
    for (const Rule& r : s.rules) {
      std::optional<Rule> simp = SimplifyRule(u, r);
      if (!simp.has_value()) continue;
      std::string key = AlphaCanonicalKey(u, *simp);
      if (seen.insert(key).second) ns.rules.push_back(std::move(*simp));
    }
    out.strata.push_back(std::move(ns));
  }
  return out;
}

}  // namespace seqdl
