#include "src/transform/boolean_queries.h"

namespace seqdl {

Result<Program> StripRecursionFromBooleanQuery(Universe& u,
                                               const Program& p) {
  std::set<RelId> idb = IdbRels(p);
  if (idb.size() != 1) {
    return Status::FailedPrecondition(
        "StripRecursionFromBooleanQuery: program has " +
        std::to_string(idb.size()) +
        " IDB relations; the observation applies without intermediate "
        "predicates");
  }
  RelId s = *idb.begin();
  if (u.RelArity(s) != 0) {
    return Status::FailedPrecondition(
        "StripRecursionFromBooleanQuery: output relation " + u.RelName(s) +
        " is not nullary (the observation is about boolean queries)");
  }
  Program out;
  for (const Stratum& st : p.strata) {
    Stratum ns;
    for (const Rule& r : st.rules) {
      bool recursive = false;
      for (const Literal& l : r.body) {
        recursive |= l.is_predicate() && l.pred.rel == s;
      }
      if (!recursive) ns.rules.push_back(r);
    }
    out.strata.push_back(std::move(ns));
  }
  return out;
}

}  // namespace seqdl
