#include "src/transform/doubling.h"

#include <map>

#include "src/syntax/builder.h"

namespace seqdl {

std::vector<Rule> DoubleRelationRules(Universe& u, RelId from, RelId to) {
  ProgramBuilder b(u);
  std::string t_name = "Dbl_" + u.RelName(from);
  PathExpr x = b.PV("dx_" + u.RelName(from));
  PathExpr y = b.AV("dy_" + u.RelName(from));
  PathExpr z = b.PV("dz_" + u.RelName(from));
  Predicate r_from{from, {x}};
  Predicate r_to{to, {x}};
  Predicate t0 = b.P(t_name, {b.Eps(), x});
  Predicate t_step_head = b.P(t_name, {b.Cat({x, y, y}), z});
  Predicate t_step_body = b.P(t_name, {x, b.Cat({y, z})});
  Predicate t_done = b.P(t_name, {x, b.Eps()});
  return {
      b.R(t0, {b.Lit(r_from)}),
      b.R(t_step_head, {b.Lit(t_step_body)}),
      b.R(r_to, {b.Lit(t_done)}),
  };
}

std::vector<Rule> UndoubleRelationRules(Universe& u, RelId from, RelId to) {
  ProgramBuilder b(u);
  std::string t_name = "Undbl_" + u.RelName(from);
  PathExpr x = b.PV("ux_" + u.RelName(from));
  PathExpr y = b.AV("uy_" + u.RelName(from));
  PathExpr z = b.PV("uz_" + u.RelName(from));
  Predicate s_from{from, {x}};
  Predicate s_to{to, {x}};
  Predicate t0 = b.P(t_name, {x, b.Eps()});
  Predicate t_step_head = b.P(t_name, {x, b.Cat({y, z})});
  Predicate t_step_body = b.P(t_name, {b.Cat({x, y, y}), z});
  Predicate t_done = b.P(t_name, {b.Eps(), x});
  return {
      b.R(t0, {b.Lit(s_from)}),
      b.R(t_step_head, {b.Lit(t_step_body)}),
      b.R(s_to, {b.Lit(t_done)}),
  };
}

PathId DoublePath(Universe& u, PathId p, Value lb, Value rb) {
  std::vector<Value> out;
  for (Value v : u.GetPath(p)) {
    if (v.is_atom()) {
      out.push_back(v);
      out.push_back(v);
    } else {
      out.push_back(lb);
      PathId inner = DoublePath(u, v.packed_path(), lb, rb);
      std::span<const Value> iv = u.GetPath(inner);
      out.insert(out.end(), iv.begin(), iv.end());
      out.push_back(rb);
    }
  }
  return u.InternPath(out);
}

namespace {

// D(e): doubles constants and atomic variables, keeps path variables, and
// encodes packs with delimiters.
PathExpr DoubleExpr(const PathExpr& e, Value lb, Value rb) {
  PathExpr out;
  for (const ExprItem& it : e.items) {
    switch (it.kind) {
      case ExprItem::Kind::kConst:
        out.items.push_back(it);
        out.items.push_back(it);
        break;
      case ExprItem::Kind::kAtomVar:
        out.items.push_back(it);
        out.items.push_back(it);
        break;
      case ExprItem::Kind::kPathVar:
        out.items.push_back(it);
        break;
      case ExprItem::Kind::kPack: {
        out.items.push_back(ExprItem::Const(lb));
        PathExpr inner = DoubleExpr(*it.pack, lb, rb);
        out.items.insert(out.items.end(), inner.items.begin(),
                         inner.items.end());
        out.items.push_back(ExprItem::Const(rb));
        break;
      }
    }
  }
  return out;
}

}  // namespace

Result<Program> EliminatePackingViaDoubling(Universe& u, const Program& p,
                                            RelId output) {
  std::set<RelId> idb = IdbRels(p);
  std::set<RelId> edb = EdbRels(p);
  if (!idb.count(output)) {
    return Status::InvalidArgument(
        "EliminatePackingViaDoubling: output relation " + u.RelName(output) +
        " is not an IDB relation");
  }
  if (u.RelArity(output) > 1) {
    return Status::FailedPrecondition(
        "EliminatePackingViaDoubling: output arity must be <= 1");
  }
  for (RelId r : edb) {
    if (u.RelArity(r) > 1) {
      return Status::FailedPrecondition(
          "EliminatePackingViaDoubling: EDB relation " + u.RelName(r) +
          " has arity > 1");
    }
  }

  Value lb = Value::Atom(u.FreshAtom("lb"));
  Value rb = Value::Atom(u.FreshAtom("rb"));

  // Stratum 0: double every (unary) EDB relation. Arity-0 EDB relations are
  // copied as-is.
  Program out;
  std::map<RelId, RelId> renamed;  // original -> doubled/simulated name
  Stratum doubling;
  for (RelId r : edb) {
    RelId dbl = u.FreshRel(u.RelName(r) + "_dbl", u.RelArity(r));
    renamed[r] = dbl;
    if (u.RelArity(r) == 0) {
      Rule copy;
      copy.head.rel = dbl;
      copy.body.push_back(Literal::Pred(Predicate{r, {}}));
      doubling.rules.push_back(std::move(copy));
    } else {
      for (Rule& rule : DoubleRelationRules(u, r, dbl)) {
        doubling.rules.push_back(std::move(rule));
      }
    }
  }
  out.strata.push_back(std::move(doubling));

  // Middle: the original program over doubled relations, with packs
  // simulated by delimiters.
  for (RelId r : idb) {
    renamed[r] = u.FreshRel(u.RelName(r) + "_sim", u.RelArity(r));
  }
  for (const Stratum& s : p.strata) {
    Stratum ns;
    for (const Rule& r : s.rules) {
      Rule nr;
      nr.head.rel = renamed.at(r.head.rel);
      for (const PathExpr& e : r.head.args) {
        nr.head.args.push_back(DoubleExpr(e, lb, rb));
      }
      for (const Literal& l : r.body) {
        if (l.is_predicate()) {
          Literal nl = l;
          nl.pred.rel = renamed.at(l.pred.rel);
          for (PathExpr& e : nl.pred.args) e = DoubleExpr(e, lb, rb);
          nr.body.push_back(std::move(nl));
        } else {
          nr.body.push_back(Literal::Eq(DoubleExpr(l.lhs, lb, rb),
                                        DoubleExpr(l.rhs, lb, rb),
                                        l.negated));
        }
      }
      ns.rules.push_back(std::move(nr));
    }
    out.strata.push_back(std::move(ns));
  }

  // Final stratum: undouble the output.
  Stratum undoubling;
  if (u.RelArity(output) == 0) {
    Rule copy;
    copy.head.rel = output;
    copy.body.push_back(Literal::Pred(Predicate{renamed.at(output), {}}));
    undoubling.rules.push_back(std::move(copy));
  } else {
    for (Rule& rule : UndoubleRelationRules(u, renamed.at(output), output)) {
      undoubling.rules.push_back(std::move(rule));
    }
  }
  out.strata.push_back(std::move(undoubling));
  return out;
}

}  // namespace seqdl
