#include "src/transform/arity_elim.h"

#include <map>

namespace seqdl {

PathExpr PairEncode(const PathExpr& e1, const PathExpr& e2, Value a, Value b) {
  PathExpr ea = ConstExpr(a), eb = ConstExpr(b);
  return ConcatExprs({e1, ea, e2, ea, e1, eb, e2});
}

namespace {

// Folds an argument list into a single expression:
// (e1, ..., en) -> enc(e1, enc(e2, ... enc(e_{n-1}, e_n))).
PathExpr FoldArgs(const std::vector<PathExpr>& args, Value a, Value b) {
  PathExpr acc = args.back();
  for (size_t i = args.size() - 1; i-- > 0;) {
    acc = PairEncode(args[i], acc, a, b);
  }
  return acc;
}

}  // namespace

Result<Program> EliminateArity(Universe& u, const Program& p) {
  std::set<RelId> idb = IdbRels(p);
  for (RelId rel : EdbRels(p)) {
    if (u.RelArity(rel) > 1) {
      return Status::FailedPrecondition(
          "EliminateArity: EDB relation " + u.RelName(rel) +
          " has arity " + std::to_string(u.RelArity(rel)) +
          " > 1; only IDB arities can be eliminated");
    }
  }

  Value a = Value::Atom(u.InternAtom("0"));
  Value b = Value::Atom(u.InternAtom("1"));

  // Fresh unary replacement for every IDB relation of arity >= 2.
  std::map<RelId, RelId> unary;
  for (RelId rel : idb) {
    if (u.RelArity(rel) >= 2) {
      unary[rel] = u.FreshRel(u.RelName(rel) + "_enc", 1);
    }
  }

  auto rewrite_pred = [&](const Predicate& pred) {
    auto it = unary.find(pred.rel);
    if (it == unary.end()) return pred;
    Predicate out;
    out.rel = it->second;
    out.args.push_back(FoldArgs(pred.args, a, b));
    return out;
  };

  Program out;
  for (const Stratum& s : p.strata) {
    Stratum ns;
    for (const Rule& r : s.rules) {
      Rule nr;
      nr.head = rewrite_pred(r.head);
      for (const Literal& l : r.body) {
        if (l.is_predicate()) {
          Literal nl = l;
          nl.pred = rewrite_pred(l.pred);
          nr.body.push_back(std::move(nl));
        } else {
          nr.body.push_back(l);
        }
      }
      ns.rules.push_back(std::move(nr));
    }
    out.strata.push_back(std::move(ns));
  }
  return out;
}

}  // namespace seqdl
