#include "src/algebra/algebra.h"

#include "src/engine/match.h"
#include "src/syntax/printer.h"

namespace seqdl {

PathExpr ColExpr(Universe& u, size_t i) {
  return VarExpr(u, u.InternVar(VarKind::kPath, std::to_string(i)));
}

namespace {
AlgebraPtr Make(AlgebraExpr e) {
  return std::make_shared<const AlgebraExpr>(std::move(e));
}
}  // namespace

AlgebraPtr AlgRel(RelId rel) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kRel;
  e.rel = rel;
  return Make(std::move(e));
}

AlgebraPtr AlgConst(uint32_t arity, std::vector<Tuple> tuples) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kConst;
  e.const_arity = arity;
  e.const_tuples = std::move(tuples);
  return Make(std::move(e));
}

AlgebraPtr AlgSelect(AlgebraPtr child, PathExpr alpha, PathExpr beta) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kSelect;
  e.left = std::move(child);
  e.alpha = std::move(alpha);
  e.beta = std::move(beta);
  return Make(std::move(e));
}

AlgebraPtr AlgProject(AlgebraPtr child, std::vector<PathExpr> projections) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kProject;
  e.left = std::move(child);
  e.projections = std::move(projections);
  return Make(std::move(e));
}

AlgebraPtr AlgUnion(AlgebraPtr a, AlgebraPtr b) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kUnion;
  e.left = std::move(a);
  e.right = std::move(b);
  return Make(std::move(e));
}

AlgebraPtr AlgDiff(AlgebraPtr a, AlgebraPtr b) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kDiff;
  e.left = std::move(a);
  e.right = std::move(b);
  return Make(std::move(e));
}

AlgebraPtr AlgProduct(AlgebraPtr a, AlgebraPtr b) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kProduct;
  e.left = std::move(a);
  e.right = std::move(b);
  return Make(std::move(e));
}

AlgebraPtr AlgUnpack(AlgebraPtr child, size_t column) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kUnpack;
  e.left = std::move(child);
  e.column = column;
  return Make(std::move(e));
}

AlgebraPtr AlgSub(AlgebraPtr child, size_t column) {
  AlgebraExpr e;
  e.op = AlgebraExpr::Op::kSub;
  e.left = std::move(child);
  e.column = column;
  return Make(std::move(e));
}

Result<uint32_t> AlgebraArity(const Universe& u, const AlgebraExpr& e) {
  switch (e.op) {
    case AlgebraExpr::Op::kRel:
      return u.RelArity(e.rel);
    case AlgebraExpr::Op::kConst:
      return e.const_arity;
    case AlgebraExpr::Op::kSelect:
      return AlgebraArity(u, *e.left);
    case AlgebraExpr::Op::kProject:
      return static_cast<uint32_t>(e.projections.size());
    case AlgebraExpr::Op::kUnion:
    case AlgebraExpr::Op::kDiff: {
      SEQDL_ASSIGN_OR_RETURN(uint32_t l, AlgebraArity(u, *e.left));
      SEQDL_ASSIGN_OR_RETURN(uint32_t r, AlgebraArity(u, *e.right));
      if (l != r) {
        return Status::InvalidArgument(
            "union/difference of relations with different arities");
      }
      return l;
    }
    case AlgebraExpr::Op::kProduct: {
      SEQDL_ASSIGN_OR_RETURN(uint32_t l, AlgebraArity(u, *e.left));
      SEQDL_ASSIGN_OR_RETURN(uint32_t r, AlgebraArity(u, *e.right));
      return l + r;
    }
    case AlgebraExpr::Op::kUnpack:
      return AlgebraArity(u, *e.left);
    case AlgebraExpr::Op::kSub: {
      SEQDL_ASSIGN_OR_RETURN(uint32_t l, AlgebraArity(u, *e.left));
      return l + 1;
    }
  }
  return Status::Internal("unknown algebra op");
}

namespace {

// Binds the column variables $1..$n to the components of `t`.
Valuation BindColumns(Universe& u, const Tuple& t) {
  Valuation v;
  for (size_t i = 0; i < t.size(); ++i) {
    v.Bind(u.InternVar(VarKind::kPath, std::to_string(i + 1)), t[i]);
  }
  return v;
}

}  // namespace

Result<EvaluatedRel> EvalAlgebra(Universe& u, const AlgebraExpr& e,
                                 const Instance& input) {
  SEQDL_ASSIGN_OR_RETURN(uint32_t arity, AlgebraArity(u, e));
  EvaluatedRel out;
  out.arity = arity;
  switch (e.op) {
    case AlgebraExpr::Op::kRel:
      out.tuples = input.Tuples(e.rel);
      return out;
    case AlgebraExpr::Op::kConst:
      for (const Tuple& t : e.const_tuples) {
        if (t.size() != e.const_arity) {
          return Status::InvalidArgument("constant relation arity mismatch");
        }
        out.tuples.insert(t);
      }
      return out;
    case AlgebraExpr::Op::kSelect: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel child, EvalAlgebra(u, *e.left, input));
      for (const Tuple& t : child.tuples) {
        Valuation v = BindColumns(u, t);
        SEQDL_ASSIGN_OR_RETURN(PathId a, EvalExpr(u, e.alpha, v));
        SEQDL_ASSIGN_OR_RETURN(PathId b, EvalExpr(u, e.beta, v));
        if (a == b) out.tuples.insert(t);
      }
      return out;
    }
    case AlgebraExpr::Op::kProject: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel child, EvalAlgebra(u, *e.left, input));
      for (const Tuple& t : child.tuples) {
        Valuation v = BindColumns(u, t);
        Tuple nt;
        nt.reserve(e.projections.size());
        for (const PathExpr& pe : e.projections) {
          SEQDL_ASSIGN_OR_RETURN(PathId p, EvalExpr(u, pe, v));
          nt.push_back(p);
        }
        out.tuples.insert(std::move(nt));
      }
      return out;
    }
    case AlgebraExpr::Op::kUnion: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel l, EvalAlgebra(u, *e.left, input));
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel r, EvalAlgebra(u, *e.right, input));
      out.tuples = std::move(l.tuples);
      out.tuples.insert(r.tuples.begin(), r.tuples.end());
      return out;
    }
    case AlgebraExpr::Op::kDiff: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel l, EvalAlgebra(u, *e.left, input));
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel r, EvalAlgebra(u, *e.right, input));
      for (const Tuple& t : l.tuples) {
        if (!r.tuples.count(t)) out.tuples.insert(t);
      }
      return out;
    }
    case AlgebraExpr::Op::kProduct: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel l, EvalAlgebra(u, *e.left, input));
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel r, EvalAlgebra(u, *e.right, input));
      for (const Tuple& a : l.tuples) {
        for (const Tuple& b : r.tuples) {
          Tuple t = a;
          t.insert(t.end(), b.begin(), b.end());
          out.tuples.insert(std::move(t));
        }
      }
      return out;
    }
    case AlgebraExpr::Op::kUnpack: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel child, EvalAlgebra(u, *e.left, input));
      if (e.column < 1 || e.column > child.arity) {
        return Status::InvalidArgument("UNPACK column out of range");
      }
      for (const Tuple& t : child.tuples) {
        std::span<const Value> p = u.GetPath(t[e.column - 1]);
        if (p.size() == 1 && p[0].is_packed()) {
          Tuple nt = t;
          nt[e.column - 1] = p[0].packed_path();
          out.tuples.insert(std::move(nt));
        }
      }
      return out;
    }
    case AlgebraExpr::Op::kSub: {
      SEQDL_ASSIGN_OR_RETURN(EvaluatedRel child, EvalAlgebra(u, *e.left, input));
      if (e.column < 1 || e.column > child.arity) {
        return Status::InvalidArgument("SUB column out of range");
      }
      for (const Tuple& t : child.tuples) {
        for (PathId s : u.AllSubPaths(t[e.column - 1])) {
          Tuple nt = t;
          nt.push_back(s);
          out.tuples.insert(std::move(nt));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown algebra op");
}

std::string FormatAlgebra(const Universe& u, const AlgebraExpr& e) {
  switch (e.op) {
    case AlgebraExpr::Op::kRel:
      return u.RelName(e.rel);
    case AlgebraExpr::Op::kConst:
      return "{" + std::to_string(e.const_tuples.size()) + " tuples}";
    case AlgebraExpr::Op::kSelect:
      return "σ_{" + FormatExpr(u, e.alpha) + "=" + FormatExpr(u, e.beta) +
             "}(" + FormatAlgebra(u, *e.left) + ")";
    case AlgebraExpr::Op::kProject: {
      std::string cols;
      for (size_t i = 0; i < e.projections.size(); ++i) {
        if (i > 0) cols += ",";
        cols += FormatExpr(u, e.projections[i]);
      }
      return "π_{" + cols + "}(" + FormatAlgebra(u, *e.left) + ")";
    }
    case AlgebraExpr::Op::kUnion:
      return "(" + FormatAlgebra(u, *e.left) + " ∪ " +
             FormatAlgebra(u, *e.right) + ")";
    case AlgebraExpr::Op::kDiff:
      return "(" + FormatAlgebra(u, *e.left) + " − " +
             FormatAlgebra(u, *e.right) + ")";
    case AlgebraExpr::Op::kProduct:
      return "(" + FormatAlgebra(u, *e.left) + " × " +
             FormatAlgebra(u, *e.right) + ")";
    case AlgebraExpr::Op::kUnpack:
      return "UNPACK_" + std::to_string(e.column) + "(" +
             FormatAlgebra(u, *e.left) + ")";
    case AlgebraExpr::Op::kSub:
      return "SUB_" + std::to_string(e.column) + "(" +
             FormatAlgebra(u, *e.left) + ")";
  }
  return "?";
}

}  // namespace seqdl
