// Theorem 7.1, converse direction: every sequence relational algebra
// expression translates to a nonrecursive Sequence Datalog program.
#ifndef SEQDL_ALGEBRA_TO_DATALOG_H_
#define SEQDL_ALGEBRA_TO_DATALOG_H_

#include "src/algebra/algebra.h"
#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct AlgebraToDatalogResult {
  Program program;
  /// The IDB relation holding the expression's result.
  RelId output;
};

/// Compiles `e` into a (stratified, nonrecursive) program.
Result<AlgebraToDatalogResult> AlgebraToDatalog(Universe& u,
                                                const AlgebraExpr& e);

}  // namespace seqdl

#endif  // SEQDL_ALGEBRA_TO_DATALOG_H_
