#include "src/algebra/from_datalog.h"

#include <functional>
#include <map>

#include "src/analysis/dependency_graph.h"
#include "src/syntax/printer.h"
#include "src/transform/equation_elim.h"
#include "src/transform/normal_form.h"

namespace seqdl {

namespace {

// Maximum packing nesting depth of an expression.
size_t PackDepth(const PathExpr& e) {
  size_t d = 0;
  for (const ExprItem& it : e.items) {
    if (it.kind == ExprItem::Kind::kPack) {
      d = std::max(d, 1 + PackDepth(*it.pack));
    }
  }
  return d;
}

class Translator {
 public:
  explicit Translator(Universe& u) : u_(u) {}

  Result<AlgebraPtr> Run(const Program& p, RelId target) {
    std::set<RelId> idb = IdbRels(p);
    if (!idb.count(target)) {
      return Status::InvalidArgument("DatalogToAlgebra: " +
                                     u_.RelName(target) +
                                     " is not an IDB relation");
    }
    for (const Rule* r : p.AllRules()) {
      defs_[r->head.rel].push_back(r);
    }
    idb_ = std::move(idb);
    return ExprFor(target);
  }

 private:
  Result<AlgebraPtr> ExprFor(RelId rel) {
    auto memo = memo_.find(rel);
    if (memo != memo_.end()) return memo->second;
    if (!idb_.count(rel)) return AlgRel(rel);

    AlgebraPtr acc;
    for (const Rule* r : defs_[rel]) {
      SEQDL_ASSIGN_OR_RETURN(AlgebraPtr e, RuleExpr(*r));
      acc = acc ? AlgUnion(acc, e) : e;
    }
    if (!acc) {
      return Status::Internal("IDB relation with no rules: " +
                              u_.RelName(rel));
    }
    memo_[rel] = acc;
    return acc;
  }

  Result<AlgebraPtr> RuleExpr(const Rule& r) {
    SEQDL_ASSIGN_OR_RETURN(int form, NormalFormOf(u_, r));
    switch (form) {
      case 6: {
        Tuple t;
        for (const PathExpr& e : r.head.args) {
          SEQDL_ASSIGN_OR_RETURN(PathId p, EvalGroundExpr(u_, e));
          t.push_back(p);
        }
        return AlgConst(static_cast<uint32_t>(t.size()), {t});
      }
      case 1:
        return Form1(r);
      case 2:
        return Form2(r);
      case 3:
        return Form3(r);
      case 4:
        return Form4(r);
      case 5:
        return Form5(r);
      default:
        return Status::Internal("unknown normal form");
    }
  }

  // Positions (1-based) of variables in a predicate of distinct vars.
  static std::map<VarId, size_t> VarPositions(const Predicate& p) {
    std::map<VarId, size_t> out;
    for (size_t i = 0; i < p.args.size(); ++i) {
      out[p.args[i].items[0].var] = i + 1;
    }
    return out;
  }

  // Rewrites `e`, mapping each variable to the column expression given by
  // `positions` (plus `offset`).
  PathExpr ToColumns(const PathExpr& e, const std::map<VarId, size_t>& pos,
                     size_t offset) {
    ExprSubst subst;
    for (VarId v : VarSet(e)) {
      auto it = pos.find(v);
      if (it != pos.end()) subst[v] = ColExpr(u_, it->second + offset);
    }
    return SubstituteExpr(e, subst);
  }

  // Form 2: R1(v1..vn, e) <- R2(v1..vn): generalized projection.
  Result<AlgebraPtr> Form2(const Rule& r) {
    const Predicate& body = r.body[0].pred;
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr child, ExprFor(body.rel));
    std::map<VarId, size_t> pos = VarPositions(body);
    std::vector<PathExpr> projections;
    for (size_t i = 1; i <= body.args.size(); ++i) {
      projections.push_back(ColExpr(u_, i));
    }
    projections.push_back(ToColumns(r.head.args.back(), pos, 0));
    return AlgProject(child, std::move(projections));
  }

  // Form 5: projection onto a subset of columns.
  Result<AlgebraPtr> Form5(const Rule& r) {
    const Predicate& body = r.body[0].pred;
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr child, ExprFor(body.rel));
    std::map<VarId, size_t> pos = VarPositions(body);
    std::vector<PathExpr> projections;
    for (const PathExpr& e : r.head.args) {
      projections.push_back(ColExpr(u_, pos.at(e.items[0].var)));
    }
    return AlgProject(child, std::move(projections));
  }

  // Form 3: join.
  Result<AlgebraPtr> Form3(const Rule& r) {
    const Predicate& b1 = r.body[0].pred;
    const Predicate& b2 = r.body[1].pred;
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr l, ExprFor(b1.rel));
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr r2, ExprFor(b2.rel));
    AlgebraPtr prod = AlgProduct(l, r2);
    std::map<VarId, size_t> pos1 = VarPositions(b1);
    std::map<VarId, size_t> pos2 = VarPositions(b2);
    size_t k = b1.args.size();
    for (const auto& [v, p2] : pos2) {
      auto it = pos1.find(v);
      if (it != pos1.end()) {
        prod = AlgSelect(prod, ColExpr(u_, it->second),
                         ColExpr(u_, k + p2));
      }
    }
    std::vector<PathExpr> projections;
    for (const PathExpr& e : r.head.args) {
      VarId v = e.items[0].var;
      auto it = pos1.find(v);
      size_t col = it != pos1.end() ? it->second : k + pos2.at(v);
      projections.push_back(ColExpr(u_, col));
    }
    return AlgProject(prod, std::move(projections));
  }

  // Form 4: antijoin R2 − matches(R3).
  Result<AlgebraPtr> Form4(const Rule& r) {
    const Literal& pos_lit = r.body[0].negated ? r.body[1] : r.body[0];
    const Literal& neg_lit = r.body[0].negated ? r.body[0] : r.body[1];
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr l, ExprFor(pos_lit.pred.rel));
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr n, ExprFor(neg_lit.pred.rel));
    std::map<VarId, size_t> pos = VarPositions(pos_lit.pred);
    size_t k = pos_lit.pred.args.size();
    AlgebraPtr prod = AlgProduct(l, n);
    for (size_t j = 0; j < neg_lit.pred.args.size(); ++j) {
      VarId v = neg_lit.pred.args[j].items[0].var;
      prod = AlgSelect(prod, ColExpr(u_, pos.at(v)), ColExpr(u_, k + j + 1));
    }
    std::vector<PathExpr> keep;
    for (size_t i = 1; i <= k; ++i) keep.push_back(ColExpr(u_, i));
    AlgebraPtr matched = AlgProject(prod, std::move(keep));
    return AlgDiff(l, matched);
  }

  // Form 1: extraction R1(v1..vn) <- R2(e1..em). Candidate values for the
  // variables come from the substring/unpacking closure of R2's columns;
  // atomic variables are additionally restricted to atoms (paper §7:
  // "by compositions of unpacking and substring operations, we can
  // generate all subpaths until the maximum packing depth ... using
  // cartesian product and selection, we then select the desired paths").
  Result<AlgebraPtr> Form1(const Rule& r) {
    const Predicate& body = r.body[0].pred;
    SEQDL_ASSIGN_OR_RETURN(AlgebraPtr r2, ExprFor(body.rel));
    size_t m = body.args.size();

    size_t depth = 0;
    for (const PathExpr& e : body.args) depth = std::max(depth, PackDepth(e));

    // U = substring closure of all columns, unpacked `depth` + 1 times.
    AlgebraPtr universe;
    for (size_t j = 1; j <= m; ++j) {
      AlgebraPtr col = AlgProject(r2, {ColExpr(u_, j)});
      universe = universe ? AlgUnion(universe, col) : col;
    }
    if (!universe) {
      // Arity-0 body: no variables can occur; the head must also be arity 0.
      // R1() holds iff R2() does.
      return r2;
    }
    AlgebraPtr level = AllSubstrings(universe);
    AlgebraPtr u_all = level;
    for (size_t d = 0; d < depth + 1; ++d) {
      level = AllSubstrings(AlgUnpack(level, 1));
      u_all = AlgUnion(u_all, level);
    }

    AlgebraPtr atoms = AtomsOf(u_all);

    // Product R2 × cand(v1) × ... × cand(vk), one candidate column per
    // *body* variable (head variables are a subset of those).
    std::vector<VarId> body_vars;
    for (const PathExpr& e : body.args) CollectVars(e, &body_vars);
    AlgebraPtr prod = r2;
    std::map<VarId, size_t> var_col;
    for (size_t i = 0; i < body_vars.size(); ++i) {
      VarId v = body_vars[i];
      bool atomic = u_.VarKindOf(v) == VarKind::kAtomic;
      prod = AlgProduct(prod, atomic ? atoms : u_all);
      var_col[v] = m + i + 1;
    }
    // Selections: e_i(vars -> columns) = $i.
    for (size_t i = 0; i < m; ++i) {
      PathExpr alpha = ToColumns(body.args[i], var_col, 0);
      prod = AlgSelect(prod, std::move(alpha), ColExpr(u_, i + 1));
    }
    std::vector<PathExpr> projections;
    for (const PathExpr& e : r.head.args) {
      projections.push_back(ColExpr(u_, var_col.at(e.items[0].var)));
    }
    return AlgProject(prod, std::move(projections));
  }

  // All substrings of a unary relation: π_{$2}(SUB_1(X)).
  AlgebraPtr AllSubstrings(AlgebraPtr x) {
    return AlgProject(AlgSub(std::move(x), 1), {ColExpr(u_, 2)});
  }

  // The atomic values among a (substring-closed) unary relation U:
  //   EPS       = σ_{$1=ϵ}(U)
  //   COMPOSITE = π_{$1}(σ_{$1=$2·$3}(U × (U−EPS) × (U−EPS)))
  //   PACKED    = π_{$1}(σ_{$1=<$2>}(UNPACK_2(SUB_1(U))))
  //   ATOMS     = U − EPS − COMPOSITE − PACKED
  AlgebraPtr AtomsOf(AlgebraPtr u_all) {
    AlgebraPtr eps = AlgSelect(u_all, ColExpr(u_, 1), PathExpr());
    AlgebraPtr nonempty = AlgDiff(u_all, eps);
    AlgebraPtr triple = AlgProduct(AlgProduct(u_all, nonempty), nonempty);
    AlgebraPtr composite = AlgProject(
        AlgSelect(triple, ColExpr(u_, 1),
                  ConcatExpr(ColExpr(u_, 2), ColExpr(u_, 3))),
        {ColExpr(u_, 1)});
    AlgebraPtr packed = AlgProject(
        AlgSelect(AlgUnpack(AlgSub(u_all, 1), 2), ColExpr(u_, 1),
                  PackExpr(ColExpr(u_, 2))),
        {ColExpr(u_, 1)});
    return AlgDiff(AlgDiff(AlgDiff(u_all, eps), composite), packed);
  }

  Universe& u_;
  std::set<RelId> idb_;
  std::map<RelId, std::vector<const Rule*>> defs_;
  std::map<RelId, AlgebraPtr> memo_;
};

}  // namespace

Result<AlgebraPtr> DatalogToAlgebra(Universe& u, const Program& p,
                                    RelId target) {
  if (HasCycle(BuildDependencyGraph(p))) {
    return Status::FailedPrecondition("DatalogToAlgebra: program is recursive");
  }
  // Equations are eliminated first (Theorem 4.7), then the program is
  // brought into the Lemma 7.2 normal form.
  bool has_equations = false;
  for (const Rule* r : p.AllRules()) {
    for (const Literal& l : r->body) has_equations |= l.is_equation();
  }
  Program staged = p;
  if (has_equations) {
    SEQDL_ASSIGN_OR_RETURN(staged, EliminateEquations(u, staged));
  }
  SEQDL_ASSIGN_OR_RETURN(Program normal, ToNormalForm(u, staged));
  Translator t(u);
  return t.Run(normal, target);
}

}  // namespace seqdl
