#include "src/algebra/to_datalog.h"

#include <vector>

#include "src/analysis/stratify.h"

namespace seqdl {

namespace {

class Compiler {
 public:
  explicit Compiler(Universe& u) : u_(u) {}

  Result<AlgebraToDatalogResult> Run(const AlgebraExpr& e) {
    SEQDL_ASSIGN_OR_RETURN(RelId out, Compile(e));
    SEQDL_ASSIGN_OR_RETURN(Program p, AutoStratify(rules_));
    return AlgebraToDatalogResult{std::move(p), out};
  }

 private:
  // Fresh distinct path variables $c1.._cn for a rule.
  std::vector<PathExpr> FreshVars(size_t n) {
    std::vector<PathExpr> out;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(VarExpr(u_, u_.FreshVar(VarKind::kPath, "c")));
    }
    return out;
  }

  // Substitution mapping the column variables $1..$n to `cols`.
  ExprSubst ColumnSubst(const std::vector<PathExpr>& cols) {
    ExprSubst subst;
    for (size_t i = 0; i < cols.size(); ++i) {
      subst[u_.InternVar(VarKind::kPath, std::to_string(i + 1))] = cols[i];
    }
    return subst;
  }

  Result<RelId> Compile(const AlgebraExpr& e) {
    SEQDL_ASSIGN_OR_RETURN(uint32_t arity, AlgebraArity(u_, e));
    switch (e.op) {
      case AlgebraExpr::Op::kRel:
        return e.rel;
      case AlgebraExpr::Op::kConst: {
        RelId out = u_.FreshRel("Const", arity);
        for (const Tuple& t : e.const_tuples) {
          Rule fact;
          fact.head.rel = out;
          for (PathId p : t) fact.head.args.push_back(ExprOfPath(u_, p));
          rules_.push_back(std::move(fact));
        }
        return out;
      }
      case AlgebraExpr::Op::kSelect: {
        SEQDL_ASSIGN_OR_RETURN(RelId child, Compile(*e.left));
        RelId out = u_.FreshRel("Sel", arity);
        std::vector<PathExpr> cols = FreshVars(arity);
        ExprSubst subst = ColumnSubst(cols);
        Rule r;
        r.head = Predicate{out, cols};
        r.body.push_back(Literal::Pred(Predicate{child, cols}));
        r.body.push_back(Literal::Eq(SubstituteExpr(e.alpha, subst),
                                     SubstituteExpr(e.beta, subst)));
        rules_.push_back(std::move(r));
        return out;
      }
      case AlgebraExpr::Op::kProject: {
        SEQDL_ASSIGN_OR_RETURN(RelId child, Compile(*e.left));
        SEQDL_ASSIGN_OR_RETURN(uint32_t child_arity,
                               AlgebraArity(u_, *e.left));
        RelId out = u_.FreshRel("Proj", arity);
        std::vector<PathExpr> cols = FreshVars(child_arity);
        ExprSubst subst = ColumnSubst(cols);
        Rule r;
        r.head.rel = out;
        for (const PathExpr& pe : e.projections) {
          r.head.args.push_back(SubstituteExpr(pe, subst));
        }
        r.body.push_back(Literal::Pred(Predicate{child, cols}));
        rules_.push_back(std::move(r));
        return out;
      }
      case AlgebraExpr::Op::kUnion: {
        SEQDL_ASSIGN_OR_RETURN(RelId l, Compile(*e.left));
        SEQDL_ASSIGN_OR_RETURN(RelId r2, Compile(*e.right));
        RelId out = u_.FreshRel("Union", arity);
        for (RelId child : {l, r2}) {
          std::vector<PathExpr> cols = FreshVars(arity);
          Rule r;
          r.head = Predicate{out, cols};
          r.body.push_back(Literal::Pred(Predicate{child, cols}));
          rules_.push_back(std::move(r));
        }
        return out;
      }
      case AlgebraExpr::Op::kDiff: {
        SEQDL_ASSIGN_OR_RETURN(RelId l, Compile(*e.left));
        SEQDL_ASSIGN_OR_RETURN(RelId r2, Compile(*e.right));
        RelId out = u_.FreshRel("Diff", arity);
        std::vector<PathExpr> cols = FreshVars(arity);
        Rule r;
        r.head = Predicate{out, cols};
        r.body.push_back(Literal::Pred(Predicate{l, cols}));
        r.body.push_back(
            Literal::Pred(Predicate{r2, cols}, /*negated=*/true));
        rules_.push_back(std::move(r));
        return out;
      }
      case AlgebraExpr::Op::kProduct: {
        SEQDL_ASSIGN_OR_RETURN(RelId l, Compile(*e.left));
        SEQDL_ASSIGN_OR_RETURN(RelId r2, Compile(*e.right));
        SEQDL_ASSIGN_OR_RETURN(uint32_t la, AlgebraArity(u_, *e.left));
        SEQDL_ASSIGN_OR_RETURN(uint32_t ra, AlgebraArity(u_, *e.right));
        RelId out = u_.FreshRel("Prod", arity);
        std::vector<PathExpr> lcols = FreshVars(la);
        std::vector<PathExpr> rcols = FreshVars(ra);
        Rule r;
        r.head.rel = out;
        r.head.args = lcols;
        r.head.args.insert(r.head.args.end(), rcols.begin(), rcols.end());
        r.body.push_back(Literal::Pred(Predicate{l, lcols}));
        r.body.push_back(Literal::Pred(Predicate{r2, rcols}));
        rules_.push_back(std::move(r));
        return out;
      }
      case AlgebraExpr::Op::kUnpack: {
        SEQDL_ASSIGN_OR_RETURN(RelId child, Compile(*e.left));
        RelId out = u_.FreshRel("Unpack", arity);
        std::vector<PathExpr> cols = FreshVars(arity);
        std::vector<PathExpr> body_cols = cols;
        body_cols[e.column - 1] = PackExpr(cols[e.column - 1]);
        Rule r;
        r.head = Predicate{out, cols};
        r.body.push_back(Literal::Pred(Predicate{child, body_cols}));
        rules_.push_back(std::move(r));
        return out;
      }
      case AlgebraExpr::Op::kSub: {
        SEQDL_ASSIGN_OR_RETURN(RelId child, Compile(*e.left));
        SEQDL_ASSIGN_OR_RETURN(uint32_t child_arity,
                               AlgebraArity(u_, *e.left));
        RelId out = u_.FreshRel("Sub", arity);
        std::vector<PathExpr> cols = FreshVars(child_arity);
        PathExpr s = VarExpr(u_, u_.FreshVar(VarKind::kPath, "s"));
        PathExpr pre = VarExpr(u_, u_.FreshVar(VarKind::kPath, "pre"));
        PathExpr post = VarExpr(u_, u_.FreshVar(VarKind::kPath, "post"));
        Rule r;
        r.head.rel = out;
        r.head.args = cols;
        r.head.args.push_back(s);
        r.body.push_back(Literal::Pred(Predicate{child, cols}));
        r.body.push_back(Literal::Eq(cols[e.column - 1],
                                     ConcatExprs({pre, s, post})));
        rules_.push_back(std::move(r));
        return out;
      }
    }
    return Status::Internal("unknown algebra op");
  }

  Universe& u_;
  std::vector<Rule> rules_;
};

}  // namespace

Result<AlgebraToDatalogResult> AlgebraToDatalog(Universe& u,
                                                const AlgebraExpr& e) {
  Compiler c(u);
  return c.Run(e);
}

}  // namespace seqdl
