// The sequence relational algebra of Section 7: the classical relational
// algebra (union, difference, cartesian product) with selection and
// projection generalized to path expressions over column variables
// $1, ..., $n, plus two extraction operators:
//
//   UNPACK_i(R) = { (t1,...,s,...,tn) | (t1,...,<s>,...,tn) ∈ R }
//   SUB_i(R)    = { (t1,...,tn,s)     | t ∈ R, s a substring of ti }
//
// Expressions evaluate over an Instance; Theorem 7.1 (from_datalog.h /
// to_datalog.h) links the algebra with nonrecursive Sequence Datalog.
#ifndef SEQDL_ALGEBRA_ALGEBRA_H_
#define SEQDL_ALGEBRA_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/engine/instance.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

struct AlgebraExpr;
using AlgebraPtr = std::shared_ptr<const AlgebraExpr>;

struct AlgebraExpr {
  enum class Op {
    kRel,      // a named relation
    kConst,    // a constant relation
    kSelect,   // σ_{α=β}
    kProject,  // π_{α1,...,αp}
    kUnion,
    kDiff,
    kProduct,
    kUnpack,   // UNPACK_i
    kSub,      // SUB_i
  };

  Op op;
  RelId rel = 0;                     // kRel
  uint32_t const_arity = 0;          // kConst
  std::vector<Tuple> const_tuples;   // kConst
  AlgebraPtr left, right;            // children
  PathExpr alpha, beta;              // kSelect
  std::vector<PathExpr> projections; // kProject
  size_t column = 0;                 // kUnpack / kSub (1-based, as in §7)
};

/// The column variable $i (1-based), as used in selections/projections.
PathExpr ColExpr(Universe& u, size_t i);

// Construction helpers.
AlgebraPtr AlgRel(RelId rel);
AlgebraPtr AlgConst(uint32_t arity, std::vector<Tuple> tuples);
AlgebraPtr AlgSelect(AlgebraPtr child, PathExpr alpha, PathExpr beta);
AlgebraPtr AlgProject(AlgebraPtr child, std::vector<PathExpr> projections);
AlgebraPtr AlgUnion(AlgebraPtr a, AlgebraPtr b);
AlgebraPtr AlgDiff(AlgebraPtr a, AlgebraPtr b);
AlgebraPtr AlgProduct(AlgebraPtr a, AlgebraPtr b);
AlgebraPtr AlgUnpack(AlgebraPtr child, size_t column);
AlgebraPtr AlgSub(AlgebraPtr child, size_t column);

/// An evaluated relation.
struct EvaluatedRel {
  uint32_t arity = 0;
  TupleSet tuples;
};

/// Evaluates `e` against `input`.
Result<EvaluatedRel> EvalAlgebra(Universe& u, const AlgebraExpr& e,
                                 const Instance& input);

/// The arity of the expression's result (checks child arities).
Result<uint32_t> AlgebraArity(const Universe& u, const AlgebraExpr& e);

/// Single-line rendering, e.g. "π_{$1}(σ_{$1=$2}(R × S))".
std::string FormatAlgebra(const Universe& u, const AlgebraExpr& e);

}  // namespace seqdl

#endif  // SEQDL_ALGEBRA_ALGEBRA_H_
