// Theorem 7.1, forward direction: every nonrecursive Sequence Datalog
// program translates to a sequence relational algebra expression computing
// the same relation. The translation goes through the Lemma 7.2 normal form
// (eliminating equations first, per Theorem 4.7, if any are present).
#ifndef SEQDL_ALGEBRA_FROM_DATALOG_H_
#define SEQDL_ALGEBRA_FROM_DATALOG_H_

#include "src/algebra/algebra.h"
#include "src/base/status.h"
#include "src/syntax/ast.h"
#include "src/term/universe.h"

namespace seqdl {

/// Translates nonrecursive `p` into an algebra expression for the IDB
/// relation `target`.
Result<AlgebraPtr> DatalogToAlgebra(Universe& u, const Program& p,
                                    RelId target);

}  // namespace seqdl

#endif  // SEQDL_ALGEBRA_FROM_DATALOG_H_
