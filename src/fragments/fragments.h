// The fragment lattice (Sections 3 and 6): Theorem 6.1's decision procedure
// for fragment subsumption, the equivalence classes it induces, and the
// Hasse diagram of Figure 1.
#ifndef SEQDL_FRAGMENTS_FRAGMENTS_H_
#define SEQDL_FRAGMENTS_FRAGMENTS_H_

#include <string>
#include <vector>

#include "src/analysis/features.h"

namespace seqdl {

/// Theorem 6.1: F1 <= F2 (every query computable in F1 is computable in
/// F2) iff the five conditions hold on F̂ = F − {A, P} (arity and packing
/// are fully redundant):
///   1. N ∈ F1 ⇒ N ∈ F2
///   2. R ∈ F1 ⇒ R ∈ F2
///   3. E ∈ F1 ⇒ (E ∈ F2 ∨ I ∈ F2)
///   4. (I ∈ F1 ∧ R ∉ F1 ∧ N ∉ F1) ⇒ (I ∈ F2 ∨ E ∈ F2)
///   5. (I ∈ F1 ∧ (R ∈ F1 ∨ N ∈ F1)) ⇒ I ∈ F2
bool Subsumes(FeatureSet f1, FeatureSet f2);

/// Equivalent in expressive power: F1 <= F2 and F2 <= F1.
bool Equivalent(FeatureSet f1, FeatureSet f2);

/// All 16 fragments over {E, I, N, R}.
std::vector<FeatureSet> AllCoreFragments();

/// All 64 fragments over {A, E, I, N, P, R}.
std::vector<FeatureSet> AllFragments();

/// One equivalence class of fragments under mutual subsumption.
struct FragmentClass {
  std::vector<FeatureSet> members;  // sorted by bits
  /// Canonical display, e.g. "{I,N} = {E,I,N}".
  std::string Label() const;
  /// Representative (first member).
  FeatureSet Rep() const { return members.front(); }
};

/// The equivalence classes of the 16 core fragments (11 classes; Figure 1).
std::vector<FragmentClass> CoreEquivalenceClasses();

/// The Hasse diagram of the equivalence classes: edge (i, j) means class i
/// is *strictly below* class j with nothing in between (transitive
/// reduction of the subsumption order).
struct HasseDiagram {
  std::vector<FragmentClass> classes;
  std::vector<std::pair<size_t, size_t>> edges;  // (lower, upper)
};

HasseDiagram BuildHasseDiagram();

/// Multi-line text rendering of the diagram, ranked by height (Figure 1).
std::string RenderHasse(const HasseDiagram& d);

/// Graphviz dot rendering.
std::string HasseToDot(const HasseDiagram& d);

}  // namespace seqdl

#endif  // SEQDL_FRAGMENTS_FRAGMENTS_H_
