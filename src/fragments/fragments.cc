#include "src/fragments/fragments.h"

#include <algorithm>
#include <functional>
#include <map>

namespace seqdl {

bool Subsumes(FeatureSet f1, FeatureSet f2) {
  // Strip the redundant features A and P.
  f1 = f1.Without(Feature::kArity).Without(Feature::kPacking);
  f2 = f2.Without(Feature::kArity).Without(Feature::kPacking);

  bool n1 = f1.Contains(Feature::kNegation);
  bool r1 = f1.Contains(Feature::kRecursion);
  bool e1 = f1.Contains(Feature::kEquations);
  bool i1 = f1.Contains(Feature::kIntermediate);
  bool n2 = f2.Contains(Feature::kNegation);
  bool r2 = f2.Contains(Feature::kRecursion);
  bool e2 = f2.Contains(Feature::kEquations);
  bool i2 = f2.Contains(Feature::kIntermediate);

  if (n1 && !n2) return false;                       // condition 1
  if (r1 && !r2) return false;                       // condition 2
  if (e1 && !(e2 || i2)) return false;               // condition 3
  if (i1 && !r1 && !n1 && !(i2 || e2)) return false; // condition 4
  if (i1 && (r1 || n1) && !i2) return false;         // condition 5
  return true;
}

bool Equivalent(FeatureSet f1, FeatureSet f2) {
  return Subsumes(f1, f2) && Subsumes(f2, f1);
}

std::vector<FeatureSet> AllCoreFragments() {
  static constexpr Feature kCore[] = {Feature::kEquations,
                                      Feature::kIntermediate,
                                      Feature::kNegation, Feature::kRecursion};
  std::vector<FeatureSet> out;
  for (int mask = 0; mask < 16; ++mask) {
    FeatureSet f;
    for (int b = 0; b < 4; ++b) {
      if (mask & (1 << b)) f = f.With(kCore[b]);
    }
    out.push_back(f);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FeatureSet> AllFragments() {
  std::vector<FeatureSet> out;
  for (int mask = 0; mask < 64; ++mask) {
    out.push_back(FeatureSet(static_cast<uint8_t>(mask)));
  }
  return out;
}

std::string FragmentClass::Label() const {
  std::string out;
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) out += " = ";
    out += members[i].ToString();
  }
  return out;
}

std::vector<FragmentClass> CoreEquivalenceClasses() {
  std::vector<FeatureSet> fragments = AllCoreFragments();
  std::vector<FragmentClass> classes;
  std::vector<bool> assigned(fragments.size(), false);
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (assigned[i]) continue;
    FragmentClass cls;
    for (size_t j = i; j < fragments.size(); ++j) {
      if (!assigned[j] && Equivalent(fragments[i], fragments[j])) {
        cls.members.push_back(fragments[j]);
        assigned[j] = true;
      }
    }
    std::sort(cls.members.begin(), cls.members.end());
    classes.push_back(std::move(cls));
  }
  return classes;
}

HasseDiagram BuildHasseDiagram() {
  HasseDiagram d;
  d.classes = CoreEquivalenceClasses();
  size_t n = d.classes.size();
  // Strict order on classes.
  std::vector<std::vector<bool>> lt(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      lt[i][j] = Subsumes(d.classes[i].Rep(), d.classes[j].Rep()) &&
                 !Subsumes(d.classes[j].Rep(), d.classes[i].Rep());
    }
  }
  // Transitive reduction: keep i < j with no k strictly between.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!lt[i][j]) continue;
      bool covered = false;
      for (size_t k = 0; k < n && !covered; ++k) {
        covered = lt[i][k] && lt[k][j];
      }
      if (!covered) d.edges.emplace_back(i, j);
    }
  }
  return d;
}

std::string RenderHasse(const HasseDiagram& d) {
  // Rank = length of the longest chain below the class.
  size_t n = d.classes.size();
  std::vector<std::vector<size_t>> below(n);
  for (const auto& [lo, hi] : d.edges) below[hi].push_back(lo);
  std::vector<int> rank(n, -1);
  std::function<int(size_t)> height = [&](size_t i) -> int {
    if (rank[i] >= 0) return rank[i];
    int h = 0;
    for (size_t b : below[i]) h = std::max(h, height(b) + 1);
    rank[i] = h;
    return h;
  };
  int max_rank = 0;
  for (size_t i = 0; i < n; ++i) max_rank = std::max(max_rank, height(i));

  std::string out;
  for (int r = max_rank; r >= 0; --r) {
    out += "rank " + std::to_string(r) + ":  ";
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      if (rank[i] != r) continue;
      if (!first) out += "    ";
      out += d.classes[i].Label();
      first = false;
    }
    out += "\n";
  }
  out += "edges (lower < upper):\n";
  for (const auto& [lo, hi] : d.edges) {
    out += "  " + d.classes[lo].Label() + "  <  " + d.classes[hi].Label() +
           "\n";
  }
  return out;
}

std::string HasseToDot(const HasseDiagram& d) {
  std::string out = "digraph hasse {\n  rankdir=BT;\n";
  for (size_t i = 0; i < d.classes.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" + d.classes[i].Label() +
           "\"];\n";
  }
  for (const auto& [lo, hi] : d.edges) {
    out += "  n" + std::to_string(lo) + " -> n" + std::to_string(hi) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace seqdl
