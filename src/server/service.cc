#include "src/server/service.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/lint.h"
#include "src/engine/instance.h"
#include "src/syntax/parser.h"

namespace seqdl {

namespace {

protocol::WireEvalStats ToWire(const EvalStats& s) {
  protocol::WireEvalStats w;
  w.derived_facts = s.derived_facts;
  w.rounds = s.rounds;
  w.rule_firings = s.rule_firings;
  w.index_probes = s.index_probes;
  w.prefix_probes = s.prefix_probes;
  w.suffix_probes = s.suffix_probes;
  w.full_scans = s.full_scans;
  w.delta_scans = s.delta_scans;
  w.delta_index_probes = s.delta_index_probes;
  w.compile_seconds = s.compile_seconds;
  w.run_seconds = s.run_seconds;
  return w;
}

protocol::WireDiagnostic ToWire(const Diagnostic& d) {
  protocol::WireDiagnostic w;
  w.severity = static_cast<uint8_t>(d.severity);
  w.code = d.code;
  w.line = static_cast<uint32_t>(d.span.line);
  w.col = static_cast<uint32_t>(d.span.col);
  w.end_line = static_cast<uint32_t>(d.span.end_line);
  w.end_col = static_cast<uint32_t>(d.span.end_col);
  w.message = d.message;
  w.notes = d.notes;
  return w;
}

}  // namespace

DatabaseService::DatabaseService(Universe& u, Database db, ServiceOptions opts)
    : u_(&u), db_(std::move(db)), opts_(std::move(opts)) {}

Result<protocol::CompileReply> DatabaseService::Compile(
    const std::string& program_text, const std::string& source_name) {
  bool cache_hit = false;
  std::shared_ptr<const AdmissionReport> admission;
  std::shared_ptr<const DiagnosticList> lints;
  SEQDL_ASSIGN_OR_RETURN(
      std::shared_ptr<PreparedProgram> prog,
      Prepare(program_text, source_name, &cache_hit, &admission, &lints));
  protocol::CompileReply reply;
  reply.cache_hit = cache_hit;
  reply.rules = prog->program().NumRules();
  reply.strata = prog->program().strata.size();
  reply.compile_seconds = prog->compile_seconds();
  if (admission != nullptr) {
    reply.features = admission->features.ToString();
    reply.fragment_class = admission->fragment_class;
    reply.admission =
        static_cast<uint8_t>(admission->Verdict(opts_.admission));
    DiagnosticList policy = PolicyDiagnostics(*admission, opts_.admission);
    for (const Diagnostic& d : policy.all()) {
      reply.diagnostics.push_back(ToWire(d));
    }
  }
  if (lints != nullptr) {
    for (const Diagnostic& d : lints->all()) {
      reply.diagnostics.push_back(ToWire(d));
    }
  }
  return reply;
}

Status DatabaseService::ApplyAdmission(const AdmissionReport* admission,
                                       RunOptions* ropts) const {
  if (opts_.admission == AdmissionPolicy::kOff || admission == nullptr ||
      !admission->generative) {
    return Status::OK();
  }
  if (opts_.admission == AdmissionPolicy::kStrict) {
    const Diagnostic& d = admission->diagnostics[0];
    return Status::FailedPrecondition(
        "admission denied (policy strict): potentially non-terminating "
        "program: " +
        d.message + " [" + d.code + "]");
  }
  // kBudget: a budget can only tighten the configured limits.
  const RunOptions& cap = opts_.generative_budget;
  ropts->max_facts = std::min(ropts->max_facts, cap.max_facts);
  ropts->max_iterations = std::min(ropts->max_iterations, cap.max_iterations);
  ropts->max_path_length =
      std::min(ropts->max_path_length, cap.max_path_length);
  return Status::OK();
}

Result<protocol::RunReply> DatabaseService::Run(
    const protocol::RunRequest& req, const std::function<bool()>& cancel) {
  // Cache first: a hit answers without compiling, refreshing, or
  // rendering. Valid iff the entry is at the current epoch — Append
  // refreshes entries (eagerly or at the next miss), Compact keeps the
  // epoch (same facts, hits stay correct).
  if (opts_.result_cache_entries > 0) {
    std::lock_guard<std::mutex> lock(results_mu_);
    auto it = results_.find(req.program);
    if (it != results_.end() && it->second.epoch == db_.epoch()) {
      auto r = it->second.rendered.find(req.output_rel);
      if (r != it->second.rendered.end()) {
        ++counters_.hits;
        TouchLocked(it);
        protocol::RunReply reply;
        reply.epoch = it->second.epoch;
        reply.segments = it->second.segments;
        reply.rendered = r->second;
        reply.stats = it->second.stats;
        reply.result_cached = true;
        return reply;
      }
    }
    ++counters_.misses;
  }

  bool cache_hit = false;
  std::shared_ptr<const AdmissionReport> admission;
  SEQDL_ASSIGN_OR_RETURN(
      std::shared_ptr<PreparedProgram> prog,
      Prepare(req.program, req.source_name, &cache_hit, &admission));

  RunOptions ropts = opts_.run_options;
  SEQDL_RETURN_IF_ERROR(ApplyAdmission(admission.get(), &ropts));
  ropts.collect_derived_stats = req.collect_derived_stats;
  if (cancel) {
    if (ropts.cancel) {
      std::function<bool()> base = ropts.cancel;
      ropts.cancel = [base, cancel] { return base() || cancel(); };
    } else {
      ropts.cancel = cancel;
    }
  }

  if (opts_.result_cache_entries == 0) {
    return RunUncached(req, *prog, ropts);
  }

  protocol::RunReply reply;
  std::shared_ptr<const ViewSnapshot> view;
  if (opts_.maintain_views) {
    // The maintained-view path: Refresh returns the stored snapshot when
    // it is already current (an Append's eager refresh usually got here
    // first), cold-materializes on the first request, and otherwise
    // advances the view by delta evaluation of the appended segments.
    EvalStats stats;
    SEQDL_ASSIGN_OR_RETURN(
        view, db_.views().Refresh(req.program, *prog, ropts, &stats));
    reply.epoch = view->epoch();
    reply.segments = view->segments();
    SEQDL_ASSIGN_OR_RETURN(reply.rendered, Render(view->idb(), req.output_rel));
    reply.stats = ToWire(stats);
  } else {
    // Views off: epoch-pinned session run, rendered output cached only.
    Session session = db_.Snapshot();
    EvalStats stats;
    SEQDL_ASSIGN_OR_RETURN(Instance derived,
                           session.Run(*prog, ropts, &stats));
    reply.epoch = session.epoch();
    reply.segments = session.NumSegments();
    SEQDL_ASSIGN_OR_RETURN(reply.rendered, Render(derived, req.output_rel));
    reply.stats = ToWire(stats);
  }

  std::lock_guard<std::mutex> lock(results_mu_);
  UpsertLocked(req.program, view, reply, req.output_rel);
  // A Refresh hit carries no run counters (nothing ran); answer with the
  // stats of the run that actually produced this epoch's view.
  auto it = results_.find(req.program);
  if (it != results_.end() && it->second.epoch == reply.epoch) {
    reply.stats = it->second.stats;
  }
  return reply;
}

Result<protocol::RunReply> DatabaseService::RunUncached(
    const protocol::RunRequest& req, const PreparedProgram& prog,
    const RunOptions& ropts) {
  // Pin the current epoch for exactly this run: appends committed while
  // the run executes do not affect it.
  Session session = db_.Snapshot();
  EvalStats stats;
  SEQDL_ASSIGN_OR_RETURN(Instance derived, session.Run(prog, ropts, &stats));
  protocol::RunReply reply;
  reply.epoch = session.epoch();
  reply.segments = session.NumSegments();
  SEQDL_ASSIGN_OR_RETURN(reply.rendered, Render(derived, req.output_rel));
  reply.stats = ToWire(stats);
  return reply;
}

Result<std::string> DatabaseService::Render(
    const Instance& derived, const std::string& output_rel) const {
  if (output_rel.empty()) return derived.ToString(*u_);
  SEQDL_ASSIGN_OR_RETURN(RelId rel, u_->FindRel(output_rel));
  return derived.Project({rel}).ToString(*u_);
}

void DatabaseService::TouchLocked(
    std::unordered_map<std::string, CachedView>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru);
}

void DatabaseService::UpsertLocked(
    const std::string& key, const std::shared_ptr<const ViewSnapshot>& view,
    const protocol::RunReply& reply, const std::string& output_rel) {
  auto [it, inserted] = results_.try_emplace(key);
  CachedView& e = it->second;
  if (inserted) {
    lru_.push_front(key);
    e.lru = lru_.begin();
  } else {
    TouchLocked(it);
  }
  if (inserted || e.epoch != reply.epoch || e.view != view) {
    // New epoch (or first sight): renderings of the old epoch are stale.
    cache_bytes_used_ -= e.bytes;
    e.rendered.clear();
    e.view = view;
    e.epoch = reply.epoch;
    e.segments = reply.segments;
    e.stats = reply.stats;
    e.bytes = view != nullptr ? view->ApproxBytes() : 0;
    cache_bytes_used_ += e.bytes;
  }
  auto [rit, fresh_render] = e.rendered.emplace(output_rel, reply.rendered);
  if (fresh_render) {
    e.bytes += rit->second.size() + output_rel.size();
    cache_bytes_used_ += rit->second.size() + output_rel.size();
  }
  EvictLocked(key);
}

void DatabaseService::EvictLocked(const std::string& keep) {
  while (!lru_.empty() &&
         (results_.size() > opts_.result_cache_entries ||
          (opts_.cache_bytes > 0 && cache_bytes_used_ > opts_.cache_bytes))) {
    const std::string& victim = lru_.back();
    if (victim == keep) break;  // the hottest entry always survives
    auto it = results_.find(victim);
    cache_bytes_used_ -= it->second.bytes;
    // Drop the manager's snapshot too, or the evicted bytes would live
    // on there (the next request for this program runs cold).
    db_.views().Invalidate(victim);
    results_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

size_t DatabaseService::NumCachedResults() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  size_t n = 0;
  for (const auto& [key, e] : results_) n += e.rendered.size();
  return n;
}

CacheCounters DatabaseService::CacheStats() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  CacheCounters c = counters_;
  c.entries = results_.size();
  c.bytes = cache_bytes_used_;
  return c;
}

Result<protocol::AppendReply> DatabaseService::Append(
    const protocol::AppendRequest& req) {
  Result<Instance> delta = ParseInstance(*u_, req.facts);
  if (!delta.ok()) {
    // Structured "<name>:line:col: ..." instead of a bare parse error —
    // the client (or the stdin serve loop) sees where in *its* file the
    // malformed fact sits.
    return protocol::AnnotateParseError(req.source_name, delta.status());
  }
  size_t appended = 0;
  SEQDL_ASSIGN_OR_RETURN(uint64_t epoch,
                         db_.Append(std::move(*delta), &appended));

  // Eagerly delta-refresh every cached view to the new epoch, so the next
  // query per program pays only rendering.
  if (appended > 0 && opts_.result_cache_entries > 0 && opts_.maintain_views &&
      opts_.refresh_on_append) {
    RefreshCachedViews();
  }

  protocol::AppendReply reply;
  reply.appended = appended;  // exact: counted under the writer lock
  reply.db = Info();
  reply.db.epoch = epoch;
  return reply;
}

Result<protocol::RetractReply> DatabaseService::Retract(
    const protocol::RetractRequest& req) {
  Result<Instance> victims = ParseInstance(*u_, req.facts);
  if (!victims.ok()) {
    return protocol::AnnotateParseError(req.source_name, victims.status());
  }
  size_t retracted = 0;
  SEQDL_ASSIGN_OR_RETURN(uint64_t epoch,
                         db_.Retract(std::move(*victims), &retracted));

  // Same eager refresh as Append: the ViewManager sees the tombstone in
  // the delta window and runs DRed / stratum recompute — a shrink epoch
  // is never "maintained" by the append-only delta path, and the cache
  // epoch gate means any entry we fail to refresh here simply misses on
  // the next Run (kBudget-clamped programs included).
  if (retracted > 0 && opts_.result_cache_entries > 0 &&
      opts_.maintain_views && opts_.refresh_on_append) {
    RefreshCachedViews();
  }

  protocol::RetractReply reply;
  reply.retracted = retracted;  // exact: counted under the writer lock
  reply.db = Info();
  reply.db.epoch = epoch;
  return reply;
}

void DatabaseService::RefreshCachedViews() {
  // A refresh failure (e.g. budget exhausted mid-delta) leaves that entry
  // stale, which the next Run recovers from — never an error for the
  // write that triggered the refresh.
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    keys.reserve(results_.size());
    for (const auto& [key, e] : results_) keys.push_back(key);
  }
  for (const std::string& key : keys) {
    bool cache_hit = false;
    std::shared_ptr<const AdmissionReport> admission;
    Result<std::shared_ptr<PreparedProgram>> prog =
        Prepare(key, /*source_name=*/"", &cache_hit, &admission);
    if (!prog.ok()) continue;
    RunOptions ropts = opts_.run_options;
    if (!ApplyAdmission(admission.get(), &ropts).ok()) continue;
    EvalStats stats;
    Result<std::shared_ptr<const ViewSnapshot>> view =
        db_.views().Refresh(key, **prog, ropts, &stats);
    if (!view.ok()) continue;
    std::lock_guard<std::mutex> lock(results_mu_);
    auto it = results_.find(key);
    if (it == results_.end()) continue;  // evicted while we refreshed
    CachedView& e = it->second;
    if (e.epoch >= (*view)->epoch()) continue;  // a run got there first
    cache_bytes_used_ -= e.bytes;
    e.rendered.clear();  // renderings of the old epoch are stale
    e.view = *view;
    e.epoch = (*view)->epoch();
    e.segments = (*view)->segments();
    e.stats = ToWire(stats);
    e.bytes = (*view)->ApproxBytes();
    cache_bytes_used_ += e.bytes;
    EvictLocked(key);
  }
}

protocol::DbInfo DatabaseService::Info() const {
  protocol::DbInfo info;
  info.epoch = db_.epoch();
  info.segments = db_.NumSegments();
  info.facts = db_.NumFacts();
  storage::StorageInfo durability = db_.storage_info();
  info.on_disk_bytes = durability.on_disk_bytes;
  info.wal_bytes = durability.wal_bytes;
  info.manifest_generation = durability.manifest_generation;
  return info;
}

Result<protocol::CompactReply> DatabaseService::Compact() {
  SEQDL_ASSIGN_OR_RETURN(bool folded, db_.Compact());
  protocol::CompactReply reply;
  reply.folded = folded;
  reply.db = Info();
  return reply;
}

protocol::StatsReply DatabaseService::Stats() const {
  protocol::StatsReply reply;
  reply.rendered = db_.Stats().ToString(*u_);
  CacheCounters cache = CacheStats();
  reply.cache_hits = cache.hits;
  reply.cache_misses = cache.misses;
  reply.cache_evictions = cache.evictions;
  reply.cache_entries = cache.entries;
  reply.cache_bytes = cache.bytes;
  ViewManager::Counters views = db_.views().counters();
  reply.view_hits = views.hits;
  reply.view_cold_runs = views.cold_runs;
  reply.view_delta_refreshes = views.delta_refreshes;
  reply.view_dred_refreshes = views.dred_refreshes;
  reply.view_strata_recomputed = views.strata_recomputed;
  return reply;
}

size_t DatabaseService::NumCachedPrograms() const {
  std::lock_guard<std::mutex> lock(programs_mu_);
  return programs_.size();
}

Result<std::shared_ptr<PreparedProgram>> DatabaseService::Prepare(
    const std::string& program_text, const std::string& source_name,
    bool* cache_hit, std::shared_ptr<const AdmissionReport>* admission,
    std::shared_ptr<const DiagnosticList>* lints) {
  *cache_hit = false;
  std::shared_ptr<PreparedProgram> cached;
  std::shared_ptr<const AdmissionReport> cached_admission;
  std::shared_ptr<const DiagnosticList> cached_lints;
  uint64_t stale_epoch = 0;
  double drift = 0.0;
  {
    std::lock_guard<std::mutex> lock(programs_mu_);
    auto it = programs_.find(program_text);
    if (it != programs_.end()) {
      cached = it->second.prog;
      cached_admission = it->second.admission;
      cached_lints = it->second.lints;
      if (admission != nullptr) *admission = cached_admission;
      if (lints != nullptr) *lints = cached_lints;
      if (db_.epoch() == it->second.epoch) {
        *cache_hit = true;
        return cached;
      }
      drift = StatsDrift(it->second.stats, db_.Stats());
      if (drift < opts_.recompile_drift) {
        *cache_hit = true;
        return cached;
      }
      stale_epoch = it->second.epoch;
    }
  }
  Result<std::shared_ptr<PreparedProgram>> fresh =
      CompileFresh(program_text, source_name, admission, lints);
  if (!fresh.ok()) {
    // A program that compiled before the statistics drifted is still
    // valid — keep serving the stale plan rather than failing the
    // request. (Compile errors on a never-cached text do fail.)
    if (cached != nullptr) {
      if (admission != nullptr) *admission = cached_admission;
      if (lints != nullptr) *lints = cached_lints;
      return cached;
    }
    return fresh.status();
  }
  if (cached != nullptr && opts_.log) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "recompiled %s (stats drift %.2f >= %.2f since epoch %llu)",
                  source_name.empty() ? "<program>" : source_name.c_str(),
                  drift, opts_.recompile_drift,
                  static_cast<unsigned long long>(stale_epoch));
    opts_.log(buf);
  }
  return *fresh;
}

Result<std::shared_ptr<PreparedProgram>> DatabaseService::CompileFresh(
    const std::string& program_text, const std::string& source_name,
    std::shared_ptr<const AdmissionReport>* admission,
    std::shared_ptr<const DiagnosticList>* lints) {
  Result<Program> program = ParseProgram(*u_, program_text);
  if (!program.ok()) {
    return protocol::AnnotateParseError(source_name, program.status());
  }
  // Read the epoch before the stats snapshot: if an append lands between
  // the two reads, the entry is stamped older than its statistics and the
  // next Prepare re-runs the drift check (the safe direction).
  uint64_t epoch = db_.epoch();
  StoreStats stats = db_.Stats();
  // Classify and lint before the program is consumed by the compiler:
  // the admission report drives Run's policy enforcement, the lints ride
  // along in compile replies.
  auto report =
      std::make_shared<AdmissionReport>(AnalyzeAdmission(*u_, *program));
  auto lint_list = std::make_shared<DiagnosticList>();
  LintOptions lopts;
  lopts.stats = &stats;
  LintProgram(*u_, *program, lopts, lint_list.get());
  CompileOptions copts;
  copts.stats = &stats;
  Result<PreparedProgram> prepared =
      Engine::Compile(*u_, std::move(*program), copts);
  if (!prepared.ok()) {
    return protocol::AnnotateParseError(source_name, prepared.status());
  }
  CachedProgram entry;
  entry.prog = std::make_shared<PreparedProgram>(std::move(*prepared));
  entry.epoch = epoch;
  entry.stats = std::move(stats);
  entry.admission = report;
  entry.lints = lint_list;
  if (admission != nullptr) *admission = report;
  if (lints != nullptr) *lints = lint_list;
  std::shared_ptr<PreparedProgram> prog = entry.prog;
  std::lock_guard<std::mutex> lock(programs_mu_);
  programs_[program_text] = std::move(entry);
  return prog;
}

}  // namespace seqdl
