#include "src/server/service.h"

#include <cstdio>
#include <utility>

#include "src/engine/instance.h"
#include "src/syntax/parser.h"

namespace seqdl {

namespace {

protocol::WireEvalStats ToWire(const EvalStats& s) {
  protocol::WireEvalStats w;
  w.derived_facts = s.derived_facts;
  w.rounds = s.rounds;
  w.rule_firings = s.rule_firings;
  w.index_probes = s.index_probes;
  w.prefix_probes = s.prefix_probes;
  w.suffix_probes = s.suffix_probes;
  w.full_scans = s.full_scans;
  w.delta_scans = s.delta_scans;
  w.delta_index_probes = s.delta_index_probes;
  w.compile_seconds = s.compile_seconds;
  w.run_seconds = s.run_seconds;
  return w;
}

}  // namespace

DatabaseService::DatabaseService(Universe& u, Database db, ServiceOptions opts)
    : u_(&u), db_(std::move(db)), opts_(std::move(opts)) {}

Result<protocol::CompileReply> DatabaseService::Compile(
    const std::string& program_text, const std::string& source_name) {
  bool cache_hit = false;
  SEQDL_ASSIGN_OR_RETURN(std::shared_ptr<PreparedProgram> prog,
                         Prepare(program_text, source_name, &cache_hit));
  protocol::CompileReply reply;
  reply.cache_hit = cache_hit;
  reply.rules = prog->program().NumRules();
  reply.strata = prog->program().strata.size();
  reply.compile_seconds = prog->compile_seconds();
  return reply;
}

Result<protocol::RunReply> DatabaseService::Run(
    const protocol::RunRequest& req, const std::function<bool()>& cancel) {
  // Result cache first: a hit answers without compiling, snapshotting,
  // or running. Valid iff the entry's epoch is still current — Append
  // bumps the epoch (miss, lazily overwritten), Compact does not (same
  // facts, hits stay correct).
  std::string result_key;
  if (opts_.result_cache_entries > 0) {
    result_key = req.program;
    result_key.push_back('\0');
    result_key += req.output_rel;
    std::lock_guard<std::mutex> lock(results_mu_);
    auto it = results_.find(result_key);
    if (it != results_.end() && it->second.epoch == db_.epoch()) {
      protocol::RunReply reply;
      reply.epoch = it->second.epoch;
      reply.segments = it->second.segments;
      reply.rendered = it->second.rendered;
      reply.stats = it->second.stats;
      reply.result_cached = true;
      return reply;
    }
  }

  bool cache_hit = false;
  SEQDL_ASSIGN_OR_RETURN(std::shared_ptr<PreparedProgram> prog,
                         Prepare(req.program, req.source_name, &cache_hit));

  RunOptions ropts = opts_.run_options;
  ropts.collect_derived_stats = req.collect_derived_stats;
  if (cancel) {
    if (ropts.cancel) {
      std::function<bool()> base = ropts.cancel;
      ropts.cancel = [base, cancel] { return base() || cancel(); };
    } else {
      ropts.cancel = cancel;
    }
  }

  // Pin the current epoch for exactly this run: appends committed while
  // the run executes do not affect it.
  Session session = db_.Snapshot();
  EvalStats stats;
  SEQDL_ASSIGN_OR_RETURN(Instance derived, session.Run(*prog, ropts, &stats));

  protocol::RunReply reply;
  reply.epoch = session.epoch();
  reply.segments = session.NumSegments();
  if (!req.output_rel.empty()) {
    SEQDL_ASSIGN_OR_RETURN(RelId rel, u_->FindRel(req.output_rel));
    reply.rendered = derived.Project({rel}).ToString(*u_);
  } else {
    reply.rendered = derived.ToString(*u_);
  }
  reply.stats = ToWire(stats);

  if (opts_.result_cache_entries > 0) {
    CachedResult entry;
    entry.epoch = reply.epoch;
    entry.segments = reply.segments;
    entry.rendered = reply.rendered;
    entry.stats = reply.stats;
    std::lock_guard<std::mutex> lock(results_mu_);
    // Crude but bounded eviction: drop everything when full. Stale-epoch
    // entries die here too, so the map never grows past the cap.
    if (results_.size() >= opts_.result_cache_entries) results_.clear();
    results_[result_key] = std::move(entry);
  }
  return reply;
}

size_t DatabaseService::NumCachedResults() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return results_.size();
}

Result<protocol::AppendReply> DatabaseService::Append(
    const protocol::AppendRequest& req) {
  Result<Instance> delta = ParseInstance(*u_, req.facts);
  if (!delta.ok()) {
    // Structured "<name>:line:col: ..." instead of a bare parse error —
    // the client (or the stdin serve loop) sees where in *its* file the
    // malformed fact sits.
    return protocol::AnnotateParseError(req.source_name, delta.status());
  }
  size_t appended = 0;
  SEQDL_ASSIGN_OR_RETURN(uint64_t epoch,
                         db_.Append(std::move(*delta), &appended));
  protocol::AppendReply reply;
  reply.appended = appended;  // exact: counted under the writer lock
  reply.db = Info();
  reply.db.epoch = epoch;
  return reply;
}

protocol::DbInfo DatabaseService::Info() const {
  protocol::DbInfo info;
  info.epoch = db_.epoch();
  info.segments = db_.NumSegments();
  info.facts = db_.NumFacts();
  return info;
}

protocol::CompactReply DatabaseService::Compact() {
  protocol::CompactReply reply;
  reply.folded = db_.Compact();
  reply.db = Info();
  return reply;
}

protocol::StatsReply DatabaseService::Stats() const {
  protocol::StatsReply reply;
  reply.rendered = db_.Stats().ToString(*u_);
  return reply;
}

size_t DatabaseService::NumCachedPrograms() const {
  std::lock_guard<std::mutex> lock(programs_mu_);
  return programs_.size();
}

Result<std::shared_ptr<PreparedProgram>> DatabaseService::Prepare(
    const std::string& program_text, const std::string& source_name,
    bool* cache_hit) {
  *cache_hit = false;
  std::shared_ptr<PreparedProgram> cached;
  uint64_t stale_epoch = 0;
  double drift = 0.0;
  {
    std::lock_guard<std::mutex> lock(programs_mu_);
    auto it = programs_.find(program_text);
    if (it != programs_.end()) {
      cached = it->second.prog;
      if (db_.epoch() == it->second.epoch) {
        *cache_hit = true;
        return cached;
      }
      drift = StatsDrift(it->second.stats, db_.Stats());
      if (drift < opts_.recompile_drift) {
        *cache_hit = true;
        return cached;
      }
      stale_epoch = it->second.epoch;
    }
  }
  Result<std::shared_ptr<PreparedProgram>> fresh =
      CompileFresh(program_text, source_name);
  if (!fresh.ok()) {
    // A program that compiled before the statistics drifted is still
    // valid — keep serving the stale plan rather than failing the
    // request. (Compile errors on a never-cached text do fail.)
    if (cached != nullptr) return cached;
    return fresh.status();
  }
  if (cached != nullptr && opts_.log) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "recompiled %s (stats drift %.2f >= %.2f since epoch %llu)",
                  source_name.empty() ? "<program>" : source_name.c_str(),
                  drift, opts_.recompile_drift,
                  static_cast<unsigned long long>(stale_epoch));
    opts_.log(buf);
  }
  return *fresh;
}

Result<std::shared_ptr<PreparedProgram>> DatabaseService::CompileFresh(
    const std::string& program_text, const std::string& source_name) {
  Result<Program> program = ParseProgram(*u_, program_text);
  if (!program.ok()) {
    return protocol::AnnotateParseError(source_name, program.status());
  }
  // Read the epoch before the stats snapshot: if an append lands between
  // the two reads, the entry is stamped older than its statistics and the
  // next Prepare re-runs the drift check (the safe direction).
  uint64_t epoch = db_.epoch();
  StoreStats stats = db_.Stats();
  CompileOptions copts;
  copts.stats = &stats;
  Result<PreparedProgram> prepared =
      Engine::Compile(*u_, std::move(*program), copts);
  if (!prepared.ok()) {
    return protocol::AnnotateParseError(source_name, prepared.status());
  }
  CachedProgram entry;
  entry.prog = std::make_shared<PreparedProgram>(std::move(*prepared));
  entry.epoch = epoch;
  entry.stats = std::move(stats);
  std::shared_ptr<PreparedProgram> prog = entry.prog;
  std::lock_guard<std::mutex> lock(programs_mu_);
  programs_[program_text] = std::move(entry);
  return prog;
}

}  // namespace seqdl
