// DatabaseService: the engine-facing half of a seqdl server, shared by
// the TCP front end (server.h), the CLI's stdin serve loop, and tests
// that want to exercise request handling without sockets.
//
// A service owns a versioned Database (database.h) plus a compiled-
// program cache keyed by *program text* — clients ship small program
// sources to the large, long-lived, indexed EDB, and two clients sending
// byte-identical programs share one plan. Cached plans are ranked by the
// database's measured statistics at compile time and recompiled when the
// statistics drift past ServiceOptions::recompile_drift (relative
// tuple-count change, StatsDrift), exactly the PR 4 serve-loop policy —
// generalized here out of the CLI so every front end gets it.
//
// Thread-safety: all methods may be called concurrently from any number
// of threads. Run pins an epoch snapshot per call (Database::Snapshot);
// Append/Compact serialize on the database's writer mutex; the program
// cache takes its own mutex for lookups/inserts only (parse + compile run
// outside it, so a slow compile never stalls cached runs).
#ifndef SEQDL_SERVER_SERVICE_H_
#define SEQDL_SERVER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/stats.h"
#include "src/server/protocol.h"
#include "src/term/universe.h"

namespace seqdl {

struct ServiceOptions {
  /// Recompile a cached program once the database's measured statistics
  /// drift past this relative change since the plan was ranked
  /// (StatsDrift); the epoch must also have moved. <= 0 recompiles on
  /// every epoch bump; >= 1 effectively never.
  double recompile_drift = 0.25;
  /// Budgets and knobs applied to every Run (the per-request cancel
  /// callback is layered on top of, and ORed with, any cancel set here).
  RunOptions run_options;
  /// Diagnostic sink for recompilation notices ("recompiled <name>
  /// (stats drift 0.31 >= 0.25 since epoch 3)"); null = silent.
  std::function<void(const std::string&)> log;
  /// Capacity of the epoch-keyed result cache (0 disables it). At a
  /// pinned epoch the EDB is immutable and evaluation is deterministic,
  /// so a run's rendered output is a pure function of (program text,
  /// output relation, epoch): repeated point queries are answered
  /// straight from the cache until an Append bumps the epoch —
  /// invalidation is the epoch counter itself, and compaction (same
  /// facts, same epoch) correctly leaves hits valid. This is what lets a
  /// loopback server answer >= 100k small queries/s: a hit costs a hash
  /// lookup instead of a fixpoint.
  size_t result_cache_entries = 4096;
};

/// The request handlers of a seqdl server, over an owned Database.
class DatabaseService {
 public:
  /// `u` must be the Universe `db` was opened with and must outlive the
  /// service.
  DatabaseService(Universe& u, Database db, ServiceOptions opts = {});

  DatabaseService(const DatabaseService&) = delete;
  DatabaseService& operator=(const DatabaseService&) = delete;

  /// Parses + plans `program_text` and caches the plan keyed by the text;
  /// a later identical text is a cache hit (no parse, no plan). Parse
  /// errors come back annotated "<source_name>:line:col: ...".
  Result<protocol::CompileReply> Compile(const std::string& program_text,
                                         const std::string& source_name);

  /// Evaluates the request's program on an epoch-pinned snapshot and
  /// renders the derived facts (projected onto output_rel when set).
  /// Compiles through the same cache as Compile. `cancel` (may be null)
  /// is polled during evaluation; returning true fails the run with
  /// kCancelled — the server's graceful-drain hook.
  Result<protocol::RunReply> Run(const protocol::RunRequest& req,
                                 const std::function<bool()>& cancel = {});

  /// Parses the request's facts and publishes them as a new segment.
  Result<protocol::AppendReply> Append(const protocol::AppendRequest& req);

  /// Current epoch / segment / fact counts.
  protocol::DbInfo Info() const;

  /// Folds the segment stack (Database::Compact).
  protocol::CompactReply Compact();

  /// Rendered measured statistics (Database::Stats).
  protocol::StatsReply Stats() const;

  /// Number of distinct program texts currently cached.
  size_t NumCachedPrograms() const;
  /// Entries currently in the result cache (all epochs, pre-eviction).
  size_t NumCachedResults() const;

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  Universe& universe() { return *u_; }

 private:
  struct CachedProgram {
    std::shared_ptr<PreparedProgram> prog;
    uint64_t epoch = 0;       ///< db epoch at compile time
    StoreStats stats;         ///< Stats() snapshot the plan was ranked by
  };

  /// Cache lookup honoring the drift policy; compiles on miss/drift.
  /// Never returns null on OK.
  Result<std::shared_ptr<PreparedProgram>> Prepare(
      const std::string& program_text, const std::string& source_name,
      bool* cache_hit);

  /// Parse + compile against a fresh statistics snapshot; inserts the
  /// cache entry (last writer wins when two threads race on one text).
  Result<std::shared_ptr<PreparedProgram>> CompileFresh(
      const std::string& program_text, const std::string& source_name);

  struct CachedResult {
    uint64_t epoch = 0;
    uint64_t segments = 0;
    std::string rendered;
    protocol::WireEvalStats stats;
  };

  Universe* u_;
  Database db_;
  ServiceOptions opts_;

  mutable std::mutex programs_mu_;
  std::map<std::string, CachedProgram> programs_;

  /// Rendered results keyed by "program\0output_rel"; an entry is valid
  /// only at its recorded epoch and is lazily overwritten after appends.
  mutable std::mutex results_mu_;
  std::unordered_map<std::string, CachedResult> results_;
};

}  // namespace seqdl

#endif  // SEQDL_SERVER_SERVICE_H_
