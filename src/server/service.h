// DatabaseService: the engine-facing half of a seqdl server, shared by
// the TCP front end (server.h), the CLI's stdin serve loop, and tests
// that want to exercise request handling without sockets.
//
// A service owns a versioned Database (database.h) plus a compiled-
// program cache keyed by *program text* — clients ship small program
// sources to the large, long-lived, indexed EDB, and two clients sending
// byte-identical programs share one plan. Cached plans are ranked by the
// database's measured statistics at compile time and recompiled when the
// statistics drift past ServiceOptions::recompile_drift (relative
// tuple-count change, StatsDrift), exactly the PR 4 serve-loop policy —
// generalized here out of the CLI so every front end gets it.
//
// Result serving is a *maintained-view* cache (view/view.h): per program
// text the service keeps the materialized derived IDB (a ViewSnapshot
// held current by the database's ViewManager) plus the renderings already
// produced from it, one per requested output relation. An Append no
// longer invalidates this state — it *refreshes* it, semi-naive
// delta-evaluating just the appended facts against each stored view
// (PreparedProgram::RunDelta) so re-serving after ingest costs O(delta)
// instead of a full fixpoint. A Retract refreshes the same way, except
// the ViewManager routes the tombstone epoch through counting DRed
// (delete/re-derive) or a stratum recompute — the cache never assumes
// epochs only grow. Entries are byte-accounted (rendered output
// + materialized IDB, ServiceOptions::cache_bytes) and evicted least-
// recently-used past the budget; hit/miss/evict counters travel in
// Stats() replies.
//
// Thread-safety: all methods may be called concurrently from any number
// of threads. Run pins an epoch snapshot per call (Database::Snapshot or
// an immutable ViewSnapshot); Append/Compact serialize on the database's
// writer mutex; the program and result caches take their own mutexes for
// lookups/inserts only (parse, compile, and evaluation run outside them,
// so a slow compile or refresh never stalls cached runs).
#ifndef SEQDL_SERVER_SERVICE_H_
#define SEQDL_SERVER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/analysis/admission.h"
#include "src/base/status.h"
#include "src/engine/database.h"
#include "src/engine/engine.h"
#include "src/engine/stats.h"
#include "src/server/protocol.h"
#include "src/term/universe.h"
#include "src/view/view.h"

namespace seqdl {

/// The default caps clamped onto runs of *generative* programs under
/// AdmissionPolicy::kBudget: small enough that a non-terminating
/// fixpoint fails (kResourceExhausted) in milliseconds instead of
/// starving the server, large enough for legitimate bounded transforms.
inline RunOptions DefaultGenerativeBudget() {
  RunOptions r;
  r.max_facts = 100'000;
  r.max_iterations = 10'000;
  r.max_path_length = 4096;
  return r;
}

struct ServiceOptions {
  /// Recompile a cached program once the database's measured statistics
  /// drift past this relative change since the plan was ranked
  /// (StatsDrift); the epoch must also have moved. <= 0 recompiles on
  /// every epoch bump; >= 1 effectively never.
  double recompile_drift = 0.25;
  /// Budgets and knobs applied to every Run (the per-request cancel
  /// callback is layered on top of, and ORed with, any cancel set here).
  RunOptions run_options;
  /// Diagnostic sink for recompilation notices ("recompiled <name>
  /// (stats drift 0.31 >= 0.25 since epoch 3)"); null = silent.
  std::function<void(const std::string&)> log;
  /// Capacity of the result/view cache in *programs* (0 disables caching
  /// and view maintenance entirely: every Run evaluates from scratch on
  /// an epoch-pinned session — the differential harness's mode). At a
  /// pinned epoch the EDB is immutable and evaluation is deterministic,
  /// so a run's rendered output is a pure function of (program text,
  /// output relation, epoch): repeated point queries are answered
  /// straight from the cache — a hit costs a hash lookup instead of a
  /// fixpoint (>= 100k small queries/s on loopback) — and an Append
  /// delta-refreshes the entries instead of dropping them. Compaction
  /// (same facts, same epoch) leaves hits valid.
  size_t result_cache_entries = 4096;
  /// Byte budget for the cache: rendered output bytes plus materialized-
  /// IDB bytes (ViewSnapshot::ApproxBytes), summed over entries. When the
  /// total runs past it, least-recently-used entries are evicted (their
  /// views too) until it fits — the hottest entry always survives. 0 =
  /// unbounded.
  size_t cache_bytes = 64u << 20;
  /// Keep materialized views and refresh them across appends (the
  /// default). False reverts to PR 5 behavior: epoch-keyed rendered-
  /// result caching only, every post-append run a full fixpoint.
  bool maintain_views = true;
  /// Delta-refresh every cached view eagerly inside Append (the `seqdl
  /// serve` append path), so the next query pays only rendering. False
  /// defers the refresh to the next Run of each program.
  bool refresh_on_append = true;
  /// How programs flagged *generative* by admission analysis
  /// (analysis/admission.h: SD301-SD303, potentially non-terminating
  /// fixpoints) are treated. kOff runs everything under `run_options`
  /// unchanged (trusted clients — the default, and the differential
  /// harness's mode); kBudget clamps their runs to `generative_budget`;
  /// kStrict refuses to Run them (kFailedPrecondition naming the SD3xx
  /// finding). Compile always succeeds and reports the verdict.
  AdmissionPolicy admission = AdmissionPolicy::kOff;
  /// Caps enforced on generative programs under kBudget, applied as the
  /// minimum with `run_options` (a budget can only tighten).
  RunOptions generative_budget = DefaultGenerativeBudget();
};

/// Occupancy and lifetime traffic counters of the result/view cache,
/// rendered into Stats() replies.
struct CacheCounters {
  uint64_t hits = 0;        ///< runs answered from a cached rendering
  uint64_t misses = 0;      ///< runs that had to evaluate or render
  uint64_t evictions = 0;   ///< entries evicted past the byte/entry caps
  uint64_t entries = 0;     ///< programs currently cached
  uint64_t bytes = 0;       ///< accounted bytes currently cached
};

/// The request handlers of a seqdl server, over an owned Database.
class DatabaseService {
 public:
  /// `u` must be the Universe `db` was opened with and must outlive the
  /// service.
  DatabaseService(Universe& u, Database db, ServiceOptions opts = {});

  DatabaseService(const DatabaseService&) = delete;
  DatabaseService& operator=(const DatabaseService&) = delete;

  /// Parses + plans `program_text` and caches the plan keyed by the text;
  /// a later identical text is a cache hit (no parse, no plan). Parse
  /// errors come back annotated "<source_name>:line:col: ...".
  Result<protocol::CompileReply> Compile(const std::string& program_text,
                                         const std::string& source_name);

  /// Evaluates the request's program on an epoch-pinned snapshot and
  /// renders the derived facts (projected onto output_rel when set).
  /// Compiles through the same cache as Compile. `cancel` (may be null)
  /// is polled during evaluation; returning true fails the run with
  /// kCancelled — the server's graceful-drain hook.
  Result<protocol::RunReply> Run(const protocol::RunRequest& req,
                                 const std::function<bool()>& cancel = {});

  /// Parses the request's facts and publishes them as a new segment,
  /// then (with maintain_views + refresh_on_append) delta-refreshes every
  /// cached view to the new epoch so re-serving stays O(delta).
  Result<protocol::AppendReply> Append(const protocol::AppendRequest& req);

  /// Parses the request's facts and retracts the visible matches by
  /// publishing a tombstone segment (Database::Retract). Cached views go
  /// through the same eager refresh as Append — the ViewManager sees the
  /// tombstone epoch and takes the DRed delete/re-derive path (or a
  /// wholesale stratum recompute), never the append-only delta path, so
  /// a shrink epoch can never be served from a monotone-refresh result.
  Result<protocol::RetractReply> Retract(const protocol::RetractRequest& req);

  /// Current epoch / segment / fact counts.
  protocol::DbInfo Info() const;

  /// Folds the segment stack (Database::Compact). Errors only in
  /// durable mode, when sealing the merged segment to disk fails — the
  /// Status carries an SD4xx diagnostic code.
  Result<protocol::CompactReply> Compact();

  /// Rendered measured statistics (Database::Stats) plus cache and view
  /// counters.
  protocol::StatsReply Stats() const;

  /// Result/view cache occupancy and traffic.
  CacheCounters CacheStats() const;

  /// Number of distinct program texts currently cached.
  size_t NumCachedPrograms() const;
  /// Renderings currently in the result cache, summed over programs (one
  /// per (program, output relation) pair served at the current entry's
  /// epoch).
  size_t NumCachedResults() const;

  Database& db() { return db_; }
  const Database& db() const { return db_; }
  Universe& universe() { return *u_; }

 private:
  struct CachedProgram {
    std::shared_ptr<PreparedProgram> prog;
    uint64_t epoch = 0;       ///< db epoch at compile time
    StoreStats stats;         ///< Stats() snapshot the plan was ranked by
    /// Admission classification of the program (analysis/admission.h),
    /// computed once per compile; Run consults it to enforce the policy.
    std::shared_ptr<const AdmissionReport> admission;
    /// Lint findings (SD1xx warnings), shipped in compile replies.
    std::shared_ptr<const DiagnosticList> lints;
  };

  /// Cache lookup honoring the drift policy; compiles on miss/drift.
  /// Never returns null on OK. `admission`/`lints` (optional) receive
  /// the entry's analysis results.
  Result<std::shared_ptr<PreparedProgram>> Prepare(
      const std::string& program_text, const std::string& source_name,
      bool* cache_hit,
      std::shared_ptr<const AdmissionReport>* admission = nullptr,
      std::shared_ptr<const DiagnosticList>* lints = nullptr);

  /// Parse + compile against a fresh statistics snapshot; inserts the
  /// cache entry (last writer wins when two threads race on one text).
  Result<std::shared_ptr<PreparedProgram>> CompileFresh(
      const std::string& program_text, const std::string& source_name,
      std::shared_ptr<const AdmissionReport>* admission = nullptr,
      std::shared_ptr<const DiagnosticList>* lints = nullptr);

  /// Enforces the service's admission policy on one prepared run:
  /// returns kFailedPrecondition for a generative program under kStrict,
  /// clamps `ropts` to `generative_budget` under kBudget, and passes
  /// tame programs through untouched.
  Status ApplyAdmission(const AdmissionReport* admission,
                        RunOptions* ropts) const;

  /// One program's cached serving state: the maintained view (null with
  /// maintain_views off) and every rendering produced from it at `epoch`,
  /// keyed by output relation ("" = all derived facts). `bytes` accounts
  /// the view's materialized IDB plus the rendering strings.
  struct CachedView {
    uint64_t epoch = 0;
    uint64_t segments = 0;
    std::shared_ptr<const ViewSnapshot> view;
    std::map<std::string, std::string> rendered;
    /// Stats of the run/refresh that brought the entry to `epoch`;
    /// replayed into replies answered from the cache.
    protocol::WireEvalStats stats;
    size_t bytes = 0;
    std::list<std::string>::iterator lru;  ///< position in lru_
  };

  /// The legacy no-cache path: epoch-pinned session run, nothing stored.
  Result<protocol::RunReply> RunUncached(
      const protocol::RunRequest& req, const PreparedProgram& prog,
      const RunOptions& ropts);

  /// Renders `derived` projected onto `output_rel` (all facts when
  /// empty).
  Result<std::string> Render(const Instance& derived,
                             const std::string& output_rel) const;

  /// Eagerly advances every cached view to the current epoch after a
  /// write (Append or Retract), honoring the admission policy per
  /// program. Refresh itself picks delta vs DRed vs recompute from the
  /// segment kinds, so the same helper is correct for growth and shrink
  /// epochs. Failures leave the entry stale — the next Run recovers.
  void RefreshCachedViews();

  /// Moves `it`'s entry to the LRU front. Caller holds results_mu_.
  void TouchLocked(std::unordered_map<std::string, CachedView>::iterator it);
  /// Installs/refreshes the entry for `key` from an evaluated reply and
  /// evicts past the caps. Caller holds results_mu_.
  void UpsertLocked(const std::string& key,
                    const std::shared_ptr<const ViewSnapshot>& view,
                    const protocol::RunReply& reply,
                    const std::string& output_rel);
  /// Evicts LRU entries until entry and byte caps hold, never touching
  /// `keep`. Caller holds results_mu_.
  void EvictLocked(const std::string& keep);

  Universe* u_;
  Database db_;
  ServiceOptions opts_;

  mutable std::mutex programs_mu_;
  std::map<std::string, CachedProgram> programs_;

  /// The maintained-view/result cache, keyed by program text, with an
  /// LRU list for byte-budget eviction (front = most recently served).
  mutable std::mutex results_mu_;
  std::unordered_map<std::string, CachedView> results_;
  std::list<std::string> lru_;
  size_t cache_bytes_used_ = 0;
  CacheCounters counters_;
};

}  // namespace seqdl

#endif  // SEQDL_SERVER_SERVICE_H_
