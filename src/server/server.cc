#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

namespace seqdl {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Waits until `fd` is readable, `wake_fd` fires, or `stop` turns true.
/// Returns false when the caller should give up (shutdown), true when
/// `fd` has data (or the poll should be retried after a timeout slice —
/// the caller re-checks stop either way).
bool WaitReadable(int fd, int wake_fd, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) {
    struct pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    int n = ::poll(fds, 2, /*timeout_ms=*/250);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[1].revents != 0) return false;  // shutdown wake
    if (fds[0].revents != 0) return true;   // data (or hangup: read sees it)
  }
  return false;
}

}  // namespace

Server::Server(RequestHandler& handler, const ServerOptions& opts)
    : handler_(handler), opts_(opts), host_(opts.host) {}

Result<std::unique_ptr<Server>> Server::Start(DatabaseService& service,
                                              const ServerOptions& opts) {
  auto adapter = std::make_unique<ServiceRequestHandler>(service);
  SEQDL_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                         Start(*adapter, opts));
  // The adapter outlives the worker threads: they are joined by
  // Shutdown(), which runs before the server (and this member) dies.
  server->owned_handler_ = std::move(adapter);
  return server;
}

Result<std::unique_ptr<Server>> Server::Start(RequestHandler& handler,
                                              const ServerOptions& opts) {
  // No make_unique: the constructor is private to force Start().
  std::unique_ptr<Server> server(new Server(handler, opts));
  SEQDL_RETURN_IF_ERROR(server->Listen());
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  server->wake_rd_ = pipe_fds[0];
  server->wake_wr_ = pipe_fds[1];
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  server->workers_.reserve(opts.threads == 0 ? 1 : opts.threads);
  for (size_t i = 0; i < (opts.threads == 0 ? 1 : opts.threads); ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

Status Server::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  if (Status st = protocol::FillSockAddr(host_, opts_.port, &addr);
      !st.ok()) {
    CloseFd(listen_fd_);
    return st;
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status st = Status::Internal("bind " + host_ + ":" +
                                 std::to_string(opts_.port) + " failed: " +
                                 std::strerror(errno));
    CloseFd(listen_fd_);
    return st;
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    Status st = Status::Internal(std::string("listen failed: ") +
                                 std::strerror(errno));
    CloseFd(listen_fd_);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  while (WaitReadable(listen_fd_, wake_rd_, stop_)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      // Transient per-connection failures (client RST before accept, fd
      // exhaustion, buffer pressure) must not kill the accept loop — a
      // server that silently stops accepting looks healthy from inside.
      if (errno == ECONNABORTED || errno == EPROTO || errno == ENOBUFS ||
          errno == ENOMEM || errno == EMFILE || errno == ENFILE) {
        if (errno == EMFILE || errno == ENFILE) {
          // Out of fds: back off briefly so the busy workers can close
          // some before the next accept attempt.
          struct timespec nap = {0, 50 * 1000 * 1000};
          ::nanosleep(&nap, nullptr);
        }
        continue;
      }
      break;  // listen socket gone (shutdown) or unrecoverable
    }
    protocol::SetNoDelay(conn);
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stop_.load(std::memory_order_relaxed)) {
        ::close(conn);
        break;
      }
      pending_.push_back(conn);
    }
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int conn = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stop_ and nothing queued
      if (stop_.load(std::memory_order_relaxed)) return;  // drain: drop queued
      conn = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(conn);
  }
}

void Server::ServeConnection(int fd) {
  // A receive timeout instead of a per-frame poll(2): the hot path is
  // one buffered recv per small request, and the timeout bounds how
  // long a drain waits on an idle or stalled connection — even one that
  // parked mid-frame.
  struct timeval timeout = {0, 200 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  protocol::FrameReader reader(fd, opts_.max_frame_bytes);
  while (!stop_.load(std::memory_order_relaxed)) {
    bool timed_out = false;
    Result<std::string> payload = reader.Next(&timed_out);
    if (timed_out) continue;
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kResourceExhausted) {
        // Oversized frame: tell the client why before hanging up. The
        // declared bytes were never read, so the stream is unusable —
        // close rather than resynchronize.
        (void)protocol::WriteFrame(
            fd, protocol::EncodeErrorReply(protocol::MsgType::kReply,
                                           payload.status()));
      }
      // Clean EOF (kNotFound), truncated frame, or socket error: close.
      break;
    }
    bool shutdown = false;
    std::string reply = handler_.Handle(
        *payload, [this] { return stop_.load(std::memory_order_relaxed); },
        &shutdown);
    if (reply.size() > 4 + opts_.max_frame_bytes) {
      // The client's frame limit mirrors ours; shipping an over-limit
      // reply would poison its stream with a misleading "oversized
      // frame". Send a clean error instead (the connection survives).
      protocol::MsgType orig =
          payload->empty() ? protocol::MsgType::kReply
                           : static_cast<protocol::MsgType>(
                                 static_cast<uint8_t>((*payload)[0]));
      reply = protocol::EncodeErrorReply(
          orig, Status::ResourceExhausted(
                    "reply too large: " + std::to_string(reply.size() - 4) +
                    " bytes exceed the " +
                    std::to_string(opts_.max_frame_bytes) +
                    "-byte frame limit"));
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    // A client that disconnected mid-run surfaces here as a failed
    // write; the run's effects (appends, cache fills) stand.
    Status wrote = protocol::WriteFrame(fd, reply);
    if (shutdown) {
      SignalShutdown();
      break;
    }
    if (!wrote.ok()) break;
  }
  ::close(fd);
}

std::string ServiceRequestHandler::Handle(const std::string& payload,
                                          const std::function<bool()>& cancel,
                                          bool* shutdown) {
  using protocol::MsgType;
  *shutdown = false;
  // Best-effort original type for error replies to undecodable frames.
  MsgType orig = payload.empty() ? MsgType::kReply
                                 : static_cast<MsgType>(
                                       static_cast<uint8_t>(payload[0]));
  Result<protocol::Request> req = protocol::DecodeRequest(payload);
  if (!req.ok()) return protocol::EncodeErrorReply(orig, req.status());

  switch (req->type) {
    case MsgType::kCompile: {
      Result<protocol::CompileReply> r =
          service_.Compile(req->compile.program, req->compile.source_name);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeCompileReply(*r);
    }
    case MsgType::kRun: {
      // The cancel hook ties every in-flight run to the server's stop
      // flag: Shutdown() makes the engine bail at the next fixpoint
      // round with kCancelled, which goes out as this run's error reply.
      Result<protocol::RunReply> r = service_.Run(req->run, cancel);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeRunReply(*r);
    }
    case MsgType::kAppend: {
      Result<protocol::AppendReply> r = service_.Append(req->append);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeAppendReply(*r);
    }
    case MsgType::kRetract: {
      Result<protocol::RetractReply> r = service_.Retract(req->retract);
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeRetractReply(*r);
    }
    case MsgType::kEpoch:
      return protocol::EncodeEpochReply(service_.Info());
    case MsgType::kCompact: {
      Result<protocol::CompactReply> r = service_.Compact();
      if (!r.ok()) return protocol::EncodeErrorReply(req->type, r.status());
      return protocol::EncodeCompactReply(*r);
    }
    case MsgType::kStats:
      return protocol::EncodeStatsReply(service_.Stats());
    case MsgType::kHello:
      // The handshake always succeeds at the frame level: the *client*
      // decides whether the versions are compatible (it may be newer or
      // older), so the reply just reports ours.
      return protocol::EncodeHelloReply({protocol::kWireVersion});
    case MsgType::kShutdown:
      *shutdown = true;
      return protocol::EncodeShutdownReply();
    default:
      return protocol::EncodeErrorReply(
          req->type, Status::Unimplemented("request type not handled"));
  }
}

void Server::SignalShutdown() {
  bool was_stopped = stop_.exchange(true, std::memory_order_relaxed);
  if (!was_stopped && wake_wr_ >= 0) {
    // One byte per shutdown; nobody drains the pipe, so every poll on
    // wake_rd_ fires from here on — exactly the intent.
    char b = 'x';
    (void)!::write(wake_wr_, &b, 1);
  }
  // Empty critical sections close the check-then-block window: a waiter
  // has either observed stop_ in its predicate or is already blocked
  // when the notify lands.
  { std::lock_guard<std::mutex> lock(queue_mu_); }
  queue_cv_.notify_all();
  { std::lock_guard<std::mutex> lock(wait_mu_); }
  stopped_cv_.notify_all();
}

void Server::Shutdown() {
  SignalShutdown();
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (joined_) return;
  joined_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Connections accepted but never picked up drain without a reply.
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  CloseFd(listen_fd_);
  CloseFd(wake_rd_);
  CloseFd(wake_wr_);
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mu_);
    stopped_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed);
    });
  }
  Shutdown();
}

}  // namespace seqdl
