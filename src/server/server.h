// The seqdl TCP front end: a poll-based accept loop feeding a pool of N
// worker threads, each serving one client connection at a time over the
// framed wire protocol (protocol.h) against a shared DatabaseService
// (service.h).
//
// Life of a request: the acceptor thread polls the listening socket,
// accepts a connection (TCP_NODELAY), and queues it; a worker picks the
// connection up and loops read-frame -> decode -> dispatch -> write-reply
// until the client disconnects. Runs execute on epoch-pinned
// Database::Snapshot() sessions, so any number of runs race safely with
// each other and with appends/compactions from other connections
// (single-writer/multi-reader, exactly the database's MVCC contract).
// Compiled programs are shared across all connections through the
// service's text-keyed cache with stats-drift recompilation.
//
// Shutdown is graceful: Shutdown() (or a client's `shutdown` request)
// stops the acceptor, cancels in-flight runs through RunOptions::cancel
// (clients see kCancelled error replies), lets each worker finish — never
// abandon mid-write — its current reply, closes every connection, and
// joins all threads. Queued-but-unserved connections are closed without a
// reply. A frame whose declared length exceeds
// ServerOptions::max_frame_bytes gets a kResourceExhausted error reply
// and the connection is closed (the bytes are never read).
//
//   SEQDL_ASSIGN_OR_RETURN(Database db, Database::Open(u, std::move(edb)));
//   DatabaseService service(u, std::move(db));
//   SEQDL_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
//                          Server::Start(service, {.port = 0}));
//   std::fprintf(stderr, "listening on %u\n", server->port());
//   server->Wait();  // returns once a shutdown request drained the server
#ifndef SEQDL_SERVER_SERVER_H_
#define SEQDL_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/server/protocol.h"
#include "src/server/service.h"

namespace seqdl {

/// What a Server serves: one request payload in, one encoded reply frame
/// out. The default implementation fronts a DatabaseService
/// (ServiceRequestHandler below); the cluster coordinator provides its
/// own (cluster/frontend.h) — same accept loop, same drain semantics,
/// different brain.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// Decode + dispatch one request payload and return the complete
  /// encoded reply frame. `cancel` turns true when the server starts
  /// draining (wire it into long-running evaluation); set *shutdown to
  /// make the server drain after this reply is written.
  virtual std::string Handle(const std::string& payload,
                             const std::function<bool()>& cancel,
                             bool* shutdown) = 0;
};

/// The standard handler: dispatches the wire protocol onto a
/// DatabaseService.
class ServiceRequestHandler : public RequestHandler {
 public:
  explicit ServiceRequestHandler(DatabaseService& service)
      : service_(service) {}

  std::string Handle(const std::string& payload,
                     const std::function<bool()>& cancel,
                     bool* shutdown) override;

 private:
  DatabaseService& service_;
};

struct ServerOptions {
  /// Address to bind; the default serves loopback only.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Worker threads; each serves one connection at a time, so this is
  /// also the number of concurrently served clients.
  size_t threads = 4;
  /// Frames declared larger than this are rejected with an error reply.
  size_t max_frame_bytes = protocol::kDefaultMaxFrameBytes;
  /// listen(2) backlog.
  int backlog = 128;
};

/// A running seqdl TCP server. Create with Start; non-movable (live
/// threads point at it) — hold by unique_ptr.
class Server {
 public:
  /// Binds, listens, and spawns the acceptor + worker threads. The
  /// service must outlive the returned server.
  static Result<std::unique_ptr<Server>> Start(DatabaseService& service,
                                               const ServerOptions& opts = {});

  /// Same, serving an arbitrary handler (which must outlive the server).
  static Result<std::unique_ptr<Server>> Start(RequestHandler& handler,
                                               const ServerOptions& opts = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Implies Shutdown().
  ~Server();

  /// The bound port (the chosen one when options said 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  /// Graceful drain: stop accepting, cancel in-flight runs, finish
  /// current replies, close connections, join threads. Idempotent and
  /// callable from any thread (including concurrently with Wait()).
  void Shutdown();

  /// Blocks until the server has shut down — via Shutdown() from another
  /// thread or a client's `shutdown` request — then completes the drain
  /// and returns.
  void Wait();

  /// True once shutdown has been requested (drain may still be running).
  bool ShuttingDown() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Total connections accepted / requests answered (monotonic).
  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  Server(RequestHandler& handler, const ServerOptions& opts);

  Status Listen();
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection until disconnect/shutdown; owns and closes fd.
  void ServeConnection(int fd);
  /// Sets the stop flag and wakes the acceptor and every worker.
  void SignalShutdown();

  RequestHandler& handler_;
  /// Owns the adapter when started via the DatabaseService overload.
  std::unique_ptr<ServiceRequestHandler> owned_handler_;
  ServerOptions opts_;
  std::string host_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;  ///< self-pipe: poll-wake on shutdown

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker

  std::mutex lifecycle_mu_;  ///< serializes the join/close of Shutdown
  bool joined_ = false;
  std::mutex wait_mu_;  ///< Wait() blocks on this, never on lifecycle_mu_,
                        ///< so a worker's own SignalShutdown cannot
                        ///< deadlock against a concurrent join
  std::condition_variable stopped_cv_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace seqdl

#endif  // SEQDL_SERVER_SERVER_H_
