#include "src/server/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace seqdl {
namespace protocol {

namespace {

// --- Primitive encoding (little-endian, fixed width) -------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over a frame payload.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return Truncated("u8");
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return Truncated("u32");
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return Truncated("u64");
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadF64(double* v) {
    uint64_t bits = 0;
    SEQDL_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    uint32_t len = 0;
    SEQDL_RETURN_IF_ERROR(ReadU32(&len));
    if (pos_ + len > data_.size()) return Truncated("string body");
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ReadBool(bool* v) {
    uint8_t b = 0;
    SEQDL_RETURN_IF_ERROR(ReadU8(&b));
    *v = b != 0;
    return Status::OK();
  }

  /// A payload with unread trailing bytes is malformed (forward
  /// compatibility is handled by the type tag, not by padding).
  Status ExpectEnd() const {
    if (pos_ != data_.size()) {
      return Status::InvalidArgument("malformed frame: " +
                                     std::to_string(data_.size() - pos_) +
                                     " trailing bytes");
    }
    return Status::OK();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        std::string("truncated frame: ran out of bytes reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Prepends the u32 length to a finished payload.
std::string Frame(std::string payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return frame;
}

std::string ReplyHead(MsgType orig_type, const Status& status) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kReply));
  PutU8(&payload, static_cast<uint8_t>(orig_type));
  PutU32(&payload, static_cast<uint32_t>(status.code()));
  PutString(&payload, status.message());
  return payload;
}

void PutDbInfo(std::string* out, const DbInfo& info) {
  PutU64(out, info.epoch);
  PutU64(out, info.segments);
  PutU64(out, info.facts);
  PutU64(out, info.on_disk_bytes);
  PutU64(out, info.wal_bytes);
  PutU64(out, info.manifest_generation);
}

Status ReadDbInfo(WireReader* r, DbInfo* info) {
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->epoch));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->segments));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->facts));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->on_disk_bytes));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->wal_bytes));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&info->manifest_generation));
  return Status::OK();
}

void PutEvalStats(std::string* out, const WireEvalStats& s) {
  PutU64(out, s.derived_facts);
  PutU64(out, s.rounds);
  PutU64(out, s.rule_firings);
  PutU64(out, s.index_probes);
  PutU64(out, s.prefix_probes);
  PutU64(out, s.suffix_probes);
  PutU64(out, s.full_scans);
  PutU64(out, s.delta_scans);
  PutU64(out, s.delta_index_probes);
  PutF64(out, s.compile_seconds);
  PutF64(out, s.run_seconds);
}

Status ReadEvalStats(WireReader* r, WireEvalStats* s) {
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->derived_facts));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->rounds));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->rule_firings));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->index_probes));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->prefix_probes));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->suffix_probes));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->full_scans));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->delta_scans));
  SEQDL_RETURN_IF_ERROR(r->ReadU64(&s->delta_index_probes));
  SEQDL_RETURN_IF_ERROR(r->ReadF64(&s->compile_seconds));
  SEQDL_RETURN_IF_ERROR(r->ReadF64(&s->run_seconds));
  return Status::OK();
}

void PutDiagnostics(std::string* out,
                    const std::vector<WireDiagnostic>& diags) {
  PutU32(out, static_cast<uint32_t>(diags.size()));
  for (const WireDiagnostic& d : diags) {
    PutU8(out, d.severity);
    PutString(out, d.code);
    PutU32(out, d.line);
    PutU32(out, d.col);
    PutU32(out, d.end_line);
    PutU32(out, d.end_col);
    PutString(out, d.message);
    PutU32(out, static_cast<uint32_t>(d.notes.size()));
    for (const std::string& n : d.notes) PutString(out, n);
  }
}

Status ReadDiagnostics(WireReader* r, std::vector<WireDiagnostic>* diags) {
  uint32_t count = 0;
  SEQDL_RETURN_IF_ERROR(r->ReadU32(&count));
  diags->clear();
  for (uint32_t i = 0; i < count; ++i) {
    WireDiagnostic d;
    SEQDL_RETURN_IF_ERROR(r->ReadU8(&d.severity));
    SEQDL_RETURN_IF_ERROR(r->ReadString(&d.code));
    SEQDL_RETURN_IF_ERROR(r->ReadU32(&d.line));
    SEQDL_RETURN_IF_ERROR(r->ReadU32(&d.col));
    SEQDL_RETURN_IF_ERROR(r->ReadU32(&d.end_line));
    SEQDL_RETURN_IF_ERROR(r->ReadU32(&d.end_col));
    SEQDL_RETURN_IF_ERROR(r->ReadString(&d.message));
    uint32_t notes = 0;
    SEQDL_RETURN_IF_ERROR(r->ReadU32(&notes));
    for (uint32_t j = 0; j < notes; ++j) {
      std::string n;
      SEQDL_RETURN_IF_ERROR(r->ReadString(&n));
      d.notes.push_back(std::move(n));
    }
    diags->push_back(std::move(d));
  }
  return Status::OK();
}

}  // namespace

const char* MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kCompile:  return "compile";
    case MsgType::kRun:      return "run";
    case MsgType::kAppend:   return "append";
    case MsgType::kRetract:  return "retract";
    case MsgType::kEpoch:    return "epoch";
    case MsgType::kCompact:  return "compact";
    case MsgType::kStats:    return "stats";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kHello:    return "hello";
    case MsgType::kReply:    return "reply";
  }
  return "unknown";
}

// --- Request encoding --------------------------------------------------------

std::string EncodeCompileRequest(const CompileRequest& req) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kCompile));
  PutString(&payload, req.program);
  PutString(&payload, req.source_name);
  return Frame(std::move(payload));
}

std::string EncodeRunRequest(const RunRequest& req) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kRun));
  PutString(&payload, req.program);
  PutString(&payload, req.source_name);
  PutString(&payload, req.output_rel);
  PutU8(&payload, req.collect_derived_stats ? 1 : 0);
  return Frame(std::move(payload));
}

std::string EncodeAppendRequest(const AppendRequest& req) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kAppend));
  PutString(&payload, req.facts);
  PutString(&payload, req.source_name);
  return Frame(std::move(payload));
}

std::string EncodeRetractRequest(const RetractRequest& req) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kRetract));
  PutString(&payload, req.facts);
  PutString(&payload, req.source_name);
  return Frame(std::move(payload));
}

std::string EncodeHelloRequest(const HelloRequest& req) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(MsgType::kHello));
  PutU32(&payload, req.wire_version);
  return Frame(std::move(payload));
}

std::string EncodeBareRequest(MsgType type) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(type));
  return Frame(std::move(payload));
}

// --- Reply encoding ----------------------------------------------------------

std::string EncodeErrorReply(MsgType orig_type, const Status& status) {
  return Frame(ReplyHead(orig_type, status));
}

std::string EncodeCompileReply(const CompileReply& reply) {
  std::string payload = ReplyHead(MsgType::kCompile, Status::OK());
  PutU8(&payload, reply.cache_hit ? 1 : 0);
  PutU64(&payload, reply.rules);
  PutU64(&payload, reply.strata);
  PutF64(&payload, reply.compile_seconds);
  PutString(&payload, reply.features);
  PutString(&payload, reply.fragment_class);
  PutU8(&payload, reply.admission);
  PutDiagnostics(&payload, reply.diagnostics);
  return Frame(std::move(payload));
}

std::string EncodeRunReply(const RunReply& reply) {
  std::string payload = ReplyHead(MsgType::kRun, Status::OK());
  PutU64(&payload, reply.epoch);
  PutU64(&payload, reply.segments);
  PutU8(&payload, reply.result_cached ? 1 : 0);
  PutString(&payload, reply.rendered);
  PutEvalStats(&payload, reply.stats);
  return Frame(std::move(payload));
}

std::string EncodeAppendReply(const AppendReply& reply) {
  std::string payload = ReplyHead(MsgType::kAppend, Status::OK());
  PutU64(&payload, reply.appended);
  PutDbInfo(&payload, reply.db);
  return Frame(std::move(payload));
}

std::string EncodeRetractReply(const RetractReply& reply) {
  std::string payload = ReplyHead(MsgType::kRetract, Status::OK());
  PutU64(&payload, reply.retracted);
  PutDbInfo(&payload, reply.db);
  return Frame(std::move(payload));
}

std::string EncodeEpochReply(const DbInfo& info) {
  std::string payload = ReplyHead(MsgType::kEpoch, Status::OK());
  PutDbInfo(&payload, info);
  return Frame(std::move(payload));
}

std::string EncodeCompactReply(const CompactReply& reply) {
  std::string payload = ReplyHead(MsgType::kCompact, Status::OK());
  PutU8(&payload, reply.folded ? 1 : 0);
  PutDbInfo(&payload, reply.db);
  return Frame(std::move(payload));
}

std::string EncodeStatsReply(const StatsReply& reply) {
  std::string payload = ReplyHead(MsgType::kStats, Status::OK());
  PutString(&payload, reply.rendered);
  PutU64(&payload, reply.cache_hits);
  PutU64(&payload, reply.cache_misses);
  PutU64(&payload, reply.cache_evictions);
  PutU64(&payload, reply.cache_entries);
  PutU64(&payload, reply.cache_bytes);
  PutU64(&payload, reply.view_hits);
  PutU64(&payload, reply.view_cold_runs);
  PutU64(&payload, reply.view_delta_refreshes);
  PutU64(&payload, reply.view_dred_refreshes);
  PutU64(&payload, reply.view_strata_recomputed);
  return Frame(std::move(payload));
}

std::string EncodeShutdownReply() {
  return Frame(ReplyHead(MsgType::kShutdown, Status::OK()));
}

std::string EncodeHelloReply(const HelloReply& reply) {
  std::string payload = ReplyHead(MsgType::kHello, Status::OK());
  PutU32(&payload, reply.wire_version);
  return Frame(std::move(payload));
}

// --- Decoding ----------------------------------------------------------------

Result<Request> DecodeRequest(std::string_view payload) {
  WireReader r(payload);
  uint8_t type_byte = 0;
  SEQDL_RETURN_IF_ERROR(r.ReadU8(&type_byte));
  Request req;
  req.type = static_cast<MsgType>(type_byte);
  switch (req.type) {
    case MsgType::kCompile:
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.compile.program));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.compile.source_name));
      break;
    case MsgType::kRun:
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.run.program));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.run.source_name));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.run.output_rel));
      SEQDL_RETURN_IF_ERROR(r.ReadBool(&req.run.collect_derived_stats));
      break;
    case MsgType::kAppend:
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.append.facts));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.append.source_name));
      break;
    case MsgType::kRetract:
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.retract.facts));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&req.retract.source_name));
      break;
    case MsgType::kHello:
      SEQDL_RETURN_IF_ERROR(r.ReadU32(&req.hello.wire_version));
      break;
    case MsgType::kEpoch:
    case MsgType::kCompact:
    case MsgType::kStats:
    case MsgType::kShutdown:
      break;
    default:
      return Status::InvalidArgument(
          "malformed frame: unknown request type " +
          std::to_string(static_cast<int>(type_byte)));
  }
  SEQDL_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

Result<Reply> DecodeReply(std::string_view payload) {
  WireReader r(payload);
  uint8_t type_byte = 0;
  SEQDL_RETURN_IF_ERROR(r.ReadU8(&type_byte));
  if (static_cast<MsgType>(type_byte) != MsgType::kReply) {
    return Status::InvalidArgument(
        "malformed frame: expected a reply, got type " +
        std::to_string(static_cast<int>(type_byte)));
  }
  Reply reply;
  uint8_t orig = 0;
  SEQDL_RETURN_IF_ERROR(r.ReadU8(&orig));
  reply.orig_type = static_cast<MsgType>(orig);
  uint32_t code = 0;
  std::string message;
  SEQDL_RETURN_IF_ERROR(r.ReadU32(&code));
  SEQDL_RETURN_IF_ERROR(r.ReadString(&message));
  reply.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (!reply.status.ok()) {
    SEQDL_RETURN_IF_ERROR(r.ExpectEnd());
    return reply;
  }
  switch (reply.orig_type) {
    case MsgType::kCompile:
      SEQDL_RETURN_IF_ERROR(r.ReadBool(&reply.compile.cache_hit));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.compile.rules));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.compile.strata));
      SEQDL_RETURN_IF_ERROR(r.ReadF64(&reply.compile.compile_seconds));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&reply.compile.features));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&reply.compile.fragment_class));
      SEQDL_RETURN_IF_ERROR(r.ReadU8(&reply.compile.admission));
      SEQDL_RETURN_IF_ERROR(ReadDiagnostics(&r, &reply.compile.diagnostics));
      break;
    case MsgType::kRun:
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.run.epoch));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.run.segments));
      SEQDL_RETURN_IF_ERROR(r.ReadBool(&reply.run.result_cached));
      SEQDL_RETURN_IF_ERROR(r.ReadString(&reply.run.rendered));
      SEQDL_RETURN_IF_ERROR(ReadEvalStats(&r, &reply.run.stats));
      break;
    case MsgType::kAppend:
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.append.appended));
      SEQDL_RETURN_IF_ERROR(ReadDbInfo(&r, &reply.append.db));
      break;
    case MsgType::kRetract:
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.retract.retracted));
      SEQDL_RETURN_IF_ERROR(ReadDbInfo(&r, &reply.retract.db));
      break;
    case MsgType::kEpoch:
      SEQDL_RETURN_IF_ERROR(ReadDbInfo(&r, &reply.info));
      break;
    case MsgType::kCompact:
      SEQDL_RETURN_IF_ERROR(r.ReadBool(&reply.compact.folded));
      SEQDL_RETURN_IF_ERROR(ReadDbInfo(&r, &reply.compact.db));
      break;
    case MsgType::kStats:
      SEQDL_RETURN_IF_ERROR(r.ReadString(&reply.stats.rendered));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.cache_hits));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.cache_misses));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.cache_evictions));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.cache_entries));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.cache_bytes));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.view_hits));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.view_cold_runs));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.view_delta_refreshes));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.view_dred_refreshes));
      SEQDL_RETURN_IF_ERROR(r.ReadU64(&reply.stats.view_strata_recomputed));
      break;
    case MsgType::kHello:
      SEQDL_RETURN_IF_ERROR(r.ReadU32(&reply.hello.wire_version));
      break;
    case MsgType::kShutdown:
      break;
    default:
      return Status::InvalidArgument(
          "malformed frame: reply to unknown request type " +
          std::to_string(static_cast<int>(orig)));
  }
  SEQDL_RETURN_IF_ERROR(r.ExpectEnd());
  return reply;
}

// --- Frame IO ----------------------------------------------------------------

Status WriteFrame(int fd, std::string_view frame) {
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument(std::string("send failed: ") +
                                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly `len` bytes; *eof_at_start distinguishes a clean close
/// before the first byte from a mid-read truncation.
Status ReadExact(int fd, char* buf, size_t len, bool* eof_at_start) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument(std::string("recv failed: ") +
                                     std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::OK();
      }
      return Status::InvalidArgument(
          "truncated frame: connection closed after " + std::to_string(off) +
          " of " + std::to_string(len) + " bytes");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(int fd, size_t max_frame_bytes) {
  char head[4];
  bool eof = false;
  SEQDL_RETURN_IF_ERROR(ReadExact(fd, head, sizeof(head), &eof));
  if (eof) return Status::NotFound("connection closed");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(head[i])) << (8 * i);
  }
  if (len > max_frame_bytes) {
    return Status::ResourceExhausted(
        "oversized frame: declared " + std::to_string(len) +
        " bytes, limit " + std::to_string(max_frame_bytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    SEQDL_RETURN_IF_ERROR(ReadExact(fd, payload.data(), len, nullptr));
  }
  return payload;
}

Result<std::string> FrameReader::Next(bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  while (true) {
    // A complete frame in the buffer?
    size_t avail = buf_.size() - pos_;
    if (avail >= 4) {
      uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<uint32_t>(
                   static_cast<uint8_t>(buf_[pos_ + static_cast<size_t>(i)]))
               << (8 * i);
      }
      if (len > max_frame_bytes_) {
        return Status::ResourceExhausted(
            "oversized frame: declared " + std::to_string(len) +
            " bytes, limit " + std::to_string(max_frame_bytes_));
      }
      if (avail >= 4 + static_cast<size_t>(len)) {
        std::string payload = buf_.substr(pos_ + 4, len);
        pos_ += 4 + len;
        if (pos_ == buf_.size()) {
          buf_.clear();
          pos_ = 0;
        }
        return payload;
      }
    }
    // Pull more bytes. Compact the consumed prefix first so the buffer
    // stays bounded by one frame plus one recv chunk.
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    char chunk[16384];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && timed_out != nullptr) {
        *timed_out = true;
        return std::string();
      }
      return Status::InvalidArgument(std::string("recv failed: ") +
                                     std::strerror(errno));
    }
    if (n == 0) {
      if (buf_.empty()) return Status::NotFound("connection closed");
      return Status::InvalidArgument(
          "truncated frame: connection closed with " +
          std::to_string(buf_.size()) + " buffered bytes mid-frame");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

// --- Socket setup -------------------------------------------------------------

Status FillSockAddr(const std::string& host, uint16_t port,
                    struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* ip = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address " + host);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// --- Error formatting ---------------------------------------------------------

Status AnnotateParseError(std::string_view source_name, Status status) {
  if (status.ok() || source_name.empty()) return status;
  std::string annotated(source_name);
  const std::string& msg = status.message();
  constexpr std::string_view kPrefix = "parse error at ";
  constexpr std::string_view kLexPrefix = "lex error at ";
  if (msg.rfind(kPrefix.data(), 0) == 0) {
    // "parse error at L:C: msg" -> "<name>:L:C: msg".
    annotated += ":";
    annotated += msg.substr(kPrefix.size());
  } else if (msg.rfind(kLexPrefix.data(), 0) == 0) {
    // "lex error at L:C: msg" -> "<name>:L:C: msg".
    annotated += ":";
    annotated += msg.substr(kLexPrefix.size());
  } else {
    annotated += ": ";
    annotated += msg;
  }
  return Status(status.code(), std::move(annotated));
}

}  // namespace protocol
}  // namespace seqdl
