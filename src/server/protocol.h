// The seqdl wire protocol: framed, length-prefixed request/response
// messages between a network client and a server fronting a versioned
// Database (database.h). Sequence Datalog programs are small texts while
// EDBs are large and long-lived, so every request ships text *to* the
// data: `run` carries the program source, `append` carries the facts, and
// the server keeps the indexed segment stack, the compiled-program cache,
// and the measured statistics.
//
// Framing
//
//   frame   := u32le payload_length | payload
//   payload := u8 msg_type | body
//
// All integers are little-endian and fixed width; strings are a u32
// length followed by raw bytes; doubles travel as the IEEE-754 bit
// pattern in a u64. A frame whose declared length exceeds the receiver's
// limit (kDefaultMaxFrameBytes unless configured) is an *oversized
// frame*: the server answers with an error reply and closes the
// connection. A connection that ends mid-frame is a *truncated frame*
// (kInvalidArgument); a connection that ends cleanly between frames is
// reported as kNotFound by ReadFrame so callers can tell orderly
// disconnect from corruption.
//
// Requests (client -> server)
//
//   type        body
//   kCompile    program:string  source_name:string
//   kRun        program:string  source_name:string  output_rel:string
//               flags:u8 (bit 0: collect derived stats server-side)
//   kAppend     facts:string  source_name:string
//   kRetract    facts:string  source_name:string
//   kEpoch      (empty)
//   kCompact    (empty)
//   kStats      (empty)
//   kShutdown   (empty)
//   kHello      wire_version:u32
//
// kHello is the handshake: the reply carries the server's kWireVersion so
// a peer (the cluster coordinator, notably) can reject a mismatched
// server with a structured error instead of undefined frame decoding. A
// pre-handshake server answers kHello with kInvalidArgument ("unknown
// request type 9"), which callers should treat as a version mismatch too.
//
// Replies (server -> client) all share one shape:
//
//   kReply      orig_type:u8  status_code:u32  status_message:string
//               [body iff status is OK]
//
// with per-request bodies documented on the structs below. `source_name`
// names the text in error messages ("prog.sdl:3:7: expected ..."), which
// is how a client sees server-side parse errors pointing at *its* file —
// see AnnotateParseError, shared with the CLI's stdin serve mode.
#ifndef SEQDL_SERVER_PROTOCOL_H_
#define SEQDL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

struct sockaddr_in;

namespace seqdl {
namespace protocol {

/// Frames larger than this are rejected by default on both sides (a
/// guard against corrupt length prefixes allocating gigabytes, not a
/// semantic limit — ServerOptions/Client can raise it).
constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

enum class MsgType : uint8_t {
  kCompile = 1,
  kRun = 2,
  kAppend = 3,
  kEpoch = 4,
  kCompact = 5,
  kStats = 6,
  kShutdown = 7,
  kRetract = 8,
  kHello = 9,
  kReply = 128,
};

/// Version of the frame/message encoding described above. Bumped on any
/// incompatible change; exchanged via kHello so mismatched peers fail
/// with a structured error instead of misdecoding each other's frames.
constexpr uint32_t kWireVersion = 1;

/// "compile" / "run" / ... for logs and errors.
const char* MsgTypeToString(MsgType type);

// --- Request bodies ---------------------------------------------------------

/// Parse + plan `program` and cache it server-side keyed by its text;
/// reports whether the cache already held it.
struct CompileRequest {
  std::string program;
  std::string source_name;  ///< client-side name for error messages
};

/// Evaluate `program` against an epoch-pinned snapshot of the server's
/// database. Compiles (or reuses the cached plan) as needed.
struct RunRequest {
  std::string program;
  std::string source_name;
  /// Project the derived facts onto this relation; empty = all derived.
  std::string output_rel;
  /// Measure the run's derived facts into the server database's
  /// statistics accumulator so later compiles plan from the workload.
  bool collect_derived_stats = true;
};

/// Ingest `facts` (instance syntax): publishes a new immutable segment
/// and bumps the epoch; in-flight runs keep their pinned snapshots.
struct AppendRequest {
  std::string facts;
  std::string source_name;
};

/// Retract `facts` (instance syntax): publishes an immutable *tombstone*
/// segment shadowing matching facts in all older segments and bumps the
/// epoch; in-flight runs keep their pinned snapshots. Facts not visible
/// at the retraction epoch are ignored (reported via `retracted`).
struct RetractRequest {
  std::string facts;
  std::string source_name;
};

/// Handshake: announces the sender's wire-format version.
struct HelloRequest {
  uint32_t wire_version = kWireVersion;
};

// --- Reply bodies -----------------------------------------------------------

/// epoch/segments/facts of the server database (kEpoch reply; embedded in
/// append/compact replies), plus the durability counters — all zero when
/// the server database is in-memory (no --data-dir).
struct DbInfo {
  uint64_t epoch = 0;
  uint64_t segments = 0;
  uint64_t facts = 0;
  /// Sealed segment files + manifest on disk (excludes the WAL).
  uint64_t on_disk_bytes = 0;
  uint64_t wal_bytes = 0;
  /// Manifest generation (bumps at every checkpoint/compaction); 0 for
  /// an in-memory database.
  uint64_t manifest_generation = 0;
};

/// The EvalStats counters that cross the wire (stats.h has the engine-side
/// struct; wall times travel as seconds).
struct WireEvalStats {
  uint64_t derived_facts = 0;
  uint64_t rounds = 0;
  uint64_t rule_firings = 0;
  uint64_t index_probes = 0;
  uint64_t prefix_probes = 0;
  uint64_t suffix_probes = 0;
  uint64_t full_scans = 0;
  uint64_t delta_scans = 0;
  uint64_t delta_index_probes = 0;
  double compile_seconds = 0;
  double run_seconds = 0;
};

/// One analyzer finding crossing the wire (analysis/diagnostics.h
/// Diagnostic, flattened: severity 0=error 1=warning 2=note; a line of 0
/// means "no source location").
struct WireDiagnostic {
  uint8_t severity = 0;
  std::string code;  ///< stable "SDxxx" code
  uint32_t line = 0;
  uint32_t col = 0;
  uint32_t end_line = 0;
  uint32_t end_col = 0;
  std::string message;
  std::vector<std::string> notes;
};

struct CompileReply {
  bool cache_hit = false;
  uint64_t rules = 0;
  uint64_t strata = 0;
  double compile_seconds = 0;
  /// Admission-control payload (service.h): the program's feature set
  /// ("{E,I,R}"), its core-fragment equivalence class (Figure 1 label),
  /// the verdict under the server's policy (AdmissionVerdict numeric
  /// value: 0 tame, 1 generative-budgeted, 2 rejected), and the
  /// analyzer's warnings/notes (lint SD1xx + admission SD3xx). A
  /// *rejected* program still compiles — only kRun refuses it — so the
  /// client sees the full explanation here.
  std::string features;
  std::string fragment_class;
  uint8_t admission = 0;
  std::vector<WireDiagnostic> diagnostics;
};

struct RunReply {
  /// Epoch the run's snapshot was pinned to, and its segment count.
  uint64_t epoch = 0;
  uint64_t segments = 0;
  /// Answered from the server's epoch-keyed result cache (same program
  /// text + output relation at an unchanged epoch): no evaluation ran;
  /// `stats` are those of the run that populated the entry.
  bool result_cached = false;
  /// Deterministic rendering of the derived facts (Instance::ToString,
  /// projected onto output_rel when one was requested) — the payload the
  /// loopback differential compares byte-for-byte against in-process
  /// Session::Run.
  std::string rendered;
  WireEvalStats stats;
};

struct AppendReply {
  /// Facts actually new (duplicates against the stack are dropped).
  uint64_t appended = 0;
  DbInfo db;
};

struct RetractReply {
  /// Facts actually retracted (requests for invisible facts are dropped).
  uint64_t retracted = 0;
  DbInfo db;
};

struct CompactReply {
  bool folded = false;
  DbInfo db;
};

/// Handshake reply: the server's wire-format version (kHello reply).
struct HelloReply {
  uint32_t wire_version = 0;
};

struct StatsReply {
  /// StoreStats::ToString of the server database's measured statistics.
  std::string rendered;
  /// Result/view cache traffic and occupancy (service.h CacheCounters).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  /// Maintained-view counters (view.h ViewManager::Counters).
  uint64_t view_hits = 0;
  uint64_t view_cold_runs = 0;
  uint64_t view_delta_refreshes = 0;
  uint64_t view_dred_refreshes = 0;
  uint64_t view_strata_recomputed = 0;
};

/// One decoded request frame: the type tag plus the matching body (only
/// the member for `type` is meaningful).
struct Request {
  MsgType type = MsgType::kEpoch;
  CompileRequest compile;
  RunRequest run;
  AppendRequest append;
  RetractRequest retract;
  HelloRequest hello;
};

/// One decoded reply frame: which request it answers, its Status, and the
/// body (meaningful only when `status.ok()`).
struct Reply {
  MsgType orig_type = MsgType::kEpoch;
  Status status;
  CompileReply compile;
  RunReply run;
  AppendReply append;
  RetractReply retract;
  DbInfo info;          ///< kEpoch
  CompactReply compact;
  StatsReply stats;
  HelloReply hello;
};

// --- Encoding ---------------------------------------------------------------
// Encoders produce a complete frame (length prefix included), ready for
// WriteFrame / a single send.

std::string EncodeCompileRequest(const CompileRequest& req);
std::string EncodeRunRequest(const RunRequest& req);
std::string EncodeAppendRequest(const AppendRequest& req);
std::string EncodeRetractRequest(const RetractRequest& req);
std::string EncodeHelloRequest(const HelloRequest& req);
/// kEpoch / kCompact / kStats / kShutdown (no body).
std::string EncodeBareRequest(MsgType type);

/// An error reply to a request of `orig_type` (no body).
std::string EncodeErrorReply(MsgType orig_type, const Status& status);
std::string EncodeCompileReply(const CompileReply& reply);
std::string EncodeRunReply(const RunReply& reply);
std::string EncodeAppendReply(const AppendReply& reply);
std::string EncodeRetractReply(const RetractReply& reply);
std::string EncodeEpochReply(const DbInfo& info);
std::string EncodeCompactReply(const CompactReply& reply);
std::string EncodeStatsReply(const StatsReply& reply);
std::string EncodeShutdownReply();
std::string EncodeHelloReply(const HelloReply& reply);

// --- Decoding ---------------------------------------------------------------
// `payload` is a frame's payload (no length prefix). Truncated or
// malformed payloads yield kInvalidArgument with a "truncated frame" /
// "malformed frame" message.

Result<Request> DecodeRequest(std::string_view payload);
Result<Reply> DecodeReply(std::string_view payload);

// --- Frame IO ---------------------------------------------------------------

/// Writes `frame` (already length-prefixed by an encoder) to `fd`,
/// looping over short writes. Uses MSG_NOSIGNAL — a peer that vanished
/// mid-write yields a Status, never SIGPIPE.
Status WriteFrame(int fd, std::string_view frame);

/// Reads one frame's payload from `fd` (blocking). Returns:
///   * the payload bytes on success;
///   * kNotFound "connection closed" on clean EOF at a frame boundary;
///   * kInvalidArgument "truncated frame ..." on EOF mid-frame;
///   * kResourceExhausted "oversized frame ..." when the declared length
///     exceeds `max_frame_bytes` (the frame is NOT consumed — close the
///     connection after reporting).
Result<std::string> ReadFrame(int fd, size_t max_frame_bytes);

/// Buffered frame reader over a connected socket: each recv pulls
/// whatever is available, so a small frame typically costs one syscall
/// instead of two (header, then payload) — on a loopback serving path
/// that is a measurable share of the round trip. Keeps partial-frame
/// state across calls: with an SO_RCVTIMEO set on the socket, a timeout
/// surfaces via *timed_out (call Next again to resume exactly where the
/// stream left off), which is how the server polls its stop flag between
/// and *during* frames without a separate poll(2). Error returns match
/// ReadFrame.
class FrameReader {
 public:
  FrameReader(int fd, size_t max_frame_bytes)
      : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

  /// Next frame payload. `timed_out` (may be null when the socket has no
  /// receive timeout) is set instead of an error when recv timed out.
  Result<std::string> Next(bool* timed_out);

 private:
  int fd_;
  size_t max_frame_bytes_;
  std::string buf_;   ///< bytes received but not yet returned
  size_t pos_ = 0;    ///< consumed prefix of buf_
};

// --- Socket setup (shared by Server::Listen and Client::Connect) -------------

/// Fills an IPv4 socket address for host:port. Accepts dotted quads and
/// the literal "localhost" (mapped to 127.0.0.1); no DNS.
Status FillSockAddr(const std::string& host, uint16_t port,
                    struct sockaddr_in* addr);

/// Disables Nagle's algorithm: frames are small request/reply units, so
/// latency beats batching on both ends of the protocol.
void SetNoDelay(int fd);

// --- Error formatting -------------------------------------------------------

/// Rewrites a parser Status of the shape "parse error at L:C: msg" into
/// the structured "<source_name>:L:C: msg" (compiler-style file:line),
/// and prefixes "<source_name>: " otherwise. Shared by the server (so
/// clients see errors pointing at the text *they* named) and by the CLI
/// stdin serve mode's `append`/`run` reporting.
Status AnnotateParseError(std::string_view source_name, Status status);

}  // namespace protocol
}  // namespace seqdl

#endif  // SEQDL_SERVER_PROTOCOL_H_
