// Blocking C++ client for the seqdl wire protocol: one TCP connection,
// one outstanding request at a time. Used by `seqdl query --connect`,
// the server tests (including the loopback differential), and the
// bench_server load generator.
//
//   SEQDL_ASSIGN_OR_RETURN(Client c, Client::Connect("127.0.0.1", port));
//   SEQDL_ASSIGN_OR_RETURN(protocol::RunReply r, c.Run(program_text));
//   std::fputs(r.rendered.c_str(), stdout);
//
// Each method ships text to the server, blocks for the reply frame, and
// surfaces a server-side error Status as this call's error — a parse
// error in a shipped program comes back as kInvalidArgument with the
// "<source_name>:line:col: ..." message the server rendered. Transport
// failures (connection reset, truncated reply) are kInvalidArgument /
// kNotFound from the frame layer.
//
// A Client is move-only (it owns the socket) and not thread-safe; open
// one per thread — connections are cheap next to the EDB they avoid
// shipping.
#ifndef SEQDL_SERVER_CLIENT_H_
#define SEQDL_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/server/protocol.h"

namespace seqdl {

/// Deadlines and limits for a client connection. The zero defaults mean
/// "block forever" — exactly the pre-options behavior — so existing
/// callers are unaffected; the cluster coordinator sets both timeouts so
/// a hung shard surfaces as kDeadlineExceeded instead of a stalled
/// scatter-gather.
struct ClientOptions {
  /// Milliseconds to wait for connect(2) to complete; 0 blocks forever.
  uint32_t connect_timeout_ms = 0;
  /// Milliseconds a single send or receive may stall before the round
  /// trip fails with kDeadlineExceeded; 0 blocks forever. A deadline
  /// failure leaves the stream position unknown — Close() the client.
  uint32_t io_timeout_ms = 0;
  size_t max_frame_bytes = protocol::kDefaultMaxFrameBytes;
};

class Client {
 public:
  /// Connects to host:port (IPv4 dotted quad or "localhost") and enables
  /// TCP_NODELAY — queries are small; latency beats batching.
  static Result<Client> Connect(
      const std::string& host, uint16_t port,
      size_t max_frame_bytes = protocol::kDefaultMaxFrameBytes);

  /// Connect with deadlines: a connect that does not complete within
  /// connect_timeout_ms fails with kDeadlineExceeded (unreachable peers
  /// stay kNotFound), and every later round trip is bounded by
  /// io_timeout_ms.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Parse + plan `program` server-side and cache it by text.
  Result<protocol::CompileReply> Compile(const std::string& program,
                                         const std::string& source_name = "");

  /// Evaluate `program` on an epoch-pinned server snapshot; the reply
  /// carries the rendered derived facts (projected onto `output_rel`
  /// when nonempty).
  Result<protocol::RunReply> Run(const std::string& program,
                                 const std::string& output_rel = "",
                                 const std::string& source_name = "",
                                 bool collect_derived_stats = true);

  /// Ingest `facts` (instance syntax) as a new epoch.
  Result<protocol::AppendReply> Append(const std::string& facts,
                                       const std::string& source_name = "");

  /// Retract `facts` (instance syntax): visible matches are shadowed by
  /// a tombstone segment at a new epoch. The reply counts the facts that
  /// were actually visible (retracting an absent fact is a no-op).
  Result<protocol::RetractReply> Retract(const std::string& facts,
                                         const std::string& source_name = "");

  Result<protocol::DbInfo> Epoch();
  Result<protocol::CompactReply> Compact();
  Result<protocol::StatsReply> Stats();

  /// Handshake: exchanges wire-format versions. Fails with
  /// kFailedPrecondition naming both versions on a mismatch; a
  /// pre-handshake server's "unknown request type" reply is reported the
  /// same way (it cannot speak this client's protocol either).
  Result<protocol::HelloReply> Hello();

  /// Asks the server to drain and exit. The reply arrives before the
  /// server closes the connection.
  Status Shutdown();

  /// Closes the connection (also done by the destructor). Safe to call
  /// twice.
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// The raw socket, for tests that need to misbehave at the byte level
  /// (oversized frames, truncated frames, mid-run disconnects).
  int fd() const { return fd_; }

 private:
  Client(int fd, const ClientOptions& options)
      : fd_(fd),
        max_frame_bytes_(options.max_frame_bytes),
        io_timeout_ms_(options.io_timeout_ms) {}

  /// Sends one encoded frame and decodes the reply; checks the reply
  /// answers `expect` and propagates an error Status from the server.
  Result<protocol::Reply> RoundTrip(const std::string& frame,
                                    protocol::MsgType expect);

  int fd_ = -1;
  size_t max_frame_bytes_ = protocol::kDefaultMaxFrameBytes;
  uint32_t io_timeout_ms_ = 0;
  /// Buffered reply reader, created on first round trip. Do not mix the
  /// typed methods with raw ReadFrame(fd()) on one connection — buffered
  /// bytes would be lost (raw byte-level tests use only raw IO).
  std::unique_ptr<protocol::FrameReader> reader_;
};

}  // namespace seqdl

#endif  // SEQDL_SERVER_CLIENT_H_
