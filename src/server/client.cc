#include "src/server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace seqdl {

using protocol::MsgType;

namespace {

/// WriteFrame with deadline awareness: with an SO_SNDTIMEO armed, a
/// stalled peer surfaces from send(2) as EAGAIN, which is a deadline —
/// not a malformed-stream — failure.
Status SendFrame(int fd, std::string_view frame, bool has_deadline) {
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd, frame.data() + off, frame.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (has_deadline && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::DeadlineExceeded(
            "deadline exceeded sending a request frame");
      }
      return Status::InvalidArgument(std::string("send failed: ") +
                                     std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_bytes) {
  ClientOptions options;
  options.max_frame_bytes = max_frame_bytes;
  return Connect(host, port, options);
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  struct sockaddr_in addr;
  if (Status st = protocol::FillSockAddr(host, port, &addr); !st.ok()) {
    ::close(fd);
    return st;
  }
  auto connect_error = [&](int err) {
    Status st = Status::NotFound("cannot connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(err));
    ::close(fd);
    return st;
  };
  if (options.connect_timeout_ms == 0) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return connect_error(errno);
    }
  } else {
    // Bounded connect: nonblocking connect(2), poll for writability up to
    // the deadline, then read the outcome back via SO_ERROR.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) return connect_error(errno);
    if (rc != 0) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      int n;
      do {
        n = ::poll(&pfd, 1, static_cast<int>(options.connect_timeout_ms));
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        Status st = Status::Internal(std::string("poll failed: ") +
                                     std::strerror(errno));
        ::close(fd);
        return st;
      }
      if (n == 0) {
        Status st = Status::DeadlineExceeded(
            "connect to " + host + ":" + std::to_string(port) +
            " timed out after " + std::to_string(options.connect_timeout_ms) +
            "ms");
        ::close(fd);
        return st;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) return connect_error(err);
    }
    ::fcntl(fd, F_SETFL, flags);  // back to blocking for the IO path
  }
  if (options.io_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = options.io_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options.io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  protocol::SetNoDelay(fd);
  return Client(fd, options);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      max_frame_bytes_(other.max_frame_bytes_),
      io_timeout_ms_(other.io_timeout_ms_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    io_timeout_ms_ = other.io_timeout_ms_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<protocol::Reply> Client::RoundTrip(const std::string& frame,
                                          MsgType expect) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  if (reader_ == nullptr) {
    reader_ = std::make_unique<protocol::FrameReader>(fd_, max_frame_bytes_);
  }
  const bool has_deadline = io_timeout_ms_ > 0;
  SEQDL_RETURN_IF_ERROR(SendFrame(fd_, frame, has_deadline));
  bool timed_out = false;
  SEQDL_ASSIGN_OR_RETURN(std::string payload,
                         reader_->Next(has_deadline ? &timed_out : nullptr));
  if (timed_out) {
    return Status::DeadlineExceeded(
        "deadline exceeded after " + std::to_string(io_timeout_ms_) +
        "ms waiting for a " + protocol::MsgTypeToString(expect) + " reply");
  }
  SEQDL_ASSIGN_OR_RETURN(protocol::Reply reply,
                         protocol::DecodeReply(payload));
  if (!reply.status.ok()) return reply.status;
  if (reply.orig_type != expect) {
    return Status::Internal(
        std::string("protocol mismatch: expected a reply to ") +
        protocol::MsgTypeToString(expect) + ", got " +
        protocol::MsgTypeToString(reply.orig_type));
  }
  return reply;
}

Result<protocol::CompileReply> Client::Compile(
    const std::string& program, const std::string& source_name) {
  protocol::CompileRequest req;
  req.program = program;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeCompileRequest(req), MsgType::kCompile));
  return reply.compile;
}

Result<protocol::RunReply> Client::Run(const std::string& program,
                                       const std::string& output_rel,
                                       const std::string& source_name,
                                       bool collect_derived_stats) {
  protocol::RunRequest req;
  req.program = program;
  req.source_name = source_name;
  req.output_rel = output_rel;
  req.collect_derived_stats = collect_derived_stats;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeRunRequest(req), MsgType::kRun));
  return reply.run;
}

Result<protocol::AppendReply> Client::Append(const std::string& facts,
                                             const std::string& source_name) {
  protocol::AppendRequest req;
  req.facts = facts;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeAppendRequest(req), MsgType::kAppend));
  return reply.append;
}

Result<protocol::RetractReply> Client::Retract(
    const std::string& facts, const std::string& source_name) {
  protocol::RetractRequest req;
  req.facts = facts;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeRetractRequest(req), MsgType::kRetract));
  return reply.retract;
}

Result<protocol::DbInfo> Client::Epoch() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kEpoch),
                MsgType::kEpoch));
  return reply.info;
}

Result<protocol::CompactReply> Client::Compact() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kCompact),
                MsgType::kCompact));
  return reply.compact;
}

Result<protocol::StatsReply> Client::Stats() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kStats),
                MsgType::kStats));
  return reply.stats;
}

Result<protocol::HelloReply> Client::Hello() {
  protocol::HelloRequest req;
  Result<protocol::Reply> reply =
      RoundTrip(protocol::EncodeHelloRequest(req), MsgType::kHello);
  if (!reply.ok()) {
    const Status& st = reply.status();
    if (st.code() == StatusCode::kInvalidArgument &&
        st.message().find("unknown request type") != std::string::npos) {
      // A pre-handshake server rejects kHello at the decode layer; to
      // this client that *is* a version mismatch.
      return Status::FailedPrecondition(
          "wire version mismatch: peer predates the handshake (client "
          "speaks version " +
          std::to_string(protocol::kWireVersion) + ")");
    }
    return st;
  }
  if (reply->hello.wire_version != protocol::kWireVersion) {
    return Status::FailedPrecondition(
        "wire version mismatch: client speaks version " +
        std::to_string(protocol::kWireVersion) + ", server speaks version " +
        std::to_string(reply->hello.wire_version));
  }
  return reply->hello;
}

Status Client::Shutdown() {
  Result<protocol::Reply> reply = RoundTrip(
      protocol::EncodeBareRequest(MsgType::kShutdown), MsgType::kShutdown);
  if (!reply.ok()) return reply.status();
  return Status::OK();
}

}  // namespace seqdl
