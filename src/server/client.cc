#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace seqdl {

using protocol::MsgType;

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               size_t max_frame_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  struct sockaddr_in addr;
  if (Status st = protocol::FillSockAddr(host, port, &addr); !st.ok()) {
    ::close(fd);
    return st;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::NotFound("cannot connect to " + host + ":" +
                                 std::to_string(port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return st;
  }
  protocol::SetNoDelay(fd);
  return Client(fd, max_frame_bytes);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      max_frame_bytes_(other.max_frame_bytes_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<protocol::Reply> Client::RoundTrip(const std::string& frame,
                                          MsgType expect) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  if (reader_ == nullptr) {
    reader_ = std::make_unique<protocol::FrameReader>(fd_, max_frame_bytes_);
  }
  SEQDL_RETURN_IF_ERROR(protocol::WriteFrame(fd_, frame));
  SEQDL_ASSIGN_OR_RETURN(std::string payload, reader_->Next(nullptr));
  SEQDL_ASSIGN_OR_RETURN(protocol::Reply reply,
                         protocol::DecodeReply(payload));
  if (!reply.status.ok()) return reply.status;
  if (reply.orig_type != expect) {
    return Status::Internal(
        std::string("protocol mismatch: expected a reply to ") +
        protocol::MsgTypeToString(expect) + ", got " +
        protocol::MsgTypeToString(reply.orig_type));
  }
  return reply;
}

Result<protocol::CompileReply> Client::Compile(
    const std::string& program, const std::string& source_name) {
  protocol::CompileRequest req;
  req.program = program;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeCompileRequest(req), MsgType::kCompile));
  return reply.compile;
}

Result<protocol::RunReply> Client::Run(const std::string& program,
                                       const std::string& output_rel,
                                       const std::string& source_name,
                                       bool collect_derived_stats) {
  protocol::RunRequest req;
  req.program = program;
  req.source_name = source_name;
  req.output_rel = output_rel;
  req.collect_derived_stats = collect_derived_stats;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeRunRequest(req), MsgType::kRun));
  return reply.run;
}

Result<protocol::AppendReply> Client::Append(const std::string& facts,
                                             const std::string& source_name) {
  protocol::AppendRequest req;
  req.facts = facts;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeAppendRequest(req), MsgType::kAppend));
  return reply.append;
}

Result<protocol::RetractReply> Client::Retract(
    const std::string& facts, const std::string& source_name) {
  protocol::RetractRequest req;
  req.facts = facts;
  req.source_name = source_name;
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeRetractRequest(req), MsgType::kRetract));
  return reply.retract;
}

Result<protocol::DbInfo> Client::Epoch() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kEpoch),
                MsgType::kEpoch));
  return reply.info;
}

Result<protocol::CompactReply> Client::Compact() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kCompact),
                MsgType::kCompact));
  return reply.compact;
}

Result<protocol::StatsReply> Client::Stats() {
  SEQDL_ASSIGN_OR_RETURN(
      protocol::Reply reply,
      RoundTrip(protocol::EncodeBareRequest(MsgType::kStats),
                MsgType::kStats));
  return reply.stats;
}

Status Client::Shutdown() {
  Result<protocol::Reply> reply = RoundTrip(
      protocol::EncodeBareRequest(MsgType::kShutdown), MsgType::kShutdown);
  if (!reply.ok()) return reply.status();
  return Status::OK();
}

}  // namespace seqdl
